"""Figs. 13, 14, 18: the application imagery, rendered natively.

These figures are qualitative in the paper (a PHASTA slice through the
wing, the TML's evolution from rollup to breakdown, Nyx Ly-alpha density
slices at different steps).  The benches render each through the full
SENSEI pipeline and assert the images carry the structure the figures
show.
"""

import numpy as np

from repro.analysis.slice_ import SlicePlane
from repro.apps.avf_leslie_proxy import AVFLeslieSimulation
from repro.apps.nyx_proxy import NyxSimulation
from repro.apps.phasta_proxy import PhastaSimulation, PhastaSliceRender
from repro.core import Bridge
from repro.infrastructure import LibsimAdaptor, write_session_file
from repro.infrastructure.catalyst import CatalystAdaptor
from repro.mpi import run_spmd
from repro.render import decode_png


def test_fig13_phasta_slice(benchmark, report):
    """Velocity-magnitude slice through the tail (Fig. 13)."""

    def render():
        def prog(comm):
            sim = PhastaSimulation(comm, (12, 8, 8), jet_amplitude=0.5)
            bridge = Bridge(comm, sim.make_data_adaptor())
            sl = PhastaSliceRender(resolution=(160, 40))
            bridge.add_analysis(sl)
            bridge.initialize()
            sim.run(2, bridge)
            bridge.finalize()
            return sl.last_png

        return run_spmd(2, prog)[0]

    png = benchmark.pedantic(render, rounds=2, iterations=1)
    img = decode_png(png)
    assert img.shape == (40, 160, 3)
    # The tail's wake is a visible feature: column variance is nonuniform.
    col_std = img.astype(float).std(axis=(0, 2))
    report(
        "fig13_phasta_imagery",
        "PHASTA slice render (native)",
        [f"image 160x40, column-stddev range {col_std.min():.1f}..{col_std.max():.1f}"],
    )
    assert col_std.max() > 2 * max(col_std.min(), 1.0)


def test_fig14_avf_tml_evolution(benchmark, report, tmp_path):
    """TML vorticity imagery early vs late (Fig. 14's evolution)."""
    session = tmp_path / "s.json"
    write_session_file(
        session,
        [
            {"type": "isosurface", "isovalues": [1.0, 3.0, 6.0]},
            {"type": "pseudocolor_slice", "axis": 2, "index": 3},
        ],
        resolution=(64, 64),
    )

    def render():
        def prog(comm):
            sim = AVFLeslieSimulation(comm, global_dims=(16, 16, 8), mach=0.5)
            bridge = Bridge(comm, sim.make_data_adaptor())
            lib = LibsimAdaptor(session_file=session, array="vorticity")
            bridge.add_analysis(lib)
            bridge.initialize()
            sim.advance()
            bridge.execute(sim.time, sim.step)
            early = lib.last_png
            for _ in range(10):
                sim.advance()
            bridge.execute(sim.time, sim.step)
            bridge.finalize()
            return early, lib.last_png

        return run_spmd(2, prog)[0]

    early, late = benchmark.pedantic(render, rounds=1, iterations=1)
    a, b = decode_png(early), decode_png(late)
    changed = float((a != b).mean())
    report(
        "fig14_avf_imagery",
        "AVF-LESLIE TML evolution (native)",
        [f"pixels changed between early and late frames: {changed:.1%}"],
    )
    assert changed > 0.01  # the flow evolves visibly


def test_fig18_nyx_density_slices(benchmark, report):
    """Nyx density slices at different steps (Fig. 18's tracking point)."""

    def render():
        def prog(comm):
            sim = NyxSimulation(comm, grid=16, gravity=6.0, dt=0.1, seed=8)
            bridge = Bridge(comm, sim.make_data_adaptor())
            cat = CatalystAdaptor(
                SlicePlane(2, 8), array="density", resolution=(48, 48)
            )
            bridge.add_analysis(cat)
            bridge.initialize()
            sim.run(1, bridge)
            first = cat.last_png
            sim.run(5, bridge)
            bridge.finalize()
            return first, cat.last_png

        return run_spmd(2, prog)[0]

    first, last = benchmark.pedantic(render, rounds=1, iterations=1)
    a, b = decode_png(first), decode_png(last)
    changed = float((a != b).mean())
    report(
        "fig18_nyx_imagery",
        "Nyx density-slice evolution (native)",
        [
            f"pixels changed over 5 steps: {changed:.1%} -- per-step in situ "
            "imagery tracks what sparse plot files miss"
        ],
    )
    assert changed > 0.01
