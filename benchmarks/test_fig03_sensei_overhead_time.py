"""Fig. 3: time to solution, Original vs SENSEI Autocorrelation (weak scaling).

Paper claim: "no measurable difference between the two configurations" --
the SENSEI generic data interface adds no runtime because the mapping is
zero-copy.

Native part: benchmark a full miniapp run with subroutine-coupled
autocorrelation vs the SENSEI-instrumented one at 4 ranks; assert the
difference is within noise.  Modeled part: the 1K/6K/45K time-to-solution
bars.
"""

import pytest

from repro.analysis import AutocorrelationAnalysis
from repro.analysis.autocorrelation import AutocorrelationState
from repro.core import Bridge
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.perf.miniapp_model import MiniappConfig, MiniappModel

DIMS = (16, 16, 16)
STEPS = 4
WINDOW = 4


def _original(comm):
    sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.05)
    state = AutocorrelationState(WINDOW, sim.field.size)
    for _ in range(STEPS):
        sim.advance()
        state.update(sim.field)
    state.finalize(comm, k=3)


def _sensei(comm):
    sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.05)
    bridge = Bridge(comm, sim.make_data_adaptor())
    bridge.add_analysis(AutocorrelationAnalysis(window=WINDOW, k=3))
    bridge.initialize()
    sim.run(STEPS, bridge)
    bridge.finalize()


def test_fig03_native_original(benchmark):
    benchmark.pedantic(lambda: run_spmd(4, _original), rounds=3, iterations=1)


def test_fig03_native_sensei(benchmark):
    benchmark.pedantic(lambda: run_spmd(4, _sensei), rounds=3, iterations=1)


def test_fig03_modeled_series(benchmark, report):
    def series():
        rows = []
        for scale in ("1K", "6K", "45K"):
            m = MiniappModel(MiniappConfig.at_scale(scale))
            orig = m.original()
            # Original couples the autocorrelation by subroutine call; add
            # the identical analysis compute to both configurations.
            ac = m.autocorrelation()
            t_orig = orig.time_to_solution(m.cfg.steps) + m.cfg.steps * (
                ac.analysis_per_step - m.sensei_overhead_step
            ) + ac.finalize
            t_sensei = ac.time_to_solution(m.cfg.steps)
            rows.append((scale, m.cfg.cores, t_orig, t_sensei))
        return rows

    rows = benchmark(series)
    formatted = [
        f"{scale:<5}{cores:>8}{t_o:>14.2f}{t_s:>14.2f}{100 * (t_s / t_o - 1):>+12.3f}%"
        for scale, cores, t_o, t_s in rows
    ]
    report(
        "fig03_time_to_solution",
        f"{'scale':<5}{'cores':>8}{'original(s)':>14}{'sensei(s)':>14}{'overhead':>13}",
        formatted,
    )
    for _, _, t_o, t_s in rows:
        assert abs(t_s / t_o - 1) < 0.01  # "no measurable difference"
