"""Hot-path microbenchmarks: the three costs the acceleration layer attacks.

The paper's cost story is (1) the miniapp's O(m N^3) per-step refill
(Sec. 3.3), (2) rank 0's serial zlib/PNG encode (Table 2), and (3)
compositing's per-round buffer churn (Sec. 4.1.3).  Each benchmark here
times the naive path against its accelerated counterpart and appends a
machine-readable record to ``BENCH_hotpaths.json`` at the repo root so
future PRs can track the perf trajectory::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_hotpaths.py -s

Speedup assertions are calibrated to the hardware actually present: the
parallel deflate needs real cores to win wall-clock (zlib releases the GIL,
but a 1-CPU container serializes the pool), so its >= 2x gate only applies
when >= 4 CPUs are available; the measured speedup and CPU count are always
recorded.
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.miniapp.oscillator import default_oscillators
from repro.mpi import SUM, run_spmd
from repro.render import VIRIDIS, blank_image, decode_png, encode_png
from repro.render.compositing import (
    FramebufferPool,
    binary_swap,
    composite_over,
    composite_over_into,
)
from repro.util.memory import MemoryTracker

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_hotpaths.json")


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark's results into BENCH_hotpaths.json."""
    doc: dict = {}
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    doc["meta"] = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": _cpus(),
    }
    doc[section] = payload
    with open(BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds over ``repeats`` calls (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# -- 1. separable oscillator kernel cache -------------------------------------


def test_kernel_cache_speedup(report):
    """advance() with the cached Gaussian basis vs the streaming refill.

    Acceptance target: >= 5x on a 64^3 grid with the 3 default oscillators.
    """
    dims = (64, 64, 64)
    oscs = default_oscillators()

    def prog(comm):
        from repro.miniapp import OscillatorSimulation

        streaming = OscillatorSimulation(comm, dims, oscs, dt=0.01)
        mem = MemoryTracker()
        cached = OscillatorSimulation(
            comm, dims, oscs, dt=0.01, kernel_cache=True, memory=mem
        )
        assert cached.use_kernel_cache
        t_stream = _best_of(streaming.advance, 5)
        t_cached = _best_of(cached.advance, 5)
        # Walk both to a common step and compare fields.
        while streaming.step < cached.step:
            streaming.advance()
        while cached.step < streaming.step:
            cached.advance()
        np.testing.assert_allclose(
            cached.field, streaming.field, rtol=1e-12, atol=1e-300
        )
        return t_stream, t_cached, mem.named("miniapp::kernel_cache")

    t_stream, t_cached, basis_bytes = run_spmd(1, prog)[0]
    speedup = t_stream / t_cached
    _record(
        "kernel_cache",
        {
            "grid": list(dims),
            "oscillators": len(oscs),
            "streaming_s_per_step": t_stream,
            "cached_s_per_step": t_cached,
            "speedup": speedup,
            "basis_bytes": basis_bytes,
        },
    )
    report(
        "perf_kernel_cache",
        "separable kernel cache, 64^3 x 3 oscillators",
        [
            f"streaming: {t_stream * 1e3:8.3f} ms/step",
            f"cached:    {t_cached * 1e3:8.3f} ms/step  ({speedup:.1f}x)",
            f"basis:     {basis_bytes / 2**20:.1f} MiB tracked",
        ],
    )
    assert basis_bytes == 64 * 64 * 64 * 3 * 8
    assert speedup >= 5.0, f"kernel cache speedup {speedup:.2f}x below 5x target"


# -- 2. parallel chunked PNG deflate ------------------------------------------

PNG_WORKERS = 4


def _frame_2048() -> np.ndarray:
    rng = np.random.default_rng(0)
    y, x = np.mgrid[0:2048, 0:2048]
    field = np.sin(x / 40.0) * np.cos(y / 25.0)
    field += 0.1 * rng.standard_normal((2048, 2048))
    return VIRIDIS.map(field)


def test_png_parallel_deflate_speedup(report):
    """Serial rank-0 encoder vs pigz-style chunked deflate, level 6.

    Acceptance target: >= 2x with 4 workers at the same compression level
    -- gated on actually having >= 4 CPUs; a 1-CPU container cannot win
    wall-clock from a thread pool, and the honest number is recorded.
    """
    frame = _frame_2048()
    level = 6
    t_serial = _best_of(lambda: encode_png(frame, level), 3)
    t_parallel = _best_of(
        lambda: encode_png(frame, level, workers=PNG_WORKERS), 3
    )
    serial_blob = encode_png(frame, level)
    parallel_blob = encode_png(frame, level, workers=PNG_WORKERS)
    # Both paths must decode to identical pixels (stitched zlib stream).
    assert np.array_equal(decode_png(parallel_blob), decode_png(serial_blob))
    speedup = t_serial / t_parallel
    cpus = _cpus()
    _record(
        "png_parallel_deflate",
        {
            "image": [2048, 2048, 3],
            "compression_level": level,
            "workers": PNG_WORKERS,
            "serial_s": t_serial,
            "parallel_s": t_parallel,
            "speedup": speedup,
            "serial_bytes": len(serial_blob),
            "parallel_bytes": len(parallel_blob),
            "size_overhead": len(parallel_blob) / len(serial_blob) - 1.0,
            "target_speedup": 2.0,
            "target_gated_on_cpus": 4,
        },
    )
    report(
        "perf_png_deflate",
        f"PNG deflate 2048x2048 RGB level {level} ({cpus} CPUs)",
        [
            f"serial:   {t_serial * 1e3:8.1f} ms  {len(serial_blob) / 1024:9.1f} KiB",
            f"{PNG_WORKERS} workers: {t_parallel * 1e3:8.1f} ms  "
            f"{len(parallel_blob) / 1024:9.1f} KiB  ({speedup:.2f}x)",
        ],
    )
    # Chunking + zdict priming must cost < 2% size at any core count.
    assert len(parallel_blob) < 1.02 * len(serial_blob)
    if cpus >= 4:
        assert speedup >= 2.0, f"parallel deflate {speedup:.2f}x below 2x target"
    elif cpus >= 2:
        assert speedup >= 1.2, f"parallel deflate {speedup:.2f}x on {cpus} CPUs"
    else:
        # Single CPU: the pool serializes; only bound the chunking overhead.
        assert speedup >= 0.5, f"chunked deflate overhead too high: {speedup:.2f}x"


# -- 3. zero-alloc compositing ------------------------------------------------


def test_compositing_zero_alloc(report):
    """In-place composite + pooled framebuffers vs the allocating path."""
    h, w = 1080, 1920
    rng = np.random.default_rng(2)
    front = blank_image(w, h)
    front.rgb[: h // 2] = rng.integers(0, 256, (h // 2, w, 3), dtype=np.uint8)
    front.alpha[: h // 2] = 255
    back = blank_image(w, h)
    back.rgb[h // 4 :] = rng.integers(0, 256, (3 * h // 4, w, 3), dtype=np.uint8)
    back.alpha[h // 4 :] = 255

    t_alloc = _best_of(lambda: composite_over(front, back), 5)
    scratch = back.copy()
    t_inplace = _best_of(lambda: composite_over_into(front, scratch, out=scratch), 5)
    op_speedup = t_alloc / t_inplace

    # Pooled binary swap across 8 simulated ranks, repeated frames: after
    # the first frame the pool must serve every acquire from reuse.
    frames = 4

    def prog(comm):
        pool = FramebufferPool()
        part = blank_image(512, 512)
        part.alpha[comm.rank :: comm.size] = 255
        t0 = time.perf_counter()
        for _ in range(frames):
            final = binary_swap(comm, part, pool=pool)
            if final is not None:
                pool.release(final)
        return time.perf_counter() - t0, pool.hits, pool.misses

    results = run_spmd(8, prog)
    t_swap = max(r[0] for r in results) / frames
    root_hits, root_misses = results[0][1], results[0][2]
    # Only the root stitches; it must allocate exactly one framebuffer.
    assert (root_hits, root_misses) == (frames - 1, 1)
    assert all(r[1] == r[2] == 0 for r in results[1:])

    _record(
        "compositing",
        {
            "image": [h, w],
            "composite_over_s": t_alloc,
            "composite_over_into_s": t_inplace,
            "inplace_speedup": op_speedup,
            "binary_swap_pooled_s_per_frame": t_swap,
            "pool_misses_per_4_frames": root_misses,
        },
    )
    report(
        "perf_compositing",
        "compositing 1920x1080 / pooled binary swap 512^2 x 8 ranks",
        [
            f"composite_over:      {t_alloc * 1e3:7.2f} ms (allocating)",
            f"composite_over_into: {t_inplace * 1e3:7.2f} ms ({op_speedup:.2f}x)",
            f"binary_swap pooled:  {t_swap * 1e3:7.2f} ms/frame, "
            f"{root_misses} alloc in {frames} frames",
        ],
    )
    # In-place wins by skipping the allocating np.where/astype pipeline.
    assert op_speedup >= 1.0


# -- 4. process-backend weak scaling -------------------------------------------

WEAK_SHAPE = (256, 256)
WEAK_ITERS = 36


def _weak_scaling_work(comm):
    """Fixed per-rank numpy workload: weak scaling holds this constant as
    ranks are added.  The ufunc chain holds the GIL, so the thread backend
    serializes it while the process backend spreads it across cores.  The
    closing allreduce folds the full 512 KiB field (not a scalar), so the
    benchmark also exercises the pooled segment transport the process
    backend uses for bulk collectives."""
    rng = np.random.default_rng(1000 + comm.rank)
    field = rng.random(WEAK_SHAPE)
    base = rng.random(WEAK_SHAPE)
    for _ in range(WEAK_ITERS):
        field = np.sin(field) * 1.0001 + np.sqrt(np.abs(base + field))
        field -= np.tanh(field) * 0.5
    total = comm.allreduce(field, op=SUM)
    return field.tobytes(), total.tobytes()


def test_spmd_backend_weak_scaling(report):
    """Thread vs process backend on a GIL-bound per-rank workload.

    Acceptance target: the process backend wins >= 1.5x at 4 ranks -- gated
    on actually having >= 4 CPUs, since on fewer cores the ranks cannot run
    concurrently no matter which backend hosts them; the measured curve and
    CPU count are always recorded.  Results must be bit-identical either
    way (the equivalence contract extends to the benchmark workload).
    """
    rank_counts = (1, 2, 4)
    times: dict[str, dict[int, float]] = {"thread": {}, "process": {}}
    outputs: dict[str, list] = {}
    for backend in ("thread", "process"):
        for nranks in rank_counts:
            times[backend][nranks] = _best_of(
                lambda b=backend, n=nranks: run_spmd(
                    n, _weak_scaling_work, backend=b, timeout=120.0
                ),
                2,
            )
        outputs[backend] = run_spmd(4, _weak_scaling_work, backend=backend)
    for (fb, ft), (pb, pt) in zip(outputs["thread"], outputs["process"]):
        assert fb == pb
        assert ft == pt

    cpus = _cpus()
    speedup4 = times["thread"][4] / times["process"][4]
    _record(
        "spmd_backend_weak_scaling",
        {
            "per_rank_shape": list(WEAK_SHAPE),
            "iters": WEAK_ITERS,
            "rank_counts": list(rank_counts),
            "thread_s": {str(n): times["thread"][n] for n in rank_counts},
            "process_s": {str(n): times["process"][n] for n in rank_counts},
            "speedup_at_4_ranks": speedup4,
            "target_speedup": 1.5,
            "target_gated_on_cpus": 4,
        },
    )
    report(
        "perf_spmd_backends",
        f"weak scaling {WEAK_SHAPE[0]}x{WEAK_SHAPE[1]} x{WEAK_ITERS} iters/rank"
        f" ({cpus} CPUs)",
        [
            f"{n} ranks:  thread {times['thread'][n] * 1e3:8.1f} ms"
            f"   process {times['process'][n] * 1e3:8.1f} ms"
            f"   ({times['thread'][n] / times['process'][n]:.2f}x)"
            for n in rank_counts
        ],
    )
    if cpus >= 4:
        assert speedup4 >= 1.5, (
            f"process backend {speedup4:.2f}x at 4 ranks below 1.5x target"
        )
    elif cpus >= 2:
        assert speedup4 >= 1.1, f"process backend {speedup4:.2f}x on {cpus} CPUs"
    else:
        # Single CPU: no concurrency to win; only bound the process-launch
        # and pipe-transport overhead on a compute-dominated job.
        assert speedup4 >= 0.5, f"process overhead too high: {speedup4:.2f}x"


# -- 5. pooled shared-memory collectives ---------------------------------------

SHM_FIELD = (256, 256)  # 512 KiB of float64, 8x the 64 KiB pool threshold
SHM_RANKS = 4
SHM_STEPS = 6


def _shm_collective_work(comm):
    """Collective-dominated step loop: every step allreduces and allgathers
    the full 512 KiB field.  With pooling each contribution is one memcpy
    into a ring slot; with ``REPRO_SPMD_SHM_THRESHOLD=0`` every collective
    pickles the array once per peer through the pipe transport."""
    rng = np.random.default_rng(300 + comm.rank)
    field = rng.random(SHM_FIELD)
    for _ in range(SHM_STEPS):
        folded = comm.allreduce(field, op=SUM)
        rows = comm.allgather(field)
        field = folded / comm.size + rows[(comm.rank + 1) % comm.size] * 1e-3
    return field.tobytes()


def test_shm_collectives_speedup(report):
    """Pooled segment collectives vs forced pickled envelopes.

    Both runs use the process backend; only the transport differs, so the
    measured gap is pure serialization cost.  Results must be bit-identical
    (the transport-equivalence contract).  Unlike the backend-concurrency
    benchmarks, pooling wins by *not copying*, so it should pay off at any
    CPU count; the >= 1.5x target is still gated on >= 4 CPUs because the
    pickled baseline degrades (favorably for the ratio) under contention.
    """
    times: dict[str, float] = {}
    outputs: dict[str, list] = {}
    previous = os.environ.get("REPRO_SPMD_SHM_THRESHOLD")
    try:
        for mode, threshold in (("shm", None), ("pickled", "0")):
            if threshold is None:
                os.environ.pop("REPRO_SPMD_SHM_THRESHOLD", None)
            else:
                os.environ["REPRO_SPMD_SHM_THRESHOLD"] = threshold
            run = lambda: run_spmd(  # noqa: E731
                SHM_RANKS, _shm_collective_work, backend="process", timeout=120.0
            )
            times[mode] = _best_of(run, 3)
            outputs[mode] = run()
    finally:
        if previous is None:
            os.environ.pop("REPRO_SPMD_SHM_THRESHOLD", None)
        else:
            os.environ["REPRO_SPMD_SHM_THRESHOLD"] = previous
    assert outputs["shm"] == outputs["pickled"]

    cpus = _cpus()
    speedup = times["pickled"] / times["shm"]
    _record(
        "shm_collectives",
        {
            "field": list(SHM_FIELD),
            "ranks": SHM_RANKS,
            "steps": SHM_STEPS,
            "collectives_per_step": ["allreduce", "allgather"],
            "pickled_s": times["pickled"],
            "shm_s": times["shm"],
            "speedup": speedup,
            "target_speedup": 1.5,
            "target_gated_on_cpus": 4,
        },
    )
    report(
        "perf_shm_collectives",
        f"512 KiB collectives x{SHM_STEPS} steps, {SHM_RANKS} ranks ({cpus} CPUs)",
        [
            f"pickled envelopes: {times['pickled'] * 1e3:8.1f} ms",
            f"pooled segments:   {times['shm'] * 1e3:8.1f} ms  ({speedup:.2f}x)",
        ],
    )
    if cpus >= 4:
        assert speedup >= 1.5, f"shm collectives {speedup:.2f}x below 1.5x target"
    else:
        # Fewer cores shrink the gap (the pickled baseline's copies run
        # unconcurrently too) but pooling must never *lose*  badly.
        assert speedup >= 0.8, f"shm collectives regressed: {speedup:.2f}x"


# -- 6. PNG codec pool ----------------------------------------------------------


def test_codec_pool_speedup(report):
    """Serial encoder vs the persistent process codec pool, level 6.

    The thread codec is bounded by the GIL held during filtering and the
    zlib dispatch loop; the process pool deflates bands truly concurrently
    (bands staged through one shared-memory segment).  Thread and process
    codecs band identically, so their output must be byte-identical; the
    2x target needs real cores and is gated on >= 4 CPUs.
    """
    frame = _frame_2048()
    level = 6
    serial_blob = encode_png(frame, level, codec="serial")
    thread_blob = encode_png(frame, level, workers=PNG_WORKERS, codec="thread")
    process_blob = encode_png(frame, level, workers=PNG_WORKERS, codec="process")
    assert thread_blob == process_blob
    assert np.array_equal(decode_png(process_blob), decode_png(serial_blob))

    t_serial = _best_of(lambda: encode_png(frame, level, codec="serial"), 3)
    t_thread = _best_of(
        lambda: encode_png(frame, level, workers=PNG_WORKERS, codec="thread"), 3
    )
    # The pool is warm (created by the byte-identity check above), so this
    # times steady-state encodes, not executor spawn.
    t_process = _best_of(
        lambda: encode_png(frame, level, workers=PNG_WORKERS, codec="process"), 3
    )

    cpus = _cpus()
    speedup = t_serial / t_process
    _record(
        "codec_pool",
        {
            "image": [2048, 2048, 3],
            "compression_level": level,
            "workers": PNG_WORKERS,
            "serial_s": t_serial,
            "thread_s": t_thread,
            "process_s": t_process,
            "speedup": speedup,
            "thread_speedup": t_serial / t_thread,
            "target_speedup": 2.0,
            "target_gated_on_cpus": 4,
        },
    )
    report(
        "perf_codec_pool",
        f"PNG 2048x2048 RGB level {level}, {PNG_WORKERS} workers ({cpus} CPUs)",
        [
            f"serial:       {t_serial * 1e3:8.1f} ms",
            f"thread codec: {t_thread * 1e3:8.1f} ms  ({t_serial / t_thread:.2f}x)",
            f"process pool: {t_process * 1e3:8.1f} ms  ({speedup:.2f}x)",
        ],
    )
    if cpus >= 4:
        assert speedup >= 2.0, f"codec pool {speedup:.2f}x below 2x target"
    elif cpus >= 2:
        assert speedup >= 1.1, f"codec pool {speedup:.2f}x on {cpus} CPUs"
    else:
        # Single CPU: band staging + IPC overhead with zero concurrency to
        # recover it; bound the overhead only.
        assert speedup >= 0.3, f"codec pool overhead too high: {speedup:.2f}x"


# -- 7. nbody particle step throughput ----------------------------------------


def test_nbody_step_throughput(report):
    """Leapfrog particle-mesh step cost: migrate + int deposit + FFT solve.

    The nbody miniapp trades raw speed for bit-exactness (the fixed-point
    deposit quantizes every CIC contribution so rank decomposition cannot
    reorder the sums).  This records what that costs: steps/s and
    particle-steps/s for a single-rank step loop at a production-shaped
    grid, floored in ``floors.gates`` so a refactor cannot quietly turn
    the deposit into a per-particle Python loop.
    """
    from repro.apps.nbody import NBodySimulation

    grid, n_particles, steps = 16, 4096, 5

    def _loop():
        def prog(comm):
            sim = NBodySimulation(
                comm, grid=grid, n_particles=n_particles, seed=11,
                velocity_scale=0.25,
            )
            sim.run(steps)
            return sim.migrated_out

        return run_spmd(1, prog, backend="thread", timeout=120.0)

    migrated = _loop()[0]  # warm numpy/FFT caches before timing
    t = _best_of(_loop, 3)
    steps_per_s = steps / t
    _record(
        "nbody_step",
        {
            "grid": [grid, grid, grid],
            "n_particles": n_particles,
            "steps": steps,
            "wall_s": t,
            "steps_per_s": steps_per_s,
            "particle_steps_per_s": steps_per_s * n_particles,
            "migrated_out": migrated,
        },
    )
    report(
        "perf_nbody_step",
        f"nbody {grid}^3 grid, {n_particles} particles, {steps} steps",
        [
            f"wall:            {t * 1e3:8.1f} ms",
            f"steps/s:         {steps_per_s:8.1f}",
            f"particle-steps/s:{steps_per_s * n_particles:10.0f}",
        ],
    )
    # Vectorized deposit + FFT solve runs tens of steps/s even on one CPU;
    # a per-particle Python loop would be two orders of magnitude slower.
    assert steps_per_s >= 2.0, f"nbody step rate collapsed: {steps_per_s:.2f}/s"
