"""Fig. 10: baseline vs baseline+per-step writes.

Paper claims: at 1K the write "has little impact"; at 6K writes take ~4x
the simulation; at 45K ~20x (9 s/step for 123 GB).

Native part: benchmark the real file-per-process write path against the
simulation step.  Modeled part: the per-phase bars at the three scales.
"""

from repro.core import Bridge
from repro.data import Association
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.perf.miniapp_model import MiniappConfig, MiniappModel
from repro.storage import write_timestep
from repro.util import TimerRegistry

DIMS = (20, 20, 20)
STEPS = 3


def _run_with_writes(tmpdir):
    def prog(comm):
        timers = TimerRegistry()
        sim = OscillatorSimulation(comm, DIMS, default_oscillators(), timers=timers)
        adaptor = sim.make_data_adaptor()
        for _ in range(STEPS):
            sim.advance()
            with timers.time("io::write"):
                mesh = adaptor.get_mesh()
                mesh.add_array(
                    Association.POINT, adaptor.get_array(Association.POINT, "data")
                )
                write_timestep(comm, tmpdir, sim.step, sim.time, mesh, "data")
            adaptor.release_data()
        return (
            timers.total("simulation::advance") / STEPS,
            timers.total("io::write") / STEPS,
        )

    return run_spmd(4, prog)


def test_fig10_native_write_cost(benchmark, tmp_path):
    out = benchmark.pedantic(
        lambda: _run_with_writes(str(tmp_path / "w")), rounds=2, iterations=1
    )
    sim_t = max(s for s, _ in out)
    write_t = max(w for _, w in out)
    assert write_t > 0 and sim_t > 0


def test_fig10_modeled_series(benchmark, report):
    def series():
        rows = []
        for scale in ("1K", "6K", "45K"):
            m = MiniappModel(MiniappConfig.at_scale(scale))
            b = m.baseline_with_writes()
            rows.append(
                (
                    scale,
                    b.sim_initialize,
                    b.sim_per_step,
                    b.write_per_step,
                    b.finalize,
                    b.write_per_step / b.sim_per_step,
                )
            )
        return rows

    rows = benchmark(series)
    report(
        "fig10_write_costs",
        f"{'scale':<5}{'init(s)':>9}{'sim/step(s)':>12}{'write/step(s)':>14}"
        f"{'final(s)':>9}{'write/sim':>10}",
        [
            f"{s:<5}{i:>9.3f}{sim:>12.3f}{w:>14.3f}{f:>9.3f}{r:>10.1f}"
            for s, i, sim, w, f, r in rows
        ],
    )
    ratios = {s: r for s, _, _, _, _, r in rows}
    assert ratios["1K"] < 1.0
    assert 2.0 < ratios["6K"] < 8.0
    assert 12.0 < ratios["45K"] < 30.0
