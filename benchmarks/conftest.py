"""Shared benchmark fixtures.

Every benchmark file regenerates one of the paper's tables or figures:

- a *native* part exercises the real code on the thread-backed MPI runtime
  (timed with pytest-benchmark), and
- a *modeled* part replays the experiment at paper scale through
  :mod:`repro.perf` and emits the same rows/series the paper reports.

Rows are printed and also written under ``benchmarks/out/`` so the series
survive pytest's output capture; run with ``-s`` to see them inline.
"""

from __future__ import annotations

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture
def report():
    """Emit one experiment's rows: print + persist to benchmarks/out/."""

    def _report(name: str, header: str, rows: list[str]) -> str:
        os.makedirs(OUT_DIR, exist_ok=True)
        lines = [header, "-" * len(header), *rows]
        text = "\n".join(lines)
        print(f"\n=== {name} ===\n{text}")
        path = os.path.join(OUT_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        return path

    return _report
