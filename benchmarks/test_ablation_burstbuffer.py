"""Ablation: burst-buffer staging vs direct filesystem writes.

The paper's conclusion flags "burst buffers on Cori, to achieve accelerated
staging operations" as the architectural direction for in situ/post hoc
balance.  This ablation models per-step write cost with and without the
burst buffer at the three miniapp scales, including the regime where the
drain cannot keep up with the step cadence.
"""

from repro.perf.iomodel import IOModel
from repro.perf.machine import CORI
from repro.perf.miniapp_model import MiniappConfig, MiniappModel


def test_ablation_burst_buffer(benchmark, report):
    io = IOModel(CORI)

    def series():
        rows = []
        for scale in ("1K", "6K", "45K"):
            m = MiniappModel(MiniappConfig.at_scale(scale))
            direct = io.file_per_process_write(m.cfg.cores, m.cfg.step_bytes)
            bb, keeps_up = io.burst_buffer_write(
                m.cfg.cores, m.cfg.step_bytes, step_interval=m.sim_step
            )
            rows.append((scale, direct, bb, keeps_up, direct / bb))
        return rows

    rows = benchmark(series)
    report(
        "ablation_burstbuffer",
        f"{'scale':<5}{'direct(s)':>11}{'burst buffer(s)':>16}{'drains?':>9}{'speedup':>9}",
        [
            f"{s:<5}{d:>11.3f}{b:>16.4f}{str(k):>9}{sp:>9.1f}"
            for s, d, b, k, sp in rows
        ],
    )
    by = {s: (d, b, k, sp) for s, d, b, k, sp in rows}
    # The burst buffer absorbs every scale's step at ~100x under the direct
    # cost (no per-file metadata storm).
    assert all(b < d for _, (d, b, _, _) in by.items())
    assert all(sp > 50 for _, (_, _, _, sp) in by.items())
    # At the miniapp's ~0.4 s cadence the drain keeps up everywhere ...
    assert all(k for _, (_, _, k, _) in by.items())
    # ... but a faster-stepping producer saturates the PFS drain: 123 GB
    # arriving every 0.05 s cannot drain at 700 GB/s, and the cost reverts
    # toward the filesystem-bound rate.
    m45 = MiniappModel(MiniappConfig.at_scale("45K"))
    saturated, keeps_up = io.burst_buffer_write(
        m45.cfg.cores, m45.cfg.step_bytes, step_interval=0.05
    )
    assert keeps_up is False
    assert saturated > by["45K"][1]


def test_ablation_burst_buffer_validation(benchmark):
    io = IOModel(CORI)

    def check():
        try:
            io.burst_buffer_write(812, 2e9, step_interval=0.0)
        except ValueError:
            return True
        return False

    assert benchmark(check)
