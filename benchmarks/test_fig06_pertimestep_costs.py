"""Fig. 6: per-timestep costs (simulation vs analysis) per configuration.

Paper claims: the simulation phase weak-scales nearly perfectly; slice
configurations' analysis time is compositing-dominated and grows with
concurrency, with Catalyst (binary swap, 1920x1080) and Libsim
(direct-send family, 1600x1600) scaling differently.
"""

import tempfile

from repro.analysis import AutocorrelationAnalysis, HistogramAnalysis
from repro.analysis.slice_ import SlicePlane
from repro.core import Bridge
from repro.infrastructure import CatalystAdaptor, LibsimAdaptor, write_session_file
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.perf.miniapp_model import MiniappConfig, MiniappModel
from repro.util import TimerRegistry

DIMS = (16, 16, 16)
STEPS = 3

_dir = tempfile.mkdtemp(prefix="fig06_")
SESSION = f"{_dir}/session.json"
write_session_file(SESSION, [{"type": "pseudocolor_slice", "index": 8}], (64, 64))


def _per_step(name):
    factories = {
        "histogram": lambda: HistogramAnalysis(bins=32),
        "autocorrelation": lambda: AutocorrelationAnalysis(window=4),
        "catalyst-slice": lambda: CatalystAdaptor(SlicePlane(2, 8), resolution=(64, 64)),
        "libsim-slice": lambda: LibsimAdaptor(session_file=SESSION),
    }

    def prog(comm):
        timers = TimerRegistry()
        sim = OscillatorSimulation(comm, DIMS, default_oscillators(), timers=timers)
        bridge = Bridge(comm, sim.make_data_adaptor(), timers=timers)
        bridge.add_analysis(factories[name]())
        bridge.initialize()
        sim.run(STEPS, bridge)
        bridge.finalize()
        return (
            timers.total("simulation::advance") / STEPS,
            timers.total("sensei::execute") / STEPS,
        )

    return run_spmd(4, prog)


def test_fig06_native_sim_vs_analysis(benchmark):
    out = benchmark.pedantic(
        lambda: {n: _per_step(n) for n in ("histogram", "catalyst-slice")},
        rounds=1,
        iterations=1,
    )
    # Rendering + PNG costs more per step than histogram reductions.
    cat = max(a for _, a in out["catalyst-slice"])
    hist = max(a for _, a in out["histogram"])
    assert cat > hist


def test_fig06_modeled_series(benchmark, report):
    def series():
        rows = []
        for scale in ("1K", "6K", "45K"):
            m = MiniappModel(MiniappConfig.at_scale(scale))
            for b in m.all_insitu_configs():
                rows.append((scale, b.config_name, b.sim_per_step, b.analysis_per_step))
        return rows

    rows = benchmark(series)
    report(
        "fig06_pertimestep_costs",
        f"{'scale':<5}{'configuration':<17}{'sim/step(s)':>12}{'analysis/step(s)':>17}",
        [f"{s:<5}{n:<17}{sim:>12.4f}{ana:>17.4f}" for s, n, sim, ana in rows],
    )
    by = {(s, n): (sim, ana) for s, n, sim, ana in rows}
    # Near-perfect weak scaling of the simulation phase (1K == 6K work/core).
    assert abs(by[("1K", "baseline")][0] - by[("6K", "baseline")][0]) < 1e-9
    # Slice analyses grow with concurrency; histogram stays ~flat.
    assert by[("45K", "catalyst-slice")][1] > by[("1K", "catalyst-slice")][1]
    # Catalyst vs Libsim composite at different rates across scale.
    cat_growth = by[("45K", "catalyst-slice")][1] / by[("1K", "catalyst-slice")][1]
    lib_growth = by[("45K", "libsim-slice")][1] / by[("1K", "libsim-slice")][1]
    assert cat_growth != lib_growth
