"""Ablation: PNG zlib compression level (the Table 2 bottleneck knob).

"We determined that the ZLIB compression time in generating the PNG file
was the culprit" -- skipping compression took the 8-process toy problem
from 4.03 s to 0.518 s per step.  This ablation sweeps the real encoder's
compression level over a rendered frame and reports time and size, plus
the modeled effect on the PHASTA IS2 run.
"""

import numpy as np

from repro.perf.apps_model import PHASTA_RUNS, phasta_table2
from repro.render import VIRIDIS, encode_png

H, W = 362, 1450  # half the IS2/IS3 image, to keep native sweeps quick


def _frame():
    """A realistic pseudocolored frame (smooth field + noise)."""
    rng = np.random.default_rng(0)
    y, x = np.mgrid[0:H, 0:W]
    field = np.sin(x / 40.0) * np.cos(y / 25.0) + 0.1 * rng.standard_normal((H, W))
    return VIRIDIS.map(field)


FRAME = _frame()


def test_ablation_native_level0(benchmark):
    blob = benchmark(lambda: encode_png(FRAME, 0))
    assert len(blob) > FRAME.nbytes  # stored, not compressed


def test_ablation_native_level6(benchmark):
    blob = benchmark(lambda: encode_png(FRAME, 6))
    assert len(blob) < FRAME.nbytes


def test_ablation_native_level9(benchmark):
    benchmark(lambda: encode_png(FRAME, 9))


def test_ablation_sweep_and_model(benchmark, report):
    def sweep():
        import time

        rows = []
        for level in (0, 1, 3, 6, 9):
            t0 = time.perf_counter()
            blob = encode_png(FRAME, level)
            rows.append((level, time.perf_counter() - t0, len(blob)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    with_c = phasta_table2(PHASTA_RUNS["IS2"], compression=True)
    without = phasta_table2(PHASTA_RUNS["IS2"], compression=False)
    out = [
        f"level {lvl}: {t * 1e3:8.2f} ms  {size / 1024:9.1f} KiB"
        for lvl, t, size in rows
    ]
    out.append(
        f"modeled PHASTA IS2 per-step: {with_c.insitu_per_step:.2f}s with zlib "
        f"-> {without.insitu_per_step:.2f}s without (paper: 4.03 -> 0.518 on toy)"
    )
    report("ablation_png", "PNG compression-level sweep (1450x362 RGB)", out)
    # Level 0 is fastest and largest; higher levels trade time for size.
    times = {lvl: t for lvl, t, _ in rows}
    sizes = {lvl: s for lvl, _, s in rows}
    assert times[0] < times[6]
    assert sizes[9] <= sizes[1] <= sizes[0]
    assert with_c.insitu_per_step > 2.5 * without.insitu_per_step
