"""Fig. 15: AVF-LESLIE strong scaling with SENSEI/Libsim in situ (Titan).

Paper claims: good solver scaling to 16K cores with degradation beyond;
Libsim visualization adds an average of 1-1.5 s per step over all core
counts; analysis time exceeds solver time at high concurrency.
"""

import tempfile

from repro.apps.avf_leslie_proxy import AVFLeslieSimulation
from repro.core import Bridge
from repro.infrastructure import LibsimAdaptor, write_session_file
from repro.mpi import run_spmd
from repro.perf.apps_model import AVFRun, avf_strong_scaling

_dir = tempfile.mkdtemp(prefix="fig15_")
SESSION = f"{_dir}/session.json"
write_session_file(
    SESSION,
    [
        {"type": "isosurface", "isovalues": [1.0, 3.0, 6.0]},
        {"type": "pseudocolor_slice", "axis": 0, "index": 4},
        {"type": "pseudocolor_slice", "axis": 1, "index": 4},
        {"type": "pseudocolor_slice", "axis": 2, "index": 2},
    ],
    resolution=(64, 64),
)


def _native_run(nranks):
    def prog(comm):
        sim = AVFLeslieSimulation(comm, global_dims=(16, 12, 6))
        bridge = Bridge(comm, sim.make_data_adaptor(), timers=sim.timers)
        bridge.add_analysis(
            LibsimAdaptor(session_file=SESSION, array="vorticity", frequency=5)
        )
        bridge.initialize()
        sim.run(5, bridge)
        bridge.finalize()
        return sim.timers.total("avf_timestep"), sim.timers.total("avf_insitu::analyze")

    return run_spmd(nranks, prog)


def test_fig15_native_solver_plus_insitu(benchmark):
    out = benchmark.pedantic(lambda: _native_run(4), rounds=2, iterations=1)
    solver, insitu = out[0]
    assert solver > 0 and insitu > 0


def test_fig15_modeled_series(benchmark, report):
    core_counts = (8_192, 16_384, 32_768, 65_536, 131_072)

    def series():
        return {c: avf_strong_scaling(AVFRun(cores=c)) for c in core_counts}

    out = benchmark(series)
    report(
        "fig15_avf_scaling",
        f"{'cores':>8}{'solver/step(s)':>15}{'libsim/invoc(s)':>16}"
        f"{'avg added/step(s)':>18}",
        [
            f"{c:>8}{r.solver_per_step:>15.2f}{r.libsim_per_invocation:>16.2f}"
            f"{r.avg_added_per_step:>18.2f}"
            for c, r in out.items()
        ],
    )
    # Solver strong-scales, with degradation beyond 16K.
    assert out[16_384].solver_per_step < out[8_192].solver_per_step
    ideal = out[16_384].solver_per_step / 8
    assert out[131_072].solver_per_step > ideal * 1.1
    # Libsim adds 1-1.5 s per step on average, everywhere.
    for r in out.values():
        assert 1.0 < r.libsim_per_invocation / 5 < 2.0
    # Analysis exceeds solver at high concurrency.
    assert out[65_536].libsim_per_invocation > out[65_536].solver_per_step
