"""Table 2: PHASTA in situ execution times (IS1/IS2/IS3 on Mira).

Paper values: IS1 1.76 / 1.40 / 1051 / 8.2%; IS2 1.07 / 5.24 / 962 / 33%;
IS3 1.93 / 5.62 / 653 / 13% -- and the finding that image size (serial
rank-0 PNG zlib), not problem size, drives the per-step in situ cost.

Native part: benchmark the PHASTA proxy's full in situ pipeline at the two
image sizes, reproducing the image-size effect with real zlib.  Modeled
part: the Table 2 rows at the paper's 262K/1M-rank configurations.
"""

from repro.apps.phasta_proxy import PhastaSimulation, PhastaSliceRender
from repro.core import Bridge
from repro.mpi import run_spmd
from repro.perf.apps_model import PHASTA_RUNS, phasta_table2


def _insitu_step(resolution, compression_level=6):
    def prog(comm):
        sim = PhastaSimulation(comm, (8, 6, 6))
        bridge = Bridge(comm, sim.make_data_adaptor())
        sl = PhastaSliceRender(
            resolution=resolution, compression_level=compression_level
        )
        bridge.add_analysis(sl)
        bridge.initialize()
        sim.advance()
        bridge.execute(sim.time, sim.step)
        bridge.finalize()

    run_spmd(2, prog)


def test_table2_native_small_image(benchmark):
    benchmark.pedantic(lambda: _insitu_step((200, 50)), rounds=3, iterations=1)


def test_table2_native_large_image(benchmark):
    benchmark.pedantic(lambda: _insitu_step((725, 182)), rounds=3, iterations=1)


def test_table2_modeled(benchmark, report):
    def series():
        return {name: phasta_table2(run) for name, run in PHASTA_RUNS.items()}

    out = benchmark(series)
    report(
        "table2_phasta",
        f"{'run':<5}{'onetime(s)':>11}{'insitu/step(s)':>15}{'total(s)':>10}"
        f"{'% in situ':>10}{'png(s)':>8}",
        [
            f"{name:<5}{r.onetime_cost:>11.2f}{r.insitu_per_step:>15.2f}"
            f"{r.total_time:>10.0f}{r.percent_insitu:>10.1f}{r.png_time:>8.2f}"
            for name, r in out.items()
        ],
    )
    paper_pct = {"IS1": 8.2, "IS2": 33.0, "IS3": 13.0}
    for name, r in out.items():
        assert paper_pct[name] * 0.6 < r.percent_insitu < paper_pct[name] * 1.4
    # Image size, not problem size, drives the cost.
    assert out["IS2"].insitu_per_step > 3 * out["IS1"].insitu_per_step
    assert abs(out["IS3"].insitu_per_step - out["IS2"].insitu_per_step) < 0.5
