"""Ablation: binary-swap vs direct-send compositing.

The two slice infrastructures composite differently (Sec. 4.1.3); this
ablation isolates the algorithms on identical inputs -- natively at small
rank counts and in the model across the paper's scales -- showing where the
crossover lies and why binary swap wins at high concurrency.
"""

from repro.mpi import run_spmd
from repro.perf.machine import CORI
from repro.perf.network import NetworkModel
from repro.render import binary_swap, blank_image, direct_send


def _partial(comm, width=128, height=128):
    img = blank_image(width, height)
    h0 = height * comm.rank // comm.size
    h1 = height * (comm.rank + 1) // comm.size
    img.rgb[h0:h1] = comm.rank + 1
    img.alpha[h0:h1] = 255
    return img


def test_ablation_native_binary_swap(benchmark):
    def run():
        run_spmd(8, lambda comm: binary_swap(comm, _partial(comm)))

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_ablation_native_direct_send(benchmark):
    def run():
        run_spmd(8, lambda comm: direct_send(comm, _partial(comm)))

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_ablation_modeled_crossover(benchmark, report):
    net = NetworkModel(CORI)
    image = 1920 * 1080 * 4

    def series():
        return [
            (p, net.binary_swap(p, image), net.direct_send(p, image))
            for p in (4, 16, 64, 256, 1024, 6496, 45440)
        ]

    rows = benchmark(series)
    report(
        "ablation_compositing",
        f"{'ranks':>7}{'binary swap(s)':>15}{'direct send(s)':>15}{'ratio':>8}",
        [f"{p:>7}{bs:>15.4f}{ds:>15.4f}{ds / bs:>8.1f}" for p, bs, ds in rows],
    )
    # Binary swap's advantage grows without bound in P.
    ratios = [ds / bs for _, bs, ds in rows]
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 50
