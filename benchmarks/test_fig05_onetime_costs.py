"""Fig. 5: one-time costs (simulation init, analysis init, finalize).

Paper claims: simulation initialization negligible; analysis initialization
minimal *except* Libsim-slice's per-rank configuration checks (~3.5 s at
45K); only the autocorrelation finalize (the global top-k reduction) is
non-negligible.

Native part: benchmark bridge initialize/finalize for every configuration.
Modeled part: the per-configuration one-time cost rows at all three scales.
"""

import tempfile

from repro.analysis import AutocorrelationAnalysis, HistogramAnalysis
from repro.analysis.slice_ import SlicePlane
from repro.core import Bridge
from repro.infrastructure import CatalystAdaptor, LibsimAdaptor, write_session_file
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.perf.miniapp_model import MiniappConfig, MiniappModel
from repro.util import TimerRegistry

DIMS = (12, 12, 12)

_session_dir = tempfile.mkdtemp(prefix="fig05_")
SESSION = f"{_session_dir}/session.json"
write_session_file(SESSION, [{"type": "pseudocolor_slice", "index": 6}], (64, 64))


def _factories():
    return {
        "baseline": lambda: None,
        "histogram": lambda: HistogramAnalysis(bins=32),
        "autocorrelation": lambda: AutocorrelationAnalysis(window=4),
        "catalyst-slice": lambda: CatalystAdaptor(
            SlicePlane(2, 6), resolution=(64, 64)
        ),
        "libsim-slice": lambda: LibsimAdaptor(session_file=SESSION),
    }


def _onetime(config_name):
    factory = _factories()[config_name]

    def prog(comm):
        timers = TimerRegistry()
        sim = OscillatorSimulation(
            comm, DIMS, default_oscillators(), timers=timers
        )
        bridge = Bridge(comm, sim.make_data_adaptor(), timers=timers)
        analysis = factory()
        if analysis is not None:
            bridge.add_analysis(analysis)
        bridge.initialize()
        sim.run(2, bridge)
        bridge.finalize()
        return (
            timers.total("simulation::initialize"),
            timers.total("sensei::initialize"),
            timers.total("sensei::finalize"),
        )

    return run_spmd(4, prog)


def test_fig05_native_all_configs(benchmark):
    def run_all():
        return {name: _onetime(name) for name in _factories()}

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # Autocorrelation is the only analysis with a non-trivial finalize.
    ac_fin = max(r[2] for r in out["autocorrelation"])
    base_fin = max(r[2] for r in out["baseline"])
    assert ac_fin >= base_fin


def test_fig05_modeled_series(benchmark, report):
    def series():
        rows = []
        for scale in ("1K", "6K", "45K"):
            m = MiniappModel(MiniappConfig.at_scale(scale))
            for b in m.all_insitu_configs():
                rows.append(
                    (scale, b.config_name, b.sim_initialize, b.analysis_initialize, b.finalize)
                )
        return rows

    rows = benchmark(series)
    report(
        "fig05_onetime_costs",
        f"{'scale':<5}{'configuration':<17}{'sim init(s)':>12}{'ana init(s)':>12}{'finalize(s)':>12}",
        [
            f"{s:<5}{n:<17}{si:>12.3f}{ai:>12.3f}{f:>12.3f}"
            for s, n, si, ai, f in rows
        ],
    )
    by = {(s, n): (si, ai, f) for s, n, si, ai, f in rows}
    # Libsim init grows to seconds at 45K; others stay small.
    assert by[("45K", "libsim-slice")][1] > 2.0
    assert by[("45K", "catalyst-slice")][1] < 1.0
    assert by[("45K", "autocorrelation")][2] > by[("45K", "histogram")][2]
