"""Ablation: lazy vs eager data-adaptor mapping.

"By providing an API that encourages lazy mapping ... the data adaptor
avoids any work to map simulation data to VTK data when not needed.  Thus
when no analysis is enabled, the SENSEI instrumentation overhead is almost
nonexistent" (Sec. 3.2).  This ablation runs the bridge with no enabled
analyses under both policies and counts/times the mapping work.
"""

from repro.core import Bridge
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd

DIMS = (24, 24, 24)
STEPS = 5


def _run(eager: bool):
    def prog(comm):
        sim = OscillatorSimulation(comm, DIMS, default_oscillators())
        adaptor = sim.make_data_adaptor(eager=eager)
        bridge = Bridge(comm, adaptor)  # no analyses enabled
        bridge.initialize()
        sim.run(STEPS, bridge)
        bridge.finalize()
        return adaptor.mesh_constructions, adaptor.array_mappings

    return run_spmd(2, prog)


def test_ablation_native_lazy(benchmark):
    out = benchmark.pedantic(lambda: _run(eager=False), rounds=3, iterations=1)
    # No analysis => the lazy adaptor never builds anything.
    assert out[0] == (0, 0)


def test_ablation_native_eager(benchmark, report):
    out = benchmark.pedantic(lambda: _run(eager=True), rounds=3, iterations=1)
    meshes, mappings = out[0]
    assert meshes >= 1
    assert mappings == STEPS  # one re-map per step, even though unused
    report(
        "ablation_lazy",
        "lazy vs eager adaptor mapping (no analyses enabled)",
        [
            f"lazy : 0 mesh constructions, 0 array mappings over {STEPS} steps",
            f"eager: {meshes} mesh constructions, {mappings} array mappings "
            "-- pure waste when nothing consumes them",
        ],
    )
