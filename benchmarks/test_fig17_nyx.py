"""Fig. 17: Nyx scaling with SENSEI in situ histogram and slice.

Paper claims: "the in situ analysis time is negligible compared to solution
time, both for the histogram and the slice at all concurrency levels";
plot-file writes cost 17/80/312 s, so skipped dumps amortize the in situ
instrumentation; histogram memory overhead ~2 MB/rank (the ghost array),
slice +200-300 MB.
"""

from repro.analysis import HistogramAnalysis
from repro.analysis.slice_ import SlicePlane
from repro.apps.nyx_proxy import NyxSimulation
from repro.core import Bridge
from repro.infrastructure.catalyst import CatalystAdaptor
from repro.mpi import run_spmd
from repro.perf.apps_model import NYX_RUNS, nyx_scaling
from repro.util import TimerRegistry


def _native_run():
    def prog(comm):
        timers = TimerRegistry()
        sim = NyxSimulation(comm, grid=16, timers=timers, gravity=4.0)
        bridge = Bridge(comm, sim.make_data_adaptor(), timers=timers)
        bridge.add_analysis(HistogramAnalysis(bins=16, array="density"))
        bridge.add_analysis(
            CatalystAdaptor(SlicePlane(2, 8), array="density", resolution=(48, 48))
        )
        bridge.initialize()
        sim.run(3, bridge)
        bridge.finalize()
        solver = sum(
            timers.total(p) for p in ("nyx::deposit", "nyx::poisson", "nyx::push", "nyx::migrate")
        )
        return solver, timers.total("sensei::execute")

    return run_spmd(2, prog)


def test_fig17_native_nyx_insitu(benchmark):
    out = benchmark.pedantic(_native_run, rounds=2, iterations=1)
    solver, analysis = out[0]
    assert solver > 0 and analysis > 0


def test_fig17_modeled_series(benchmark, report):
    def series():
        return {run.grid: nyx_scaling(run) for run in NYX_RUNS}

    out = benchmark(series)
    report(
        "fig17_nyx",
        f"{'grid':>6}{'cores':>8}{'solver/step(s)':>15}{'hist/step(s)':>13}"
        f"{'slice/step(s)':>14}{'plotfile(s)':>12}",
        [
            f"{g:>5}^3{r.cores:>8}{r.solver_per_step:>15.1f}"
            f"{r.histogram_per_step:>13.3f}{r.slice_per_step:>14.3f}"
            f"{r.plotfile_write:>12.0f}"
            for g, r in out.items()
        ],
    )
    for r in out.values():
        # Analysis negligible vs the solver, under a second per step.
        assert r.histogram_per_step < 1.0
        assert r.slice_per_step < 1.0
        assert r.solver_per_step > 50 * max(r.histogram_per_step, r.slice_per_step)
        # A skipped plot file pays for many analyzed steps.
        assert r.plotfile_write > 10 * (r.histogram_per_step + r.slice_per_step)
    # Memory narrative: ghost array ~2 MB/rank, slice ~250 MB.
    r = out[1024]
    assert r.ghost_bytes_per_rank == 2 * 1024 * 1024
    assert 200e6 < r.slice_extra_bytes < 320e6
