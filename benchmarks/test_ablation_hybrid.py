"""Ablation: flat-MPI vs hybrid MPI+threads analysis kernels.

The Nyx discussion (Sec. 4.2.3): "Typically Nyx simulations use 1-2 MPI
ranks per compute node and use OpenMP within a node.  For effective use in
simulations, in situ analysis must support hybrid MPI+OpenMP (or other
thread-based) execution models."  This ablation benchmarks the histogram
kernel flat vs thread-chunked, and asserts result equivalence is free.
"""

import numpy as np

from repro.analysis.histogram import local_histogram
from repro.analysis.hybrid import local_histogram_threaded

N = 2_000_000
VALUES = np.random.default_rng(0).standard_normal(N)
VMIN, VMAX = float(VALUES.min()), float(VALUES.max())


def test_ablation_flat_histogram(benchmark):
    counts = benchmark(lambda: local_histogram(VALUES, 64, VMIN, VMAX))
    assert counts.sum() == N


def test_ablation_hybrid_histogram_2(benchmark):
    counts = benchmark(lambda: local_histogram_threaded(VALUES, 64, VMIN, VMAX, 2))
    assert counts.sum() == N


def test_ablation_hybrid_histogram_4(benchmark, report):
    counts = benchmark(lambda: local_histogram_threaded(VALUES, 64, VMIN, VMAX, 4))
    assert counts.sum() == N
    flat = local_histogram(VALUES, 64, VMIN, VMAX)
    assert np.array_equal(counts, flat)  # bit-identical results
    report(
        "ablation_hybrid",
        "flat vs hybrid histogram kernel (2M values, 64 bins)",
        [
            "results are bit-identical at every thread count (integer counts commute)",
            "wall-clock effect depends on host core count; see the pytest-benchmark table",
        ],
    )
