"""Fig. 16: per-iteration SENSEI cost at 65K with Libsim every 5th step.

Paper claims: "the cost of generating the images via Libsim is in the range
of 7-8 seconds while the normal SENSEI overhead for the data adaptor is
less than 0.5 seconds" -- a 1-in-5 sawtooth; in situ buys 3-4x the temporal
resolution of writing volume data (~24 s/step) post hoc.
"""

import tempfile
import time

from repro.apps.avf_leslie_proxy import AVFLeslieSimulation
from repro.core import Bridge
from repro.infrastructure import LibsimAdaptor, write_session_file
from repro.mpi import run_spmd
from repro.perf.apps_model import AVFRun, avf_periteration_series, avf_strong_scaling

_dir = tempfile.mkdtemp(prefix="fig16_")
SESSION = f"{_dir}/session.json"
write_session_file(
    SESSION, [{"type": "isosurface", "isovalues": [1.0, 4.0]}], (64, 64)
)


def _native_sawtooth():
    def prog(comm):
        sim = AVFLeslieSimulation(comm, global_dims=(16, 12, 6))
        bridge = Bridge(comm, sim.make_data_adaptor())
        bridge.add_analysis(
            LibsimAdaptor(session_file=SESSION, array="vorticity", frequency=5)
        )
        bridge.initialize()
        series = []
        for _ in range(10):
            sim.advance()
            t0 = time.perf_counter()
            bridge.execute(sim.time, sim.step)
            series.append(time.perf_counter() - t0)
        bridge.finalize()
        return series

    return run_spmd(2, prog)[0]


def test_fig16_native_sawtooth(benchmark):
    import statistics

    series = benchmark.pedantic(_native_sawtooth, rounds=2, iterations=1)
    render_steps = [series[i] for i in (4, 9)]
    quiet_steps = [s for i, s in enumerate(series) if (i + 1) % 5 != 0]
    # Wall-clock on a shared host is noisy; compare central tendencies
    # (the sawtooth is an order-of-magnitude effect, not a marginal one).
    assert statistics.median(render_steps) > 3 * statistics.median(quiet_steps)


def test_fig16_modeled_series(benchmark, report):
    run = AVFRun(cores=65_536, steps=20)

    def series():
        return avf_periteration_series(run), avf_strong_scaling(run)

    per_iter, res = benchmark(series)
    rows = [
        f"step {i:>3}: {t:7.2f}s" + ("  <- Libsim" if i % 5 == 0 else "")
        for i, t in enumerate(per_iter, start=1)
    ]
    rows.append(
        f"post hoc volume write {res.posthoc_write_per_step:.1f}s/step => "
        f"{res.temporal_resolution_gain:.1f}x temporal-resolution gain in situ"
    )
    report("fig16_avf_periteration", "per-iteration SENSEI cost at 65K (s)", rows)
    expensive = [t for i, t in enumerate(per_iter, 1) if i % 5 == 0]
    cheap = [t for i, t in enumerate(per_iter, 1) if i % 5 != 0]
    assert all(6.5 < t < 9.5 for t in expensive)  # "7-8 seconds"
    assert all(t < 0.5 for t in cheap)  # "less than 0.5 seconds"
    assert 2.5 < res.temporal_resolution_gain < 4.5  # "3-4 times"
