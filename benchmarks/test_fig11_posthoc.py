"""Fig. 11: post hoc read/process/write at 10% of the writer cores.

Paper claims: reads dominate (up to 5-10x the miniapp's own runtime at
45K), with "significant variability in read times on the NERSC Lustre
system at scale"; the autocorrelation runs needed 2x the nodes for window
memory.

Native part: benchmark the real write-then-read-then-analyze pipeline.
Modeled part: the read/process/write stacks at 82/650/4545 reader cores,
with the variability band from repeated samples.
"""

import numpy as np

from repro.core import Bridge
from repro.data import Association
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.perf.iomodel import IOModel
from repro.perf.machine import CORI
from repro.perf.miniapp_model import MiniappConfig, MiniappModel
from repro.posthoc import run_posthoc_analysis
from repro.storage import write_timestep

DIMS = (16, 16, 16)
STEPS = 3


def _write_run(tmpdir):
    def prog(comm):
        sim = OscillatorSimulation(comm, DIMS, default_oscillators())
        ad = sim.make_data_adaptor()
        for _ in range(STEPS):
            sim.advance()
            mesh = ad.get_mesh()
            mesh.add_array(Association.POINT, ad.get_array(Association.POINT, "data"))
            write_timestep(comm, tmpdir, sim.step, sim.time, mesh, "data")
            ad.release_data()

    run_spmd(8, prog)


def _read_run(tmpdir, analysis):
    def prog(comm):
        return run_posthoc_analysis(
            comm, tmpdir, steps=list(range(1, STEPS + 1)), analysis=analysis,
            slice_index=8, resolution=(48, 48),
        )

    # 2 readers against 8 writers: the few-readers pattern.
    return run_spmd(2, prog)


def test_fig11_native_pipeline(benchmark, tmp_path):
    d = str(tmp_path / "run")
    _write_run(d)

    out = benchmark.pedantic(
        lambda: {a: _read_run(d, a) for a in ("histogram", "slice")},
        rounds=1,
        iterations=1,
    )
    for res in out.values():
        assert res[0].read_time > 0


def test_fig11_modeled_series(benchmark, report):
    def series():
        rows = []
        for scale in ("1K", "6K", "45K"):
            m = MiniappModel(MiniappConfig.at_scale(scale))
            for analysis in ("histogram", "autocorrelation", "slice"):
                ph = m.posthoc(analysis)
                rows.append(
                    (scale, analysis, ph["readers"], ph["read"], ph["process"], ph["write"])
                )
        return rows

    rows = benchmark(series)
    report(
        "fig11_posthoc",
        f"{'scale':<5}{'analysis':<17}{'readers':>8}{'read(s)':>10}"
        f"{'process(s)':>11}{'write(s)':>10}",
        [
            f"{s:<5}{a:<17}{r:>8}{rd:>10.1f}{p:>11.2f}{w:>10.2f}"
            for s, a, r, rd, p, w in rows
        ],
    )
    by = {(s, a): (r, rd, p, w) for s, a, r, rd, p, w in rows}
    assert by[("1K", "histogram")][0] == 81
    assert by[("45K", "histogram")][0] == 4544
    # Reads dominate processing at scale.
    assert by[("45K", "histogram")][1] > by[("45K", "histogram")][2]


def test_fig11_modeled_variability(benchmark, report):
    io = IOModel(CORI)

    def samples():
        return io.read_samples(4544, 45440, 123e9, n=30, seed=7)

    s = benchmark(samples)
    cov = float(s.std() / s.mean())
    report(
        "fig11_read_variability",
        "read-time variability at 45K (30 modeled samples)",
        [
            f"mean {s.mean():8.2f}s  min {s.min():8.2f}s  max {s.max():8.2f}s  "
            f"cov {cov:5.2f}"
        ],
    )
    assert cov > 0.2  # "significant variability"
