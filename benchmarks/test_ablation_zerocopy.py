"""Ablation: zero-copy vs deep-copy data mapping.

The paper's central design choice (Sec. 3.2): the enhanced VTK data model
maps simulation arrays "without additional memory copying".  This ablation
quantifies what the alternative costs -- per-step deep copies of every
mapped array -- in both time and memory, natively and at modeled scale.
"""

import numpy as np

from repro.data import DataArray
from repro.perf.miniapp_model import SCALES, MiniappConfig, MiniappModel
from repro.util import MemoryTracker

N = 64


def _zero_copy_map(field):
    return DataArray.from_numpy("data", field)


def _deep_copy_map(field):
    return DataArray.from_numpy("data", field).deep_copy()


def test_ablation_native_zero_copy(benchmark):
    field = np.random.default_rng(0).random((N, N, N))
    benchmark(lambda: _zero_copy_map(field))


def test_ablation_native_deep_copy(benchmark):
    field = np.random.default_rng(0).random((N, N, N))
    benchmark(lambda: _deep_copy_map(field))


def test_ablation_memory_and_model(benchmark, report):
    field = np.random.default_rng(0).random((N, N, N))

    def measure():
        zc, dc = MemoryTracker(), MemoryTracker()
        zc.track_array(_zero_copy_map(field).values)
        dc.track_array(_deep_copy_map(field).values)
        return zc.peak, dc.peak

    zc_bytes, dc_bytes = benchmark.pedantic(measure, rounds=3, iterations=1)
    assert zc_bytes == 0
    assert dc_bytes == field.nbytes

    rows = []
    for scale in ("1K", "6K", "45K"):
        m = MiniappModel(MiniappConfig.at_scale(scale))
        cores, ppc = SCALES[scale]
        copy_bytes = ppc * 8 * cores
        # Copy bandwidth ~ one memory pass; charge it per step.
        copy_time_step = ppc * 8 / 8e9
        rows.append(
            f"{scale:<5}{copy_bytes / 1e12:>14.3f}{copy_time_step * 1e3:>16.2f}"
            f"{100 * copy_time_step / m.sim_step:>14.1f}%"
        )
    report(
        "ablation_zerocopy",
        f"{'scale':<5}{'extra mem(TB)':>14}{'copy/step(ms)':>16}{'vs sim/step':>15}",
        rows,
    )
