"""Ablation: in transit resource placement.

Sec. 4.1.4: the measured runs co-schedule the endpoint on hyperthreads; "a
direction for future testing ... is to subdivide the cores on each node so
that, for instance, one core per socket would be for analysis ...
Additionally, this approach can smoothly transition to in transit
deployments, simply by adjusting the launch batch script."  This ablation
models all three placements for the Catalyst-slice endpoint.
"""

import pytest

from repro.perf.miniapp_model import MiniappConfig, MiniappModel

PLACEMENTS = ("hyperthread", "dedicated-cores", "dedicated-nodes")


def test_ablation_placement_sweep(benchmark, report):
    def sweep():
        rows = []
        for scale in ("6K", "45K"):
            m = MiniappModel(MiniappConfig.at_scale(scale))
            for placement in PLACEMENTS:
                fp = m.flexpath("catalyst-slice", placement=placement)
                rows.append(
                    (
                        scale,
                        placement,
                        fp["adios_analysis"],
                        fp["endpoint_analysis"],
                        fp["makespan"],
                    )
                )
        return rows

    rows = benchmark(sweep)
    report(
        "ablation_placement",
        f"{'scale':<5}{'placement':<17}{'writer ana(s)':>14}"
        f"{'endpoint/step(s)':>17}{'makespan(s)':>12}",
        [
            f"{s:<5}{p:<17}{wa:>14.4f}{ea:>17.4f}{mk:>12.1f}"
            for s, p, wa, ea, mk in rows
        ],
    )
    by = {(s, p): (wa, ea, mk) for s, p, wa, ea, mk in rows}
    for scale in ("6K", "45K"):
        hyper = by[(scale, "hyperthread")]
        cores = by[(scale, "dedicated-cores")]
        nodes = by[(scale, "dedicated-nodes")]
        # Removing hyperthread contention speeds the endpoint step.
        assert cores[1] < hyper[1]
        assert nodes[1] < hyper[1]
        # Dedicated nodes pay network transfer on the writer side.
        assert nodes[0] >= 0.0
        # End-to-end, escaping contention wins despite ceded cores/links.
        assert min(cores[2], nodes[2]) < hyper[2]


def test_ablation_placement_validation(benchmark):
    m = MiniappModel(MiniappConfig.at_scale("6K"))

    def check():
        with pytest.raises(ValueError):
            m.flexpath("histogram", placement="gpu")
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
