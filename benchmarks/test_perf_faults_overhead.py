"""Overhead of the fault-injection layer when it is disabled.

The injection hooks ride the hottest paths in the repo -- every send, every
collective, every simulation step, every storage write.  The design
contract (ISSUE 4) is that the *disabled* layer is one ``is None`` check
per hook and must add under 1% to the hot-path timings tracked in
``BENCH_hotpaths.json``::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_faults_overhead.py -s

Two measurements back that up:

1. the per-hook guard cost (``getattr(comm, "fault_injector", None)``)
   against the kernel-cached miniapp step it rides on, scaled by a
   generous per-step hook count, and
2. an end-to-end A/B of a communication-heavy workload run with
   ``faults=None`` vs an *empty* fault plan (enabled layer, nothing
   scheduled) -- bounding what merely wiring the injector costs.
"""

from __future__ import annotations

import time

from repro.faults import FaultPlan
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd

from test_perf_hotpaths import _best_of, _record

#: Hooks a single miniapp step actually hits in the chaos job: 1 sim.step
#: draw + a storage write + a handful of staging sends and collective
#: entries (~15); doubled for headroom.  The measured per-guard time also
#: includes the timing loop itself, so the gate is conservative twice over.
HOOKS_PER_STEP = 32

GUARD_ITERS = 200_000


def test_disabled_guard_under_one_percent_of_hotpath(report):
    """The is-None guard, scaled by HOOKS_PER_STEP, vs one cached step."""

    def prog(comm):
        sim = OscillatorSimulation(
            comm, (64, 64, 64), default_oscillators(), dt=0.01, kernel_cache=True
        )
        t_step = _best_of(sim.advance, 5)

        def guards():
            for _ in range(GUARD_ITERS):
                if getattr(comm, "fault_injector", None) is not None:
                    raise AssertionError("injector must be absent here")

        t_guard = _best_of(guards, 3) / GUARD_ITERS
        return t_step, t_guard

    t_step, t_guard = run_spmd(1, prog)[0]
    overhead = HOOKS_PER_STEP * t_guard / t_step
    _record(
        "faults_disabled_overhead",
        {
            "grid": [64, 64, 64],
            "hooks_per_step": HOOKS_PER_STEP,
            "guard_s_per_hook": t_guard,
            "cached_s_per_step": t_step,
            "overhead_fraction": overhead,
            "budget_fraction": 0.01,
        },
    )
    report(
        "perf_faults_overhead",
        "disabled fault layer vs 64^3 cached step",
        [
            f"guard:    {t_guard * 1e9:8.1f} ns/hook x {HOOKS_PER_STEP} hooks",
            f"step:     {t_step * 1e3:8.3f} ms",
            f"overhead: {overhead * 100:8.4f}% (budget 1%)",
        ],
    )
    assert overhead < 0.01, (
        f"disabled fault layer costs {overhead * 100:.2f}% of a hot step"
    )


def test_empty_plan_end_to_end_overhead(report):
    """Messaging workload: faults=None vs an enabled-but-empty plan.

    The empty plan pays a real (locked, hashed) draw per hook, so it is
    allowed measurable cost -- this bounds it and records the trend.  The
    disabled path is covered by the <1% gate above.
    """
    nranks, rounds = 4, 150

    def prog(comm):
        total = 0
        t0 = time.perf_counter()
        for i in range(rounds):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            total += comm.sendrecv(i, dest=right, source=left)
            total += comm.allreduce(i)
        return time.perf_counter() - t0, total

    def run(faults):
        out = run_spmd(nranks, prog, faults=faults, timeout=60.0)
        assert len({r[1] for r in out}) == 1  # results unaffected
        return max(r[0] for r in out)

    t_disabled = min(run(None) for _ in range(3))
    t_empty = min(run(FaultPlan(seed=0)) for _ in range(3))
    ratio = t_empty / t_disabled
    _record(
        "faults_empty_plan_overhead",
        {
            "ranks": nranks,
            "rounds": rounds,
            "disabled_s": t_disabled,
            "empty_plan_s": t_empty,
            "ratio": ratio,
        },
    )
    report(
        "perf_faults_empty_plan",
        f"sendrecv+allreduce x{rounds}, {nranks} ranks",
        [
            f"faults=None:  {t_disabled * 1e3:8.2f} ms",
            f"empty plan:   {t_empty * 1e3:8.2f} ms  ({ratio:.2f}x)",
        ],
    )
    # Generous sanity bound: wiring an idle injector must never blow up a
    # communication-bound workload.
    assert ratio < 3.0, f"empty fault plan {ratio:.2f}x over disabled"
