"""Fig. 7: memory overhead -- startup footprint vs high-water mark.

Paper claims: startup footprint is ~the Baseline executable for every
configuration; the high-water mark varies with the analysis (slice configs
carry library + framebuffer; autocorrelation carries its circular buffers);
summed over ranks, it grows with scale.
"""

import tempfile

from repro.analysis import AutocorrelationAnalysis, HistogramAnalysis
from repro.analysis.slice_ import SlicePlane
from repro.core import Bridge
from repro.infrastructure import CatalystAdaptor, LibsimAdaptor, write_session_file
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.perf.miniapp_model import MiniappConfig, MiniappModel
from repro.util import MemoryTracker, sum_high_water

DIMS = (12, 12, 12)
_dir = tempfile.mkdtemp(prefix="fig07_")
SESSION = f"{_dir}/session.json"
write_session_file(SESSION, [{"type": "pseudocolor_slice", "index": 6}], (64, 64))


def _measure(name):
    factories = {
        "baseline": lambda: None,
        "histogram": lambda: HistogramAnalysis(bins=32),
        "autocorrelation": lambda: AutocorrelationAnalysis(window=4),
        "catalyst-slice": lambda: CatalystAdaptor(SlicePlane(2, 6), resolution=(64, 64)),
        "libsim-slice": lambda: LibsimAdaptor(session_file=SESSION),
    }

    def prog(comm):
        mem = MemoryTracker()
        sim = OscillatorSimulation(comm, DIMS, default_oscillators(), memory=mem)
        startup = mem.peak
        bridge = Bridge(comm, sim.make_data_adaptor(), memory=mem)
        analysis = factories[name]()
        if analysis is not None:
            bridge.add_analysis(analysis)
        bridge.initialize()
        sim.run(2, bridge)
        bridge.finalize()
        return startup, mem

    out = run_spmd(2, prog)
    return sum(s for s, _ in out), sum_high_water([m for _, m in out])


def test_fig07_native_ranking(benchmark):
    out = benchmark.pedantic(
        lambda: {n: _measure(n) for n in ("baseline", "histogram", "catalyst-slice")},
        rounds=1,
        iterations=1,
    )
    base_start, base_hw = out["baseline"]
    _, hist_hw = out["histogram"]
    _, cat_hw = out["catalyst-slice"]
    assert hist_hw >= base_hw
    assert cat_hw > hist_hw  # library + framebuffer dominate


def test_fig07_modeled_series(benchmark, report):
    def series():
        rows = []
        for scale in ("1K", "6K", "45K"):
            m = MiniappModel(MiniappConfig.at_scale(scale))
            for b in m.all_insitu_configs():
                rows.append(
                    (
                        scale,
                        b.config_name,
                        b.startup_bytes_per_rank * m.cfg.cores,
                        b.high_water_bytes_per_rank * m.cfg.cores,
                    )
                )
        return rows

    rows = benchmark(series)
    report(
        "fig07_memory_overhead",
        f"{'scale':<5}{'configuration':<17}{'startup(TB)':>13}{'high-water(TB)':>15}",
        [
            f"{s:<5}{n:<17}{st / 1e12:>13.3f}{hw / 1e12:>15.3f}"
            for s, n, st, hw in rows
        ],
    )
    by = {(s, n): (st, hw) for s, n, st, hw in rows}
    # High-water grows with scale for every configuration.
    for name in ("baseline", "histogram", "autocorrelation", "catalyst-slice"):
        assert by[("45K", name)][1] > by[("1K", name)][1]
    # Startup is baseline-like for non-library configs.
    assert by[("45K", "histogram")][0] == by[("45K", "baseline")][0]
