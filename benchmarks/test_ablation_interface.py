"""Ablation: SENSEI zero-copy interface vs Freeprocessing-style interception.

Sec. 2.2.5 contrasts the two integration styles: SENSEI maps simulation
memory in place; Freeprocessing avoids instrumentation by intercepting the
I/O path, at the price of a serialize + deserialize double copy per step.
This ablation measures both natively on identical workloads.
"""

from repro.analysis import HistogramAnalysis
from repro.core import Bridge
from repro.core.freeprocessing import InterceptingWriter
from repro.data import Association
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd

DIMS = (24, 24, 24)
STEPS = 3


def _sensei_run():
    def prog(comm):
        sim = OscillatorSimulation(comm, DIMS, default_oscillators())
        bridge = Bridge(comm, sim.make_data_adaptor())
        bridge.add_analysis(HistogramAnalysis(bins=32))
        bridge.initialize()
        sim.run(STEPS, bridge)
        bridge.finalize()

    run_spmd(2, prog)


def _intercepted_run(tmpdir):
    def prog(comm):
        sim = OscillatorSimulation(comm, DIMS, default_oscillators())
        writer = InterceptingWriter(comm, [HistogramAnalysis(bins=32)])
        ad = sim.make_data_adaptor()
        for _ in range(STEPS):
            sim.advance()
            mesh = ad.get_mesh()
            mesh.add_array(Association.POINT, ad.get_array(Association.POINT, "data"))
            writer.write_timestep(tmpdir, sim.step, sim.time, mesh, "data")
            ad.release_data()
        return writer.finalize()

    return run_spmd(2, prog)


def test_ablation_native_sensei(benchmark):
    benchmark.pedantic(_sensei_run, rounds=3, iterations=1)


def test_ablation_native_interception(benchmark, tmp_path, report):
    counter = iter(range(10_000))
    out = benchmark.pedantic(
        lambda: _intercepted_run(str(tmp_path / f"i{next(counter)}")),
        rounds=3,
        iterations=1,
    )
    total_copied = sum(
        o["bytes_serialized"] + o["bytes_deserialized"] for o in out
    )
    field_bytes = DIMS[0] * DIMS[1] * DIMS[2] * 8
    report(
        "ablation_interface",
        "SENSEI zero-copy vs Freeprocessing interception",
        [
            f"SENSEI: 0 bytes copied per step (zero-copy views)",
            f"interception: {total_copied / (STEPS * field_bytes):.1f}x the "
            f"field size copied per step ({total_copied / 1e6:.1f} MB total "
            f"over {STEPS} steps)",
        ],
    )
    # The double copy: >= 2x the field moved every step.
    assert total_copied >= 2 * STEPS * field_bytes
