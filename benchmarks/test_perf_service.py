"""Service-layer throughput benchmark: N tenants sharing one server.

The paper's central cost question for a shared in situ service is whether
tenancy overhead (framing, auth, admission, per-tenant accounting) leaves
enough headroom that concurrent simulations still make progress at a fair
rate.  This benchmark stands up one real :class:`ServiceServer` on a Unix
socket and drives ``TENANTS`` concurrent client workloads against it --
the same client/server/wire path the CLI uses -- then records aggregate
steps/sec and a per-tenant fairness ratio to ``BENCH_hotpaths.json``::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_service.py -s

Fairness = (slowest tenant's steps/s) / (fastest tenant's steps/s); 1.0
is perfectly fair.  The hard gates are calibrated like the other hot-path
benchmarks: throughput floors only apply with >= 4 real CPUs (the staged
endpoint workers need cores to overlap), while completeness and a lenient
fairness floor are asserted everywhere.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time

import numpy as np

from repro.service import (
    QuotaSpec,
    ServiceServer,
    TenantRegistry,
    TenantSpec,
    issue_token,
    run_client_workload,
)

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_hotpaths.json")

SECRET = "bench-secret"
TENANTS = ("alpha", "beta", "gamma", "delta")
STEPS = 16
SHAPE = (32, 32)


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark's results into BENCH_hotpaths.json."""
    doc: dict = {}
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    doc["meta"] = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": _cpus(),
    }
    doc[section] = payload
    with open(BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def test_service_throughput_concurrent_tenants(tmp_path, report):
    """>= 4 tenants streaming concurrently through one service instance.

    Acceptance: every tenant's every step is ACKed ``admit``, aggregate
    throughput is recorded, and no tenant is starved (fairness floor).
    """
    registry = TenantRegistry(
        [
            TenantSpec(name, quota=QuotaSpec(credits=4), placement="staged")
            for name in TENANTS
        ]
    )
    server = ServiceServer(
        str(tmp_path / "svc.sock"),
        registry,
        SECRET,
        str(tmp_path / "out"),
        seed=0,
        render=False,
        expect=len(TENANTS),
    )
    server.start()

    summaries: dict[str, dict] = {}
    errors: list[BaseException] = []

    def _drive(tenant: str) -> None:
        try:
            summaries[tenant] = run_client_workload(
                server.socket_path,
                tenant,
                issue_token(SECRET, tenant),
                STEPS,
                shape=SHAPE,
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    try:
        threads = [
            threading.Thread(target=_drive, args=(name,), name=f"bench-{name}")
            for name in TENANTS
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        wall = time.perf_counter() - t0
        assert server.wait(10.0), "server did not drain all tenants"
    finally:
        server.stop()

    assert not errors, f"tenant workload failed: {errors[0]!r}"
    assert sorted(summaries) == sorted(TENANTS)

    per_tenant = {}
    for name, summary in summaries.items():
        verdicts = [v for _, v in summary["verdicts"]]
        assert len(verdicts) == STEPS, f"{name}: {len(verdicts)} acks"
        assert all(v == "admit" for v in verdicts), f"{name}: {verdicts}"
        per_tenant[name] = STEPS / summary["wall_seconds"]

    aggregate = len(TENANTS) * STEPS / wall
    fastest = max(per_tenant.values())
    slowest = min(per_tenant.values())
    fairness = slowest / fastest

    cpus = _cpus()
    _record(
        "service_throughput",
        {
            "tenants": len(TENANTS),
            "steps_per_tenant": STEPS,
            "payload_shape": list(SHAPE),
            "wall_seconds": round(wall, 4),
            "aggregate_steps_per_s": round(aggregate, 2),
            "per_tenant_steps_per_s": {
                k: round(v, 2) for k, v in sorted(per_tenant.items())
            },
            "fairness_ratio": round(fairness, 3),
            "target_aggregate_steps_per_s": 50.0,
            "target_fairness_ratio": 0.5,
            "target_gated_on_cpus": 4,
        },
    )
    report(
        "service_throughput",
        f"service throughput: {len(TENANTS)} tenants x {STEPS} steps "
        f"({cpus} CPUs)",
        [
            f"aggregate      {aggregate:8.1f} steps/s",
            *(
                f"{name:<14} {rate:8.1f} steps/s"
                for name, rate in sorted(per_tenant.items())
            ),
            f"fairness       {fairness:8.3f} (slowest/fastest)",
        ],
    )

    # Everyone made progress: even on a starved runner no tenant should be
    # an order of magnitude behind its peers over a whole run.
    assert fairness >= 0.1
    if cpus >= 4:
        assert aggregate >= 50.0, f"aggregate {aggregate:.1f} steps/s"
        assert fairness >= 0.5, f"fairness {fairness:.3f}"
    else:
        assert aggregate > 0.0
