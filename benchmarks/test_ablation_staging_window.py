"""Ablation: FlexPath flow-control window depth.

The native transport (and the paper's configuration) lets the endpoint lag
the writer by one step; deeper windows buy overlap at the cost of buffered
steps' memory.  This ablation sweeps the window in the staging event
simulator for a slow endpoint and reports writer blocking vs buffer cost --
the in transit resource-placement trade-off Sec. 4.1.4 discusses.
"""

from repro.perf.events import simulate_staging
from repro.perf.miniapp_model import MiniappConfig, MiniappModel

STEPS = 100


def test_ablation_window_sweep(benchmark, report):
    m = MiniappModel(MiniappConfig.at_scale("6K"))
    sim_t = m.sim_step
    endpoint_t = m.catalyst_slice().analysis_per_step * 1.5  # slow endpoint

    def sweep():
        rows = []
        for window in (1, 2, 4, 8):
            tl = simulate_staging(
                STEPS,
                sim_time=sim_t,
                advance_time=1e-4,
                transfer_time=5e-4,
                endpoint_time=endpoint_t,
                window=window,
            )
            buffer_bytes = window * m.cfg.points_per_core * 8
            rows.append(
                (window, sum(tl.writer_analysis), tl.makespan, buffer_bytes)
            )
        return rows

    rows = benchmark(sweep)
    report(
        "ablation_staging_window",
        f"{'window':>7}{'writer block(s)':>16}{'makespan(s)':>12}{'buffer/rank(MB)':>17}",
        [
            f"{w:>7}{blk:>16.2f}{mk:>12.2f}{buf / 1e6:>17.2f}"
            for w, blk, mk, buf in rows
        ],
    )
    blocks = [blk for _, blk, _, _ in rows]
    # Deeper windows can only reduce blocking; buffers grow linearly.
    assert all(b1 >= b2 for b1, b2 in zip(blocks, blocks[1:]))
    # With an endpoint slower than the writer, steady-state blocking never
    # vanishes entirely (the pipeline is endpoint-bound).
    assert blocks[-1] > 0
