"""Wall-clock gate for the static analyzer over the full source tree.

The analyzer runs in CI on every push (``python -m repro.analyze src/
--format sarif``), so its cost is a direct tax on the development loop.
Statement-granular CFGs plus bounded path enumeration could in principle
blow up combinatorially; the gate pins the whole-tree analysis --
107 files, every checker, witnesses included -- under 5 seconds and
records the measurement in ``BENCH_hotpaths.json``::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_analyze.py -s
"""

from __future__ import annotations

import os

from repro.analyze import analyze_paths

from test_perf_hotpaths import _best_of, _record

_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")

#: Whole-tree budget (seconds).  CI runners are slower than dev boxes;
#: the analyzer typically finishes in well under a second.
BUDGET_S = 5.0


def test_full_tree_analysis_under_budget(report):
    nfiles = sum(
        1
        for dirpath, _, files in os.walk(_SRC)
        for f in files
        if f.endswith(".py")
    )
    findings: list = []

    def run() -> None:
        findings.clear()
        findings.extend(analyze_paths([_SRC]))

    wall = _best_of(run, repeats=3)
    rows = [
        f"files analyzed        {nfiles}",
        f"raw findings          {len(findings)}",
        f"wall (best of 3)      {wall * 1e3:9.1f} ms",
        f"budget                {BUDGET_S * 1e3:9.1f} ms",
        f"per file              {wall / max(1, nfiles) * 1e3:9.2f} ms",
    ]
    report("analyze_full_tree", "static analyzer: full src/repro sweep", rows)
    _record(
        "static_analyze",
        {
            "files": nfiles,
            "findings": len(findings),
            "wall_s": round(wall, 4),
            "budget_s": BUDGET_S,
            "per_file_ms": round(wall / max(1, nfiles) * 1e3, 3),
        },
    )
    assert wall < BUDGET_S, (
        f"full-tree analysis took {wall:.2f}s, budget {BUDGET_S:.1f}s"
    )
