"""Fig. 12: weak-scaling time-to-solution of the in situ configurations,
compared against the post hoc equivalents.

Paper claim: "The overall times to solution for the in situ configurations
are significantly faster than the post hoc configurations" -- e.g. ~9
s/write x 100 steps at 45K dwarfs any in situ configuration's total.
"""

from repro.analysis import HistogramAnalysis
from repro.core import Bridge
from repro.data import Association
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.perf.miniapp_model import MiniappConfig, MiniappModel
from repro.posthoc import run_posthoc_analysis
from repro.storage import write_timestep
from repro.util import TimerRegistry

DIMS = (16, 16, 16)
STEPS = 3


def _native_compare(tmpdir):
    """End-to-end native: in situ histogram vs write+read+histogram."""

    def insitu(comm):
        timers = TimerRegistry()
        sim = OscillatorSimulation(comm, DIMS, default_oscillators(), timers=timers)
        bridge = Bridge(comm, sim.make_data_adaptor(), timers=timers)
        bridge.add_analysis(HistogramAnalysis(bins=16))
        bridge.initialize()
        sim.run(STEPS, bridge)
        bridge.finalize()
        return timers.total("simulation::advance") + timers.total("sensei::execute")

    def writer(comm):
        timers = TimerRegistry()
        sim = OscillatorSimulation(comm, DIMS, default_oscillators(), timers=timers)
        ad = sim.make_data_adaptor()
        for _ in range(STEPS):
            sim.advance()
            with timers.time("io"):
                mesh = ad.get_mesh()
                mesh.add_array(Association.POINT, ad.get_array(Association.POINT, "data"))
                write_timestep(comm, tmpdir, sim.step, sim.time, mesh, "data")
            ad.release_data()
        return timers.total("simulation::advance") + timers.total("io")

    t_insitu = max(run_spmd(4, insitu))
    t_write = max(run_spmd(4, writer))
    res = run_spmd(
        1,
        lambda comm: run_posthoc_analysis(
            comm, tmpdir, list(range(1, STEPS + 1)), "histogram", bins=16
        ),
    )[0]
    return t_insitu, t_write + res.read_time + res.process_time


def test_fig12_native_compare(benchmark, tmp_path):
    counter = iter(range(10_000))
    t_insitu, t_posthoc = benchmark.pedantic(
        lambda: _native_compare(str(tmp_path / f"r{next(counter)}")),
        rounds=2,
        iterations=1,
    )
    assert t_insitu < t_posthoc  # already true even at laptop scale


def test_fig12_modeled_series(benchmark, report):
    matching = {
        "baseline": None,
        "histogram": "histogram",
        "autocorrelation": "autocorrelation",
        "catalyst-slice": "slice",
        "libsim-slice": "slice",
    }

    def series():
        rows = []
        for scale in ("1K", "6K", "45K"):
            m = MiniappModel(MiniappConfig.at_scale(scale))
            for b in m.all_insitu_configs():
                insitu_total = b.time_to_solution(m.cfg.steps)
                post_name = matching[b.config_name]
                if post_name is None:
                    posthoc_total = float("nan")
                else:
                    writes = m.cfg.steps * m.io.file_per_process_write(
                        m.cfg.cores, m.cfg.step_bytes
                    )
                    ph = m.posthoc(post_name)
                    posthoc_total = (
                        m.cfg.steps * b.sim_per_step
                        + writes
                        + ph["read"]
                        + ph["process"]
                        + ph["write"]
                    )
                rows.append((scale, b.config_name, insitu_total, posthoc_total))
        return rows

    rows = benchmark(series)
    report(
        "fig12_insitu_vs_posthoc",
        f"{'scale':<5}{'configuration':<17}{'in situ(s)':>12}{'post hoc(s)':>13}",
        [f"{s:<5}{n:<17}{i:>12.1f}{p:>13.1f}" for s, n, i, p in rows],
    )
    for s, n, insitu, posthoc in rows:
        if posthoc == posthoc:  # skip NaN baseline row
            assert insitu < posthoc, (s, n)
