"""Fig. 4: memory footprint, Original vs SENSEI Autocorrelation.

Paper claim: "comparable memory footprint for the two configurations" --
the zero-copy mapping adds no buffers.

Native part: run both configurations with full allocation accounting and
assert equal high-water marks.  Modeled part: summed per-rank high-water
bytes at 1K/6K/45K.
"""

from repro.analysis import AutocorrelationAnalysis
from repro.analysis.autocorrelation import AutocorrelationState
from repro.core import Bridge
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.perf.miniapp_model import MiniappConfig, MiniappModel
from repro.util import MemoryTracker, sum_high_water

DIMS = (16, 16, 16)
STEPS = 3
WINDOW = 4


def _measure(use_sensei: bool):
    def prog(comm):
        mem = MemoryTracker()
        sim = OscillatorSimulation(comm, DIMS, default_oscillators(), memory=mem)
        if use_sensei:
            bridge = Bridge(comm, sim.make_data_adaptor(), memory=mem)
            bridge.add_analysis(AutocorrelationAnalysis(window=WINDOW, k=3))
            bridge.initialize()
            sim.run(STEPS, bridge)
            bridge.finalize()
        else:
            state = AutocorrelationState(WINDOW, sim.field.size, memory=mem)
            for _ in range(STEPS):
                sim.advance()
                state.update(sim.field)
            state.finalize(comm, k=3)
        return mem

    return run_spmd(4, prog)


def test_fig04_native_equal_highwater(benchmark):
    def run_both():
        return sum_high_water(_measure(False)), sum_high_water(_measure(True))

    original, sensei = benchmark.pedantic(run_both, rounds=2, iterations=1)
    assert original == sensei  # byte-for-byte: the zero-copy claim


def test_fig04_modeled_series(benchmark, report):
    def series():
        rows = []
        for scale in ("1K", "6K", "45K"):
            m = MiniappModel(MiniappConfig.at_scale(scale))
            orig = m.original().high_water_bytes_per_rank
            # Both configurations carry the same autocorrelation buffers.
            ac_buffers = 2 * m.cfg.ac_window * m.cfg.points_per_core * 8
            sensei = m.autocorrelation().high_water_bytes_per_rank
            rows.append(
                (scale, m.cfg.cores, (orig + ac_buffers) * m.cfg.cores, sensei * m.cfg.cores)
            )
        return rows

    rows = benchmark(series)
    report(
        "fig04_memory_footprint",
        f"{'scale':<5}{'cores':>8}{'original(TB)':>15}{'sensei(TB)':>15}",
        [
            f"{s:<5}{c:>8}{o / 1e12:>15.3f}{n / 1e12:>15.3f}"
            for s, c, o, n in rows
        ],
    )
    for _, _, o, n in rows:
        assert o == n
