"""Table 1: one-step write cost, multi-file VTK I/O vs collective MPI-IO.

Paper values (Cori):

=======  ======  ======  =======
Writes    812     6496    45440
=======  ======  ======  =======
Size      2 GB    16 GB   123 GB
VTK I/O   0.12 s  0.67 s  9.05 s
MPI-IO    0.40 s  3.17 s  22.87 s
=======  ======  ======  =======

Native part: benchmark both real write paths on the same data and assert
the file-per-process path is faster (the Table 1 ordering).  Modeled part:
the table itself.
"""

import numpy as np

from repro.data import Association, DataArray, ImageData
from repro.mpi import run_spmd
from repro.perf.miniapp_model import SCALES, MiniappConfig, MiniappModel
from repro.storage import mpiio_write_collective, write_timestep
from repro.util import Extent
from repro.util.decomp import regular_decompose_3d

DIMS = (32, 32, 16)


def _vtk_write(tmpdir):
    def prog(comm):
        ext, _, _ = regular_decompose_3d(DIMS, comm.size, comm.rank)
        whole = Extent(0, DIMS[0] - 1, 0, DIMS[1] - 1, 0, DIMS[2] - 1)
        img = ImageData(ext, whole_extent=whole)
        img.add_point_array(DataArray.from_numpy("data", np.ones(ext.shape)))
        write_timestep(comm, tmpdir, 0, 0.0, img, "data")

    run_spmd(4, prog)


def _mpiio_write(path):
    def prog(comm):
        ext, _, _ = regular_decompose_3d(DIMS, comm.size, comm.rank)
        mpiio_write_collective(comm, path, np.ones(ext.shape), ext, DIMS)

    run_spmd(4, prog)


def test_table1_native_vtk(benchmark, tmp_path):
    counter = iter(range(10_000))
    benchmark.pedantic(
        lambda: _vtk_write(str(tmp_path / f"v{next(counter)}")), rounds=3, iterations=1
    )


def test_table1_native_mpiio(benchmark, tmp_path):
    counter = iter(range(10_000))
    benchmark.pedantic(
        lambda: _mpiio_write(str(tmp_path / f"m{next(counter)}.dat")),
        rounds=3,
        iterations=1,
    )


def test_table1_modeled(benchmark, report):
    def series():
        rows = []
        for scale in ("1K", "6K", "45K"):
            m = MiniappModel(MiniappConfig.at_scale(scale))
            wp = m.write_paths()
            rows.append((scale, SCALES[scale][0], wp["size_gb"], wp["vtk_io"], wp["mpi_io"]))
        return rows

    rows = benchmark(series)
    report(
        "table1_write_paths",
        f"{'scale':<5}{'cores':>8}{'size(GB)':>10}{'VTK I/O(s)':>12}{'MPI-IO(s)':>11}",
        [
            f"{s:<5}{c:>8}{gb:>10.1f}{v:>12.2f}{m_:>11.2f}"
            for s, c, gb, v, m_ in rows
        ],
    )
    paper = {"1K": (0.12, 0.40), "6K": (0.67, 3.17), "45K": (9.05, 22.87)}
    for s, _, _, vtk, mpiio in rows:
        assert vtk < mpiio  # the Table 1 ordering
        ref_v, ref_m = paper[s]
        assert ref_v / 2 < vtk < ref_v * 2
        assert ref_m / 2 < mpiio < ref_m * 2
