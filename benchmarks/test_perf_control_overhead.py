"""Overhead of the autotuning controller when it is disabled.

The controller rides two hot paths: the bridge's per-step ``end_step``
hook (one ``is not None`` check when no controller is attached) and the
trace recorder's span-subscriber fan-out (one truthiness check on an empty
list per completed span).  The design contract (ISSUE 8) is that a run
with no controller pays under 1% of a hot simulation step for all of it::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_control_overhead.py -s

A second measurement bounds the *enabled* cost: one full controller
decision (belief update + 54-candidate plan sweep + journal append), which
runs once per step and must stay far below the step it tunes.
"""

from __future__ import annotations

from repro.mpi import run_spmd
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.trace import TraceRecorder

from test_perf_hotpaths import _best_of, _record

#: Guard sites one step actually hits: 1 bridge end_step check plus a
#: span-subscriber truthiness check per completed span (~16 spans/step in
#: the traced chaos job); doubled for headroom.
GUARDS_PER_STEP = 32

GUARD_ITERS = 200_000


def test_disabled_controller_under_one_percent_of_hotpath(report):
    """The is-None / empty-subscribers guards vs one cached step."""

    def prog(comm):
        sim = OscillatorSimulation(
            comm, (64, 64, 64), default_oscillators(), dt=0.01, kernel_cache=True
        )
        t_step = _best_of(sim.advance, 5)

        controller = None
        rec = TraceRecorder(rank=0)

        def guards():
            subs = rec._subscribers
            for _ in range(GUARD_ITERS):
                if controller is not None:
                    raise AssertionError("controller must be absent here")
                if subs:
                    raise AssertionError("no subscribers expected")

        t_guard = _best_of(guards, 3) / (2 * GUARD_ITERS)
        return t_step, t_guard

    t_step, t_guard = run_spmd(1, prog)[0]
    overhead = GUARDS_PER_STEP * t_guard / t_step
    _record(
        "controller_overhead",
        {
            "grid": [64, 64, 64],
            "guards_per_step": GUARDS_PER_STEP,
            "guard_s_per_site": t_guard,
            "cached_s_per_step": t_step,
            "overhead_fraction": overhead,
            "budget_fraction": 0.01,
        },
    )
    report(
        "perf_control_overhead",
        "disabled controller vs 64^3 cached step",
        [
            f"guard:    {t_guard * 1e9:8.1f} ns/site x {GUARDS_PER_STEP} sites",
            f"step:     {t_step * 1e3:8.3f} ms",
            f"overhead: {overhead * 100:8.4f}% (budget 1%)",
        ],
    )
    assert overhead < 0.01, (
        f"disabled controller costs {overhead * 100:.2f}% of a hot step"
    )


def test_enabled_decision_cost_bounded(report):
    """One full decision (plan sweep over all candidates + journal append)
    against the 6K-core modeled step it would be tuning."""
    from repro.control import SLO, Controller
    from repro.perf import ControlModel

    model = ControlModel()
    step_s = model.predict(model.default_config()).total

    counter = {"step": 0}

    def decide():
        ctrl = Controller(model=model, slo=SLO(0.65), seed=1)
        for s in range(20):
            ctrl.observe_outcome(s, staged=True)
        counter["step"] += 20

    t_total = _best_of(decide, 3)
    t_decision = t_total / 20
    _record(
        "controller_decision_cost",
        {
            "candidates": len(model.candidate_configs()),
            "decision_s": t_decision,
            "modeled_step_s": step_s,
            "fraction_of_step": t_decision / step_s,
        },
    )
    report(
        "perf_control_decision",
        "one enabled controller decision",
        [
            f"decision: {t_decision * 1e6:8.1f} us "
            f"({len(model.candidate_configs())} candidates)",
            f"modeled step: {step_s * 1e3:8.1f} ms",
        ],
    )
    # A decision must be trivially cheap next to the step it re-plans.
    assert t_decision < 0.05 * step_s
