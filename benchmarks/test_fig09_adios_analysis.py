"""Fig. 9: ADIOS FlexPath endpoint-side timings per analysis use case.

Paper claims: analysis times are "in line with" the inline Catalyst-slice /
autocorrelation / histogram timings (with the staging penalty -- ~50% for
Catalyst-slice); reader initialization is expensive on Cori and an order of
magnitude cheaper on Titan.
"""

from repro.analysis import AutocorrelationAnalysis, HistogramAnalysis
from repro.core import Bridge
from repro.infrastructure.adios import run_flexpath_job
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.perf.machine import CORI, TITAN
from repro.perf.miniapp_model import SCALES, MiniappConfig, MiniappModel
from repro.util import TimerRegistry

DIMS = (16, 16, 16)
STEPS = 3


def _writer_program(comm, writer):
    timers = TimerRegistry()
    sim = OscillatorSimulation(comm, DIMS, default_oscillators(), timers=timers)
    bridge = Bridge(comm, sim.make_data_adaptor(), timers=timers)
    bridge.add_analysis(writer)
    bridge.initialize()
    sim.run(STEPS, bridge)
    bridge.finalize()
    return None


def _endpoint_timers(analysis_factory):
    result = run_flexpath_job(
        n_writers=4,
        n_endpoints=2,
        writer_program=_writer_program,
        analysis_factory=analysis_factory,
    )
    return result.endpoint_results[0]["timers"]


def test_fig09_native_endpoints(benchmark):
    def run_both():
        return {
            "histogram": _endpoint_timers(lambda c: HistogramAnalysis(bins=16)),
            "autocorrelation": _endpoint_timers(
                lambda c: AutocorrelationAnalysis(window=3)
            ),
        }

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    for timers in out.values():
        assert timers["endpoint::analysis"]["count"] == STEPS


def test_fig09_modeled_series(benchmark, report):
    def series():
        rows = []
        for scale in ("1K", "6K", "45K"):
            for analysis in ("histogram", "autocorrelation", "catalyst-slice"):
                m = MiniappModel(MiniappConfig.at_scale(scale))
                fp = m.flexpath(analysis)
                rows.append(
                    (scale, analysis, fp["endpoint_initialize"], fp["endpoint_analysis"])
                )
        return rows

    rows = benchmark(series)
    report(
        "fig09_adios_endpoint",
        f"{'scale':<5}{'analysis':<17}{'reader init(s)':>15}{'analysis/step(s)':>17}",
        [f"{s:<5}{a:<17}{i:>15.3f}{t:>17.4f}" for s, a, i, t in rows],
    )
    by = {(s, a): (i, t) for s, a, i, t in rows}
    # Reader init grows with scale on Cori.
    assert by[("45K", "histogram")][0] > by[("1K", "histogram")][0]
    # Titan's reader init is ~10x cheaper at the same concurrency.
    cores, ppc = SCALES["6K"]
    init_titan = MiniappModel(
        MiniappConfig(cores=cores, points_per_core=ppc, machine=TITAN)
    ).flexpath("histogram")["endpoint_initialize"]
    init_cori = by[("6K", "histogram")][0]
    assert 5.0 < init_cori / init_titan < 20.0
