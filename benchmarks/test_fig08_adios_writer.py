"""Fig. 8: ADIOS FlexPath writer-side costs (adios::advance, adios::analysis).

Paper claims: ``advance`` is the (cheap) metadata update; ``analysis`` is
data transmission plus blocking when the reader lags.

Native part: benchmark a real staged job and report the writer's phase
timings.  Modeled part: the writer bars at 1K/6K/45K for the histogram
endpoint (the figure's configuration).
"""

from repro.analysis import HistogramAnalysis
from repro.core import Bridge
from repro.infrastructure.adios import run_flexpath_job
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.perf.miniapp_model import MiniappConfig, MiniappModel
from repro.util import TimerRegistry

DIMS = (16, 16, 16)
STEPS = 4


def _writer_program(comm, writer):
    timers = TimerRegistry()
    sim = OscillatorSimulation(comm, DIMS, default_oscillators(), timers=timers)
    bridge = Bridge(comm, sim.make_data_adaptor(), timers=timers)
    bridge.add_analysis(writer)
    bridge.initialize()
    sim.run(STEPS, bridge)
    bridge.finalize()
    return timers.as_dict()


def _run_job():
    return run_flexpath_job(
        n_writers=4,
        n_endpoints=2,
        writer_program=_writer_program,
        analysis_factory=lambda comm: HistogramAnalysis(bins=32),
    )


def test_fig08_native_staged_job(benchmark):
    result = benchmark.pedantic(_run_job, rounds=2, iterations=1)
    t = result.writer_results[0]
    assert t["adios::advance"]["count"] == STEPS
    assert t["adios::analysis"]["count"] == STEPS


def test_fig08_modeled_series(benchmark, report):
    def series():
        rows = []
        for scale in ("1K", "6K", "45K"):
            m = MiniappModel(MiniappConfig.at_scale(scale))
            fp = m.flexpath("histogram")
            rows.append(
                (scale, fp["writer_initialize"], fp["adios_advance"], fp["adios_analysis"])
            )
        return rows

    rows = benchmark(series)
    report(
        "fig08_adios_writer",
        f"{'scale':<5}{'initialize(s)':>14}{'advance(s)':>12}{'analysis(s)':>13}",
        [f"{s:<5}{i:>14.4f}{a:>12.6f}{an:>13.6f}" for s, i, a, an in rows],
    )
    for _, init, advance, analysis in rows:
        assert advance < 0.01  # metadata update stays cheap
        assert analysis >= 0.0
