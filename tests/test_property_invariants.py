"""Property-based tests over the system's cross-cutting invariants.

Each property here underpins one of the paper's measured claims: if any of
these broke, the corresponding experiment would be measuring a bug.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import parallel_histogram
from repro.analysis.autocorrelation import AutocorrelationState
from repro.mpi import MAX, MIN, SUM, run_spmd
from repro.mpi.halo import HaloExchanger
from repro.render import RenderedImage, binary_swap, blank_image, direct_send
from repro.storage import BPReader, BPWriter
from repro.util import Extent
from repro.util.decomp import regular_decompose_3d


class TestMPIProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        nranks=st.integers(1, 6),
        n=st.integers(1, 64),
        seed=st.integers(0, 1000),
    )
    def test_allreduce_array_invariant(self, nranks, n, seed):
        """allreduce(SUM) of per-rank arrays equals the numpy sum and is
        identical on every rank."""
        rng = np.random.default_rng(seed)
        data = [rng.standard_normal(n) for _ in range(nranks)]

        def prog(comm):
            return comm.allreduce(data[comm.rank], SUM)

        out = run_spmd(nranks, prog)
        expected = data[0].copy()
        for d in data[1:]:
            expected = expected + d
        for o in out:
            np.testing.assert_array_equal(o, expected)

    @settings(max_examples=15, deadline=None)
    @given(nranks=st.integers(2, 6), seed=st.integers(0, 1000))
    def test_alltoall_is_transpose(self, nranks, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 100, (nranks, nranks))

        def prog(comm):
            return comm.alltoall(list(matrix[comm.rank]))

        out = run_spmd(nranks, prog)
        for r, row in enumerate(out):
            assert row == list(matrix[:, r])

    @settings(max_examples=15, deadline=None)
    @given(nranks=st.integers(1, 6), seed=st.integers(0, 1000))
    def test_exscan_prefix_property(self, nranks, seed):
        rng = np.random.default_rng(seed)
        vals = [int(v) for v in rng.integers(0, 50, nranks)]

        def prog(comm):
            return comm.exscan(vals[comm.rank])

        out = run_spmd(nranks, prog)
        assert out[0] is None
        for r in range(1, nranks):
            assert out[r] == sum(vals[:r])


class TestHistogramProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        nranks=st.integers(1, 6),
        n=st.integers(1, 300),
        bins=st.integers(1, 32),
        seed=st.integers(0, 1000),
    )
    def test_distribution_invariance(self, nranks, n, bins, seed):
        """The global histogram never depends on how data is distributed."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=n)
        if data.min() == data.max():
            return  # degenerate range uses a documented non-numpy convention
        chunks = np.array_split(data, nranks)

        def prog(comm):
            return parallel_histogram(comm, chunks[comm.rank], bins)

        h = run_spmd(nranks, prog)[0]
        expected, _ = np.histogram(data, bins=bins, range=(data.min(), data.max()))
        assert h.counts.tolist() == expected.tolist()
        assert h.total == n


class TestAutocorrelationProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        window=st.integers(1, 6),
        steps=st.integers(1, 12),
        seed=st.integers(0, 1000),
    )
    def test_delay_zero_is_energy(self, window, steps, seed):
        """corr[0] == sum of squares of the signal -- for any window."""
        rng = np.random.default_rng(seed)
        state = AutocorrelationState(window, 5)
        signal = rng.standard_normal((steps, 5))
        for row in signal:
            state.update(row)
        np.testing.assert_allclose(state.corr[0], (signal**2).sum(axis=0))

    @settings(max_examples=15, deadline=None)
    @given(window=st.integers(2, 5), seed=st.integers(0, 1000))
    def test_cauchy_schwarz(self, window, seed):
        """|corr[d]| <= corr[0] for stationary-bounded signals (up to the
        truncation of the first d terms)."""
        rng = np.random.default_rng(seed)
        state = AutocorrelationState(window, 8)
        for _ in range(20):
            state.update(rng.uniform(-1, 1, 8))
        # Generous bound accounting for edge terms.
        assert np.all(np.abs(state.corr[1:]) <= state.corr[0][None, :] + 1e-9)


class TestCompositingProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        nranks=st.integers(1, 6),
        w=st.integers(4, 24),
        h=st.integers(4, 24),
        seed=st.integers(0, 1000),
    )
    def test_binary_swap_equals_direct_send(self, nranks, w, h, seed):
        """The two compositing algorithms agree on arbitrary partials."""
        rng = np.random.default_rng(seed)
        rgbs = rng.integers(0, 256, (nranks, h, w, 3), dtype=np.uint8)
        masks = rng.integers(0, 2, (nranks, h, w)).astype(np.uint8) * 255

        def prog(comm):
            img = RenderedImage(rgbs[comm.rank].copy(), masks[comm.rank].copy())
            ds = direct_send(comm, img.copy())
            bs = binary_swap(comm, img.copy())
            if comm.rank == 0:
                return ds.rgb, ds.alpha, bs.rgb, bs.alpha
            return None

        ds_rgb, ds_alpha, bs_rgb, bs_alpha = run_spmd(nranks, prog)[0]
        assert np.array_equal(ds_rgb * (ds_alpha[..., None] > 0), bs_rgb * (bs_alpha[..., None] > 0))
        assert np.array_equal(ds_alpha > 0, bs_alpha > 0)

    @settings(max_examples=10, deadline=None)
    @given(nranks=st.integers(1, 5), seed=st.integers(0, 1000))
    def test_coverage_is_union(self, nranks, seed):
        """Composited coverage equals the union of partial coverages."""
        rng = np.random.default_rng(seed)
        masks = rng.integers(0, 2, (nranks, 8, 8)).astype(np.uint8) * 255

        def prog(comm):
            img = blank_image(8, 8)
            img.alpha[:] = masks[comm.rank]
            img.rgb[:] = 7
            out = binary_swap(comm, img)
            return None if out is None else (out.alpha > 0)

        got = run_spmd(nranks, prog)[0]
        expected = (masks > 0).any(axis=0)
        assert np.array_equal(got, expected)


class TestStorageProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        nranks=st.integers(1, 4),
        dims=st.tuples(st.integers(4, 10), st.integers(4, 8), st.integers(4, 8)),
        seed=st.integers(0, 1000),
    )
    def test_bp_roundtrip_any_decomposition(self, nranks, dims, seed, tmp_path_factory):
        tmpdir = tmp_path_factory.mktemp("bp_prop")
        rng = np.random.default_rng(seed)
        field = rng.standard_normal(dims)

        def prog(comm):
            ext, _, _ = regular_decompose_3d(dims, comm.size, comm.rank)
            w = BPWriter(comm, tmpdir / "f", dims)
            w.begin_step()
            w.write(
                "v",
                field[ext.i0 : ext.i1 + 1, ext.j0 : ext.j1 + 1, ext.k0 : ext.k1 + 1],
                ext,
            )
            w.end_step()
            w.close()

        run_spmd(nranks, prog)
        got = BPReader(tmpdir / "f").read("v", 0)
        np.testing.assert_array_equal(got, field)


class TestCrossBackendProperties:
    """Randomized (but fully seeded -- every draw comes from the shared
    ``seeded_rng`` fixture) invariants run through BOTH execution backends,
    asserting bit-identical results between them.  These are the paper's
    backend-invariance claims in miniature: reductions fold in rank order,
    so results are deterministic regardless of execution substrate."""

    DTYPES = (np.float64, np.float32, np.int64, np.int32)

    def _cases(self, rng, n_cases):
        for _ in range(n_cases):
            nranks = int(rng.integers(2, 6))
            shape = tuple(int(s) for s in rng.integers(1, 9, size=int(rng.integers(1, 3))))
            dtype = self.DTYPES[int(rng.integers(0, len(self.DTYPES)))]
            yield nranks, shape, dtype

    @staticmethod
    def _field(rng, shape, dtype):
        if np.issubdtype(dtype, np.integer):
            return rng.integers(-1000, 1000, size=shape).astype(dtype)
        return rng.standard_normal(shape).astype(dtype)

    def test_reductions_bit_identical_across_backends(self, seeded_rng):
        """reduce/allreduce/gather over randomized rank counts, shapes, and
        dtypes: both backends produce byte-identical buffers, equal to the
        rank-ordered reference fold."""
        for nranks, shape, dtype in self._cases(seeded_rng, 4):
            data = [self._field(seeded_rng, shape, dtype) for _ in range(nranks)]

            def prog(comm):
                a = comm.allreduce(data[comm.rank], SUM)
                r = comm.reduce(data[comm.rank], SUM, root=0)
                g = comm.gather(data[comm.rank], root=nranks - 1)
                lo = comm.allreduce(float(data[comm.rank].min()), MIN)
                hi = comm.allreduce(float(data[comm.rank].max()), MAX)
                return a, r, g, lo, hi

            by_backend = {
                b: run_spmd(nranks, prog, backend=b)
                for b in ("thread", "process")
            }
            # Rank-ordered left fold: the documented reduction order.
            expected = data[0].copy()
            for d in data[1:]:
                expected = expected + d
            for backend, out in by_backend.items():
                label = f"{backend} nranks={nranks} shape={shape} {np.dtype(dtype)}"
                for rank, (a, r, g, lo, hi) in enumerate(out):
                    assert a.tobytes() == expected.tobytes(), label
                    assert (r is None) == (rank != 0), label
                    if rank == 0:
                        assert r.tobytes() == expected.tobytes(), label
                    if rank == nranks - 1:
                        assert [x.tobytes() for x in g] == [
                            d.tobytes() for d in data
                        ], label
                    else:
                        assert g is None, label
                    assert lo == min(float(d.min()) for d in data), label
                    assert hi == max(float(d.max()) for d in data), label
            t, p = by_backend["thread"], by_backend["process"]
            for (at, *_), (ap, *_) in zip(t, p):
                assert at.tobytes() == ap.tobytes()

    def test_float_sum_associativity_tolerance(self, seeded_rng):
        """The rank-ordered fold may differ from numpy's pairwise sum only
        within the classic |err| <= n*eps*sum|x| associativity bound -- and
        the fold itself is bit-identical across backends (determinism is a
        stronger claim than accuracy, and both must hold)."""
        for nranks, shape, _ in self._cases(seeded_rng, 3):
            data = [seeded_rng.standard_normal(shape) for _ in range(nranks)]

            def prog(comm):
                return comm.allreduce(data[comm.rank], SUM)

            t = run_spmd(nranks, prog, backend="thread")
            p = run_spmd(nranks, prog, backend="process")
            for at, ap in zip(t, p):
                assert at.tobytes() == ap.tobytes()
            pairwise = np.sum(np.stack(data), axis=0)
            bound = (
                len(data)
                * np.finfo(np.float64).eps
                * np.sum(np.abs(np.stack(data)), axis=0)
            )
            assert np.all(np.abs(t[0] - pairwise) <= bound + 1e-300)

    def test_halo_ghost_cell_conservation(self, seeded_rng):
        """Ghost exchange must neither create nor destroy field mass: the
        sum over every rank's interior equals the global sum exactly, and
        each ghost plane equals the neighbor's boundary plane it mirrors --
        identically on both backends."""
        for _ in range(3):
            nranks = int(seeded_rng.integers(1, 7))
            # Every axis >= nranks, so no decomposition can produce a block
            # thinner than the depth-1 ghost layer.
            dims = tuple(int(d) for d in seeded_rng.integers(6, 10, size=3))
            field = seeded_rng.random(dims)

            def prog(comm):
                ex = HaloExchanger(comm, dims, depth=1)
                g = ex.allocate_ghosted()
                e = ex.extent
                ex.scatter_field(
                    g, field[e.i0 : e.i1 + 1, e.j0 : e.j1 + 1, e.k0 : e.k1 + 1]
                )
                interior_sum = float(g[ex.interior()].sum())
                return interior_sum, g

            by_backend = {
                b: run_spmd(nranks, prog, backend=b)
                for b in ("thread", "process")
            }
            for backend, out in by_backend.items():
                label = f"{backend} nranks={nranks} dims={dims}"
                total = sum(s for s, _ in out)
                # Conservation: interiors partition the global field.
                assert total == pytest.approx(float(field.sum()), rel=1e-12), label
            for (st_, gt), (sp_, gp) in zip(
                by_backend["thread"], by_backend["process"]
            ):
                assert st_ == sp_
                assert gt.tobytes() == gp.tobytes()


class TestDecompositionProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        dims=st.tuples(st.integers(2, 20), st.integers(2, 20), st.integers(2, 20)),
        nranks=st.integers(1, 24),
    )
    def test_extent_point_counts_sum(self, dims, nranks):
        total = sum(
            regular_decompose_3d(dims, nranks, r)[0].num_points
            for r in range(nranks)
        )
        assert total == dims[0] * dims[1] * dims[2]
