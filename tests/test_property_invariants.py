"""Property-based tests over the system's cross-cutting invariants.

Each property here underpins one of the paper's measured claims: if any of
these broke, the corresponding experiment would be measuring a bug.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import parallel_histogram
from repro.analysis.autocorrelation import AutocorrelationState
from repro.mpi import SUM, run_spmd
from repro.render import RenderedImage, binary_swap, blank_image, direct_send
from repro.storage import BPReader, BPWriter
from repro.util import Extent
from repro.util.decomp import regular_decompose_3d


class TestMPIProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        nranks=st.integers(1, 6),
        n=st.integers(1, 64),
        seed=st.integers(0, 1000),
    )
    def test_allreduce_array_invariant(self, nranks, n, seed):
        """allreduce(SUM) of per-rank arrays equals the numpy sum and is
        identical on every rank."""
        rng = np.random.default_rng(seed)
        data = [rng.standard_normal(n) for _ in range(nranks)]

        def prog(comm):
            return comm.allreduce(data[comm.rank], SUM)

        out = run_spmd(nranks, prog)
        expected = data[0].copy()
        for d in data[1:]:
            expected = expected + d
        for o in out:
            np.testing.assert_array_equal(o, expected)

    @settings(max_examples=15, deadline=None)
    @given(nranks=st.integers(2, 6), seed=st.integers(0, 1000))
    def test_alltoall_is_transpose(self, nranks, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 100, (nranks, nranks))

        def prog(comm):
            return comm.alltoall(list(matrix[comm.rank]))

        out = run_spmd(nranks, prog)
        for r, row in enumerate(out):
            assert row == list(matrix[:, r])

    @settings(max_examples=15, deadline=None)
    @given(nranks=st.integers(1, 6), seed=st.integers(0, 1000))
    def test_exscan_prefix_property(self, nranks, seed):
        rng = np.random.default_rng(seed)
        vals = [int(v) for v in rng.integers(0, 50, nranks)]

        def prog(comm):
            return comm.exscan(vals[comm.rank])

        out = run_spmd(nranks, prog)
        assert out[0] is None
        for r in range(1, nranks):
            assert out[r] == sum(vals[:r])


class TestHistogramProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        nranks=st.integers(1, 6),
        n=st.integers(1, 300),
        bins=st.integers(1, 32),
        seed=st.integers(0, 1000),
    )
    def test_distribution_invariance(self, nranks, n, bins, seed):
        """The global histogram never depends on how data is distributed."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=n)
        if data.min() == data.max():
            return  # degenerate range uses a documented non-numpy convention
        chunks = np.array_split(data, nranks)

        def prog(comm):
            return parallel_histogram(comm, chunks[comm.rank], bins)

        h = run_spmd(nranks, prog)[0]
        expected, _ = np.histogram(data, bins=bins, range=(data.min(), data.max()))
        assert h.counts.tolist() == expected.tolist()
        assert h.total == n


class TestAutocorrelationProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        window=st.integers(1, 6),
        steps=st.integers(1, 12),
        seed=st.integers(0, 1000),
    )
    def test_delay_zero_is_energy(self, window, steps, seed):
        """corr[0] == sum of squares of the signal -- for any window."""
        rng = np.random.default_rng(seed)
        state = AutocorrelationState(window, 5)
        signal = rng.standard_normal((steps, 5))
        for row in signal:
            state.update(row)
        np.testing.assert_allclose(state.corr[0], (signal**2).sum(axis=0))

    @settings(max_examples=15, deadline=None)
    @given(window=st.integers(2, 5), seed=st.integers(0, 1000))
    def test_cauchy_schwarz(self, window, seed):
        """|corr[d]| <= corr[0] for stationary-bounded signals (up to the
        truncation of the first d terms)."""
        rng = np.random.default_rng(seed)
        state = AutocorrelationState(window, 8)
        for _ in range(20):
            state.update(rng.uniform(-1, 1, 8))
        # Generous bound accounting for edge terms.
        assert np.all(np.abs(state.corr[1:]) <= state.corr[0][None, :] + 1e-9)


class TestCompositingProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        nranks=st.integers(1, 6),
        w=st.integers(4, 24),
        h=st.integers(4, 24),
        seed=st.integers(0, 1000),
    )
    def test_binary_swap_equals_direct_send(self, nranks, w, h, seed):
        """The two compositing algorithms agree on arbitrary partials."""
        rng = np.random.default_rng(seed)
        rgbs = rng.integers(0, 256, (nranks, h, w, 3), dtype=np.uint8)
        masks = rng.integers(0, 2, (nranks, h, w)).astype(np.uint8) * 255

        def prog(comm):
            img = RenderedImage(rgbs[comm.rank].copy(), masks[comm.rank].copy())
            ds = direct_send(comm, img.copy())
            bs = binary_swap(comm, img.copy())
            if comm.rank == 0:
                return ds.rgb, ds.alpha, bs.rgb, bs.alpha
            return None

        ds_rgb, ds_alpha, bs_rgb, bs_alpha = run_spmd(nranks, prog)[0]
        assert np.array_equal(ds_rgb * (ds_alpha[..., None] > 0), bs_rgb * (bs_alpha[..., None] > 0))
        assert np.array_equal(ds_alpha > 0, bs_alpha > 0)

    @settings(max_examples=10, deadline=None)
    @given(nranks=st.integers(1, 5), seed=st.integers(0, 1000))
    def test_coverage_is_union(self, nranks, seed):
        """Composited coverage equals the union of partial coverages."""
        rng = np.random.default_rng(seed)
        masks = rng.integers(0, 2, (nranks, 8, 8)).astype(np.uint8) * 255

        def prog(comm):
            img = blank_image(8, 8)
            img.alpha[:] = masks[comm.rank]
            img.rgb[:] = 7
            out = binary_swap(comm, img)
            return None if out is None else (out.alpha > 0)

        got = run_spmd(nranks, prog)[0]
        expected = (masks > 0).any(axis=0)
        assert np.array_equal(got, expected)


class TestStorageProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        nranks=st.integers(1, 4),
        dims=st.tuples(st.integers(4, 10), st.integers(4, 8), st.integers(4, 8)),
        seed=st.integers(0, 1000),
    )
    def test_bp_roundtrip_any_decomposition(self, nranks, dims, seed, tmp_path_factory):
        tmpdir = tmp_path_factory.mktemp("bp_prop")
        rng = np.random.default_rng(seed)
        field = rng.standard_normal(dims)

        def prog(comm):
            ext, _, _ = regular_decompose_3d(dims, comm.size, comm.rank)
            w = BPWriter(comm, tmpdir / "f", dims)
            w.begin_step()
            w.write(
                "v",
                field[ext.i0 : ext.i1 + 1, ext.j0 : ext.j1 + 1, ext.k0 : ext.k1 + 1],
                ext,
            )
            w.end_step()
            w.close()

        run_spmd(nranks, prog)
        got = BPReader(tmpdir / "f").read("v", 0)
        np.testing.assert_array_equal(got, field)


class TestDecompositionProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        dims=st.tuples(st.integers(2, 20), st.integers(2, 20), st.integers(2, 20)),
        nranks=st.integers(1, 24),
    )
    def test_extent_point_counts_sum(self, dims, nranks):
        total = sum(
            regular_decompose_3d(dims, nranks, r)[0].num_points
            for r in range(nranks)
        )
        assert total == dims[0] * dims[1] * dims[2]
