"""Shared fixtures: SPMD backend matrix, seeded RNG, shm leak guard.

``spmd_backend`` is the cross-backend equivalence hook: module-scoped and
parametrized over both execution backends, it runs every test in a module
that opts in (via an autouse alias fixture) once per backend by setting
``REPRO_SPMD_BACKEND`` -- exercising the same selection path users and CI
use, with zero changes at ``run_spmd`` call sites.  Module scope keeps it
compatible with hypothesis tests (a function-scoped fixture would trip the
``function_scoped_fixture`` health check) and groups each module's run by
backend.

``_shm_leak_guard`` is autouse everywhere: the process backend maps bulk
payloads through named shared-memory segments whose lifecycle contract is
"consumer unlinks, launcher sweeps the rest" -- any segment surviving a
test is a real leak and fails that test at teardown.
"""

import os
import time

import numpy as np
import pytest

from repro.mpi import shm as _shm

#: The default seed for ``seeded_rng``; tests needing several independent
#: streams can derive children via ``rng.spawn``.
SEED = 20160214  # SC16 paper vintage


@pytest.fixture(scope="module", params=["thread", "process"])
def spmd_backend(request):
    """Run the requesting module once per SPMD execution backend.

    Selects the backend through ``REPRO_SPMD_BACKEND`` (the same knob the
    CI backend-matrix job uses), so unmodified ``run_spmd`` call sites are
    exercised on both backends.  Yields the backend name for tests that
    need to branch or label.
    """
    previous = os.environ.get("REPRO_SPMD_BACKEND")
    os.environ["REPRO_SPMD_BACKEND"] = request.param
    try:
        yield request.param
    finally:
        if previous is None:
            os.environ.pop("REPRO_SPMD_BACKEND", None)
        else:
            os.environ["REPRO_SPMD_BACKEND"] = previous


@pytest.fixture
def seeded_rng():
    """A deterministically seeded numpy Generator (no ambient randomness)."""
    return np.random.default_rng(SEED)


@pytest.fixture(autouse=True)
def _shm_leak_guard():
    """Fail any test that leaks a runtime shared-memory segment.

    Snapshots ``/dev/shm`` before the test; at teardown, briefly waits out
    in-flight transport teardown (worker processes exit asynchronously),
    then asserts no new ``repro-shm-*`` segment survived.  Survivors are
    unlinked so one leak cannot cascade into later tests.
    """
    before = set(_shm.list_segments())
    yield
    leaked = set(_shm.list_segments()) - before
    deadline = time.monotonic() + 2.0
    while leaked and time.monotonic() < deadline:
        time.sleep(0.05)
        leaked = set(_shm.list_segments()) - before
    if leaked:
        for name in leaked:
            try:
                from multiprocessing import shared_memory

                seg = shared_memory.SharedMemory(name=name)
                seg.close()
                seg.unlink()
            except OSError:
                pass
        pytest.fail(f"leaked shared-memory segments: {sorted(leaked)}")
