"""Unit tests for memory high-water accounting."""

import numpy as np
import pytest

from repro.util import MemoryTracker, sum_high_water
from repro.util.memory import array_nbytes


def test_allocate_free_tracks_current():
    m = MemoryTracker()
    m.allocate(100)
    m.allocate(50)
    assert m.current == 150
    m.free(100)
    assert m.current == 50


def test_peak_is_high_water_not_current():
    m = MemoryTracker()
    m.allocate(1000)
    m.free(900)
    assert m.current == 100
    assert m.peak == 1000
    assert m.high_water == 1000


def test_baseline_counts_toward_peak():
    m = MemoryTracker(baseline_bytes=500)
    assert m.current == 500
    assert m.peak == 500


def test_negative_allocation_rejected():
    m = MemoryTracker()
    with pytest.raises(ValueError):
        m.allocate(-1)
    with pytest.raises(ValueError):
        m.free(-1)


def test_double_free_detected():
    m = MemoryTracker()
    m.allocate(10)
    with pytest.raises(RuntimeError):
        m.free(20)


def test_track_array_counts_owned_buffer():
    m = MemoryTracker()
    a = np.zeros(1000, dtype=np.float64)
    m.track_array(a)
    assert m.current == a.nbytes


def test_track_array_ignores_views_zero_copy():
    """Views register nothing -- the zero-copy accounting rule (Fig. 4)."""
    m = MemoryTracker()
    a = np.zeros(1000, dtype=np.float64)
    view = a[10:500]
    m.track_array(view)
    assert m.current == 0
    strided = a[::2]
    m.track_array(strided)
    assert m.current == 0


def test_named_labels_accumulate():
    m = MemoryTracker()
    m.allocate(10, label="grid")
    m.allocate(20, label="grid")
    m.allocate(5, label="hist")
    assert m.named("grid") == 30
    assert m.named("hist") == 5
    m.free(10, label="grid")
    assert m.named("grid") == 20


def test_add_static_raises_floor():
    m = MemoryTracker()
    m.add_static(1 << 20, label="edition")
    assert m.static == 1 << 20
    assert m.peak >= 1 << 20


def test_sum_high_water_across_ranks():
    trackers = [MemoryTracker() for _ in range(4)]
    for i, t in enumerate(trackers):
        t.allocate((i + 1) * 100)
        t.free((i + 1) * 100)
    assert sum_high_water(trackers) == 100 + 200 + 300 + 400


def test_reset_peak():
    m = MemoryTracker()
    m.allocate(100)
    m.free(100)
    assert m.peak == 100
    m.reset_peak()
    assert m.peak == 0


def test_array_nbytes_matches_numpy():
    assert array_nbytes((10, 20), np.float64) == np.zeros((10, 20)).nbytes
    assert array_nbytes((7,), np.uint8) == 7


class TestAccountingGuards:
    def test_free_below_zero_raises_before_mutating(self):
        from repro.util import MemoryAccountingError

        m = MemoryTracker()
        m.allocate(100, label="grid")
        with pytest.raises(MemoryAccountingError):
            m.free(200, label="grid")
        # The failed free must not have corrupted the counters.
        assert m.current == 100
        assert m.named("grid") == 100

    def test_per_label_negative_balance_raises(self):
        """Total stays positive but the label itself would go negative."""
        from repro.util import MemoryAccountingError

        m = MemoryTracker()
        m.allocate(100, label="a")
        m.allocate(100, label="b")
        with pytest.raises(MemoryAccountingError):
            m.free(150, label="a")
        assert m.named("a") == 100 and m.named("b") == 100

    def test_error_message_includes_label_history(self):
        from repro.util import MemoryAccountingError

        m = MemoryTracker()
        m.allocate(64, label="hist::bins")
        m.free(64, label="hist::bins")
        with pytest.raises(MemoryAccountingError) as excinfo:
            m.free(64, label="hist::bins")
        msg = str(excinfo.value)
        assert "hist::bins" in msg
        assert "allocate" in msg and "free" in msg
        assert "64" in msg

    def test_accounting_error_is_runtime_error(self):
        from repro.util import MemoryAccountingError

        assert issubclass(MemoryAccountingError, RuntimeError)

    def test_history_is_bounded(self):
        m = MemoryTracker()
        for _ in range(100):
            m.allocate(8, label="loop")
            m.free(8, label="loop")
        assert len(m.history("loop")) <= 32

    def test_unknown_label_free_raises(self):
        from repro.util import MemoryAccountingError

        m = MemoryTracker()
        m.allocate(100)  # unlabeled
        with pytest.raises(MemoryAccountingError):
            m.free(10, label="never-allocated")
