"""Known-bad: a timer leaks on the exception path.

``comm.allreduce`` can raise between ``start()`` and ``stop()``; with no
try/finally the timer is still running when the exception escapes, its
interval is never recorded, and the next ``start()`` raises.  Expected
finding: timer-typestate at the creation line, with a witness through the
raising statement.
"""


def exchange(registry, comm, value):
    t = registry.timer("exchange")
    t.start()
    total = comm.allreduce(value)
    t.stop()
    return total
