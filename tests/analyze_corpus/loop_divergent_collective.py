"""Known-bad: a collective inside a loop whose bound depends on the rank.

Ranks with fewer iterations stop calling ``barrier`` while the others
block in it forever.  Expected finding: collective-in-rank-loop at the
``for`` line.
"""


def drain(comm, rank):
    for _ in range(rank):
        comm.barrier()
