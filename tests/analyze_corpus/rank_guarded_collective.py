"""Known-bad: a collective guarded by a rank test deadlocks the job.

Expected findings:
- collective-in-rank-branch at the ``comm.reduce`` line (syntactic rule)
- rank-divergent-collectives at the ``if`` line (path-sensitive rule:
  the true path runs [reduce, barrier], the false path only [barrier])
"""


def exchange(comm, data):
    if comm.rank == 0:
        comm.reduce(data)
    comm.barrier()
    return data
