"""Known-bad: a buffer is mutated in place after being sent.

The transport only guarantees the payload bytes are captured by the next
synchronization point; writing into ``scratch`` between ``send`` and the
``barrier`` is latently racy.  Expected finding: mutate-after-send
(warning) at the mutation line.
"""

import numpy as np


def overlap(comm, field):
    scratch = np.array(field, copy=True)
    comm.send(scratch, dest=1, tag=7)
    scratch[0] = 0.0
    comm.barrier()
    return scratch
