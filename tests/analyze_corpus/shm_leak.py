"""Known-bad: a created segment is only closed on one branch.

On the even-length path the segment is neither closed nor unlinked: the
mapping and the named segment both leak.  Expected finding: shm-lifecycle
at the creation line, with the leaking branch as witness.
"""

from multiprocessing.shared_memory import SharedMemory


def stage(payload):
    seg = SharedMemory(name="corpus-stage", create=True, size=len(payload))
    seg.buf[: len(payload)] = payload
    if len(payload) % 2:
        seg.close()
    return None
