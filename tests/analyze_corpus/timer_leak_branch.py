"""Known-bad: a timer is only stopped on one branch.

The start/stop *counts* balance (one each), so the PR 2 timer-balance
rule cannot see this; the path-sensitive typestate rule reports the
branch that exits with the timer still running.  Expected finding:
timer-typestate at the creation line.
"""


def work(registry, flag):
    t = registry.timer("phase")
    t.start()
    if flag:
        t.stop()
