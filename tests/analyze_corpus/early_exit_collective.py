"""Known-bad: a rank-dependent early return skips the collective sequence.

Inactive ranks return before ``bcast``/``barrier``; active ranks block in
them forever.  Expected finding: rank-divergent-collectives at the ``if``
line.
"""


def step(comm, rank, payload):
    if rank >= comm.size // 2:
        return None
    comm.bcast(payload)
    comm.barrier()
    return payload
