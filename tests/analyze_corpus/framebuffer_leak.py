"""Known-bad: a pooled framebuffer is leaked on the empty-tiles path.

The early return neither releases the buffer nor hands it off, so the
pool grows a buffer per call.  Expected finding: framebuffer-release at
the acquire line.
"""


def composite(pool, width, height, tiles):
    out = pool.acquire(width, height)
    for tile in tiles:
        out[tile.sel] = tile.data
    if not tiles:
        return None
    pool.release(out)
    return None
