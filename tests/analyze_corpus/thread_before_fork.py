"""Known-bad: a lock is created before a fork-based pool launch.

The forked children inherit a copy of the lock's state; if any thread
held it at fork time, no child thread exists to release it -- the classic
fork-after-thread deadlock.  Expected finding: thread-before-fork at the
pool launch line, with the path through the lock creation as witness.
"""

import threading
from concurrent.futures import ProcessPoolExecutor


def launch(tasks):
    lock = threading.Lock()
    results = []
    with ProcessPoolExecutor(max_workers=2) as pool:
        for task in tasks:
            with lock:
                results.append(pool.submit(task))
    return results
