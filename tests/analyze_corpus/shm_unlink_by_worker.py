"""Known-bad: a worker unlinks a segment it only attached to.

Attachers (``create=False``) must ``close()`` and leave ``unlink()`` to
the segment's owner; unlinking here destroys the name while other
attachers may still need it.  Expected findings: shm-worker-unlink at the
``unlink`` call, plus shm-lifecycle for the path where ``bytes(...)``
raises before ``close()`` (no try/finally).
"""

from multiprocessing.shared_memory import SharedMemory


def consume(name):
    seg = SharedMemory(name=name)
    data = bytes(seg.buf[:16])
    seg.close()
    seg.unlink()
    return data
