"""Tests for the in situ statistics analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.statistics import (
    Moments,
    StatisticsAnalysis,
    parallel_moments,
    quantiles_from_histogram,
)
from repro.core import Bridge
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd


class TestMoments:
    def test_from_values_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(3.0, 2.0, 1000)
        m = Moments.from_values(x)
        assert m.count == 1000
        assert m.mean == pytest.approx(x.mean())
        assert m.variance == pytest.approx(x.var())
        assert m.vmin == x.min() and m.vmax == x.max()

    def test_empty(self):
        m = Moments.from_values(np.array([]))
        assert m.count == 0
        assert m.variance == 0.0
        assert m.skewness == 0.0

    def test_merge_with_empty_identity(self):
        x = Moments.from_values(np.arange(10.0))
        assert vars(x.merge(Moments())) == vars(x)
        assert vars(Moments().merge(x)) == vars(x)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=100),
        st.lists(st.floats(-100, 100), min_size=1, max_size=100),
    )
    def test_merge_equals_concatenation_property(self, a, b):
        """Chan merge == moments of the concatenated sample."""
        xa, xb = np.array(a), np.array(b)
        merged = Moments.from_values(xa).merge(Moments.from_values(xb))
        direct = Moments.from_values(np.concatenate([xa, xb]))
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean, abs=1e-9)
        assert merged.m2 == pytest.approx(direct.m2, rel=1e-9, abs=1e-6)
        assert merged.m3 == pytest.approx(direct.m3, rel=1e-6, abs=1e-3)

    def test_skewness_sign(self):
        right_skewed = Moments.from_values(np.array([0.0] * 50 + [10.0] * 5))
        left_skewed = Moments.from_values(np.array([0.0] * 5 + [10.0] * 50))
        assert right_skewed.skewness > 0
        assert left_skewed.skewness < 0


class TestParallelMoments:
    def test_matches_serial_and_identical_on_all_ranks(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=500)
        chunks = np.array_split(data, 4)

        def prog(comm):
            return parallel_moments(comm, chunks[comm.rank])

        out = run_spmd(4, prog)
        for m in out:
            assert m.count == 500
            assert m.mean == pytest.approx(data.mean())
            assert m.variance == pytest.approx(data.var())

    def test_empty_rank_participates(self):
        chunks = [np.arange(10.0), np.array([])]

        def prog(comm):
            return parallel_moments(comm, chunks[comm.rank])

        m = run_spmd(2, prog)[0]
        assert m.count == 10


class TestQuantiles:
    def test_uniform_histogram_quantiles(self):
        edges = np.linspace(0.0, 1.0, 11)
        counts = np.full(10, 100)
        qs = quantiles_from_histogram(edges, counts, [0.0, 0.5, 1.0])
        assert qs[0] == pytest.approx(0.0)
        assert qs[1] == pytest.approx(0.5)
        assert qs[2] == pytest.approx(1.0)

    def test_median_of_skewed_histogram(self):
        edges = np.array([0.0, 1.0, 2.0])
        counts = np.array([90, 10])
        (median,) = quantiles_from_histogram(edges, counts, [0.5])
        assert median == pytest.approx(0.5 / 0.9, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            quantiles_from_histogram(np.array([0, 1]), np.array([0]), [0.5])
        with pytest.raises(ValueError):
            quantiles_from_histogram(np.array([0, 1]), np.array([5]), [1.5])

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(0, 1000), min_size=50, max_size=300),
        st.floats(0.05, 0.95),
    )
    def test_quantile_cdf_consistency_property(self, values, q):
        """The estimate's empirical CDF position is within one bin's mass
        of q -- the tightest guarantee a binned quantile can give (value
        error can exceed bins when mass piles up at one point)."""
        a = np.array(values)
        if a.min() == a.max():
            return
        counts, edges = np.histogram(a, bins=64)
        (est,) = quantiles_from_histogram(edges, counts, [q])
        n = a.size
        b = int(np.clip(np.searchsorted(edges, est, side="right") - 1, 0, 63))
        mass = counts[b] / n
        below = float((a < est).sum()) / n
        at_or_below = float((a <= est).sum()) / n
        assert below - mass - 1e-9 <= q <= at_or_below + mass + 1e-9


class TestStatisticsAnalysis:
    def test_in_situ_over_miniapp(self):
        def prog(comm):
            sim = OscillatorSimulation(comm, (10, 10, 10), default_oscillators())
            bridge = Bridge(comm, sim.make_data_adaptor())
            stats = StatisticsAnalysis(quantiles=[0.5])
            bridge.add_analysis(stats)
            bridge.initialize()
            sim.run(2, bridge)
            bridge.finalize()
            return stats.history, sim.extent, sim.field.copy()

        out = run_spmd(4, prog)
        history = out[0][0]
        assert len(history) == 2
        # Rebuild the global field and cross-check.
        assembled = np.zeros((10, 10, 10))
        for _, ext, block in out:
            assembled[
                ext.i0 : ext.i1 + 1, ext.j0 : ext.j1 + 1, ext.k0 : ext.k1 + 1
            ] = block
        row = history[-1]
        assert row["count"] == 1000
        assert row["mean"] == pytest.approx(assembled.mean())
        assert row["std"] == pytest.approx(assembled.std(), rel=1e-9)
        assert row["min"] == pytest.approx(assembled.min())
        med_true = float(np.median(assembled))
        binwidth = (assembled.max() - assembled.min()) / 128
        assert abs(row["quantiles"][0.5] - med_true) <= 2 * binwidth

    def test_decomposition_invariance(self):
        def prog(comm):
            sim = OscillatorSimulation(comm, (8, 8, 8), default_oscillators())
            bridge = Bridge(comm, sim.make_data_adaptor())
            stats = StatisticsAnalysis()
            bridge.add_analysis(stats)
            bridge.initialize()
            sim.run(1, bridge)
            bridge.finalize()
            return stats.history[0] if comm.rank == 0 else None

        a = run_spmd(1, prog)[0]
        b = run_spmd(4, prog)[0]
        assert a["count"] == b["count"]
        assert a["mean"] == pytest.approx(b["mean"], abs=1e-12)
        assert a["std"] == pytest.approx(b["std"], abs=1e-12)

    def test_configurable_registration(self):
        from repro.core import ConfigurableAnalysis
        from repro.util import Configuration

        ca = ConfigurableAnalysis(
            Configuration(
                {"analyses": [{"type": "statistics", "quantiles": [0.1, 0.9]}]}
            )
        )
        assert ca.analyses[0].quantiles == [0.1, 0.9]

    def test_validation(self):
        with pytest.raises(ValueError):
            StatisticsAnalysis(bins=0)
