"""Tests for the CFG/dataflow static analyzer (repro.analyze).

Three layers:

- unit tests for the CFG builder, path enumeration, and the worklist
  solvers (the machinery every checker rides on);
- the known-bad corpus under ``tests/analyze_corpus/``: each fixture must
  reproduce its advertised finding -- exact rule id and line -- and the
  path-sensitive rules must attach a CFG path witness;
- engine-level contracts: pragmas, rule filtering, the baseline file, the
  SARIF export, CLI exit codes, and the shipped tree analyzing clean
  against the committed baseline.
"""

import ast
import json
import os
import textwrap

import pytest

from repro.analyze import (
    analyze_paths,
    analyze_source,
    apply_baseline,
    load_baseline,
    main,
)
from repro.analyze.cfg import build_cfg, enumerate_paths
from repro.analyze.checkers import ALL_CHECKERS, RULE_CATALOG, checker_emits
from repro.analyze.dataflow import FactSolver, SetSolver
from repro.analyze.sarif import to_sarif

_HERE = os.path.dirname(__file__)
_CORPUS = os.path.join(_HERE, "analyze_corpus")
_REPO = os.path.abspath(os.path.join(_HERE, os.pardir))
_SRC_REPRO = os.path.join(_REPO, "src", "repro")
_BASELINE = os.path.join(_REPO, "analyze-baseline.json")


def _analyze(code: str, path: str = "src/repro/somemod.py"):
    return analyze_source(textwrap.dedent(code), path)


def _fn(code: str):
    tree = ast.parse(textwrap.dedent(code))
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            return node
    raise AssertionError("no function in snippet")


# --------------------------------------------------------------------------
# CFG construction
# --------------------------------------------------------------------------


class TestCFG:
    def test_straight_line_single_path(self):
        cfg = build_cfg(_fn("def f():\n    x = 1\n    return x\n"))
        paths, complete = enumerate_paths(cfg)
        assert complete
        assert len(paths) == 1

    def test_if_else_two_paths(self):
        cfg = build_cfg(
            _fn(
                """
                def f(a):
                    if a:
                        x = 1
                    else:
                        x = 2
                    return x
                """
            )
        )
        paths, complete = enumerate_paths(cfg)
        assert complete
        assert len(paths) == 2
        kinds = {p.edges[1].kind for p in paths}
        assert kinds == {"true", "false"}

    def test_loop_zero_and_one_iteration(self):
        cfg = build_cfg(
            _fn(
                """
                def f(items):
                    for it in items:
                        use(it)
                    return None
                """
            )
        )
        paths, complete = enumerate_paths(cfg)
        assert complete
        # Zero-iteration path and the single unrolled iteration.
        assert len(paths) == 2
        assert any(any(e.kind == "back" for e in p.edges) for p in paths)

    def test_while_true_has_no_false_exit(self):
        cfg = build_cfg(
            _fn(
                """
                def f(q):
                    while True:
                        if q.done():
                            return q.result()
                """
            )
        )
        header = next(b for b in cfg.blocks if isinstance(b.stmt, ast.While))
        assert all(e.kind != "false" for e in header.succs)

    def test_exception_edge_to_raise_exit(self):
        cfg = build_cfg(_fn("def f():\n    risky()\n    return 1\n"))
        call_block = next(b for b in cfg.blocks if b.line == 2)
        assert any(
            e.kind == "exc" and e.dst is cfg.raise_exit for e in call_block.succs
        )

    def test_try_except_routes_exception_to_handler(self):
        cfg = build_cfg(
            _fn(
                """
                def f():
                    try:
                        risky()
                    except ValueError:
                        recover()
                    return 1
                """
            )
        )
        call_block = next(b for b in cfg.blocks if b.line == 4)
        handler = next(b for b in cfg.blocks if b.label.startswith("except@"))
        assert any(e.dst is handler for e in call_block.succs if e.kind == "exc")

    def test_finally_runs_on_both_continuations(self):
        cfg = build_cfg(
            _fn(
                """
                def f():
                    try:
                        risky()
                    finally:
                        cleanup()
                    return 1
                """
            )
        )
        # The finally body is duplicated: one copy on the normal path, one
        # on the exceptional path that continues to raise_exit.
        cleanup_blocks = [b for b in cfg.blocks if b.line == 6]
        assert len(cleanup_blocks) == 2
        paths, complete = enumerate_paths(cfg, include_exc=True)
        assert complete
        exc_paths = [p for p in paths if p.exceptional]
        assert exc_paths and all(
            any(b.line == 6 for b in p.blocks) for p in exc_paths
        )

    def test_return_in_try_runs_finally(self):
        cfg = build_cfg(
            _fn(
                """
                def f():
                    try:
                        return compute()
                    finally:
                        cleanup()
                """
            )
        )
        paths, complete = enumerate_paths(cfg)
        assert complete
        assert all(any(b.line == 6 for b in p.blocks) for p in paths)

    def test_path_cap_reports_incomplete(self):
        branches = "\n".join(
            f"    if a{i}:\n        x = {i}" for i in range(12)
        )
        cfg = build_cfg(_fn(f"def f({', '.join(f'a{i}' for i in range(12))}):\n{branches}\n    return x\n"))
        paths, complete = enumerate_paths(cfg, max_paths=16)
        assert not complete
        assert len(paths) <= 16


# --------------------------------------------------------------------------
# Dataflow solvers
# --------------------------------------------------------------------------


class TestSolvers:
    def test_fact_solver_branch_join(self):
        cfg = build_cfg(
            _fn(
                """
                def f(a):
                    if a:
                        x = 1
                    return x
                """
            )
        )

        def transfer(edge, fact):
            if edge.src.line == 4:  # the assignment
                return ("assigned",)
            return (fact,)

        solver = FactSolver(cfg, transfer, "start").solve()
        facts = solver.at(cfg.exit)
        assert facts == {"assigned", "start"}

    def test_fact_solver_witness_ends_at_entry(self):
        cfg = build_cfg(_fn("def f():\n    x = 1\n    return x\n"))
        solver = FactSolver(cfg, lambda e, f: (f,), "init").solve()
        steps = solver.witness(cfg.exit, "init")
        assert steps[0] == "entry"

    def test_set_solver_events_reach_forward_only(self):
        cfg = build_cfg(
            _fn(
                """
                def f():
                    before()
                    event()
                    after()
                """
            )
        )

        def gen(block):
            return frozenset({"ev"}) if block.line == 4 else frozenset()

        solver = SetSolver(cfg, gen).solve()
        b2 = next(b for b in cfg.blocks if b.line == 3)
        b4 = next(b for b in cfg.blocks if b.line == 5)
        assert solver.before(b2) == frozenset()
        assert solver.before(b4) == frozenset({"ev"})

    def test_set_solver_exc_edge_drops_raising_blocks_gen(self):
        cfg = build_cfg(_fn("def f():\n    event()\n"))

        def gen(block):
            return frozenset({"ev"}) if block.line == 2 else frozenset()

        solver = SetSolver(cfg, gen).solve()
        # If event() itself raised, the event never happened.
        assert "ev" not in solver.before(cfg.raise_exit)
        assert "ev" in solver.before(cfg.exit)


# --------------------------------------------------------------------------
# Known-bad corpus
# --------------------------------------------------------------------------

#: fixture -> exact expected (rule id, line) findings.
CORPUS_EXPECTATIONS = {
    "rank_guarded_collective.py": {
        ("rank-divergent-collectives", 11),
        ("collective-in-rank-branch", 12),
    },
    "loop_divergent_collective.py": {("collective-in-rank-loop", 10)},
    "early_exit_collective.py": {("rank-divergent-collectives", 10)},
    "timer_leak_exception.py": {("timer-typestate", 12)},
    "timer_leak_branch.py": {("timer-typestate", 11)},
    "shm_unlink_by_worker.py": {
        ("shm-worker-unlink", 17),
        ("shm-lifecycle", 14),
    },
    "shm_leak.py": {("shm-lifecycle", 12)},
    "thread_before_fork.py": {("thread-before-fork", 16)},
    "mutate_after_send.py": {("mutate-after-send", 15)},
    "framebuffer_leak.py": {("framebuffer-release", 10)},
}

#: Rules that must attach a CFG path witness to every finding.
_PATH_SENSITIVE = {
    "rank-divergent-collectives",
    "collective-in-rank-loop",
    "timer-typestate",
    "memory-typestate",
    "shm-lifecycle",
    "shm-worker-unlink",
    "framebuffer-release",
    "thread-before-fork",
    "mutate-after-send",
}


class TestCorpus:
    def test_corpus_is_exhaustive(self):
        files = {f for f in os.listdir(_CORPUS) if f.endswith(".py")}
        assert files == set(CORPUS_EXPECTATIONS)

    @pytest.mark.parametrize("fixture", sorted(CORPUS_EXPECTATIONS))
    def test_fixture_reproduces_advertised_findings(self, fixture):
        path = os.path.join(_CORPUS, fixture)
        with open(path, "r", encoding="utf-8") as fh:
            findings = analyze_source(fh.read(), path)
        got = {(f.rule_id, f.line) for f in findings}
        assert got == CORPUS_EXPECTATIONS[fixture]
        for f in findings:
            if f.rule_id in _PATH_SENSITIVE:
                assert f.witness, f"{fixture}: {f.rule_id} finding lacks a path witness"

    def test_mutate_after_send_is_a_warning(self):
        path = os.path.join(_CORPUS, "mutate_after_send.py")
        with open(path, "r", encoding="utf-8") as fh:
            findings = analyze_source(fh.read(), path)
        assert [f.severity for f in findings] == ["warning"]


# --------------------------------------------------------------------------
# Engine contracts
# --------------------------------------------------------------------------


class TestEngine:
    def test_rule_catalog_ids_unique_and_complete(self):
        ids = [r.id for r in RULE_CATALOG]
        assert len(ids) == len(set(ids))
        emitted = {rid for c in ALL_CHECKERS for rid in checker_emits(c)}
        assert emitted == set(ids)

    def test_analyze_pragma_waives_new_rules(self):
        out = _analyze(
            """
            def drain(comm, rank):
                for _ in range(rank):  # analyze: allow(collective-in-rank-loop)
                    comm.barrier()
            """
        )
        assert out == []

    def test_lint_pragma_also_honored_by_engine(self):
        out = _analyze(
            """
            def drain(comm, rank):
                # lint: allow(collective-in-rank-loop)
                for _ in range(rank):
                    comm.barrier()
            """
        )
        assert out == []

    def test_try_finally_timer_is_clean(self):
        out = _analyze(
            """
            def work(registry, comm):
                t = registry.timer("phase")
                t.start()
                try:
                    comm.allreduce(1)
                finally:
                    t.stop()
            """
        )
        assert out == []

    def test_escaped_resource_not_reported(self):
        out = _analyze(
            """
            def make(pool, w, h):
                out = pool.acquire(w, h)
                return out
            """
        )
        assert out == []

    def test_handed_off_resource_not_reported(self):
        out = _analyze(
            """
            def swap(pool, comm, w, h):
                partial = pool.acquire(w, h)
                final = exchange(comm, partial)
                return final
            """
        )
        assert out == []

    def test_syntax_error_reported_not_raised(self):
        out = _analyze("def broken(:\n")
        assert [f.rule_id for f in out] == ["syntax-error"]

    def test_shipped_tree_clean_against_baseline(self):
        import dataclasses

        findings = [
            dataclasses.replace(
                f, path=os.path.relpath(f.path, _REPO).replace(os.sep, "/")
            )
            for f in analyze_paths([_SRC_REPRO])
        ]
        baseline = load_baseline(_BASELINE)
        for entry in baseline:
            assert entry.reason.strip(), f"baseline entry without a reason: {entry}"
        kept, suppressed = apply_baseline(findings, baseline)
        assert kept == [], "\n".join(str(f) for f in kept)
        # Every baseline entry must still match a real finding: stale
        # entries hide future regressions at the same location.
        assert suppressed == len(baseline)


class TestBaseline:
    def test_baseline_suppresses_exact_location_only(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "def drain(comm, rank):\n"
            "    for _ in range(rank):\n"
            "        comm.barrier()\n"
        )
        findings = analyze_paths([str(target)])
        assert len(findings) == 1
        entry_path = findings[0].path
        base = tmp_path / "base.json"
        base.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "path": entry_path,
                            "rule": "collective-in-rank-loop",
                            "line": findings[0].line,
                            "reason": "test",
                        }
                    ],
                }
            )
        )
        kept, suppressed = apply_baseline(findings, load_baseline(str(base)))
        assert kept == [] and suppressed == 1
        # A different line does not match.
        wrong = load_baseline(str(base))[0]
        wrong = type(wrong)(wrong.path, wrong.rule, wrong.line + 5, "x")
        kept, suppressed = apply_baseline(findings, [wrong])
        assert len(kept) == 1 and suppressed == 0


class TestSarif:
    def test_sarif_shape_and_code_flows(self):
        path = os.path.join(_CORPUS, "timer_leak_branch.py")
        with open(path, "r", encoding="utf-8") as fh:
            findings = analyze_source(fh.read(), path)
        doc = to_sarif(findings)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {r.id for r in RULE_CATALOG} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "timer-typestate"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("timer_leak_branch.py")
        flow = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert flow and flow[0]["location"]["message"]["text"] == "entry"


class TestMain:
    def test_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "def drain(comm, rank):\n"
            "    for _ in range(rank):\n"
            "        comm.barrier()\n"
        )
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        assert main([str(tmp_path / "missing.py")]) == 2
        assert main([str(clean), "--rules", "not-a-rule"]) == 2
        out = capsys.readouterr().out
        assert "collective-in-rank-loop" in out

    def test_rules_filter(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "import time\n"
            "def drain(comm, rank):\n"
            "    t0 = time.time()\n"
            "    for _ in range(rank):\n"
            "        comm.barrier()\n"
        )
        assert main([str(dirty), "--rules", "bare-time-call"]) == 1
        out = capsys.readouterr().out
        assert "bare-time-call" in out
        assert "collective-in-rank-loop" not in out

    def test_json_format_parses(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        assert main([str(dirty), "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data[0]["rule"] == "bare-time-call"
        assert data[0]["severity"] == "error"

    def test_sarif_output_file(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        out = tmp_path / "report.sarif"
        assert main([str(dirty), "--format", "sarif", "--output", str(out)]) == 1
        doc = json.loads(out.read_text())
        assert doc["runs"][0]["results"][0]["ruleId"] == "bare-time-call"

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULE_CATALOG:
            assert rule.id in out
