"""Additional coverage for the network model, machine helpers, extracts,
and CLI surfaces not exercised elsewhere."""

import numpy as np
import pytest

from repro.extracts import CinemaDatabase
from repro.perf import CORI, MIRA, TITAN, NetworkModel
from repro.perf.machine import MACHINES


class TestNetworkModelExtra:
    net = NetworkModel(CORI)

    def test_gather_grows_linearly_in_payload(self):
        t1 = self.net.gather(128, 1e4)
        t2 = self.net.gather(128, 2e4)
        assert t2 > t1
        assert t2 / t1 == pytest.approx(2.0, rel=0.1)

    def test_barrier_latency_only(self):
        t = self.net.barrier(1024)
        assert t == pytest.approx(2 * 10 * CORI.net_latency)

    def test_bcast_log_rounds(self):
        t8 = self.net.bcast(8, 1000)
        t64 = self.net.bcast(64, 1000)
        assert t64 == pytest.approx(2 * t8)

    def test_reduce_single_rank_free(self):
        assert self.net.reduce(1, 1e6) == 0.0
        assert self.net.gather(1, 1e6) == 0.0
        assert self.net.barrier(1) == 0.0

    def test_stage_block_same_node_cheaper(self):
        nbytes = 1e7
        on = self.net.stage_block(nbytes, same_node=True)
        off = self.net.stage_block(nbytes, same_node=False)
        assert on < off


class TestMachineExtra:
    def test_registry_complete(self):
        assert set(MACHINES) == {"cori", "mira", "titan"}
        assert MACHINES["cori"] is CORI

    def test_nodes_for(self):
        assert CORI.nodes_for(32) == 1
        assert CORI.nodes_for(33) == 2
        assert MIRA.nodes_for(16_384) == 1024
        assert TITAN.nodes_for(1) == 1

    def test_machine_relative_speeds(self):
        """Haswell cores outpace BG/Q cores; zlib rates reflect the
        measured PNG behaviour on each platform."""
        assert CORI.elem_rate > TITAN.elem_rate > MIRA.elem_rate
        assert CORI.zlib_rate > MIRA.zlib_rate


class TestCinemaExtra:
    def test_compression_vs_field(self, tmp_path):
        from repro.core import Bridge
        from repro.extracts import CameraParameter, CinemaExtractAnalysis
        from repro.miniapp import OscillatorSimulation
        from repro.miniapp.oscillator import default_oscillators
        from repro.mpi import run_spmd

        def prog(comm):
            sim = OscillatorSimulation(comm, (16, 16, 16), default_oscillators())
            bridge = Bridge(comm, sim.make_data_adaptor())
            bridge.add_analysis(
                CinemaExtractAnalysis(
                    str(tmp_path),
                    sweep=CameraParameter(axis=2, indices=(8,)),
                    resolution=(24, 24),
                )
            )
            bridge.initialize()
            sim.run(2, bridge)
            bridge.finalize()

        run_spmd(1, prog)
        db = CinemaDatabase(tmp_path)
        field_bytes = 16**3 * 8 * 2
        assert db.compression_vs_field(field_bytes) > 1.0


class TestCLIExtra:
    def test_burstbuffer_experiment_registered(self, capsys):
        from repro.cli import main

        assert main(["run", "burstbuffer"]) == 0
        out = capsys.readouterr().out
        assert "burst buffer" in out
        assert "True" in out
