"""Tests for the ADIOS (BP + FlexPath staging) and GLEAN emulations.

Parametrized over both execution backends (``spmd_backend``): BP subfile
writes, FlexPath staging rounds, GLEAN aggregation, and the rendered
Catalyst PNGs must come out identical whether ranks are threads or OS
processes.
"""

import numpy as np
import pytest


@pytest.fixture(scope="module", autouse=True)
def _backend(spmd_backend):
    """Run this whole module under each execution backend."""
    return spmd_backend

from repro.analysis import HistogramAnalysis
from repro.analysis.autocorrelation import AutocorrelationAnalysis
from repro.analysis.slice_ import SlicePlane
from repro.core import Bridge
from repro.infrastructure import GleanAdaptor
from repro.infrastructure.adios import (
    AdiosBPAdaptor,
    endpoint_for_writer,
    run_flexpath_job,
    writers_for_endpoint,
)
from repro.infrastructure.catalyst import CatalystAdaptor
from repro.infrastructure.glean import read_glean_step
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.render import decode_png
from repro.storage import BPReader


class TestWriterEndpointMapping:
    def test_balanced_mapping(self):
        assert [endpoint_for_writer(w, 4, 2) for w in range(4)] == [0, 0, 1, 1]
        assert writers_for_endpoint(0, 4, 2) == [0, 1]
        assert writers_for_endpoint(1, 4, 2) == [2, 3]

    def test_uneven_mapping_covers_all(self):
        n_writers, n_endpoints = 5, 2
        assigned = [
            w
            for e in range(n_endpoints)
            for w in writers_for_endpoint(e, n_writers, n_endpoints)
        ]
        assert sorted(assigned) == list(range(n_writers))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            endpoint_for_writer(7, 4, 2)


class TestAdiosBP:
    def test_bp_mode_roundtrip(self, tmp_path):
        dims = (8, 6, 4)
        path = tmp_path / "sim"

        def prog(comm):
            sim = OscillatorSimulation(comm, dims, default_oscillators(), dt=0.1)
            bridge = Bridge(comm, sim.make_data_adaptor())
            bridge.add_analysis(AdiosBPAdaptor(path))
            bridge.initialize()
            sim.run(2, bridge)
            bridge.finalize()
            return sim.extent, sim.field.copy()

        out = run_spmd(4, prog)
        expected = np.zeros(dims)
        for ext, block in out:
            expected[
                ext.i0 : ext.i1 + 1, ext.j0 : ext.j1 + 1, ext.k0 : ext.k1 + 1
            ] = block
        reader = BPReader(path)
        assert reader.num_steps == 2
        np.testing.assert_allclose(reader.read("data", 1), expected, rtol=1e-12)


def _writer_program_factory(dims, steps):
    def writer_program(comm, writer):
        sim = OscillatorSimulation(comm, dims, default_oscillators(), dt=0.1)
        bridge = Bridge(comm, sim.make_data_adaptor())
        bridge.add_analysis(writer)
        bridge.initialize()
        sim.run(steps, bridge)
        bridge.finalize()
        return {
            "extent": sim.extent,
            "field": sim.field.copy(),
            "steps_sent": writer.steps_sent,
        }

    return writer_program


class TestFlexPathStaging:
    def test_histogram_in_transit_matches_in_situ(self):
        """The staged histogram equals the histogram computed in situ."""
        dims = (10, 8, 6)
        steps = 2

        # In situ reference.
        def insitu(comm):
            sim = OscillatorSimulation(comm, dims, default_oscillators(), dt=0.1)
            bridge = Bridge(comm, sim.make_data_adaptor())
            hist = HistogramAnalysis(bins=16)
            bridge.add_analysis(hist)
            bridge.initialize()
            sim.run(steps, bridge)
            bridge.finalize()
            return hist.history

        reference = run_spmd(4, insitu)[0]

        result = run_flexpath_job(
            n_writers=4,
            n_endpoints=2,
            writer_program=_writer_program_factory(dims, steps),
            analysis_factory=lambda comm: HistogramAnalysis(bins=16),
        )
        assert all(w["steps_sent"] == steps for w in result.writer_results)
        staged_history = result.endpoint_results[0]["result"]
        assert staged_history is not None
        assert len(staged_history) == steps
        for ref, staged in zip(reference, staged_history):
            assert np.array_equal(ref.counts, staged.counts)
            assert ref.vmin == pytest.approx(staged.vmin)
            assert ref.vmax == pytest.approx(staged.vmax)

    def test_autocorrelation_in_transit(self):
        dims = (8, 8, 8)
        result = run_flexpath_job(
            n_writers=4,
            n_endpoints=2,
            writer_program=_writer_program_factory(dims, 6),
            analysis_factory=lambda comm: AutocorrelationAnalysis(window=3, k=2),
        )
        res = result.endpoint_results[0]["result"]
        assert res is not None
        assert res.window == 3
        assert all(len(t) == 2 for t in res.top)

    def test_catalyst_slice_in_transit_matches_in_situ(self):
        """Fig. 2's chain: simulation -> ADIOS -> Catalyst, image-identical
        to running Catalyst inline."""
        dims = (10, 10, 8)
        plane = SlicePlane(axis=2, index=4)

        def insitu(comm):
            sim = OscillatorSimulation(comm, dims, default_oscillators(), dt=0.1)
            bridge = Bridge(comm, sim.make_data_adaptor())
            cat = CatalystAdaptor(plane=plane, resolution=(40, 32))
            bridge.add_analysis(cat)
            bridge.initialize()
            sim.run(1, bridge)
            bridge.finalize()
            return cat.last_png

        reference = decode_png(run_spmd(4, insitu)[0])

        result = run_flexpath_job(
            n_writers=4,
            n_endpoints=2,
            writer_program=_writer_program_factory(dims, 1),
            analysis_factory=lambda comm: CatalystAdaptor(
                plane=plane, resolution=(40, 32)
            ),
        )
        png = result.endpoint_results[0]["result"]
        # Endpoint group root holds the image.
        cat_result = png
        assert cat_result["images_written"] == 1

    def test_writer_timers_report_advance_and_analysis(self):
        dims = (8, 8, 8)

        def writer_program(comm, writer):
            from repro.util import TimerRegistry

            timers = TimerRegistry()
            sim = OscillatorSimulation(comm, dims, default_oscillators(), dt=0.1)
            bridge = Bridge(comm, sim.make_data_adaptor(), timers=timers)
            bridge.add_analysis(writer)
            bridge.initialize()
            sim.run(2, bridge)
            bridge.finalize()
            return timers.as_dict()

        result = run_flexpath_job(
            n_writers=2,
            n_endpoints=1,
            writer_program=writer_program,
            analysis_factory=lambda comm: HistogramAnalysis(bins=8),
        )
        t = result.writer_results[0]
        assert t["adios::advance"]["count"] == 2
        assert t["adios::analysis"]["count"] == 2

    def test_endpoint_timers(self):
        result = run_flexpath_job(
            n_writers=2,
            n_endpoints=1,
            writer_program=_writer_program_factory((6, 6, 6), 3),
            analysis_factory=lambda comm: HistogramAnalysis(bins=8),
        )
        t = result.endpoint_results[0]["timers"]
        assert t["endpoint::initialize"]["count"] == 1
        assert t["endpoint::analysis"]["count"] == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            run_flexpath_job(0, 1, lambda c, w: None, lambda c: None)
        with pytest.raises(ValueError):
            run_flexpath_job(2, 4, lambda c, w: None, lambda c: None)


class TestGlean:
    def _run(self, tmp_path, nranks, rpa, asynchronous=False, steps=2, dims=(8, 6, 4)):
        def prog(comm):
            sim = OscillatorSimulation(comm, dims, default_oscillators(), dt=0.1)
            bridge = Bridge(comm, sim.make_data_adaptor())
            glean = GleanAdaptor(
                tmp_path, ranks_per_aggregator=rpa, asynchronous=asynchronous
            )
            bridge.add_analysis(glean)
            bridge.initialize()
            sim.run(steps, bridge)
            results = bridge.finalize()
            return sim.extent, sim.field.copy(), results

        return run_spmd(nranks, prog)

    def test_aggregated_write_roundtrip(self, tmp_path):
        out = self._run(tmp_path, 4, rpa=2)
        blocks = read_glean_step(tmp_path, 2)
        assert sorted(blocks) == [0, 1, 2, 3]
        for rank, (ext, data) in blocks.items():
            expected_ext, expected_field, _ = out[rank]
            assert ext == expected_ext
            np.testing.assert_array_equal(data, expected_field)

    def test_aggregator_count(self, tmp_path):
        self._run(tmp_path, 4, rpa=2, steps=1)
        import os

        files = [f for f in os.listdir(tmp_path) if f.startswith("glean_step")]
        assert len(files) == 2  # 4 ranks / 2 per aggregator

    def test_async_mode_equivalent(self, tmp_path):
        out = self._run(tmp_path, 4, rpa=4, asynchronous=True, steps=3)
        blocks = read_glean_step(tmp_path, 3)
        assert sorted(blocks) == [0, 1, 2, 3]
        for rank, (ext, data) in blocks.items():
            _, expected_field, _ = out[rank]
            np.testing.assert_array_equal(data, expected_field)

    def test_results_report_roles(self, tmp_path):
        out = self._run(tmp_path, 4, rpa=2, steps=1)
        roles = [o[2]["GleanAdaptor"]["aggregator"] for o in out]
        assert roles == [True, False, True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            GleanAdaptor("x", ranks_per_aggregator=0)
