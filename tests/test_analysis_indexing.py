"""Tests for in situ bitmap indexing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.indexing import (
    BitmapIndex,
    BitmapIndexAnalysis,
    load_index,
    query_step,
)
from repro.core import Bridge
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd


class TestBitmapIndex:
    def test_build_bin_counts(self):
        values = np.array([0.0, 0.1, 0.5, 0.9, 1.0])
        idx = BitmapIndex.build(values, 2, 0.0, 1.0)
        assert idx.bins == 2
        assert idx.bin_count(0) == 2  # 0.0, 0.1
        assert idx.bin_count(1) == 3  # 0.5, 0.9, 1.0 (vmax clipped in)

    def test_empty_values(self):
        idx = BitmapIndex.build(np.array([]), 4, 0.0, 1.0)
        assert idx.n == 0
        assert idx.query(0.0, 1.0).upper == 0

    def test_fully_covered_bins_exact(self):
        values = np.linspace(0, 1, 100)
        idx = BitmapIndex.build(values, 10, 0.0, 1.0)
        # Query aligned to the index's OWN edges: bins 2..5 fully covered.
        lo, hi = float(idx.edges[2]), float(idx.edges[6])
        rc = idx.query(lo, hi)
        truth = int(((values >= lo) & (values < hi)).sum())
        assert rc.lower == truth
        assert rc.upper == truth  # no candidates: fully covered

    def test_edge_bins_bound_and_refine(self):
        rng = np.random.default_rng(0)
        values = rng.random(500)
        idx = BitmapIndex.build(values, 16, 0.0, 1.0)
        lo, hi = 0.133, 0.71
        rc = idx.query(lo, hi)
        truth = int(((values >= lo) & (values < hi)).sum())
        assert rc.lower <= truth <= rc.upper
        refined = idx.query(lo, hi, raw_values=values)
        assert refined.exact == truth

    def test_query_validation(self):
        idx = BitmapIndex.build(np.arange(10.0), 4, 0.0, 9.0)
        with pytest.raises(ValueError):
            idx.query(5.0, 1.0)
        with pytest.raises(ValueError):
            idx.query(0.0, 1.0, raw_values=np.zeros(3))

    def test_index_smaller_than_data(self):
        values = np.random.default_rng(1).random(10_000)
        idx = BitmapIndex.build(values, 16, 0.0, 1.0)
        # 16 bins x n/8 bytes per bitmap = 2 B/value vs 8 B/value raw.
        assert idx.nbytes() < values.nbytes / 2

    def test_build_validation(self):
        with pytest.raises(ValueError):
            BitmapIndex.build(np.zeros(4), 0, 0.0, 1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(0, 100), min_size=1, max_size=300),
        st.integers(1, 32),
        st.floats(0, 100),
        st.floats(0, 100),
    )
    def test_bounds_always_bracket_truth_property(self, values, bins, a, b):
        lo, hi = min(a, b), max(a, b)
        arr = np.array(values)
        vmin, vmax = float(arr.min()), float(arr.max())
        idx = BitmapIndex.build(arr, bins, vmin, vmax)
        rc = idx.query(lo, hi, raw_values=arr)
        truth = int(((arr >= lo) & (arr < hi)).sum())
        assert rc.lower <= truth <= rc.upper
        assert rc.exact == truth


class TestBitmapIndexAnalysis:
    def _run(self, tmpdir, nranks=2, steps=2, dims=(10, 8, 6)):
        def prog(comm):
            sim = OscillatorSimulation(comm, dims, default_oscillators(), dt=0.1)
            bridge = Bridge(comm, sim.make_data_adaptor())
            bi = BitmapIndexAnalysis(tmpdir, bins=16)
            bridge.add_analysis(bi)
            bridge.initialize()
            sim.run(steps, bridge)
            results = bridge.finalize()
            return sim.extent, sim.field.copy(), results

        return run_spmd(nranks, prog)

    def test_index_files_written(self, tmp_path):
        out = self._run(str(tmp_path))
        info = out[0][2]["BitmapIndexAnalysis"]
        assert info["bytes_index"] < info["bytes_indexed"]
        idx = load_index(str(tmp_path), 2, 0)
        assert idx.bins == 16

    def test_posthoc_query_without_raw_data(self, tmp_path):
        """The payoff: range counts from indexes alone bracket the truth."""
        out = self._run(str(tmp_path), nranks=3)
        # Ground truth from the final fields.
        values = np.concatenate([f.reshape(-1) for _, f, _ in out])
        lo, hi = -0.2, 0.3
        truth = int(((values >= lo) & (values < hi)).sum())
        rc = query_step(str(tmp_path), 2, nranks=3, lo=lo, hi=hi)
        assert rc.lower <= truth <= rc.upper
        # The bounds are useful, not vacuous.
        assert rc.upper - rc.lower < values.size / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            BitmapIndexAnalysis("x", bins=0)
