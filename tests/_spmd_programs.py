"""Module-level SPMD programs for process-backend start-method tests.

The ``spawn`` and ``forkserver`` start methods pickle the program by
reference, so it must be importable at module scope -- closures (what most
tests use, under ``fork``) do not qualify.  Keep these small and
deterministic; they exist to prove spawn-safety, not to exercise features.
"""

import numpy as np


def ring_allreduce(comm, scale=1.0):
    """One send/recv ring pass plus an allreduce; returns plain floats."""
    a = (np.arange(32, dtype=np.float64) + comm.rank) * scale
    comm.send(a, (comm.rank + 1) % comm.size, tag=3)
    r = comm.recv(source=(comm.rank - 1) % comm.size, tag=3)
    total = comm.allreduce(float(r.sum()))
    return float(total)


def rank_pid(comm):
    """Each rank's PID, for asserting real process-per-rank execution."""
    import os

    return comm.rank, os.getpid()
