"""Tests for the experiment registry and CLI."""

import pytest

from repro.cli import main
from repro.experiments import available_experiments, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        names = set(available_experiments())
        expected = {
            "fig03", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
            "fig10", "fig11", "fig12", "fig15", "fig16", "fig17",
            "table1", "table2",
        }
        assert expected <= names

    def test_every_experiment_runs(self):
        for name in available_experiments():
            header, rows = run_experiment(name)
            assert isinstance(header, str) and header
            assert rows, f"{name} produced no rows"
            for row in rows:
                assert isinstance(row, str)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_table1_row_content(self):
        _, rows = run_experiment("table1")
        assert len(rows) == 3
        assert rows[0].startswith("1K")
        assert "45440" in rows[2]


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "fig17" in out

    def test_run_one(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "VTK I/O" in out
        assert "45440" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "fig10", "fig15"]) == 0
        out = capsys.readouterr().out
        assert "=== fig10" in out and "=== fig15" in out

    def test_run_all(self, capsys):
        assert main(["run", "all"]) == 0
        out = capsys.readouterr().out
        for name in available_experiments():
            assert f"=== {name}" in out

    def test_unknown_is_error(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
