"""Tests for the generic structured halo exchange.

Parametrized over both execution backends (``spmd_backend``): ghost-cell
contents are asserted against a reference computed from the global field,
so passing on the process backend proves halo faces survive the pipe +
shared-memory transport bit-for-bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, FaultRule
from repro.mpi import run_spmd
from repro.mpi.halo import HaloExchanger


@pytest.fixture(scope="module", autouse=True)
def _backend(spmd_backend):
    """Run this whole module under each execution backend."""
    return spmd_backend


def _global_field(dims, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(dims)


def _expected_ghosted(field, ext, depth, periodic):
    """Reference ghosted block computed from the global field."""
    dims = field.shape
    ni, nj, nk = ext.shape
    out = np.empty((ni + 2 * depth, nj + 2 * depth, nk + 2 * depth))
    for li in range(out.shape[0]):
        for lj in range(out.shape[1]):
            for lk in range(out.shape[2]):
                gi = ext.i0 + li - depth
                gj = ext.j0 + lj - depth
                gk = ext.k0 + lk - depth
                g = [gi, gj, gk]
                for a in range(3):
                    if periodic[a]:
                        g[a] %= dims[a]
                    else:
                        g[a] = min(max(g[a], 0), dims[a] - 1)
                out[li, lj, lk] = field[g[0], g[1], g[2]]
    return out


class TestHaloExchange:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    @pytest.mark.parametrize("periodic", [(True, True, True), (False, False, False)])
    def test_ghosts_match_global_field(self, nranks, periodic):
        dims = (8, 6, 6)
        field = _global_field(dims)

        def prog(comm):
            ex = HaloExchanger(comm, dims, depth=1, periodic=periodic)
            ghosted = ex.allocate_ghosted()
            e = ex.extent
            owned = field[e.i0 : e.i1 + 1, e.j0 : e.j1 + 1, e.k0 : e.k1 + 1]
            ex.scatter_field(ghosted, owned)
            return e, ghosted

        for ext, ghosted in run_spmd(nranks, prog):
            expected = _expected_ghosted(field, ext, 1, periodic)
            np.testing.assert_allclose(ghosted, expected, rtol=0, atol=0)

    def test_depth_two(self):
        dims = (12, 6, 6)
        field = _global_field(dims, seed=3)

        def prog(comm):
            ex = HaloExchanger(comm, dims, depth=2)
            ghosted = ex.allocate_ghosted()
            e = ex.extent
            ex.scatter_field(
                ghosted, field[e.i0 : e.i1 + 1, e.j0 : e.j1 + 1, e.k0 : e.k1 + 1]
            )
            return e, ghosted

        for ext, ghosted in run_spmd(3, prog):
            expected = _expected_ghosted(field, ext, 2, (True, True, True))
            np.testing.assert_allclose(ghosted, expected)

    def test_mixed_periodicity(self):
        dims = (8, 8, 4)
        field = _global_field(dims, seed=5)
        periodic = (True, False, True)

        def prog(comm):
            ex = HaloExchanger(comm, dims, periodic=periodic)
            ghosted = ex.allocate_ghosted()
            e = ex.extent
            ex.scatter_field(
                ghosted, field[e.i0 : e.i1 + 1, e.j0 : e.j1 + 1, e.k0 : e.k1 + 1]
            )
            return e, ghosted

        for ext, ghosted in run_spmd(4, prog):
            expected = _expected_ghosted(field, ext, 1, periodic)
            np.testing.assert_allclose(ghosted, expected)

    def test_corner_ghosts_filled(self):
        """Dimension-by-dimension exchange must fill corners too."""
        dims = (6, 6, 6)
        field = _global_field(dims, seed=7)

        def prog(comm):
            ex = HaloExchanger(comm, dims)
            ghosted = ex.allocate_ghosted()
            e = ex.extent
            ex.scatter_field(
                ghosted, field[e.i0 : e.i1 + 1, e.j0 : e.j1 + 1, e.k0 : e.k1 + 1]
            )
            return e, ghosted[0, 0, 0]

        for ext, corner in run_spmd(8, prog):
            gi = (ext.i0 - 1) % 6
            gj = (ext.j0 - 1) % 6
            gk = (ext.k0 - 1) % 6
            assert corner == field[gi, gj, gk]

    def test_interior_slices(self):
        def prog(comm):
            ex = HaloExchanger(comm, (8, 8, 8), depth=2)
            g = ex.allocate_ghosted()
            g[ex.interior()] = 1.0
            return float(g.sum()), ex.extent.num_points

        total, npts = run_spmd(2, prog)[0]
        assert total == npts

    def test_validation(self):
        def prog(comm):
            with pytest.raises(ValueError):
                HaloExchanger(comm, (8, 8, 8), depth=0)
            ex = HaloExchanger(comm, (8, 8, 8))
            with pytest.raises(ValueError):
                ex.exchange(np.zeros((3, 3, 3)))
            with pytest.raises(ValueError):
                ex.scatter_field(ex.allocate_ghosted(), np.zeros((2, 2, 2)))

        run_spmd(1, prog)

    def test_periodic_single_block_self_wraps(self):
        """A periodic axis with one block is its own neighbor: ghosts must
        wrap the owned block, exactly as numpy's wrap padding does."""
        dims = (6, 5, 4)
        field = _global_field(dims, seed=11)

        def prog(comm):
            ex = HaloExchanger(comm, dims, depth=1)
            ghosted = ex.allocate_ghosted()
            ex.scatter_field(ghosted, field)
            return ghosted

        ghosted = run_spmd(1, prog)[0]
        np.testing.assert_allclose(ghosted, np.pad(field, 1, mode="wrap"))

    def test_periodic_single_block_shape_equal_depth(self):
        """shape == depth on a self-wrapping axis is the boundary case that
        must still be exact (every owned plane is sent, none is stale)."""
        dims = (2, 6, 6)
        field = _global_field(dims, seed=13)

        def prog(comm):
            ex = HaloExchanger(comm, dims, depth=2)
            ghosted = ex.allocate_ghosted()
            ex.scatter_field(ghosted, field)
            return ghosted

        ghosted = run_spmd(1, prog)[0]
        np.testing.assert_allclose(ghosted, np.pad(field, 2, mode="wrap"))

    def test_periodic_single_block_under_depth_rejected(self):
        """Regression: a periodic single-block axis thinner than the ghost
        depth used to construct fine and then self-wrap stale ghost planes
        into the ghost layers (silent garbage).  It must be rejected up
        front like the multi-block case always was."""

        def prog(comm):
            with pytest.raises(ValueError, match="self-wraps"):
                HaloExchanger(comm, (1, 8, 8), depth=2)
            # The same thin axis is fine when nothing exchanges over it.
            ex = HaloExchanger(comm, (1, 8, 8), depth=2, periodic=(False, True, True))
            assert ex.extent.shape[0] == 1

        run_spmd(1, prog)

    def test_multicomponent_fields(self):
        """Trailing component dimensions ride along untouched."""
        dims = (6, 4, 4)
        field = np.stack([_global_field(dims, s) for s in (0, 1)], axis=-1)

        def prog(comm):
            ex = HaloExchanger(comm, dims)
            g = np.zeros(ex.ghosted_shape + (2,))
            e = ex.extent
            g[ex.interior()] = field[
                e.i0 : e.i1 + 1, e.j0 : e.j1 + 1, e.k0 : e.k1 + 1
            ]
            ex.exchange(g)
            return e, g

        for ext, g in run_spmd(2, prog):
            for c in range(2):
                expected = _expected_ghosted(
                    field[..., c], ext, 1, (True, True, True)
                )
                np.testing.assert_allclose(g[..., c], expected)

    @pytest.mark.parametrize(
        "rules",
        [
            (FaultRule("mpi.send", "delay", 0.5, params={"seconds": 0.003}),),
            (FaultRule("mpi.send", "duplicate", 0.5),),
            (
                FaultRule("mpi.send", "delay", 0.3, params={"seconds": 0.002}),
                FaultRule("mpi.send", "duplicate", 0.3),
                FaultRule("mpi.send", "drop", 0.15, params={"retransmit_after": 0.004}),
            ),
        ],
        ids=["delay", "duplicate", "mixed"],
    )
    def test_ghosts_byte_identical_under_message_faults(self, rules):
        """Injected delay/duplication/drop on the fabric must not change a
        single ghost byte: sequence numbers restore send order and suppress
        duplicates, so a faulted exchange equals the fault-free one."""
        dims = (8, 6, 6)
        field = _global_field(dims, seed=17)

        def prog(comm):
            ex = HaloExchanger(comm, dims, depth=1)
            ghosted = ex.allocate_ghosted()
            e = ex.extent
            ex.scatter_field(
                ghosted, field[e.i0 : e.i1 + 1, e.j0 : e.j1 + 1, e.k0 : e.k1 + 1]
            )
            # A second exchange reuses the same tags/sequence space -- the
            # case where a straggling duplicate from round one could bite.
            ex.exchange(ghosted)
            return ghosted

        clean = run_spmd(4, prog)
        faulted = run_spmd(
            4, prog, faults=FaultPlan(seed=23, rules=rules), timeout=30.0
        )
        for a, b in zip(clean, faulted):
            assert a.tobytes() == b.tobytes()

    @settings(max_examples=10, deadline=None)
    @given(
        nranks=st.integers(1, 6),
        seed=st.integers(0, 100),
    )
    def test_property_any_rank_count(self, nranks, seed):
        dims = (6, 6, 6)
        field = _global_field(dims, seed=seed)

        def prog(comm):
            ex = HaloExchanger(comm, dims)
            ghosted = ex.allocate_ghosted()
            e = ex.extent
            ex.scatter_field(
                ghosted, field[e.i0 : e.i1 + 1, e.j0 : e.j1 + 1, e.k0 : e.k1 + 1]
            )
            return e, ghosted

        for ext, ghosted in run_spmd(nranks, prog):
            expected = _expected_ghosted(field, ext, 1, (True, True, True))
            np.testing.assert_allclose(ghosted, expected)
