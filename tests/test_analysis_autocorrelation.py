"""Tests for the temporal autocorrelation analysis."""

import math

import numpy as np
import pytest

from repro.analysis import AutocorrelationAnalysis, AutocorrelationState
from repro.core import Bridge
from repro.miniapp import Oscillator, OscillatorKind, OscillatorSimulation
from repro.mpi import run_spmd


class TestAutocorrelationState:
    def test_single_cell_matches_direct_sum(self):
        """corr[d] == sum_s f(s) f(s-d) computed by hand."""
        signal = [1.0, 2.0, -1.0, 3.0, 0.5, -2.0]
        window = 3
        st = AutocorrelationState(window, 1)
        for v in signal:
            st.update(np.array([v]))
        for d in range(window):
            expected = sum(
                signal[s] * signal[s - d] for s in range(d, len(signal))
            )
            assert st.corr[d, 0] == pytest.approx(expected), f"delay {d}"

    def test_warmup_skips_unavailable_delays(self):
        st = AutocorrelationState(4, 1)
        st.update(np.array([2.0]))
        # Only delay 0 possible after one step.
        assert st.corr[0, 0] == 4.0
        assert np.all(st.corr[1:, 0] == 0.0)

    def test_two_buffers_sized_as_paper_says(self):
        """Two circular buffers, each O(window * ncells)."""
        st = AutocorrelationState(5, 100)
        assert st.values.shape == (5, 100)
        assert st.corr.shape == (5, 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            AutocorrelationState(0, 10)
        st = AutocorrelationState(3, 10)
        with pytest.raises(ValueError):
            st.update(np.zeros(5))

    def test_local_top_k(self):
        st = AutocorrelationState(1, 5)
        st.corr[0] = np.array([0.1, 5.0, 3.0, 4.0, 0.2])
        top = st.local_top_k(2)
        assert top[0] == [(5.0, 1), (4.0, 3)]

    def test_local_top_k_global_offset(self):
        st = AutocorrelationState(1, 3, global_offset=100)
        st.corr[0] = np.array([1.0, 9.0, 2.0])
        assert st.local_top_k(1)[0] == [(9.0, 101)]

    def test_top_k_validation(self):
        st = AutocorrelationState(1, 3)
        with pytest.raises(ValueError):
            st.local_top_k(0)

    def test_finalize_merges_across_ranks(self):
        def prog(comm):
            st = AutocorrelationState(2, 2, global_offset=comm.rank * 2)
            # Rank r contributes correlations r*10 + [1, 2] at delay 0.
            st.corr[0] = np.array([comm.rank * 10 + 1.0, comm.rank * 10 + 2.0])
            st.corr[1] = np.array([0.0, float(comm.rank)])
            return st.finalize(comm, k=3)

        out = run_spmd(3, prog)
        res = out[0]
        assert out[1] is None and out[2] is None
        assert res.top[0] == [(22.0, 5), (21.0, 4), (12.0, 3)]
        assert res.top[1][0] == (2.0, 5)

    def test_empty_rank(self):
        def prog(comm):
            n = 0 if comm.rank == 1 else 2
            st = AutocorrelationState(1, n, global_offset=0 if comm.rank == 0 else 2)
            if n:
                st.update(np.full(n, float(comm.rank + 1)))
            return st.finalize(comm, k=2)

        res = run_spmd(2, prog)[0]
        assert len(res.top[0]) == 2


class TestAutocorrelationAnalysis:
    def test_periodic_oscillator_center_found(self):
        """The paper's correctness claim: 'For periodic oscillators, this
        reduction identifies the centers of the oscillators.'"""
        dims = (9, 9, 9)
        osc = Oscillator(
            OscillatorKind.PERIODIC, (0.5, 0.5, 0.5), 0.15, 2 * math.pi
        )

        def prog(comm):
            sim = OscillatorSimulation(comm, dims, [osc], dt=0.05)
            bridge = Bridge(comm, sim.make_data_adaptor())
            ac = AutocorrelationAnalysis(window=4, k=1)
            bridge.add_analysis(ac)
            bridge.initialize()
            sim.run(20, bridge)
            bridge.finalize()
            return ac.result

        res = run_spmd(1, prog)[0]
        # Strongest delay-0 autocorrelation should be at the grid point
        # nearest the oscillator center: (4, 4, 4) -> flat index.
        _, flat = res.top[0][0]
        expected = np.ravel_multi_index((4, 4, 4), dims)
        assert flat == expected

    def test_parallel_matches_serial_topk(self):
        dims = (8, 8, 8)
        osc = Oscillator(
            OscillatorKind.PERIODIC, (0.4, 0.6, 0.5), 0.2, 3 * math.pi
        )

        def prog(comm):
            sim = OscillatorSimulation(comm, dims, [osc], dt=0.07)
            bridge = Bridge(comm, sim.make_data_adaptor())
            ac = AutocorrelationAnalysis(window=3, k=4)
            bridge.add_analysis(ac)
            bridge.initialize()
            sim.run(10, bridge)
            bridge.finalize()
            return ac.result

        serial = run_spmd(1, prog)[0]
        # NOTE: parallel global indices use the rank-contiguous flattening
        # (exscan offsets), so compare correlation VALUES only.
        parallel = run_spmd(4, prog)[0]
        for d in range(3):
            sv = [c for c, _ in serial.top[d]]
            pv = [c for c, _ in parallel.top[d]]
            assert sv == pytest.approx(pv)

    def test_finalize_without_execute_returns_none(self):
        def prog(comm):
            ac = AutocorrelationAnalysis(window=3)
            ac.initialize(comm)
            return ac.finalize()

        assert run_spmd(1, prog) == [None]
