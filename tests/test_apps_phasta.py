"""Tests for the PHASTA proxy (unstructured mesh, zero-copy adaptor,
Catalyst-style slice render with the serial PNG path)."""

import numpy as np
import pytest

from repro.apps.phasta_proxy import (
    PhastaSimulation,
    PhastaSliceRender,
    build_rank_mesh,
    tail_flow,
)
from repro.core import Bridge
from repro.data import Association, CellType
from repro.mpi import run_spmd
from repro.render import decode_png
from repro.util import TimerRegistry


class TestMeshBuild:
    def test_serial_mesh_counts(self):
        def prog(comm):
            x, y, z, tets = build_rank_mesh(comm, (4, 3, 2))
            return x.size, tets.shape

        nodes, tshape = run_spmd(1, prog)[0]
        assert nodes == 5 * 4 * 3
        assert tshape == (4 * 3 * 2 * 6, 4)

    def test_parallel_element_total(self):
        """Tet count is conserved across decompositions."""

        def prog(comm):
            _, _, _, tets = build_rank_mesh(comm, (8, 4, 4))
            return tets.shape[0]

        assert sum(run_spmd(1, prog)) == 8 * 4 * 4 * 6
        assert sum(run_spmd(4, prog)) == 8 * 4 * 4 * 6

    def test_valid_connectivity(self):
        def prog(comm):
            x, y, z, tets = build_rank_mesh(comm, (4, 4, 4))
            assert tets.min() >= 0
            assert tets.max() < x.size
            return True

        assert all(run_spmd(2, prog))

    def test_tets_have_positive_volume(self):
        def prog(comm):
            x, y, z, tets = build_rank_mesh(comm, (3, 3, 3))
            pts = np.column_stack((x, y, z))
            p = pts[tets]
            vol = np.einsum(
                "ij,ij->i",
                np.cross(p[:, 1] - p[:, 0], p[:, 2] - p[:, 0]),
                p[:, 3] - p[:, 0],
            ) / 6.0
            return float(np.abs(vol).sum()), float(np.abs(vol).min())

        total, vmin = run_spmd(1, prog)[0]
        assert vmin > 0
        assert total == pytest.approx(1.0)  # tets tile the unit cube

    def test_too_many_ranks_rejected(self):
        from repro.mpi import SPMDError

        def prog(comm):
            build_rank_mesh(comm, (2, 4, 4))

        with pytest.raises(SPMDError):
            run_spmd(4, prog)


class TestTailFlow:
    def test_free_stream_far_from_tail(self):
        u, v, w = tail_flow(np.array([0.0]), np.array([0.5]), np.array([0.5]), 0.1)
        assert u[0] == pytest.approx(1.0, abs=0.01)

    def test_blockage_at_tail(self):
        u, _, _ = tail_flow(np.array([0.45]), np.array([0.5]), np.array([0.5]), 0.1)
        assert u[0] < 0.2

    def test_jet_pulses_in_time(self):
        x = np.array([0.47])
        y = np.array([0.3])
        z = np.array([0.5])
        _, _, w1 = tail_flow(x, y, z, t=1.0 / 32.0, jet_freq=8.0)
        _, _, w2 = tail_flow(x, y, z, t=3.0 / 32.0, jet_freq=8.0)
        assert w1[0] * w2[0] < 0  # opposite phases of the jet cycle

    def test_amplitude_knob(self):
        x, y, z = np.array([0.47]), np.array([0.3]), np.array([0.5])
        _, _, small = tail_flow(x, y, z, 1.0 / 32.0, jet_amplitude=0.1)
        _, _, big = tail_flow(x, y, z, 1.0 / 32.0, jet_amplitude=0.8)
        assert abs(big[0]) > abs(small[0])


class TestPhastaSimulation:
    def test_advance_updates_fields(self):
        def prog(comm):
            sim = PhastaSimulation(comm, global_cells=(8, 4, 4))
            sim.advance()
            return float(np.abs(sim.vel_u).max()), sim.step

        vmax, step = run_spmd(2, prog)[0]
        assert vmax > 0.5
        assert step == 1

    def test_solver_cost_scales_with_sweeps(self):
        def prog(comm):
            t_cheap = TimerRegistry()
            sim = PhastaSimulation(comm, (8, 4, 4), smoothing_sweeps=1, timers=t_cheap)
            sim.advance()
            t_dear = TimerRegistry()
            sim2 = PhastaSimulation(comm, (8, 4, 4), smoothing_sweeps=8, timers=t_dear)
            sim2.advance()
            return t_cheap.total("phasta::solve"), t_dear.total("phasta::solve")

        cheap, dear = run_spmd(1, prog)[0]
        assert dear > cheap


class TestPhastaAdaptor:
    def test_nodal_arrays_zero_copy(self):
        def prog(comm):
            sim = PhastaSimulation(comm, (6, 4, 4))
            sim.advance()
            ad = sim.make_data_adaptor()
            vel = ad.get_array(Association.POINT, "velocity")
            p = ad.get_array(Association.POINT, "pressure")
            return (
                bool(np.shares_memory(vel.component(0), sim.vel_u)),
                bool(np.shares_memory(vel.component(1), sim.vel_v)),
                bool(np.shares_memory(vel.component(2), sim.vel_w)),
                p.is_zero_copy_of(sim.pressure),
            )

        assert run_spmd(2, prog)[0] == (True, True, True, True)

    def test_connectivity_full_copy(self):
        """'the VTK grid connectivity is a full copy'"""

        def prog(comm):
            sim = PhastaSimulation(comm, (6, 4, 4))
            ad = sim.make_data_adaptor()
            mesh = ad.get_mesh(structure_only=True)
            return bool(np.shares_memory(mesh.connectivity, sim.tets))

        assert run_spmd(1, prog)[0] is False

    def test_mesh_rebuilt_each_step(self):
        """'pointers ... are passed every time in situ is accessed'"""

        def prog(comm):
            sim = PhastaSimulation(comm, (6, 4, 4))
            ad = sim.make_data_adaptor()
            ad.get_mesh()
            ad.release_data()
            ad.get_mesh()
            return ad.mesh_constructions

        assert run_spmd(1, prog)[0] == 2

    def test_velocity_magnitude(self):
        def prog(comm):
            sim = PhastaSimulation(comm, (6, 4, 4))
            sim.advance()
            ad = sim.make_data_adaptor()
            vel = ad.get_array(Association.POINT, "velocity")
            mag = vel.magnitude()
            expected = np.sqrt(sim.vel_u**2 + sim.vel_v**2 + sim.vel_w**2)
            return np.allclose(mag, expected)

        assert run_spmd(1, prog)[0]


class TestPhastaSliceRender:
    def _run(self, nranks, steps=1, **kw):
        def prog(comm):
            timers = TimerRegistry()
            sim = PhastaSimulation(comm, (8, 6, 6))
            bridge = Bridge(comm, sim.make_data_adaptor(), timers=timers)
            sl = PhastaSliceRender(resolution=kw.pop("resolution", (80, 20)), **kw)
            bridge.add_analysis(sl)
            bridge.initialize()
            sim.run(steps, bridge)
            bridge.finalize()
            return sl.last_png, sl.images_written, timers

        return run_spmd(nranks, prog)

    def test_image_produced(self):
        png, n, _ = self._run(1)[0]
        assert n == 1
        img = decode_png(png)
        assert img.shape == (20, 80, 3)
        assert img.std() > 1.0  # the tail wake is visible

    def test_parallel_image_close_to_serial(self):
        """Node splatting at block seams can differ by a pixel; images must
        agree almost everywhere."""
        serial = decode_png(self._run(1)[0][0]).astype(int)
        par = decode_png(self._run(2)[0][0]).astype(int)
        frac_same = (np.abs(serial - par).max(axis=2) == 0).mean()
        assert frac_same > 0.9

    def test_phase_timers(self):
        _, _, timers = self._run(1)[0]
        for phase in (
            "phasta_slice::extract",
            "phasta_slice::render",
            "phasta_slice::composite",
            "phasta_slice::png",
        ):
            assert timers.total(phase) >= 0
            assert timers.timer(phase).count == 1

    def test_compression_level_zero_smaller_time_bigger_file(self):
        """The Table 2 finding, natively: skipping compression shrinks
        encode time and grows the file."""
        png_c, _, _ = self._run(1, compression_level=6, resolution=(256, 128))[0]
        png_s, _, _ = self._run(1, compression_level=0, resolution=(256, 128))[0]
        assert len(png_s) > len(png_c)

    def test_axis_validation(self):
        with pytest.raises(ValueError):
            PhastaSliceRender(axis=5)

    def test_output_dir(self, tmp_path):
        self._run(1, steps=2, output_dir=str(tmp_path))
        assert len(list(tmp_path.glob("phasta_*.png"))) == 2
