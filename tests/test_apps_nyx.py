"""Tests for the Nyx proxy (particle-mesh gravity, distributed FFT,
ghost-blanked SENSEI exposure)."""

import numpy as np
import pytest

from repro.analysis import HistogramAnalysis
from repro.analysis.slice_ import SlicePlane
from repro.apps.nyx_proxy import NyxSimulation
from repro.core import Bridge
from repro.data import Association, GHOST_ARRAY_NAME
from repro.infrastructure.catalyst import CatalystAdaptor
from repro.mpi import SUM, run_spmd
from repro.render import decode_png


class TestDeposit:
    def test_mass_conserved(self):
        def prog(comm):
            sim = NyxSimulation(comm, grid=16, seed=1)
            sim.deposit()
            # Owned (non-halo) mass, in overdensity units: mean must be 1.
            local = float(sim.density[1:-1].sum())
            total = comm.allreduce(local, SUM)
            return total / sim.grid**3

        for n in (1, 2, 4):
            assert run_spmd(n, prog)[0] == pytest.approx(1.0, rel=1e-12)

    def test_parallel_density_matches_serial(self):
        def prog(comm):
            sim = NyxSimulation(comm, grid=12, seed=5)
            sim.deposit()
            return sim.x_lo, sim.density[1:-1].copy()

        serial = run_spmd(1, prog)[0][1]
        for n in (2, 3):
            pieces = sorted(run_spmd(n, prog), key=lambda p: p[0])
            assembled = np.concatenate([d for _, d in pieces], axis=0)
            np.testing.assert_allclose(assembled, serial, rtol=1e-10, atol=1e-12)

    def test_uniform_lattice_gives_uniform_density(self):
        def prog(comm):
            sim = NyxSimulation(comm, grid=8, perturbation=0.0, seed=0)
            sim.deposit()
            d = sim.density[1:-1]
            return float(d.min()), float(d.max())

        dmin, dmax = run_spmd(2, prog)[0]
        assert dmin == pytest.approx(1.0, rel=1e-9)
        assert dmax == pytest.approx(1.0, rel=1e-9)


class TestPoisson:
    def test_matches_serial_fft(self):
        """The distributed transpose-FFT equals a plain 3-D FFT solve."""

        def prog(comm):
            sim = NyxSimulation(comm, grid=12, seed=7)
            sim.deposit()
            sim.solve_poisson()
            return sim.x_lo, sim.density[1:-1].copy(), sim.potential[1:-1].copy()

        serial_pieces = run_spmd(1, prog)
        rho = serial_pieces[0][1]
        phi_serial = serial_pieces[0][2]
        # Independent reference solve.
        g = 12
        f = np.fft.fftn(rho)
        k = 2 * np.pi * np.fft.fftfreq(g, d=1.0 / g)
        k2 = k[:, None, None] ** 2 + k[None, :, None] ** 2 + k[None, None, :] ** 2
        with np.errstate(divide="ignore", invalid="ignore"):
            f = np.where(k2 > 0, -f / k2, 0.0)
        phi_ref = np.fft.ifftn(f).real
        np.testing.assert_allclose(phi_serial, phi_ref, atol=1e-10)

        for n in (2, 3, 4):
            pieces = sorted(run_spmd(n, prog), key=lambda p: p[0])
            phi = np.concatenate([p for _, _, p in pieces], axis=0)
            np.testing.assert_allclose(phi, phi_ref, atol=1e-10)

    def test_poisson_residual_small(self):
        """Discrete check: the spectral solve satisfies Poisson's equation
        (Laplacian via FFT of phi reproduces the source)."""

        def prog(comm):
            sim = NyxSimulation(comm, grid=16, seed=2)
            sim.deposit()
            rho = sim.density[1:-1].copy()
            sim.solve_poisson()
            return rho, sim.potential[1:-1].copy()

        rho, phi = run_spmd(1, prog)[0]
        g = 16
        k = 2 * np.pi * np.fft.fftfreq(g, d=1.0 / g)
        k2 = k[:, None, None] ** 2 + k[None, :, None] ** 2 + k[None, None, :] ** 2
        lap = np.fft.ifftn(-k2 * np.fft.fftn(phi)).real
        # Laplacian(phi) = rho minus its mean (k=0 mode removed).
        np.testing.assert_allclose(lap, rho - rho.mean(), atol=1e-8)


class TestDynamics:
    def test_particle_count_conserved_through_migration(self):
        def prog(comm):
            sim = NyxSimulation(comm, grid=12, seed=3)
            for _ in range(3):
                sim.advance()
            return comm.allreduce(sim.positions.shape[0], SUM), sim.total_particles

        got, expected = run_spmd(3, prog)[0]
        assert got == expected

    def test_positions_stay_periodic(self):
        def prog(comm):
            sim = NyxSimulation(comm, grid=12, seed=3, dt=0.2)
            for _ in range(5):
                sim.advance()
            return float(sim.positions.min()), float(sim.positions.max())

        lo, hi = run_spmd(2, prog)[0]
        assert lo >= 0.0 and hi < 1.0

    def test_gravity_clusters_overdensity(self):
        """Structure formation: density variance grows under self-gravity."""

        def prog(comm):
            sim = NyxSimulation(comm, grid=16, seed=9, gravity=6.0, dt=0.1)
            sim.deposit()
            v0 = float(np.var(sim.density[1:-1]))
            for _ in range(8):
                sim.advance()
            sim.deposit()
            return v0, float(np.var(sim.density[1:-1]))

        v0, v1 = run_spmd(1, prog)[0]
        assert v1 > v0

    def test_parallel_evolution_matches_serial(self):
        def prog(comm):
            sim = NyxSimulation(comm, grid=12, seed=11)
            for _ in range(2):
                sim.advance()
            sim.deposit()
            return sim.x_lo, sim.density[1:-1].copy()

        serial = run_spmd(1, prog)[0][1]
        pieces = sorted(run_spmd(3, prog), key=lambda p: p[0])
        assembled = np.concatenate([d for _, d in pieces], axis=0)
        np.testing.assert_allclose(assembled, serial, rtol=1e-8, atol=1e-10)


class TestNyxAdaptor:
    def test_density_view_zero_copy(self):
        def prog(comm):
            sim = NyxSimulation(comm, grid=12, seed=1)
            sim.deposit()
            ad = sim.make_data_adaptor()
            arr = ad.get_array(Association.POINT, "density")
            return arr.is_zero_copy_of(sim.density)

        assert all(run_spmd(2, prog))

    def test_ghost_array_marks_halo_planes(self):
        def prog(comm):
            sim = NyxSimulation(comm, grid=12, seed=1)
            ad = sim.make_data_adaptor()
            levels = ad.get_array(Association.POINT, GHOST_ARRAY_NAME).values
            ext = sim.ghosted_extent()
            lv = levels.reshape(ext.shape)
            owned_planes = (lv == 0).all(axis=(1, 2)).sum()
            ghost_planes = (lv == 1).all(axis=(1, 2)).sum()
            return owned_planes, ghost_planes, sim.nx_local

        for owned, ghost, nxl in run_spmd(3, prog):
            assert owned == nxl
            assert ghost in (1, 2)  # interior ranks have 2, edge ranks 1

    def test_histogram_excludes_ghosts(self):
        """In situ histogram over the ghosted slab counts each cell once."""

        def prog(comm):
            sim = NyxSimulation(comm, grid=12, seed=1)
            bridge = Bridge(comm, sim.make_data_adaptor())
            hist = HistogramAnalysis(bins=16, array="density")
            bridge.add_analysis(hist)
            bridge.initialize()
            sim.run(1, bridge)
            bridge.finalize()
            return hist.history[-1] if comm.rank == 0 else None

        for n in (1, 2, 4):
            h = run_spmd(n, prog)[0]
            assert h.total == 12**3, f"{n} ranks counted ghosts"

    def test_catalyst_slice_over_nyx(self):
        def prog(comm):
            sim = NyxSimulation(comm, grid=16, seed=4, gravity=5.0)
            bridge = Bridge(comm, sim.make_data_adaptor())
            cat = CatalystAdaptor(
                plane=SlicePlane(axis=2, index=8),
                array="density",
                resolution=(48, 48),
            )
            bridge.add_analysis(cat)
            bridge.initialize()
            sim.run(2, bridge)
            bridge.finalize()
            return cat.last_png

        png = run_spmd(2, prog)[0]
        img = decode_png(png)
        assert img.shape == (48, 48, 3)
        assert img.std() > 1.0

    def test_unknown_array(self):
        def prog(comm):
            sim = NyxSimulation(comm, grid=8)
            ad = sim.make_data_adaptor()
            with pytest.raises(KeyError):
                ad.get_array(Association.POINT, "temperature")

        run_spmd(1, prog)

    def test_validation(self):
        from repro.mpi import SPMDError

        def prog(comm):
            NyxSimulation(comm, grid=2)

        with pytest.raises(SPMDError):
            run_spmd(4, prog)
