"""Unit and property tests for domain decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import Extent, block_decompose_1d, factor_ranks, regular_decompose_3d


class TestBlockDecompose1D:
    def test_even_split(self):
        assert block_decompose_1d(10, 2, 0) == (0, 5)
        assert block_decompose_1d(10, 2, 1) == (5, 10)

    def test_remainder_goes_to_leading_blocks(self):
        # 10 = 3 + 3 + 2 + 2
        blocks = [block_decompose_1d(10, 4, i) for i in range(4)]
        sizes = [hi - lo for lo, hi in blocks]
        assert sizes == [3, 3, 2, 2]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            block_decompose_1d(10, 0, 0)
        with pytest.raises(ValueError):
            block_decompose_1d(10, 2, 2)

    @given(st.integers(0, 10_000), st.integers(1, 64))
    def test_partition_property(self, n, parts):
        """Blocks tile [0, n) exactly, contiguously, with balanced sizes."""
        blocks = [block_decompose_1d(n, parts, i) for i in range(parts)]
        assert blocks[0][0] == 0
        assert blocks[-1][1] == n
        for (lo0, hi0), (lo1, hi1) in zip(blocks, blocks[1:]):
            assert hi0 == lo1
        sizes = [hi - lo for lo, hi in blocks]
        assert max(sizes) - min(sizes) <= 1


class TestFactorRanks:
    def test_cubes(self):
        assert factor_ranks(8) == (2, 2, 2)
        assert factor_ranks(27) == (3, 3, 3)

    def test_prime(self):
        assert factor_ranks(7) == (7, 1, 1)

    def test_one(self):
        assert factor_ranks(1) == (1, 1, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            factor_ranks(0)

    @given(st.integers(1, 4096))
    def test_product_property(self, n):
        grid = factor_ranks(n)
        assert grid[0] * grid[1] * grid[2] == n
        assert grid[0] >= grid[1] >= grid[2] >= 1


class TestExtent:
    def test_shape_points_cells(self):
        e = Extent(0, 9, 0, 4, 0, 0)
        assert e.shape == (10, 5, 1)
        assert e.num_points == 50
        assert e.num_cells == 0  # flat in k

        e3 = Extent(0, 2, 0, 2, 0, 2)
        assert e3.num_cells == 8

    def test_contains(self):
        e = Extent(2, 5, 0, 3, 1, 1)
        assert e.contains(2, 0, 1)
        assert e.contains(5, 3, 1)
        assert not e.contains(6, 0, 1)
        assert not e.contains(2, 0, 0)

    def test_intersect(self):
        a = Extent(0, 10, 0, 10, 0, 10)
        b = Extent(5, 15, 5, 15, 5, 15)
        assert a.intersect(b) == Extent(5, 10, 5, 10, 5, 10)

    def test_disjoint_intersect_is_none(self):
        a = Extent(0, 4, 0, 4, 0, 4)
        b = Extent(6, 9, 0, 4, 0, 4)
        assert a.intersect(b) is None

    def test_grow_clamped(self):
        bounds = Extent(0, 10, 0, 10, 0, 10)
        e = Extent(0, 4, 3, 6, 9, 10)
        g = e.grow(2, bounds)
        assert g == Extent(0, 6, 1, 8, 7, 10)


class TestRegularDecompose3D:
    def test_single_rank_gets_all(self):
        ext, grid, coord = regular_decompose_3d((8, 8, 8), 1, 0)
        assert ext == Extent(0, 7, 0, 7, 0, 7)
        assert grid == (1, 1, 1)
        assert coord == (0, 0, 0)

    def test_out_of_range_rank(self):
        with pytest.raises(ValueError):
            regular_decompose_3d((8, 8, 8), 4, 4)

    @settings(max_examples=25, deadline=None)
    @given(
        st.tuples(st.integers(4, 12), st.integers(4, 12), st.integers(4, 12)),
        st.integers(1, 16),
    )
    def test_blocks_tile_domain(self, dims, nranks):
        """Union of local extents covers every point exactly once."""
        seen = {}
        for rank in range(nranks):
            ext, grid, _ = regular_decompose_3d(dims, nranks, rank)
            assert grid[0] * grid[1] * grid[2] == nranks
            for i in range(ext.i0, ext.i1 + 1):
                for j in range(ext.j0, ext.j1 + 1):
                    for k in range(ext.k0, ext.k1 + 1):
                        key = (i, j, k)
                        assert key not in seen, f"point {key} owned twice"
                        seen[key] = rank
        assert len(seen) == dims[0] * dims[1] * dims[2]
