"""Tests for the Freeprocessing-style interception interface."""

import numpy as np
import pytest

from repro.analysis import HistogramAnalysis
from repro.core import Bridge
from repro.core.freeprocessing import InterceptingWriter
from repro.data import Association
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.storage import read_global_field

DIMS = (10, 8, 6)
STEPS = 2


def _run_intercepted(tmpdir, passthrough):
    def prog(comm):
        sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.1)
        writer = InterceptingWriter(
            comm, [HistogramAnalysis(bins=16)], passthrough=passthrough
        )
        ad = sim.make_data_adaptor()
        for _ in range(STEPS):
            sim.advance()
            mesh = ad.get_mesh()
            mesh.add_array(Association.POINT, ad.get_array(Association.POINT, "data"))
            writer.write_timestep(tmpdir, sim.step, sim.time, mesh, "data")
            ad.release_data()
        return writer.finalize()

    return run_spmd(4, prog)


def _run_sensei():
    def prog(comm):
        sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.1)
        bridge = Bridge(comm, sim.make_data_adaptor())
        hist = HistogramAnalysis(bins=16)
        bridge.add_analysis(hist)
        bridge.initialize()
        sim.run(STEPS, bridge)
        bridge.finalize()
        return hist.history

    return run_spmd(4, prog)[0]


class TestInterception:
    def test_histogram_matches_sensei_path(self, tmp_path):
        """No instrumentation, same results: the Freeprocessing promise."""
        reference = _run_sensei()
        out = _run_intercepted(str(tmp_path), passthrough=False)
        history = out[0]["HistogramAnalysis"]
        assert len(history) == STEPS
        for ref, got in zip(reference, history):
            assert np.array_equal(ref.counts, got.counts)

    def test_double_copy_accounted(self, tmp_path):
        """...and the cost: every step serializes AND deserializes."""
        out = _run_intercepted(str(tmp_path), passthrough=False)
        per_rank_bytes = out[0]["bytes_serialized"]
        assert per_rank_bytes > 0
        assert out[0]["bytes_deserialized"] == per_rank_bytes
        # Total across ranks = steps x full field size.
        total = sum(o["bytes_serialized"] for o in out)
        assert total == STEPS * DIMS[0] * DIMS[1] * DIMS[2] * 8

    def test_passthrough_still_writes_files(self, tmp_path):
        _run_intercepted(str(tmp_path), passthrough=True)
        field = read_global_field(str(tmp_path), STEPS)
        assert field.shape == DIMS
        assert np.abs(field).max() > 0

    def test_no_passthrough_writes_nothing(self, tmp_path):
        _run_intercepted(str(tmp_path / "empty"), passthrough=False)
        assert not (tmp_path / "empty").exists()

    def test_analyses_get_correct_times(self, tmp_path):
        from repro.core.adaptors import AnalysisAdaptor

        class Probe(AnalysisAdaptor):
            def __init__(self):
                super().__init__()
                self.times = []

            def execute(self, data):
                self.times.append((data.get_data_time_step(), data.get_data_time()))
                return True

        def prog(comm):
            sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.5)
            probe = Probe()
            writer = InterceptingWriter(comm, [probe])
            ad = sim.make_data_adaptor()
            sim.advance()
            mesh = ad.get_mesh()
            mesh.add_array(Association.POINT, ad.get_array(Association.POINT, "data"))
            writer.write_timestep(str(tmp_path), sim.step, sim.time, mesh, "data")
            # Returned, not closed over: the program may run in another
            # process, where closure mutation never reaches the launcher.
            return probe.times

        assert run_spmd(1, prog) == [[(1, 0.5)]]

    def test_intercepted_arrays_are_copies(self, tmp_path):
        """The analyses never alias simulation memory through this path."""
        from repro.core.adaptors import AnalysisAdaptor

        captured = {}

        class Capture(AnalysisAdaptor):
            def execute(self, data):
                captured["arr"] = data.get_array(Association.POINT, "data").values
                return True

        def prog(comm):
            sim = OscillatorSimulation(comm, DIMS, default_oscillators())
            writer = InterceptingWriter(comm, [Capture()])
            ad = sim.make_data_adaptor()
            sim.advance()
            mesh = ad.get_mesh()
            mesh.add_array(Association.POINT, ad.get_array(Association.POINT, "data"))
            writer.write_timestep(str(tmp_path), sim.step, sim.time, mesh, "data")
            return bool(np.shares_memory(captured["arr"], sim.field))

        assert run_spmd(1, prog) == [False]
