"""Tests for in situ data reduction (downsampling + quantization extracts)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reduction import (
    ReducedExtractAnalysis,
    dequantize,
    downsample_mean,
    quantization_error_bound,
    quantize,
    read_reduced_extract,
)
from repro.core import Bridge
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd


class TestDownsample:
    def test_factor_one_is_copy(self):
        f = np.random.default_rng(0).random((4, 4, 4))
        out = downsample_mean(f, 1)
        np.testing.assert_array_equal(out, f)
        assert not np.shares_memory(out, f)

    def test_block_means_exact(self):
        f = np.arange(8.0).reshape(2, 2, 2)
        out = downsample_mean(f, 2)
        assert out.shape == (1, 1, 1)
        assert out[0, 0, 0] == pytest.approx(f.mean())

    def test_partial_trailing_blocks(self):
        f = np.ones((5, 5, 5))
        out = downsample_mean(f, 2)
        assert out.shape == (3, 3, 3)
        np.testing.assert_allclose(out, 1.0)  # means of ones are ones

    def test_constant_preserved(self):
        f = np.full((6, 4, 4), 3.7)
        np.testing.assert_allclose(downsample_mean(f, 3), 3.7)

    def test_mean_preserved_for_divisible(self):
        rng = np.random.default_rng(1)
        f = rng.random((8, 8, 8))
        out = downsample_mean(f, 2)
        assert out.mean() == pytest.approx(f.mean())

    def test_validation(self):
        with pytest.raises(ValueError):
            downsample_mean(np.zeros((2, 2, 2)), 0)
        with pytest.raises(ValueError):
            downsample_mean(np.zeros((2, 2)), 2)


class TestQuantize:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(-50, 50), min_size=1, max_size=100),
        st.integers(2, 16),
    )
    def test_error_bound_property(self, values, bits):
        """Round-trip error never exceeds the advertised bound."""
        f = np.array(values)
        vmin, vmax = float(f.min()), float(f.max())
        codes = quantize(f, bits, vmin, vmax)
        back = dequantize(codes, bits, vmin, vmax)
        bound = quantization_error_bound(bits, vmin, vmax)
        assert np.all(np.abs(back - f) <= bound + 1e-12)

    def test_degenerate_range(self):
        f = np.full(5, 2.0)
        codes = quantize(f, 8, 2.0, 2.0)
        assert np.all(codes == 0)
        np.testing.assert_array_equal(dequantize(codes, 8, 2.0, 2.0), f)

    def test_monotone(self):
        f = np.linspace(0, 1, 100)
        codes = quantize(f, 6, 0.0, 1.0)
        assert np.all(np.diff(codes.astype(int)) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize(np.zeros(3), 0, 0, 1)
        with pytest.raises(ValueError):
            dequantize(np.zeros(3, dtype=np.uint32), 33, 0, 1)


class TestReducedExtractAnalysis:
    def _run(self, tmpdir, nranks=2, factor=2, bits=8, steps=2, dims=(12, 8, 8)):
        def prog(comm):
            sim = OscillatorSimulation(comm, dims, default_oscillators(), dt=0.1)
            bridge = Bridge(comm, sim.make_data_adaptor())
            red = ReducedExtractAnalysis(tmpdir, factor=factor, bits=bits)
            bridge.add_analysis(red)
            bridge.initialize()
            sim.run(steps, bridge)
            results = bridge.finalize()
            return sim.extent, sim.field.copy(), results

        return run_spmd(nranks, prog)

    def test_extract_written_and_ratio(self, tmp_path):
        out = self._run(str(tmp_path))
        info = out[0][2]["ReducedExtractAnalysis"]
        # factor 2 in 3-D = 8x fewer samples; 8 bits vs 64 = 8x smaller each.
        assert info["ratio"] > 30
        extracts = read_reduced_extract(str(tmp_path), 2)
        assert len(extracts) == 2  # one per rank

    def test_reconstruction_error_bounded(self, tmp_path):
        out = self._run(str(tmp_path), nranks=2, factor=2, bits=10)
        extracts = read_reduced_extract(str(tmp_path), 2)
        for (ext, field, _), (meta, coarse) in zip(out, extracts):
            reference = downsample_mean(field, 2)
            bound = quantization_error_bound(10, meta["vmin"], meta["vmax"])
            assert np.all(np.abs(coarse - reference) <= bound + 1e-12)

    def test_higher_bits_lower_error(self, tmp_path):
        out4 = self._run(str(tmp_path / "b4"), bits=4, steps=1)
        out12 = self._run(str(tmp_path / "b12"), bits=12, steps=1)

        def max_err(outs, tmpdir, bits):
            extracts = read_reduced_extract(tmpdir, 1)
            errs = []
            for (ext, field, _), (meta, coarse) in zip(outs, extracts):
                errs.append(
                    np.abs(coarse - downsample_mean(field, 2)).max()
                )
            return max(errs)

        e4 = max_err(out4, str(tmp_path / "b4"), 4)
        e12 = max_err(out12, str(tmp_path / "b12"), 12)
        assert e12 < e4

    def test_configurable_registration(self, tmp_path):
        from repro.core import ConfigurableAnalysis
        from repro.util import Configuration

        ca = ConfigurableAnalysis(
            Configuration(
                {
                    "analyses": [
                        {
                            "type": "reduced_extract",
                            "output_dir": str(tmp_path),
                            "factor": 4,
                            "bits": 6,
                        }
                    ]
                }
            )
        )
        assert ca.analyses[0].factor == 4
        assert ca.analyses[0].bits == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            ReducedExtractAnalysis("x", factor=0)
        with pytest.raises(ValueError):
            ReducedExtractAnalysis("x", bits=0)
