"""Seeded property battery for the particle pipeline.

Every property here is asserted as *equality*, not tolerance: the dyadic
initial conditions and fixed-point deposit make conservation and
decomposition-independence exact, so hypothesis gets to hunt for seeds
that break bit-level invariants rather than epsilon budgets.

The SPMD-driving properties keep ``max_examples`` small -- each example
spins up a full multi-rank run -- while the pure-kernel properties
(deposit order/decomposition independence, FoF partition invariance,
ragged-slice introspection) run at normal hypothesis volume.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.particles import friends_of_friends, halo_sizes
from repro.apps.nbody import NBodySimulation
from repro.data import DataArray, ParticleSet, cic_deposit_int
from repro.mpi import run_spmd

seeds = st.integers(min_value=0, max_value=2**16 - 1)


def _global_state(nranks, seed, steps, backend=None, **kw):
    """state_tuple + exact conservation bookkeeping for one seeded run."""

    def prog(comm):
        sim = NBodySimulation(
            comm,
            grid=8,
            n_particles=120,
            seed=seed,
            velocity_scale=0.25,
            **kw,
        )
        mass_before = comm.allreduce(sim.particles.masses.sum())
        count_before = comm.allreduce(sim.n_local)
        sim.run(steps)
        gathered = comm.allgather(
            (sim.particles.ids, sim.particles.positions,
             sim.particles.velocities, sim.particles.masses)
        )
        world = ParticleSet.concatenate([ParticleSet(*p) for p in gathered])
        return {
            "state": world.state_tuple(),
            "mass_before": mass_before,
            "mass_after": world.total_mass(),
            "count_before": count_before,
            "count_after": world.num_particles,
            "migrated": sim.migrated_out,
        }

    return run_spmd(nranks, prog, backend=backend, timeout=90.0)


class TestSeededConservation:
    @given(seed=seeds, steps=st.integers(min_value=1, max_value=4))
    @settings(max_examples=6, deadline=None)
    def test_count_and_mass_exact(self, seed, steps):
        results = _global_state(3, seed, steps)
        for r in results:
            assert r["count_after"] == r["count_before"]
            # Dyadic masses (multiples of 1/16): both sums are exact.
            assert r["mass_after"] == r["mass_before"]

    @given(seed=seeds)
    @settings(max_examples=5, deadline=None)
    def test_momentum_exact_under_pure_drift(self, seed):
        def prog(comm):
            sim = NBodySimulation(
                comm, grid=8, n_particles=100, seed=seed, gravity=0.0,
                velocity_scale=0.25,
            )
            before = comm.allreduce(sim.particles.momentum())
            sim.run(3)
            after = comm.allreduce(sim.particles.momentum())
            return before.tobytes() == after.tobytes()

        assert all(run_spmd(2, prog, timeout=90.0))


class TestSeededEquivalence:
    @given(seed=seeds)
    @settings(max_examples=4, deadline=None)
    def test_thread_vs_process_bit_identical(self, seed):
        thread = _global_state(2, seed, 3, backend="thread")
        process = _global_state(2, seed, 3, backend="process")
        assert thread[0]["state"] == process[0]["state"]
        assert [r["migrated"] for r in thread] == [
            r["migrated"] for r in process
        ]

    @given(seed=seeds, steps=st.integers(min_value=1, max_value=3))
    @settings(max_examples=5, deadline=None)
    def test_rank_count_invariance(self, seed, steps):
        one = _global_state(1, seed, steps)[0]["state"]
        four = _global_state(4, seed, steps)[0]["state"]
        assert one == four

    @given(seed=seeds)
    @settings(max_examples=5, deadline=None)
    def test_migration_restores_ownership(self, seed):
        """Migration runs at the *start* of each step, so after the last
        drift some particles may sit off-rank -- but one more migration
        must hand every one of them to its owning slab."""

        def prog(comm):
            sim = NBodySimulation(
                comm, grid=8, n_particles=100, seed=seed,
                velocity_scale=0.25,
            )
            sim.run(3)
            sim._migrate()
            owners = sim._owner_ranks(sim.particles.positions[:, 0])
            return bool(np.all(owners == comm.rank))

        assert all(run_spmd(3, prog, timeout=90.0))


def _population(seed, n):
    rng = np.random.default_rng(seed)
    positions = rng.random((n, 3))
    masses = rng.integers(1, 17, n) / 16.0
    return positions, masses


class TestDepositProperties:
    @given(seed=seeds, n=st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_order_independence(self, seed, n):
        positions, masses = _population(seed, n)
        grid = cic_deposit_int(positions, masses, 8)
        perm = np.random.default_rng(seed + 1).permutation(n)
        permuted = cic_deposit_int(positions[perm], masses[perm], 8)
        assert grid.tobytes() == permuted.tobytes()

    @given(
        seed=seeds,
        n=st.integers(min_value=0, max_value=200),
        split=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=25, deadline=None)
    def test_decomposition_independence(self, seed, n, split):
        """Depositing any two-way split of the population and summing the
        int64 grids equals depositing the whole population at once."""
        positions, masses = _population(seed, n)
        split = min(split, n)
        whole = cic_deposit_int(positions, masses, 8)
        parts = cic_deposit_int(
            positions[:split], masses[:split], 8
        ) + cic_deposit_int(positions[split:], masses[split:], 8)
        assert whole.tobytes() == parts.tobytes()

    @given(seed=seeds, n=st.integers(min_value=1, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_quantized_mass_bounded_error(self, seed, n):
        """Each particle spreads over 8 corners; rounding each corner
        contribution costs at most 1/2 ulp of the scale, so the total
        integer mass is within 4*n of the exact scaled sum."""
        from repro.data import DEPOSIT_SCALE

        positions, masses = _population(seed, n)
        grid = cic_deposit_int(positions, masses, 8)
        exact = round(masses.sum() * DEPOSIT_SCALE)
        assert abs(int(grid.sum()) - exact) <= 4 * n


class TestFoFProperties:
    @given(seed=seeds, n=st.integers(min_value=2, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_partition_invariant_under_permutation(self, seed, n):
        rng = np.random.default_rng(seed)
        pos = rng.random((n, 3))
        labels = friends_of_friends(pos, 0.15)
        perm = rng.permutation(n)
        permuted = friends_of_friends(pos[perm], 0.15)
        inverse = np.empty(n, dtype=np.int64)
        inverse[perm] = np.arange(n)
        same = labels[:, None] == labels[None, :]
        same_p = permuted[inverse][:, None] == permuted[inverse][None, :]
        assert bool(np.all(same == same_p))

    @given(seed=seeds, n=st.integers(min_value=1, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_halo_sizes_partition_the_population(self, seed, n):
        rng = np.random.default_rng(seed)
        labels = friends_of_friends(rng.random((n, 3)), 0.2)
        assert sum(halo_sizes(labels, min_members=1)) == n
        assert all(s >= 2 for s in halo_sizes(labels))


class TestRaggedSliceProperties:
    @given(
        seed=seeds,
        n=st.integers(min_value=0, max_value=50),
        lo=st.integers(min_value=0, max_value=50),
        span=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_slice_tuples_zero_copy_and_fingerprint(self, seed, n, lo, span):
        """Any per-rank slice of a ragged population stays zero-copy and
        fingerprints identically to a fresh copy of the same tuples."""
        rng = np.random.default_rng(seed)
        base = DataArray.from_aos("position", rng.random((n, 3)))
        lo = min(lo, n)
        hi = min(lo + span, n)
        view = base.slice_tuples(lo, hi)
        assert view.is_zero_copy
        assert view.num_tuples == hi - lo
        fresh = DataArray.from_aos("position", base.as_aos()[lo:hi].copy())
        assert view.fingerprint() == fresh.fingerprint()
