"""Tests for virtual-sensor time-series probes."""

import math

import numpy as np
import pytest

from repro.analysis.probe import SensorProbeAnalysis
from repro.core import Bridge
from repro.miniapp import Oscillator, OscillatorKind, OscillatorSimulation
from repro.mpi import run_spmd


class TestSensorProbeAnalysis:
    def _run(self, nranks, points, steps=8, dims=(12, 12, 12), oscillators=None):
        from repro.miniapp.oscillator import default_oscillators

        oscs = oscillators or default_oscillators()

        def prog(comm):
            sim = OscillatorSimulation(comm, dims, oscs, dt=0.05)
            bridge = Bridge(comm, sim.make_data_adaptor())
            sensors = SensorProbeAnalysis(points=points)
            bridge.add_analysis(sensors)
            bridge.initialize()
            sim.run(steps, bridge)
            out = bridge.finalize()
            return out.get("SensorProbeAnalysis") if comm.rank == 0 else None

        return run_spmd(nranks, prog)[0]

    def test_series_shape(self):
        pts = np.array([[0.5, 0.5, 0.5], [0.25, 0.75, 0.5]])
        out = self._run(2, pts, steps=5)
        assert out["series"].shape == (5, 2)
        assert out["times"].shape == (5,)
        assert out["inside"].all()

    def test_sensor_at_oscillator_center_tracks_signal(self):
        """A sensor on a periodic oscillator's center reads ~cos(omega t)."""
        osc = Oscillator(OscillatorKind.PERIODIC, (0.5, 0.5, 0.5), 0.3, 2 * math.pi)
        # Grid point lies exactly at the center for odd dims - 1 spacing:
        pts = np.array([[0.5, 0.5, 0.5]])
        out = self._run(1, pts, steps=10, dims=(9, 9, 9), oscillators=[osc])
        for t, v in zip(out["times"], out["series"][:, 0]):
            assert v == pytest.approx(math.cos(2 * math.pi * t), abs=1e-9)

    def test_parallel_matches_serial(self):
        pts = np.random.default_rng(0).random((6, 3)) * 0.9
        serial = self._run(1, pts)
        for n in (2, 4):
            parallel = self._run(n, pts)
            np.testing.assert_allclose(parallel["series"], serial["series"], rtol=1e-12)

    def test_outside_sensor_flagged(self):
        pts = np.array([[0.5, 0.5, 0.5], [5.0, 5.0, 5.0]])
        out = self._run(2, pts, steps=2)
        assert out["inside"].tolist() == [True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorProbeAnalysis(points=np.zeros((0, 3)))
        with pytest.raises(ValueError):
            SensorProbeAnalysis(points=np.zeros((3, 2)))

    def test_configurable_registration(self):
        from repro.core import ConfigurableAnalysis
        from repro.util import Configuration

        ca = ConfigurableAnalysis(
            Configuration(
                {"analyses": [{"type": "sensors", "points": [[0.1, 0.2, 0.3]]}]}
            )
        )
        assert ca.analyses[0].points.shape == (1, 3)
