"""NBody miniapp: migration conservation, equivalence, adaptor contract.

The conservation battery asserts *exact* invariants (dyadic initial
conditions sum exactly; fixed-point deposits are order-independent), so
every comparison here is equality, not tolerance.
"""

import numpy as np
import pytest

from repro.apps.nbody import NBodyDataAdaptor, NBodySimulation
from repro.data import Association, PARTICLE_ARRAYS
from repro.mpi import run_spmd

pytestmark = pytest.mark.usefixtures("spmd_backend")


def _final_state(nranks, steps=4, grid=16, n=400, seed=42, **kw):
    """Global (state_tuple, mass, count, momentum, density bytes) tuple."""

    def prog(comm):
        sim = NBodySimulation(comm, grid=grid, n_particles=n, seed=seed, **kw)
        sim.run(steps)
        gathered = comm.allgather(
            (sim.particles.ids, sim.particles.positions,
             sim.particles.velocities, sim.particles.masses)
        )
        from repro.data import ParticleSet

        world = ParticleSet.concatenate(
            [ParticleSet(*part) for part in gathered]
        )
        return {
            "state": world.state_tuple(),
            "mass": world.total_mass(),
            "count": world.num_particles,
            "momentum": world.momentum().tobytes(),
            "density": sim.density.tobytes(),
            "migrated_out": sim.migrated_out,
        }

    return run_spmd(nranks, prog, timeout=90.0)


class TestConservation:
    def test_count_and_mass_exact_across_migration(self):
        results = _final_state(3, steps=5, velocity_scale=0.25)
        ref = results[0]
        assert ref["count"] == 400
        # Dyadic masses: the global sum is exact under any order.
        sim_mass = ref["mass"]
        for r in results:
            assert r["mass"] == sim_mass
            assert r["count"] == 400
        # Migration actually happened (otherwise this test proves nothing).
        assert sum(r["migrated_out"] for r in results) > 0

    def test_momentum_exact_when_forces_off(self):
        """gravity=0: pure drift + migration; total momentum must be
        bit-identical before and after."""

        def prog(comm):
            sim = NBodySimulation(
                comm, grid=16, n_particles=300, seed=9, gravity=0.0
            )
            before = comm.allreduce(sim.particles.momentum())
            sim.run(5)
            after = comm.allreduce(sim.particles.momentum())
            return before.tobytes(), after.tobytes(), sim.migrated_out

        results = run_spmd(3, prog, timeout=90.0)
        for before, after, _ in results:
            assert before == after
        assert sum(r[2] for r in results) > 0

    def test_positions_stay_in_unit_box(self):
        def prog(comm):
            sim = NBodySimulation(
                comm, grid=8, n_particles=200, seed=5, velocity_scale=0.25
            )
            sim.run(6)
            p = sim.particles.positions
            return bool(np.all(p >= 0.0) and np.all(p < 1.0))

        assert all(run_spmd(2, prog, timeout=90.0))


class TestRankCountEquivalence:
    def test_global_state_bit_identical_1_2_4_ranks(self):
        states = {
            nr: _final_state(nr, steps=4)[0]["state"] for nr in (1, 2, 4)
        }
        assert states[1] == states[2] == states[4]

    def test_density_grid_bit_identical_across_ranks(self):
        grids = {
            nr: _final_state(nr, steps=3)[0]["density"] for nr in (1, 2, 4)
        }
        assert grids[1] == grids[2] == grids[4]


class TestEdgeCases:
    def test_zero_particle_ranks_do_not_deadlock(self):
        """2 particles over 4 slabs: at least two ranks own nothing, and
        the step loop (sends, receives, collectives) must still complete."""

        def prog(comm):
            sim = NBodySimulation(comm, grid=8, n_particles=2, seed=1)
            sim.run(3)
            return sim.n_local

        counts = run_spmd(4, prog, timeout=90.0)
        assert sum(counts) == 2
        assert counts.count(0) >= 2

    def test_grid_must_cover_world(self):
        def prog(comm):
            with pytest.raises(ValueError):
                NBodySimulation(comm, grid=1, n_particles=4)
            return True

        assert all(run_spmd(2, prog, timeout=60.0))

    def test_owner_ranks_match_slabs(self):
        def prog(comm):
            sim = NBodySimulation(comm, grid=8, n_particles=64, seed=2)
            owners = sim._owner_ranks(sim.particles.positions[:, 0])
            return bool(np.all(owners == comm.rank))

        assert all(run_spmd(4, prog, timeout=60.0))

    def test_snapshot_restore_roundtrip_exact(self):
        def prog(comm):
            sim = NBodySimulation(comm, grid=8, n_particles=100, seed=3)
            sim.run(2)
            snap = sim.snapshot()
            fp = sim.particles.fingerprint()
            sim.run(2)
            assert sim.particles.fingerprint() != fp or sim.n_local == 0
            sim.restore(snap)
            return (
                sim.step == snap["step"]
                and sim.particles.fingerprint() == fp
                and sim.density.tobytes() == snap["density"].tobytes()
            )

        assert all(run_spmd(2, prog, timeout=90.0))


class TestDataAdaptor:
    def test_density_view_is_zero_copy_slab(self):
        def prog(comm):
            sim = NBodySimulation(comm, grid=8, n_particles=64, seed=4)
            sim.advance()
            adaptor = sim.make_data_adaptor()
            arr = adaptor.get_array(Association.POINT, NBodyDataAdaptor.DENSITY)
            ok = arr.is_zero_copy and arr.is_zero_copy_of(sim.density)
            mesh = adaptor.get_mesh()
            x_cells = sim.x_hi - sim.x_lo
            return ok and arr.num_tuples == x_cells * 8 * 8 and mesh is not None

        assert all(run_spmd(2, prog, timeout=60.0))

    def test_particle_arrays_are_sim_storage(self):
        def prog(comm):
            sim = NBodySimulation(comm, grid=8, n_particles=64, seed=4)
            adaptor = sim.make_data_adaptor()
            pos = adaptor.get_array(Association.POINT, "position")
            return pos.is_zero_copy_of(sim.particles.positions)

        assert all(run_spmd(2, prog, timeout=60.0))

    def test_release_data_drops_stale_views(self):
        def prog(comm):
            sim = NBodySimulation(comm, grid=8, n_particles=64, seed=4)
            adaptor = sim.make_data_adaptor()
            sim.advance()
            before = adaptor.get_array(Association.POINT, "position")
            adaptor.release_data()
            sim.advance()  # migration may replace the arrays
            after = adaptor.get_array(Association.POINT, "position")
            return after.is_zero_copy_of(sim.particles.positions) and (
                before is not after
            )

        assert all(run_spmd(2, prog, timeout=60.0))

    def test_array_listing_and_unknown_name(self):
        def prog(comm):
            sim = NBodySimulation(comm, grid=8, n_particles=16, seed=4)
            adaptor = sim.make_data_adaptor()
            n = adaptor.get_number_of_arrays(Association.POINT)
            names = [
                adaptor.get_array_name(Association.POINT, i) for i in range(n)
            ]
            assert names == ["density", *PARTICLE_ARRAYS]
            with pytest.raises(KeyError):
                adaptor.get_array(Association.POINT, "nope")
            with pytest.raises(KeyError):
                adaptor.get_array(Association.CELL, "density")
            return True

        assert all(run_spmd(1, prog, timeout=60.0))
