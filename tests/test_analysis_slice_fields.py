"""Tests for slice extraction and derived fields."""

import numpy as np
import pytest

from repro.analysis import (
    SliceExtractAnalysis,
    SlicePlane,
    extract_axis_slice,
    gather_global_slice,
    gradient_3d,
    gradient_magnitude,
    vorticity_magnitude,
)
from repro.core import Bridge
from repro.data import DataArray, ImageData
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.util import Extent


def _image_with_field(extent, whole=None):
    img = ImageData(extent, whole_extent=whole or extent)
    ni, nj, nk = extent.shape
    i = (extent.i0 + np.arange(ni))[:, None, None]
    j = (extent.j0 + np.arange(nj))[None, :, None]
    k = (extent.k0 + np.arange(nk))[None, None, :]
    field = (i * 10000 + j * 100 + k).astype(float) * np.ones((ni, nj, nk))
    img.add_point_array(DataArray.from_numpy("f", np.ascontiguousarray(field)))
    return img, field


class TestSlicePlane:
    def test_axis_validated(self):
        with pytest.raises(ValueError):
            SlicePlane(3, 0)


class TestExtractAxisSlice:
    def test_extract_interior_plane(self):
        img, field = _image_with_field(Extent(0, 4, 0, 3, 0, 2))
        s = extract_axis_slice(img, "f", SlicePlane(axis=2, index=1))
        assert s is not None
        assert s.values.shape == (5, 4)
        np.testing.assert_array_equal(s.values, field[:, :, 1])
        assert s.extent2d == (0, 4, 0, 3)

    def test_extract_is_view(self):
        img, _ = _image_with_field(Extent(0, 4, 0, 3, 0, 2))
        f3 = img.point_field_3d("f")
        s = extract_axis_slice(img, "f", SlicePlane(axis=0, index=2))
        assert np.shares_memory(s.values, f3)

    def test_disjoint_block_returns_none(self):
        img, _ = _image_with_field(Extent(0, 4, 0, 3, 5, 9))
        assert extract_axis_slice(img, "f", SlicePlane(axis=2, index=1)) is None

    def test_sub_extent_block_uses_global_index(self):
        img, field = _image_with_field(Extent(3, 6, 0, 2, 0, 2))
        s = extract_axis_slice(img, "f", SlicePlane(axis=0, index=4))
        assert s is not None
        np.testing.assert_array_equal(s.values, field[1])  # local index 4-3

    @pytest.mark.parametrize("axis,inplane", [(0, (0, 3, 0, 2)), (1, (0, 4, 0, 2)), (2, (0, 4, 0, 3))])
    def test_inplane_extent_per_axis(self, axis, inplane):
        img, _ = _image_with_field(Extent(0, 4, 0, 3, 0, 2))
        s = extract_axis_slice(img, "f", SlicePlane(axis=axis, index=0))
        assert s.extent2d == inplane


class TestGatherGlobalSlice:
    def test_parallel_assembly_matches_serial(self):
        whole = Extent(0, 7, 0, 5, 0, 3)
        plane = SlicePlane(axis=2, index=2)

        def prog(comm):
            from repro.util.decomp import regular_decompose_3d

            ext, _, _ = regular_decompose_3d((8, 6, 4), comm.size, comm.rank)
            img, _ = _image_with_field(ext, whole=whole)
            local = extract_axis_slice(img, "f", plane)
            return gather_global_slice(comm, local, whole, plane)

        serial = run_spmd(1, prog)[0]
        assert serial.shape == (8, 6)
        for n in (2, 4, 6):
            out = run_spmd(n, prog)[0]
            np.testing.assert_array_equal(out, serial)

    def test_nonroot_returns_none(self):
        whole = Extent(0, 3, 0, 3, 0, 3)
        plane = SlicePlane(axis=2, index=0)

        def prog(comm):
            img, _ = _image_with_field(whole)
            local = extract_axis_slice(img, "f", plane) if comm.rank == 0 else None
            return gather_global_slice(comm, local, whole, plane)

        out = run_spmd(2, prog)
        assert out[0] is not None and out[1] is None


class TestSliceExtractAnalysis:
    def test_end_to_end_over_miniapp(self):
        dims = (8, 8, 8)

        def prog(comm):
            sim = OscillatorSimulation(comm, dims, default_oscillators(), dt=0.1)
            bridge = Bridge(comm, sim.make_data_adaptor())
            sl = SliceExtractAnalysis(SlicePlane(axis=2, index=4))
            bridge.add_analysis(sl)
            bridge.initialize()
            sim.run(2, bridge)
            bridge.finalize()
            return sim.extent, sim.field.copy(), sl.slices

        out = run_spmd(4, prog)
        slices = out[0][2]
        assert len(slices) == 2
        # Rebuild global field; its k=4 plane must equal the gathered slice.
        assembled = np.zeros(dims)
        for ext, block, _ in out:
            assembled[
                ext.i0 : ext.i1 + 1, ext.j0 : ext.j1 + 1, ext.k0 : ext.k1 + 1
            ] = block
        np.testing.assert_allclose(slices[-1], assembled[:, :, 4], rtol=1e-12)

    def test_only_intersecting_ranks_map_data(self):
        """Laziness: ranks whose block misses the plane never map the field."""
        dims = (4, 4, 8)

        def prog(comm):
            sim = OscillatorSimulation(comm, dims, default_oscillators())
            ad = sim.make_data_adaptor()
            bridge = Bridge(comm, ad)
            sl = SliceExtractAnalysis(SlicePlane(axis=2, index=0))
            bridge.add_analysis(sl)
            bridge.initialize()
            sim.advance()
            bridge.execute(sim.time, sim.step)
            return sim.extent.k0, ad.array_mappings

        for k0, mappings in run_spmd(4, prog):
            assert (mappings > 0) == (k0 == 0)


class TestDerivedFields:
    def test_gradient_of_linear_field_is_constant(self):
        x, y, z = np.meshgrid(
            np.arange(6.0), np.arange(5.0), np.arange(4.0), indexing="ij"
        )
        f = 2 * x + 3 * y - z
        gx, gy, gz = gradient_3d(f, (1.0, 1.0, 1.0))
        np.testing.assert_allclose(gx, 2.0)
        np.testing.assert_allclose(gy, 3.0)
        np.testing.assert_allclose(gz, -1.0)

    def test_gradient_respects_spacing(self):
        f = np.arange(8.0).reshape(8, 1, 1) * np.ones((8, 2, 2))
        gx, _, _ = gradient_3d(f, (0.5, 1.0, 1.0))
        np.testing.assert_allclose(gx, 2.0)

    def test_gradient_degenerate_axis(self):
        f = np.zeros((4, 1, 4))
        gx, gy, gz = gradient_3d(f, (1, 1, 1))
        assert gy.shape == f.shape
        np.testing.assert_allclose(gy, 0.0)

    def test_gradient_validation(self):
        with pytest.raises(ValueError):
            gradient_3d(np.zeros((2, 2)), (1, 1, 1))
        with pytest.raises(ValueError):
            gradient_3d(np.zeros((2, 2, 2)), (0, 1, 1))

    def test_gradient_magnitude(self):
        x = np.meshgrid(np.arange(5.0), np.arange(5.0), np.arange(5.0), indexing="ij")[0]
        f = 3 * x
        np.testing.assert_allclose(gradient_magnitude(f, (1, 1, 1)), 3.0)

    def test_vorticity_of_rigid_rotation(self):
        """u = -y, v = x, w = 0 has |curl| = 2 everywhere."""
        n = 8
        x, y, _ = np.meshgrid(
            np.arange(n, dtype=float),
            np.arange(n, dtype=float),
            np.arange(n, dtype=float),
            indexing="ij",
        )
        u, v, w = -y, x, np.zeros_like(x)
        vort = vorticity_magnitude(u, v, w, (1.0, 1.0, 1.0))
        np.testing.assert_allclose(vort, 2.0)

    def test_vorticity_of_irrotational_flow_is_zero(self):
        """u = x, v = -y is divergence-carrying but curl-free."""
        n = 6
        x, y, _ = np.meshgrid(
            np.arange(n, dtype=float),
            np.arange(n, dtype=float),
            np.arange(n, dtype=float),
            indexing="ij",
        )
        vort = vorticity_magnitude(x, -y, np.zeros_like(x), (1.0, 1.0, 1.0))
        np.testing.assert_allclose(vort, 0.0, atol=1e-12)

    def test_vorticity_shape_mismatch(self):
        with pytest.raises(ValueError):
            vorticity_magnitude(
                np.zeros((2, 2, 2)), np.zeros((3, 2, 2)), np.zeros((2, 2, 2)), (1, 1, 1)
            )
