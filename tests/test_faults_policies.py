"""Tests for the resilience policies (repro.faults.policies)."""

import pytest

from repro.faults import CircuitBreaker, RetryPolicy, retry_call
from repro.trace.recorder import TraceRecorder


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_jitter_deterministic_and_bounded(self):
        p = RetryPolicy(max_attempts=6, base_delay=0.01, max_delay=0.05, seed=3)
        for attempt in range(6):
            cap = min(0.05, 0.01 * 2**attempt)
            d = p.delay(attempt, key="bp:0")
            assert d == p.delay(attempt, key="bp:0")
            assert 0.0 <= d < cap

    def test_keys_decorrelate(self):
        p = RetryPolicy(seed=0)
        assert p.delay(1, key="rank0") != p.delay(1, key="rank1")


class TestRetryCall:
    def _flaky(self, failures, exc=OSError):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise exc(f"transient {calls['n']}")
            return "ok"

        return fn, calls

    def test_recovers_and_counts_retries(self):
        fn, calls = self._flaky(2)
        rec = TraceRecorder(rank=0)
        slept = []
        out = retry_call(
            fn,
            RetryPolicy(max_attempts=4),
            trace=rec,
            sleep=slept.append,
        )
        assert out == "ok"
        assert calls["n"] == 3
        assert rec.total("resilience::retry") == 2
        assert len(slept) == 2 and all(s >= 0 for s in slept)

    def test_final_failure_propagates_unwrapped(self):
        fn, calls = self._flaky(10)
        with pytest.raises(OSError, match="transient 3"):
            retry_call(fn, RetryPolicy(max_attempts=3), sleep=lambda s: None)
        assert calls["n"] == 3

    def test_non_retryable_passes_through_immediately(self):
        fn, calls = self._flaky(1, exc=ValueError)
        with pytest.raises(ValueError):
            retry_call(fn, RetryPolicy(max_attempts=5), sleep=lambda s: None)
        assert calls["n"] == 1


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_trips_after_threshold(self):
        b = CircuitBreaker(failure_threshold=2, probe_interval=3)
        assert b.allow()
        b.record_failure()
        assert b.state == b.CLOSED
        b.record_failure()
        assert b.state == b.OPEN
        assert b.times_opened == 1

    def test_open_refuses_then_probes(self):
        b = CircuitBreaker(failure_threshold=1, probe_interval=3)
        b.record_failure()
        # Refused for probe_interval - 1 calls, then a half-open probe.
        assert [b.allow() for _ in range(3)] == [False, False, True]
        assert b.state == b.HALF_OPEN

    def test_probe_success_closes(self):
        b = CircuitBreaker(failure_threshold=1, probe_interval=1)
        b.record_failure()
        assert b.allow()
        b.record_success()
        assert b.state == b.CLOSED
        assert b.allow()

    def test_probe_failure_reopens(self):
        b = CircuitBreaker(failure_threshold=2, probe_interval=1)
        b.record_failure()
        b.record_failure()
        assert b.allow()  # half-open probe
        b.record_failure()  # single failure re-opens from half-open
        assert b.state == b.OPEN
        assert b.times_opened == 2

    def test_transitions_pure_function_of_history(self):
        """Two breakers fed the same outcome sequence stay in lockstep --
        the property the collective staging fallback relies on."""
        import hashlib

        a = CircuitBreaker(failure_threshold=2, probe_interval=4)
        b = CircuitBreaker(failure_threshold=2, probe_interval=4)
        for i in range(40):
            ok = hashlib.blake2b(bytes([i]), digest_size=1).digest()[0] % 3 > 0
            assert a.allow() == b.allow()
            if ok:
                a.record_success(), b.record_success()
            else:
                a.record_failure(), b.record_failure()
        assert a.snapshot() == b.snapshot()


class TestHalfOpenProbeLatch:
    """Regression: HALF_OPEN must admit exactly one probe at a time.

    Before the latch, every allow() while HALF_OPEN returned True, so
    concurrent callers could all pile onto a presumed-dead endpoint during
    a single unresolved probe window.
    """

    def test_second_allow_refused_while_probe_unresolved(self):
        b = CircuitBreaker(failure_threshold=1, probe_interval=1)
        b.record_failure()
        assert b.allow()  # the single admitted probe
        assert b.state == b.HALF_OPEN
        assert not b.allow()
        assert not b.allow()

    def test_probe_success_releases_latch(self):
        b = CircuitBreaker(failure_threshold=1, probe_interval=1)
        b.record_failure()
        assert b.allow()
        b.record_success()
        assert b.state == b.CLOSED
        assert b.allow()  # CLOSED admits freely again

    def test_probe_failure_reopens_and_rearms(self):
        b = CircuitBreaker(failure_threshold=1, probe_interval=2)
        b.record_failure()
        assert not b.allow()
        assert b.allow()  # probe admitted
        assert not b.allow()  # latched
        b.record_failure()  # probe failed -> OPEN again
        assert b.state == b.OPEN
        # Interval restarts, then exactly one new probe is admitted.
        assert [b.allow() for _ in range(3)] == [False, True, False]
