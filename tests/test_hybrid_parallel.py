"""Tests for node-level thread parallelism and the hybrid analyses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.autocorrelation import AutocorrelationState
from repro.analysis.histogram import local_histogram
from repro.analysis.hybrid import (
    HybridHistogramAnalysis,
    ThreadedAutocorrelationState,
    local_histogram_threaded,
)
from repro.core import Bridge
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.util.parallel import chunk_ranges, parallel_chunked, thread_map


class TestChunkRanges:
    def test_even(self):
        assert chunk_ranges(10, 2) == [(0, 5), (5, 10)]

    def test_remainder(self):
        assert chunk_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_parts_than_items(self):
        chunks = chunk_ranges(2, 8)
        assert chunks == [(0, 1), (1, 2)]

    def test_zero_items(self):
        assert chunk_ranges(0, 4) == [(0, 0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_ranges(5, 0)
        with pytest.raises(ValueError):
            chunk_ranges(-1, 2)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 64))
    def test_partition_property(self, n, parts):
        chunks = chunk_ranges(n, parts)
        covered = sum(hi - lo for lo, hi in chunks)
        assert covered == n
        for (a, b), (c, d) in zip(chunks, chunks[1:]):
            assert b == c


class TestThreadMap:
    def test_order_preserved(self):
        out = thread_map(lambda x: x * 2, list(range(20)), n_threads=4)
        assert out == [x * 2 for x in range(20)]

    def test_single_thread_path(self):
        assert thread_map(lambda x: x + 1, [1, 2], n_threads=1) == [2, 3]

    def test_exception_propagates(self):
        def boom(x):
            if x == 3:
                raise RuntimeError("item 3")
            return x

        with pytest.raises(RuntimeError, match="item 3"):
            thread_map(boom, list(range(8)), n_threads=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            thread_map(lambda x: x, [1], n_threads=0)

    def test_parallel_chunked(self):
        acc = []
        import threading

        lock = threading.Lock()

        def work(lo, hi):
            with lock:
                acc.append((lo, hi))
            return hi - lo

        sizes = parallel_chunked(work, 100, 4)
        assert sum(sizes) == 100
        assert sorted(acc)[0][0] == 0


class TestHybridHistogram:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 500),
        st.integers(1, 32),
        st.integers(1, 6),
        st.integers(0, 100),
    )
    def test_threaded_equals_serial_property(self, n, bins, threads, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=n)
        vmin, vmax = float(values.min()), float(values.max())
        serial = local_histogram(values, bins, vmin, vmax)
        threaded = local_histogram_threaded(values, bins, vmin, vmax, threads)
        assert np.array_equal(serial, threaded)

    def test_adaptor_matches_flat_mpi_version(self):
        from repro.analysis import HistogramAnalysis

        def prog(comm, threads):
            sim = OscillatorSimulation(comm, (10, 10, 10), default_oscillators())
            bridge = Bridge(comm, sim.make_data_adaptor())
            hist = (
                HybridHistogramAnalysis(bins=16, n_threads=threads)
                if threads
                else HistogramAnalysis(bins=16)
            )
            bridge.add_analysis(hist)
            bridge.initialize()
            sim.run(2, bridge)
            bridge.finalize()
            return hist.history

        flat = run_spmd(2, prog, 0)[0]
        hybrid = run_spmd(2, prog, 3)[0]
        for a, b in zip(flat, hybrid):
            assert np.array_equal(a.counts, b.counts)

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridHistogramAnalysis(n_threads=0)


class TestThreadedAutocorrelation:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(2, 64),
        st.integers(1, 5),
        st.integers(1, 4),
        st.integers(0, 50),
    )
    def test_threaded_equals_serial_property(self, n, window, threads, seed):
        rng = np.random.default_rng(seed)
        serial = AutocorrelationState(window, n)
        threaded = ThreadedAutocorrelationState(window, n, n_threads=threads)
        for _ in range(window + 2):
            v = rng.standard_normal(n)
            serial.update(v)
            threaded.update(v)
        # Bit-identical: per-cell work is unreassociated.
        assert np.array_equal(serial.corr, threaded.corr)
        assert np.array_equal(serial.values, threaded.values)

    def test_topk_identical(self):
        rng = np.random.default_rng(5)
        a = AutocorrelationState(3, 50)
        b = ThreadedAutocorrelationState(3, 50, n_threads=4)
        for _ in range(6):
            v = rng.standard_normal(50)
            a.update(v)
            b.update(v)
        assert a.local_top_k(4) == b.local_top_k(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreadedAutocorrelationState(2, 10, n_threads=0)
        st_ = ThreadedAutocorrelationState(2, 10, n_threads=2)
        with pytest.raises(ValueError):
            st_.update(np.zeros(5))
