"""Tests for the simulated MPI runtime, run on both execution backends.

Everything downstream (histogram reductions, autocorrelation top-k merges,
image compositing, ADIOS staging) rests on these semantics.  The module is
parametrized over ``backend=["thread", "process"]`` (see ``spmd_backend``
in conftest): every assertion here -- results, failure attribution, abort
latency, timeout diagnostics -- must hold identically on both.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.mpi as mpi
from repro.mpi import ANY_SOURCE, ANY_TAG, MPIError, SPMDError, run_spmd


@pytest.fixture(scope="module", autouse=True)
def _backend(spmd_backend):
    """Run this whole module under each execution backend."""
    return spmd_backend


def test_rank_and_size():
    def prog(comm):
        return (comm.rank, comm.size)

    out = run_spmd(4, prog)
    assert out == [(0, 4), (1, 4), (2, 4), (3, 4)]


def test_single_rank_world():
    assert run_spmd(1, lambda c: c.allreduce(5)) == [5]


def test_invalid_nranks():
    with pytest.raises(ValueError):
        run_spmd(0, lambda c: None)


def test_rank_args():
    def prog(comm, common, mine):
        return common + mine

    assert run_spmd(3, prog, 10, rank_args=[(1,), (2,), (3,)]) == [11, 12, 13]


def test_rank_args_wrong_length():
    with pytest.raises(ValueError):
        run_spmd(3, lambda c, x: x, rank_args=[(1,)])


class TestPointToPoint:
    def test_send_recv_scalar(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"a": 7}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        out = run_spmd(2, prog)
        assert out[1] == {"a": 7}

    def test_send_recv_numpy_is_copied(self):
        """Receiver must not alias the sender's buffer (separate address
        spaces).  Both arrays come back as rank results: on the thread
        backend they are the very objects the ranks held, so the aliasing
        assertions are exact; on the process backend separation is physical
        and the same assertions hold trivially."""

        def prog(comm):
            if comm.rank == 0:
                a = np.arange(10.0)
                comm.send(a, dest=1)
                return a
            return comm.recv(source=0)

        sent, got = run_spmd(2, prog)
        assert np.array_equal(sent, got)
        assert got.base is None
        assert not np.shares_memory(sent, got)

    def test_tag_matching_out_of_order(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            b = comm.recv(source=0, tag=2)
            a = comm.recv(source=0, tag=1)
            return (a, b)

        out = run_spmd(2, prog)
        assert out[1] == ("first", "second")

    def test_any_source_any_tag(self):
        def prog(comm):
            if comm.rank != 0:
                comm.send(comm.rank, dest=0, tag=comm.rank)
                return None
            got = sorted(comm.recv(ANY_SOURCE, ANY_TAG) for _ in range(comm.size - 1))
            return got

        out = run_spmd(4, prog)
        assert out[0] == [1, 2, 3]

    def test_recv_with_status(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=42)
                return None
            return comm.recv_with_status(ANY_SOURCE, ANY_TAG)

        out = run_spmd(2, prog)
        assert out[1] == ("x", 0, 42)

    def test_sendrecv_ring(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        out = run_spmd(4, prog)
        assert out == [3, 0, 1, 2]

    def test_send_out_of_range_dest(self):
        def prog(comm):
            comm.send(1, dest=99)

        with pytest.raises(SPMDError):
            run_spmd(2, prog)

    def test_recv_timeout_is_deadlock_error(self):
        def prog(comm):
            if comm.rank == 1:
                comm.recv(source=0)  # never sent

        with pytest.raises(SPMDError) as ei:
            run_spmd(2, prog, timeout=0.2)
        assert any(isinstance(e, MPIError) for e in ei.value.failures.values())


class TestCollectives:
    def test_barrier_all_pass(self):
        def prog(comm):
            comm.barrier()
            return True

        assert run_spmd(8, prog) == [True] * 8

    def test_bcast_scalar_and_array(self):
        def prog(comm):
            v = comm.bcast(42 if comm.rank == 0 else None)
            a = comm.bcast(np.arange(5) if comm.rank == 0 else None)
            return v, a.sum()

        out = run_spmd(4, prog)
        assert all(o == (42, 10) for o in out)

    def test_bcast_nonzero_root(self):
        def prog(comm):
            return comm.bcast("hi" if comm.rank == 2 else None, root=2)

        assert run_spmd(4, prog) == ["hi"] * 4

    def test_gather(self):
        def prog(comm):
            return comm.gather(comm.rank**2, root=1)

        out = run_spmd(4, prog)
        assert out[0] is None and out[2] is None and out[3] is None
        assert out[1] == [0, 1, 4, 9]

    def test_allgather(self):
        def prog(comm):
            return comm.allgather(comm.rank + 1)

        assert run_spmd(3, prog) == [[1, 2, 3]] * 3

    def test_scatter(self):
        def prog(comm):
            data = [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(data)

        assert run_spmd(4, prog) == [0, 10, 20, 30]

    def test_scatter_wrong_length_raises(self):
        def prog(comm):
            data = [1] if comm.rank == 0 else None
            return comm.scatter(data)

        with pytest.raises(SPMDError):
            run_spmd(2, prog)

    def test_reduce_sum_scalar(self):
        def prog(comm):
            return comm.reduce(comm.rank + 1, op=mpi.SUM, root=0)

        out = run_spmd(4, prog)
        assert out[0] == 10
        assert out[1:] == [None, None, None]

    def test_allreduce_ops(self):
        def prog(comm):
            v = float(comm.rank + 1)
            return (
                comm.allreduce(v, mpi.SUM),
                comm.allreduce(v, mpi.MIN),
                comm.allreduce(v, mpi.MAX),
                comm.allreduce(v, mpi.PROD),
            )

        out = run_spmd(4, prog)
        assert out == [(10.0, 1.0, 4.0, 24.0)] * 4

    def test_allreduce_numpy_elementwise(self):
        def prog(comm):
            return comm.allreduce(np.full(3, comm.rank, dtype=np.int64), mpi.SUM)

        out = run_spmd(4, prog)
        for a in out:
            assert np.array_equal(a, np.full(3, 6))

    def test_allreduce_minmax_fused(self):
        def prog(comm):
            return comm.allreduce_minmax(float(comm.rank * 2 + 1))

        out = run_spmd(5, prog)
        assert out == [(1.0, 9.0)] * 5

    def test_alltoall(self):
        def prog(comm):
            return comm.alltoall([comm.rank * 10 + d for d in range(comm.size)])

        out = run_spmd(3, prog)
        assert out[0] == [0, 10, 20]
        assert out[1] == [1, 11, 21]
        assert out[2] == [2, 12, 22]

    def test_alltoall_wrong_length(self):
        with pytest.raises(SPMDError):
            run_spmd(3, lambda c: c.alltoall([1, 2]))

    def test_exscan(self):
        def prog(comm):
            return comm.exscan(comm.rank + 1, mpi.SUM)

        assert run_spmd(4, prog) == [None, 1, 3, 6]

    def test_collectives_reused_many_times(self):
        """Slot/barrier reuse across many sequential collectives is safe."""

        def prog(comm):
            total = 0
            for i in range(200):
                total += comm.allreduce(i + comm.rank)
            return total

        out = run_spmd(4, prog)
        assert len(set(out)) == 1

    def test_reduction_determinism(self):
        """Rank-ordered folding => bitwise identical results on every rank."""

        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            return comm.allreduce(rng.random(16), mpi.SUM)

        a = run_spmd(4, prog)
        b = run_spmd(4, prog)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)
        assert np.array_equal(a[0], a[3])

    def test_on_root(self):
        def prog(comm):
            return comm.on_root(lambda: "root-made")

        assert run_spmd(3, prog) == ["root-made"] * 3


class TestSplit:
    def test_split_even_odd(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            return (sub.rank, sub.size, sub.allreduce(comm.rank))

        out = run_spmd(4, prog)
        # evens: world 0,2 -> sum 2 ; odds: world 1,3 -> sum 4
        assert out[0] == (0, 2, 2)
        assert out[2] == (1, 2, 2)
        assert out[1] == (0, 2, 4)
        assert out[3] == (1, 2, 4)

    def test_split_undefined_color(self):
        def prog(comm):
            sub = comm.split(color=0 if comm.rank == 0 else -1)
            return sub if sub is None else sub.size

        out = run_spmd(3, prog)
        assert out == [1, None, None]

    def test_split_key_reorders(self):
        def prog(comm):
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        out = run_spmd(3, prog)
        assert out == [2, 1, 0]

    def test_sequential_splits(self):
        def prog(comm):
            a = comm.split(color=comm.rank % 2)
            b = comm.split(color=comm.rank // 2)
            return (a.size, b.size)

        out = run_spmd(4, prog)
        assert out == [(2, 2)] * 4

    def test_subcommunicator_isolated_from_parent(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            if sub.rank == 0:
                sub.send(comm.rank, dest=1 % sub.size) if sub.size > 1 else None
            got = sub.recv(source=0) if sub.rank == 1 else None
            comm.barrier()
            return got

        out = run_spmd(4, prog)
        assert out[2] == 0 and out[3] == 1

    def test_dup(self):
        def prog(comm):
            d = comm.dup()
            return (d.rank, d.size, d.allreduce(1))

        assert run_spmd(3, prog) == [(0, 3, 3), (1, 3, 3), (2, 3, 3)]


class TestFailurePropagation:
    def test_exception_reported_with_rank(self):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("boom on 2")
            comm.barrier()

        with pytest.raises(SPMDError) as ei:
            run_spmd(4, prog, timeout=5.0)
        assert 2 in ei.value.failures
        assert "boom on 2" in str(ei.value)

    def test_mismatched_collectives_deadlock_detected(self):
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()
            # rank 1 never calls barrier

        with pytest.raises(SPMDError):
            run_spmd(2, prog, timeout=0.3)

    def test_failure_unblocks_peers_without_waiting_for_timeout(self):
        """One rank raising must abort its peers' blocking receives
        immediately -- not strand them until the watchdog timeout."""

        def prog(comm):
            if comm.rank == 0:
                raise ValueError("dead on arrival")
            comm.recv(source=0)  # would block for the full timeout

        t0 = time.perf_counter()
        with pytest.raises(SPMDError) as ei:
            run_spmd(3, prog, timeout=60.0)
        elapsed = time.perf_counter() - t0
        assert elapsed < 10.0, f"peers hung {elapsed:.1f}s behind a dead rank"
        # The real error is attributed to rank 0; the aborted peers are
        # reported as collateral, not as failures of their own.
        assert set(ei.value.failures) == {0}
        assert ei.value.aborted_ranks == [1, 2]
        assert "dead on arrival" in str(ei.value)
        assert "ranks [1, 2] aborted after the failure" in str(ei.value)

    def test_failure_unblocks_peers_stuck_in_collective(self):
        def prog(comm):
            if comm.rank == 1:
                raise RuntimeError("no barrier for me")
            comm.barrier()

        t0 = time.perf_counter()
        with pytest.raises(SPMDError) as ei:
            run_spmd(2, prog, timeout=60.0)
        assert time.perf_counter() - t0 < 10.0
        assert set(ei.value.failures) == {1}
        assert ei.value.aborted_ranks == [0]

    def test_rank_abort_exported(self):
        assert issubclass(mpi.RankAbort, MPIError)


class TestConfigurableTimeouts:
    def test_collective_timeout_names_arrived_and_missing_ranks(self):
        """The timeout diagnostic must say which ranks reached the
        collective and which did not -- the per-rank attribution a 120s
        opaque hang never gave."""

        def prog(comm):
            comm.timeout = 0.3
            if comm.rank != 1:
                comm.barrier()

        with pytest.raises(SPMDError) as ei:
            run_spmd(3, prog, timeout=5.0)
        msgs = [str(e) for e in ei.value.failures.values()]
        assert any("ranks [1] had not arrived" in m for m in msgs)
        assert any("arrived: [0, 2]" in m for m in msgs)

    def test_communicator_timeout_validated(self):
        def prog(comm):
            assert comm.timeout > 0
            comm.timeout = 1.5
            assert comm.timeout == 1.5
            with pytest.raises(ValueError):
                comm.timeout = 0

        run_spmd(1, prog)

    def test_recv_timeout_override(self):
        """A per-call timeout shorter than the communicator's governs, and
        the communicator stays usable after the timeout."""

        def prog(comm):
            if comm.rank == 0:
                with pytest.raises(MPIError):
                    comm.recv(source=1, timeout=0.2)
            comm.barrier()
            if comm.rank == 1:
                comm.send("late", dest=0)
                return None
            return comm.recv(source=1)

        out = run_spmd(2, prog, timeout=10.0)
        assert out[0] == "late"

    def test_split_inherits_timeout(self):
        def prog(comm):
            comm.timeout = 2.5
            return comm.split(color=0).timeout

        assert run_spmd(2, prog) == [2.5, 2.5]


class TestReduceOps:
    def test_reduce_empty_raises(self):
        with pytest.raises(ValueError):
            mpi.SUM.reduce([])

    def test_fold_order(self):
        assert mpi.SUM.reduce([1, 2, 3]) == 6
        assert mpi.MIN.reduce([3, 1, 2]) == 1
        assert mpi.MAX.reduce([3, 1, 2]) == 3
        assert mpi.PROD.reduce([2, 3, 4]) == 24

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=8), st.integers(2, 6))
    def test_allreduce_matches_local_fold(self, values, nranks):
        """allreduce(v_r) == fold of per-rank values, for any value set."""
        vals = (values * nranks)[:nranks]

        def prog(comm):
            return comm.allreduce(vals[comm.rank], mpi.SUM)

        expected = mpi.SUM.reduce(vals)
        out = run_spmd(nranks, prog)
        assert all(o == pytest.approx(expected) for o in out)
