"""Unit tests for the phase timer substrate."""

import time

import pytest

from repro.util import Timer, TimerRegistry, timed


def test_timer_accumulates_total_and_count():
    t = Timer("x")
    t.add(1.0)
    t.add(3.0)
    assert t.total == pytest.approx(4.0)
    assert t.count == 2
    assert t.mean == pytest.approx(2.0)
    assert t.min_time == pytest.approx(1.0)
    assert t.max_time == pytest.approx(3.0)


def test_timer_start_stop_measures_elapsed():
    t = Timer("x")
    t.start()
    time.sleep(0.01)
    elapsed = t.stop()
    assert elapsed >= 0.005
    assert t.total == pytest.approx(elapsed)


def test_timer_double_start_raises():
    t = Timer("x")
    t.start()
    with pytest.raises(RuntimeError):
        t.start()
    t.stop()


def test_timer_stop_without_start_raises():
    with pytest.raises(RuntimeError):
        Timer("x").stop()


def test_timer_keep_samples_records_each_call():
    t = Timer("x", keep_samples=True)
    t.add(0.5)
    t.add(1.5)
    assert t.samples == [0.5, 1.5]


def test_registry_returns_same_timer_for_name():
    reg = TimerRegistry()
    assert reg.timer("a") is reg.timer("a")
    assert reg.timer("a") is not reg.timer("b")


def test_registry_context_manager_times_block():
    reg = TimerRegistry()
    with reg.time("phase"):
        time.sleep(0.005)
    assert reg.total("phase") >= 0.003
    assert reg.timer("phase").count == 1


def test_registry_totals_for_missing_names_are_zero():
    reg = TimerRegistry()
    assert reg.total("never") == 0.0
    assert reg.mean("never") == 0.0


def test_registry_as_dict_roundtrips_values():
    reg = TimerRegistry()
    reg.add("a::b", 2.0)
    reg.add("a::b", 4.0)
    d = reg.as_dict()
    assert d["a::b"]["total"] == pytest.approx(6.0)
    assert d["a::b"]["count"] == 2
    assert d["a::b"]["mean"] == pytest.approx(3.0)


def test_registry_merge_sums_totals():
    a, b = TimerRegistry(), TimerRegistry()
    a.add("t", 1.0)
    b.add("t", 2.0)
    b.add("u", 5.0)
    a.merge(b)
    assert a.total("t") == pytest.approx(3.0)
    assert a.total("u") == pytest.approx(5.0)
    assert a.timer("t").count == 2


def test_timed_with_none_registry_is_noop():
    with timed(None, "x") as t:
        assert t is None


def test_timed_with_registry_records():
    reg = TimerRegistry()
    with timed(reg, "x"):
        pass
    assert reg.timer("x").count == 1


def test_registry_names_sorted():
    reg = TimerRegistry()
    reg.add("z", 1)
    reg.add("a", 1)
    assert reg.names() == ["a", "z"]


# -- lossless snapshots and merges (regressions) ------------------------------


def test_as_dict_includes_min_and_samples():
    reg = TimerRegistry(keep_samples=True)
    reg.add("t", 2.0)
    reg.add("t", 0.5)
    d = reg.as_dict()
    assert d["t"]["min"] == pytest.approx(0.5)
    assert d["t"]["max"] == pytest.approx(2.0)
    assert d["t"]["samples"] == [2.0, 0.5]


def test_as_dict_min_is_json_clean_for_unfired_timer():
    reg = TimerRegistry()
    reg.timer("never")  # created but never fired: min sentinel is +inf
    d = reg.as_dict()
    assert d["never"]["min"] == 0.0  # not inf -- must survive json.dumps
    import json

    json.dumps(d)


def test_merge_preserves_samples_from_sampling_peer():
    """Regression: merging a sample-keeping registry into a plain one used
    to drop the peer's samples because the receiving timer's keep_samples
    was False -- per-call data lost irrecoverably."""
    plain = TimerRegistry()
    sampling = TimerRegistry(keep_samples=True)
    sampling.add("t", 1.0)
    sampling.add("t", 2.0)
    plain.merge(sampling)
    assert plain.timer("t").samples == [1.0, 2.0]
    assert plain.timer("t").keep_samples is True


def test_snapshot_roundtrip_is_lossless():
    reg = TimerRegistry(keep_samples=True)
    reg.add("a", 0.25)
    reg.add("a", 0.75)
    reg.add("b", 3.0)
    reg.timer("never")
    back = TimerRegistry.from_dict(reg.as_dict())
    for name in ("a", "b"):
        orig, rebuilt = reg.timer(name), back.timer(name)
        assert rebuilt.total == pytest.approx(orig.total)
        assert rebuilt.count == orig.count
        assert rebuilt.min_time == pytest.approx(orig.min_time)
        assert rebuilt.max_time == pytest.approx(orig.max_time)
    assert back.timer("a").samples == [0.25, 0.75]
    # The never-fired timer's 0.0 placeholder must not poison the restored
    # min sentinel: a later real sample still becomes the minimum.
    assert back.timer("never").count == 0
    back.add("never", 5.0)
    assert back.timer("never").min_time == pytest.approx(5.0)


def test_merge_snapshot_folds_min_max_across_snapshots():
    agg = TimerRegistry()
    r1, r2 = TimerRegistry(), TimerRegistry()
    r1.add("t", 2.0)
    r2.add("t", 0.5)
    agg.merge_snapshot(r1.as_dict())
    agg.merge_snapshot(r2.as_dict())
    t = agg.timer("t")
    assert t.count == 2
    assert t.min_time == pytest.approx(0.5)
    assert t.max_time == pytest.approx(2.0)
    assert t.total == pytest.approx(2.5)


def test_spmd_aggregation_roundtrip_preserves_min_and_samples():
    """4-rank job: each rank ships registry.as_dict() home; the aggregate
    must retain every rank's samples and the true cross-rank min/max."""
    from repro.mpi import aggregate_timer_snapshots, run_spmd

    def prog(comm):
        reg = TimerRegistry(keep_samples=True)
        reg.add("phase", 1.0 + comm.rank)
        reg.add("phase", 0.1 * (comm.rank + 1))
        return reg.as_dict()

    snaps = run_spmd(4, prog)
    agg = aggregate_timer_snapshots(snaps)
    t = agg.timer("phase")
    assert t.count == 8
    assert t.min_time == pytest.approx(0.1)
    assert t.max_time == pytest.approx(4.0)
    assert sorted(t.samples) == pytest.approx(
        sorted([1.0, 2.0, 3.0, 4.0, 0.1, 0.2, 0.3, 0.4])
    )
