"""Unit tests for the phase timer substrate."""

import time

import pytest

from repro.util import Timer, TimerRegistry, timed


def test_timer_accumulates_total_and_count():
    t = Timer("x")
    t.add(1.0)
    t.add(3.0)
    assert t.total == pytest.approx(4.0)
    assert t.count == 2
    assert t.mean == pytest.approx(2.0)
    assert t.min_time == pytest.approx(1.0)
    assert t.max_time == pytest.approx(3.0)


def test_timer_start_stop_measures_elapsed():
    t = Timer("x")
    t.start()
    time.sleep(0.01)
    elapsed = t.stop()
    assert elapsed >= 0.005
    assert t.total == pytest.approx(elapsed)


def test_timer_double_start_raises():
    t = Timer("x")
    t.start()
    with pytest.raises(RuntimeError):
        t.start()
    t.stop()


def test_timer_stop_without_start_raises():
    with pytest.raises(RuntimeError):
        Timer("x").stop()


def test_timer_keep_samples_records_each_call():
    t = Timer("x", keep_samples=True)
    t.add(0.5)
    t.add(1.5)
    assert t.samples == [0.5, 1.5]


def test_registry_returns_same_timer_for_name():
    reg = TimerRegistry()
    assert reg.timer("a") is reg.timer("a")
    assert reg.timer("a") is not reg.timer("b")


def test_registry_context_manager_times_block():
    reg = TimerRegistry()
    with reg.time("phase"):
        time.sleep(0.005)
    assert reg.total("phase") >= 0.003
    assert reg.timer("phase").count == 1


def test_registry_totals_for_missing_names_are_zero():
    reg = TimerRegistry()
    assert reg.total("never") == 0.0
    assert reg.mean("never") == 0.0


def test_registry_as_dict_roundtrips_values():
    reg = TimerRegistry()
    reg.add("a::b", 2.0)
    reg.add("a::b", 4.0)
    d = reg.as_dict()
    assert d["a::b"]["total"] == pytest.approx(6.0)
    assert d["a::b"]["count"] == 2
    assert d["a::b"]["mean"] == pytest.approx(3.0)


def test_registry_merge_sums_totals():
    a, b = TimerRegistry(), TimerRegistry()
    a.add("t", 1.0)
    b.add("t", 2.0)
    b.add("u", 5.0)
    a.merge(b)
    assert a.total("t") == pytest.approx(3.0)
    assert a.total("u") == pytest.approx(5.0)
    assert a.timer("t").count == 2


def test_timed_with_none_registry_is_noop():
    with timed(None, "x") as t:
        assert t is None


def test_timed_with_registry_records():
    reg = TimerRegistry()
    with timed(reg, "x"):
        pass
    assert reg.timer("x").count == 1


def test_registry_names_sorted():
    reg = TimerRegistry()
    reg.add("z", 1)
    reg.add("a", 1)
    assert reg.names() == ["a", "z"]
