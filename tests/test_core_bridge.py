"""Tests for the SENSEI core: adaptors, bridge, configurable analysis."""

import numpy as np
import pytest

from repro.core import (
    AnalysisAdaptor,
    Bridge,
    ConfigurableAnalysis,
    LazyStructuredDataAdaptor,
    register_analysis,
)
from repro.data import Association
from repro.mpi import run_spmd
from repro.util import Configuration, ConfigError, Extent, TimerRegistry
from repro.util.config import ConfigError as CE


class RecordingAnalysis(AnalysisAdaptor):
    """Test double that records the bridge protocol."""

    def __init__(self, stop_at_step=None):
        super().__init__()
        self.events = []
        self.stop_at_step = stop_at_step

    def initialize(self, comm):
        self.events.append(("init", comm.rank))

    def execute(self, data):
        step = data.get_data_time_step()
        self.events.append(("exec", step, data.get_data_time()))
        return self.stop_at_step is None or step <= self.stop_at_step

    def finalize(self):
        self.events.append(("fini",))
        return len(self.events)


def _mk_adaptor(comm, field):
    ext = Extent(0, 2, 0, 2, 0, 2)
    ad = LazyStructuredDataAdaptor(comm, ext, ext)
    ad.register_array(Association.POINT, "data", lambda: field)
    return ad


class TestBridgeProtocol:
    def test_initialize_execute_finalize_order(self):
        def prog(comm):
            field = np.zeros((3, 3, 3))
            a = RecordingAnalysis()
            b = Bridge(comm, _mk_adaptor(comm, field))
            b.add_analysis(a)
            b.initialize()
            b.execute(0.1, 1)
            b.execute(0.2, 2)
            results = b.finalize()
            return a.events, results

        events, results = run_spmd(1, prog)[0]
        assert events[0] == ("init", 0)
        assert events[1] == ("exec", 1, 0.1)
        assert events[2] == ("exec", 2, 0.2)
        assert events[3] == ("fini",)
        assert results == {"RecordingAnalysis": 4}

    def test_execute_before_initialize_raises(self):
        def prog(comm):
            b = Bridge(comm, _mk_adaptor(comm, np.zeros((3, 3, 3))))
            with pytest.raises(RuntimeError):
                b.execute(0.0, 0)

        run_spmd(1, prog)

    def test_double_initialize_raises(self):
        def prog(comm):
            b = Bridge(comm, _mk_adaptor(comm, np.zeros((3, 3, 3))))
            b.initialize()
            with pytest.raises(RuntimeError):
                b.initialize()

        run_spmd(1, prog)

    def test_add_analysis_after_initialize_raises(self):
        def prog(comm):
            b = Bridge(comm, _mk_adaptor(comm, np.zeros((3, 3, 3))))
            b.initialize()
            with pytest.raises(RuntimeError):
                b.add_analysis(RecordingAnalysis())

        run_spmd(1, prog)

    def test_finalize_idempotent(self):
        """Regression: double finalize (teardown paths love to call it
        twice) must not re-run analyses' finalize; the second call returns
        the first call's results."""

        def prog(comm):
            a = RecordingAnalysis()
            b = Bridge(comm, _mk_adaptor(comm, np.zeros((3, 3, 3))))
            b.add_analysis(a)
            b.initialize()
            b.execute(0.1, 1)
            first = b.finalize()
            second = b.finalize()
            fini_calls = sum(1 for e in a.events if e == ("fini",))
            return first, second, first is second, fini_calls

        first, second, same_obj, fini_calls = run_spmd(1, prog)[0]
        assert first == second and same_obj
        assert fini_calls == 1

    def test_execute_after_finalize_raises(self):
        def prog(comm):
            b = Bridge(comm, _mk_adaptor(comm, np.zeros((3, 3, 3))))
            b.initialize()
            b.finalize()
            with pytest.raises(RuntimeError):
                b.execute(0.0, 0)

        run_spmd(1, prog)

    def test_steering_stop_propagates(self):
        def prog(comm):
            a = RecordingAnalysis(stop_at_step=1)
            b = Bridge(comm, _mk_adaptor(comm, np.zeros((3, 3, 3))))
            b.add_analysis(a)
            b.initialize()
            return b.execute(0.1, 1), b.execute(0.2, 2)

        assert run_spmd(1, prog)[0] == (True, False)

    def test_bridge_times_phases(self):
        def prog(comm):
            timers = TimerRegistry()
            b = Bridge(comm, _mk_adaptor(comm, np.zeros((3, 3, 3))), timers=timers)
            b.add_analysis(RecordingAnalysis())
            b.initialize()
            b.execute(0.1, 1)
            b.finalize()
            return timers.names()

        names = run_spmd(1, prog)[0]
        assert "sensei::initialize" in names
        assert "sensei::execute" in names
        assert "sensei::execute::RecordingAnalysis" in names
        assert "sensei::finalize" in names

    def test_multiple_analyses_all_run(self):
        def prog(comm):
            a1, a2 = RecordingAnalysis(), RecordingAnalysis()
            b = Bridge(comm, _mk_adaptor(comm, np.zeros((3, 3, 3))))
            b.add_analysis(a1)
            b.add_analysis(a2)
            b.initialize()
            b.execute(0.5, 3)
            return len(a1.events), len(a2.events)

        assert run_spmd(1, prog)[0] == (2, 2)


class TestLazyAdaptor:
    def test_mesh_and_arrays_not_built_without_analysis(self):
        def prog(comm):
            field = np.zeros((3, 3, 3))
            ad = _mk_adaptor(comm, field)
            ad.set_data_time(0.1, 1)
            ad.release_data()
            return ad.mesh_constructions, ad.array_mappings

        assert run_spmd(1, prog)[0] == (0, 0)

    def test_eager_maps_everything(self):
        def prog(comm):
            field = np.zeros((3, 3, 3))
            ext = Extent(0, 2, 0, 2, 0, 2)
            ad = LazyStructuredDataAdaptor(comm, ext, ext, eager=True)
            ad.register_array(Association.POINT, "data", lambda: field)
            ad.set_data_time(0.1, 1)
            return ad.mesh_constructions, ad.array_mappings

        assert run_spmd(1, prog)[0] == (1, 1)

    def test_get_array_zero_copy(self):
        def prog(comm):
            field = np.zeros((3, 3, 3))
            ad = _mk_adaptor(comm, field)
            arr = ad.get_array(Association.POINT, "data")
            return arr.is_zero_copy_of(field), arr.owns_data

        assert run_spmd(1, prog)[0] == (True, False)

    def test_array_mapping_cached_per_step(self):
        def prog(comm):
            ad = _mk_adaptor(comm, np.zeros((3, 3, 3)))
            ad.get_array(Association.POINT, "data")
            ad.get_array(Association.POINT, "data")
            n1 = ad.array_mappings
            ad.release_data()
            ad.get_array(Association.POINT, "data")
            return n1, ad.array_mappings

        assert run_spmd(1, prog)[0] == (1, 2)

    def test_unknown_array_raises(self):
        def prog(comm):
            ad = _mk_adaptor(comm, np.zeros((3, 3, 3)))
            with pytest.raises(KeyError):
                ad.get_array(Association.POINT, "nope")

        run_spmd(1, prog)

    def test_enumeration(self):
        def prog(comm):
            ad = _mk_adaptor(comm, np.zeros((3, 3, 3)))
            return (
                ad.get_number_of_arrays(Association.POINT),
                ad.get_array_name(Association.POINT, 0),
                ad.available_arrays(Association.POINT),
                ad.get_number_of_arrays(Association.CELL),
            )

        assert run_spmd(1, prog)[0] == (1, "data", ["data"], 0)

    def test_mesh_attaches_mapped_arrays(self):
        def prog(comm):
            ad = _mk_adaptor(comm, np.arange(27.0).reshape(3, 3, 3))
            arr = ad.get_array(Association.POINT, "data")
            mesh = ad.get_mesh()
            return mesh.get_array(Association.POINT, "data") is arr

        assert run_spmd(1, prog)[0] is True

    def test_provider_returns_current_pointer(self):
        """Re-mapping after release_data sees the new simulation buffer."""

        def prog(comm):
            state = {"field": np.zeros((3, 3, 3))}
            ext = Extent(0, 2, 0, 2, 0, 2)
            ad = LazyStructuredDataAdaptor(comm, ext, ext)
            ad.register_array(Association.POINT, "data", lambda: state["field"])
            a1 = ad.get_array(Association.POINT, "data")
            ad.release_data()
            state["field"] = np.ones((3, 3, 3))
            a2 = ad.get_array(Association.POINT, "data")
            return float(a1.values.sum()), float(a2.values.sum())

        assert run_spmd(1, prog)[0] == (0.0, 27.0)


class TestConfigurableAnalysis:
    def test_builds_registered_types(self):
        cfg = Configuration(
            {"analyses": [{"type": "histogram", "bins": 16}]}
        )
        ca = ConfigurableAnalysis(cfg)
        assert len(ca.analyses) == 1
        assert ca.analyses[0].bins == 16

    def test_disabled_entries_skipped(self):
        cfg = Configuration(
            {
                "analyses": [
                    {"type": "histogram", "enabled": False},
                    {"type": "autocorrelation", "window": 4},
                ]
            }
        )
        ca = ConfigurableAnalysis(cfg)
        assert len(ca.analyses) == 1
        assert ca.analyses[0].window == 4

    def test_unknown_type_raises(self):
        with pytest.raises(ConfigError):
            ConfigurableAnalysis(Configuration({"analyses": [{"type": "zzz"}]}))

    def test_missing_type_raises(self):
        with pytest.raises(CE):
            ConfigurableAnalysis(Configuration({"analyses": [{"bins": 4}]}))

    def test_non_object_entry_raises(self):
        with pytest.raises(ConfigError):
            ConfigurableAnalysis(Configuration({"analyses": ["histogram"]}))

    def test_composite_runs_all_and_collects_results(self):
        @register_analysis("_test_recording")
        def _mk(config):
            return RecordingAnalysis()

        def prog(comm):
            cfg = Configuration(
                {"analyses": [{"type": "_test_recording"}, {"type": "_test_recording"}]}
            )
            ca = ConfigurableAnalysis(cfg)
            field = np.zeros((3, 3, 3))
            b = Bridge(comm, _mk_adaptor(comm, field))
            b.add_analysis(ca)
            b.initialize()
            b.execute(0.1, 1)
            out = b.finalize()
            return out

        out = run_spmd(1, prog)[0]
        assert "ConfigurableAnalysis" in out
