"""Tests for the AVF-LESLIE proxy (compressible TML solver + adaptor)."""

import numpy as np
import pytest

from repro.apps.avf_leslie_proxy import (
    AVFLeslieSimulation,
    _conserved_to_primitive,
    _primitive_to_conserved,
    mixing_layer_state,
)
from repro.core import Bridge
from repro.data import Association
from repro.infrastructure import LibsimAdaptor, write_session_file
from repro.mpi import run_spmd
from repro.render import decode_png


class TestMixingLayerState:
    def _coords(self, n=16):
        ax = (np.arange(n) + 0.5) / n
        return np.meshgrid(ax, ax, ax, indexing="ij")

    def test_double_shear_profile(self):
        x, y, z = self._coords()
        prim = mixing_layer_state(x, y, z, mach=0.4)
        # Fast stream between the layers, slow outside.
        u_mid = prim["u"][0, 8, 0]  # y ~ 0.53
        u_edge = prim["u"][0, 0, 0]  # y ~ 0.03
        assert u_mid > 0.3
        assert u_edge < -0.3

    def test_periodic_compatible(self):
        """u at y=0+ and y=1- match (periodic-box TML)."""
        x, y, z = self._coords(32)
        prim = mixing_layer_state(x, y, z)
        np.testing.assert_allclose(prim["u"][0, 0, 0], prim["u"][0, -1, 0], atol=0.01)

    def test_uniform_thermo(self):
        x, y, z = self._coords()
        prim = mixing_layer_state(x, y, z)
        assert np.allclose(prim["rho"], 1.0)
        assert np.allclose(prim["p"], prim["p"][0, 0, 0])

    def test_scalar_marks_fast_stream(self):
        x, y, z = self._coords()
        prim = mixing_layer_state(x, y, z)
        assert prim["scalar"].min() >= -0.01
        assert prim["scalar"].max() <= 1.01


class TestConservedPrimitiveRoundtrip:
    def test_roundtrip(self):
        rng = np.random.default_rng(3)
        prim = {
            "rho": 0.5 + rng.random((4, 4, 4)),
            "u": rng.standard_normal((4, 4, 4)),
            "v": rng.standard_normal((4, 4, 4)),
            "w": rng.standard_normal((4, 4, 4)),
            "p": 0.5 + rng.random((4, 4, 4)),
            "scalar": rng.random((4, 4, 4)),
        }
        back = _conserved_to_primitive(_primitive_to_conserved(prim))
        for k in prim:
            np.testing.assert_allclose(back[k], prim[k], rtol=1e-12)


class TestSolver:
    def test_conservation_of_mass_energy(self):
        """Periodic box + conservative fluxes => global invariants hold."""

        def prog(comm):
            sim = AVFLeslieSimulation(comm, global_dims=(16, 16, 8))
            owned = sim.q[:, 1:-1]
            before = (float(owned[0].sum()), float(owned[4].sum()))
            for _ in range(5):
                sim.advance()
            owned = sim.q[:, 1:-1]
            after = (float(owned[0].sum()), float(owned[4].sum()))
            from repro.mpi import SUM

            return (
                comm.allreduce(before[0], SUM),
                comm.allreduce(before[1], SUM),
                comm.allreduce(after[0], SUM),
                comm.allreduce(after[1], SUM),
            )

        m0, e0, m1, e1 = run_spmd(2, prog)[0]
        assert m1 == pytest.approx(m0, rel=1e-10)
        assert e1 == pytest.approx(e0, rel=1e-10)

    def test_parallel_matches_serial(self):
        def prog(comm):
            sim = AVFLeslieSimulation(comm, global_dims=(12, 8, 4))
            for _ in range(3):
                sim.advance()
            return sim.x_lo, sim.x_hi, sim.q[:, 1:-1].copy()

        serial = run_spmd(1, prog)[0][2]
        for n in (2, 3):
            pieces = run_spmd(n, prog)
            assembled = np.concatenate([q for _, _, q in pieces], axis=1)
            np.testing.assert_allclose(assembled, serial, rtol=1e-10, atol=1e-13)

    def test_mixing_layer_thickens(self):
        """The scalar interface mixes: the fraction of partially mixed
        cells (0.1 < scalar < 0.9) grows as the layers interact."""

        def prog(comm):
            sim = AVFLeslieSimulation(comm, global_dims=(16, 16, 8), mach=0.5)

            def mixed_fraction():
                prim = _conserved_to_primitive(sim.q[:, 1:-1])
                s = prim["scalar"]
                return float(((s > 0.1) & (s < 0.9)).mean())

            f0 = mixed_fraction()
            for _ in range(20):
                sim.advance()
            return f0, mixed_fraction()

        f0, f1 = run_spmd(1, prog)[0]
        assert f1 > f0

    def test_state_stays_physical(self):
        def prog(comm):
            sim = AVFLeslieSimulation(comm, global_dims=(12, 12, 6), mach=0.3)
            for _ in range(10):
                sim.advance()
            prim = _conserved_to_primitive(sim.q[:, 1:-1])
            return float(prim["rho"].min()), float(prim["p"].min())

        rho_min, p_min = run_spmd(2, prog)[0]
        assert rho_min > 0
        assert p_min > 0

    def test_too_many_ranks_rejected(self):
        def prog(comm):
            with pytest.raises(ValueError):
                AVFLeslieSimulation(comm, global_dims=(2, 4, 4))

        run_spmd(4, prog)


class TestAVFAdaptor:
    def test_fields_exposed_without_ghosts(self):
        def prog(comm):
            sim = AVFLeslieSimulation(comm, global_dims=(12, 8, 4))
            ad = sim.make_data_adaptor()
            sim.advance()
            rho = ad.get_array(Association.POINT, "rho")
            mesh = ad.get_mesh(structure_only=True)
            return rho.num_tuples, mesh.num_points, sim.nx_local * 8 * 4

        for n_tuples, mesh_pts, expected in run_spmd(2, prog):
            assert n_tuples == expected  # halo planes removed
            assert mesh_pts == expected

    def test_vorticity_derived_lazily_once(self):
        def prog(comm):
            sim = AVFLeslieSimulation(comm, global_dims=(8, 8, 4))
            ad = sim.make_data_adaptor()
            sim.advance()
            ad.get_array(Association.POINT, "vorticity")
            ad.get_array(Association.POINT, "vorticity")
            n1 = ad.vorticity_computations
            ad.release_data()
            ad.get_array(Association.POINT, "vorticity")
            return n1, ad.vorticity_computations

        assert run_spmd(1, prog)[0] == (1, 2)

    def test_vorticity_nonzero_in_shear_layer(self):
        def prog(comm):
            sim = AVFLeslieSimulation(comm, global_dims=(16, 16, 8))
            ad = sim.make_data_adaptor()
            sim.advance()
            vort = ad.get_array(Association.POINT, "vorticity")
            return float(vort.values.max())

        assert run_spmd(1, prog)[0] > 1.0

    def test_unknown_field_raises(self):
        def prog(comm):
            sim = AVFLeslieSimulation(comm, global_dims=(8, 8, 4))
            ad = sim.make_data_adaptor()
            with pytest.raises(KeyError):
                ad.get_array(Association.POINT, "temperature")

        run_spmd(1, prog)

    def test_enumeration(self):
        def prog(comm):
            sim = AVFLeslieSimulation(comm, global_dims=(8, 8, 4))
            ad = sim.make_data_adaptor()
            return ad.available_arrays(Association.POINT)

        assert run_spmd(1, prog)[0] == list(AVFLeslieSimulation.FIELDS)


class TestAVFWithLibsim:
    def test_avf_study_configuration(self, tmp_path):
        """The Sec. 4.2.2 setup: SENSEI every step, Libsim (3 isosurfaces +
        3 slices of vorticity) every 5th step; sawtooth timings."""
        session = tmp_path / "avf_session.json"
        write_session_file(
            session,
            [
                {"type": "isosurface", "isovalues": [1.0, 3.0, 6.0]},
                {"type": "pseudocolor_slice", "axis": 0, "index": 4},
                {"type": "pseudocolor_slice", "axis": 1, "index": 4},
                {"type": "pseudocolor_slice", "axis": 2, "index": 2},
            ],
            resolution=(64, 64),
        )

        def prog(comm):
            sim = AVFLeslieSimulation(comm, global_dims=(12, 12, 6))
            bridge = Bridge(comm, sim.make_data_adaptor(), timers=sim.timers)
            lib = LibsimAdaptor(
                session_file=session, array="vorticity", frequency=5
            )
            bridge.add_analysis(lib)
            bridge.initialize()
            sim.run(10, bridge)
            bridge.finalize()
            return (
                lib.images_written,
                sim.timers.timer("avf_insitu::analyze").count,
                lib.last_png,
            )

        out = run_spmd(2, prog)
        written, analyze_calls, png = out[0]
        assert written == 2
        assert analyze_calls == 10
        img = decode_png(png)
        assert img.shape == (64, 64, 3)
        assert img.std() > 1.0
