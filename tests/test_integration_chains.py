"""Cross-subsystem integration tests: the full chains the paper's Fig. 2
draws -- simulation -> SENSEI -> {method | infrastructure | staging} ->
{image | file | result} -- exercised end to end."""

import numpy as np
import pytest

from repro.analysis import AutocorrelationAnalysis, HistogramAnalysis
from repro.apps.avf_leslie_proxy import AVFLeslieSimulation
from repro.apps.nyx_proxy import NyxSimulation
from repro.core import Bridge, ConfigurableAnalysis
from repro.extracts import CameraParameter, CinemaDatabase, CinemaExtractAnalysis
from repro.infrastructure.adios import run_flexpath_job
from repro.infrastructure.glean import GleanAdaptor, read_glean_step
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.render import decode_png
from repro.util import Configuration


class TestConfigDrivenMultiAnalysis:
    def test_one_config_many_analyses(self, tmp_path):
        """A single JSON config drives method + infrastructure + extract
        analyses simultaneously -- the ConfigurableAnalysis promise."""
        cfg = Configuration(
            {
                "analyses": [
                    {"type": "histogram", "bins": 16},
                    {"type": "statistics", "quantiles": [0.5]},
                    {
                        "type": "catalyst",
                        "axis": 2,
                        "index": 4,
                        "width": 40,
                        "height": 30,
                    },
                    {
                        "type": "glean",
                        "output_dir": str(tmp_path / "glean"),
                        "ranks_per_aggregator": 2,
                    },
                    {
                        "type": "bitmap_index",
                        "output_dir": str(tmp_path / "index"),
                        "bins": 8,
                    },
                ]
            }
        )

        def prog(comm):
            sim = OscillatorSimulation(comm, (10, 10, 8), default_oscillators())
            bridge = Bridge(comm, sim.make_data_adaptor())
            ca = ConfigurableAnalysis(cfg)
            bridge.add_analysis(ca)
            bridge.initialize()
            sim.run(2, bridge)
            return bridge.finalize()

        results = run_spmd(4, prog)[0]["ConfigurableAnalysis"]
        assert len(results["HistogramAnalysis"]) == 2
        assert results["StatisticsAnalysis"][-1]["count"] == 800
        assert results["CatalystAdaptor"]["images_written"] == 2
        assert results["GleanAdaptor"]["steps_staged"] == 2
        # Files from the two file-producing analyses exist.
        assert any((tmp_path / "glean").iterdir())
        assert any((tmp_path / "index").iterdir())
        # Glean data reassembles.
        blocks = read_glean_step(str(tmp_path / "glean"), 2)
        assert sorted(blocks) == [0, 1, 2, 3]


class TestScienceAppThroughStaging:
    def test_avf_in_transit_autocorrelation(self):
        """A science proxy (not just the miniapp) through ADIOS/FlexPath."""

        def writer_program(comm, writer):
            sim = AVFLeslieSimulation(comm, global_dims=(8, 8, 4))
            bridge = Bridge(comm, sim.make_data_adaptor())
            bridge.add_analysis(writer)
            bridge.initialize()
            sim.run(4, bridge)
            bridge.finalize()
            return None

        result = run_flexpath_job(
            n_writers=2,
            n_endpoints=1,
            writer_program=writer_program,
            analysis_factory=lambda comm: AutocorrelationAnalysis(
                window=2, k=2, array="vorticity"
            ),
            array="vorticity",
        )
        res = result.endpoint_results[0]["result"]
        assert res is not None
        assert res.window == 2
        assert all(len(t) == 2 for t in res.top)


class TestNyxCinemaChain:
    def test_cosmology_to_explorable_extract(self, tmp_path):
        """Nyx proxy -> SENSEI -> Cinema database -> post hoc query."""

        def prog(comm):
            sim = NyxSimulation(comm, grid=12, gravity=4.0, seed=3)
            bridge = Bridge(comm, sim.make_data_adaptor())
            cinema = CinemaExtractAnalysis(
                str(tmp_path),
                sweep=CameraParameter(axis=2, indices=(3, 6, 9)),
                array="density",
                resolution=(24, 24),
            )
            bridge.add_analysis(cinema)
            bridge.initialize()
            sim.run(2, bridge)
            return bridge.finalize()

        run_spmd(2, prog)
        db = CinemaDatabase(tmp_path)
        assert db.steps == [1, 2]
        assert db.slice_indices == [3, 6, 9]
        entry = db.query(step=2, index=6)
        img = db.load_image(entry)
        assert img.shape == (24, 24, 3)


class TestSteeredWithInfrastructure:
    def test_steering_and_catalyst_coexist(self, tmp_path):
        """Steering + rendering in one bridge: parameter changes show up in
        subsequently rendered imagery."""
        from repro.analysis.slice_ import SlicePlane
        from repro.core import LiveConnection, SteeringAnalysis
        from repro.infrastructure.catalyst import CatalystAdaptor

        conn = LiveConnection()
        conn.submit_update(dt=1.0)  # huge step => visibly different field

        def prog(comm):
            sim = OscillatorSimulation(comm, (10, 10, 8), default_oscillators(), dt=0.01)
            cat = CatalystAdaptor(SlicePlane(2, 4), resolution=(32, 24))
            steering = SteeringAnalysis(
                conn, parameters={"dt": lambda v: setattr(sim, "dt", v)}
            )
            bridge = Bridge(comm, sim.make_data_adaptor())
            bridge.add_analysis(steering)
            bridge.add_analysis(cat)
            bridge.initialize()
            sim.advance()  # dt=0.01
            bridge.execute(sim.time, sim.step)
            png_before = cat.last_png
            sim.advance()  # dt now 1.0 after the steering update
            bridge.execute(sim.time, sim.step)
            bridge.finalize()
            if comm.rank == 0:
                return png_before, cat.last_png, sim.dt
            return None

        # Steering rides an in-memory LiveConnection: thread backend only.
        before, after, dt = run_spmd(2, prog, backend="thread")[0]
        assert dt == 1.0
        assert not np.array_equal(decode_png(before), decode_png(after))


class TestPackageAPI:
    def test_top_level_exports(self):
        import repro

        assert repro.__version__ == "1.0.0"
        assert callable(repro.run_spmd)
        assert repro.Bridge is not None
