"""Tests for rasterization, compositing, and isosurface extraction."""

import numpy as np
import pytest

from repro.mpi import run_spmd
from repro.render import (
    GRAY,
    FramebufferPool,
    RenderedImage,
    binary_swap,
    blank_image,
    composite_over,
    composite_over_into,
    direct_send,
    marching_tetrahedra,
    rasterize_slice,
    splat_points,
)
from repro.render.isosurface import isosurface_points
from repro.util.memory import MemoryTracker


class TestBlankImage:
    def test_empty(self):
        img = blank_image(8, 4)
        assert img.shape == (4, 8)
        assert img.coverage() == 0.0
        assert img.depth is None

    def test_with_depth(self):
        img = blank_image(4, 4, with_depth=True)
        assert np.all(np.isinf(img.depth))

    def test_validation(self):
        with pytest.raises(ValueError):
            blank_image(0, 4)
        with pytest.raises(ValueError):
            RenderedImage(np.zeros((2, 2, 3), np.uint8), np.zeros((3, 3), np.uint8))

    def test_nbytes(self):
        img = blank_image(10, 10, with_depth=True)
        assert img.nbytes == 300 + 100 + 400


class TestRasterizeSlice:
    def test_full_domain_fragment_covers_viewport(self):
        values = np.linspace(0, 1, 25).reshape(5, 5)
        img = rasterize_slice(values, (0, 4, 0, 4), (0, 4, 0, 4), 32, 24)
        assert img.coverage() == 1.0

    def test_partial_fragment_covers_its_region_only(self):
        values = np.ones((3, 5))
        # Fragment owns u in [0,2] of a global [0,9]: ~left third of pixels.
        img = rasterize_slice(values, (0, 2, 0, 4), (0, 9, 0, 4), 40, 20)
        cov = img.coverage()
        assert 0.15 < cov < 0.35
        # Coverage must be the left columns.
        assert img.alpha[:, 0].all()
        assert not img.alpha[:, -1].any()

    def test_disjoint_fragment_renders_nothing(self):
        values = np.ones((2, 2))
        img = rasterize_slice(values, (8, 9, 8, 9), (0, 4, 0, 4), 16, 16)
        assert img.coverage() == 0.0

    def test_value_gradient_monotone_along_axis(self):
        values = np.array([[0.0, 1.0], [0.0, 1.0]])
        img = rasterize_slice(values, (0, 1, 0, 1), (0, 1, 0, 1), 4, 64, colormap=GRAY)
        col = img.rgb[:, 0, 0].astype(int)
        assert col[0] < col[-1]
        assert np.all(np.diff(col) >= 0)

    def test_nearest_ownership_partitions_pixels(self):
        """Two abutting fragments cover every pixel exactly once."""
        vals_a = np.zeros((4, 5))
        vals_b = np.ones((5, 5))
        a = rasterize_slice(vals_a, (0, 3, 0, 4), (0, 8, 0, 4), 37, 23)
        b = rasterize_slice(vals_b, (4, 8, 0, 4), (0, 8, 0, 4), 37, 23)
        both = (a.alpha > 0).astype(int) + (b.alpha > 0).astype(int)
        assert (both == 1).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            rasterize_slice(np.ones((2, 2)), (0, 4, 0, 4), (0, 4, 0, 4), 8, 8)


class TestSplatPoints:
    def test_points_drawn(self):
        pts = np.array([[0.5, 0.5]])
        img = splat_points(
            pts, np.array([1.0]), np.array([[255, 0, 0]]), 9, 9, (0, 1, 0, 1), radius=1
        )
        assert img.alpha[4, 4] == 255
        assert img.rgb[4, 4].tolist() == [255, 0, 0]

    def test_depth_test_nearer_wins(self):
        pts = np.array([[0.5, 0.5], [0.5, 0.5]])
        depths = np.array([2.0, 1.0])
        colors = np.array([[255, 0, 0], [0, 255, 0]])
        img = splat_points(pts, depths, colors, 9, 9, (0, 1, 0, 1), radius=0)
        assert img.rgb[4, 4].tolist() == [0, 255, 0]

    def test_out_of_bounds_culled(self):
        pts = np.array([[5.0, 5.0]])
        img = splat_points(
            pts, np.array([1.0]), np.array([[1, 2, 3]]), 8, 8, (0, 1, 0, 1)
        )
        assert img.coverage() == 0.0

    def test_empty_input(self):
        img = splat_points(
            np.empty((0, 2)), np.empty(0), np.empty((0, 3)), 8, 8, (0, 1, 0, 1)
        )
        assert img.coverage() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            splat_points(np.ones((2, 3)), np.ones(2), np.ones((2, 3)), 4, 4, (0, 1, 0, 1))
        with pytest.raises(ValueError):
            splat_points(np.ones((1, 2)), np.ones(1), np.ones((1, 3)), 4, 4, (1, 1, 0, 1))

    def test_border_splat_does_not_smear(self):
        """A sprite centered on the border covers only its in-viewport
        pixels; clamped offsets must not re-paint the frame edge."""
        pts = np.array([[0.0, 0.5]])  # center on the left edge
        img = splat_points(
            pts, np.array([1.0]), np.array([[9, 9, 9]]), 9, 9, (0, 1, 0, 1), radius=1
        )
        # 2x3 footprint: columns 0..1, rows 3..5 -- nothing else.
        assert int((img.alpha > 0).sum()) == 6
        assert img.alpha[3:6, 0:2].all()

    def test_corner_splat_covers_quarter(self):
        pts = np.array([[0.0, 0.0]])
        img = splat_points(
            pts, np.array([1.0]), np.array([[7, 7, 7]]), 9, 9, (0, 1, 0, 1), radius=2
        )
        # Only the 3x3 in-bounds quarter of the 5x5 sprite is painted.
        assert int((img.alpha > 0).sum()) == 9
        assert img.alpha[0:3, 0:3].all()


class TestCompositeOver:
    def _img(self, val, mask, depth=None):
        rgb = np.full((2, 2, 3), val, dtype=np.uint8)
        alpha = (np.array(mask, dtype=np.uint8)) * 255
        d = None
        if depth is not None:
            d = np.where(np.array(mask, bool), np.float32(depth), np.inf).astype(
                np.float32
            )
        return RenderedImage(rgb, alpha, d)

    def test_alpha_priority(self):
        front = self._img(10, [[1, 0], [0, 0]])
        back = self._img(20, [[1, 1], [0, 1]])
        out = composite_over(front, back)
        assert out.rgb[0, 0, 0] == 10  # front wins where rendered
        assert out.rgb[0, 1, 0] == 20  # back fills
        assert out.alpha[1, 0] == 0  # both empty

    def test_depth_priority(self):
        near = self._img(10, [[1, 1], [1, 1]], depth=1.0)
        far = self._img(20, [[1, 1], [1, 1]], depth=5.0)
        out = composite_over(far, near)
        assert (out.rgb[..., 0] == 10).all()

    def test_mixed_depth_presence_rejected(self):
        a = self._img(1, [[1, 1], [1, 1]], depth=1.0)
        b = self._img(2, [[1, 1], [1, 1]])
        with pytest.raises(ValueError):
            composite_over(a, b)

    def test_shape_mismatch_rejected(self):
        a = self._img(1, [[1, 1], [1, 1]])
        b = RenderedImage(np.zeros((3, 3, 3), np.uint8), np.zeros((3, 3), np.uint8))
        with pytest.raises(ValueError):
            composite_over(a, b)


class TestCompositeOverInto:
    def _random_pair(self, seed, with_depth):
        rng = np.random.default_rng(seed)

        def mk():
            rgb = rng.integers(0, 256, (5, 7, 3), dtype=np.uint8)
            alpha = (rng.random((5, 7)) < 0.6).astype(np.uint8) * 255
            depth = None
            if with_depth:
                depth = np.where(
                    alpha > 0, rng.random((5, 7)).astype(np.float32), np.inf
                ).astype(np.float32)
            return RenderedImage(rgb, alpha, depth)

        return mk(), mk()

    @pytest.mark.parametrize("with_depth", [False, True])
    @pytest.mark.parametrize("target", ["back", "front", "fresh"])
    def test_matches_composite_over(self, with_depth, target):
        """In-place result is pixel-identical to the allocating one for
        every legal aliasing of ``out``."""
        for seed in range(5):
            front, back = self._random_pair(seed, with_depth)
            expected = composite_over(front, back)
            f, b = front.copy(), back.copy()
            out = {"back": b, "front": f, "fresh": blank_image(7, 5, with_depth)}[
                target
            ]
            got = composite_over_into(f, b, out=out)
            assert got is out
            assert np.array_equal(got.rgb, expected.rgb)
            assert np.array_equal(got.alpha, expected.alpha)
            if with_depth:
                assert np.array_equal(got.depth, expected.depth)

    def test_default_out_is_back(self):
        front, back = self._random_pair(3, False)
        expected = composite_over(front, back)
        got = composite_over_into(front, back)
        assert got is back
        assert np.array_equal(got.rgb, expected.rgb)

    def test_validation(self):
        front, back = self._random_pair(0, False)
        with pytest.raises(ValueError):
            composite_over_into(front, blank_image(3, 3))
        with pytest.raises(ValueError):
            composite_over_into(front, back, out=blank_image(7, 5, with_depth=True))
        with_d, _ = self._random_pair(0, True)
        with pytest.raises(ValueError):
            composite_over_into(with_d, back)


class TestFramebufferPool:
    def test_acquire_release_reuses_buffer(self):
        pool = FramebufferPool()
        a = pool.acquire(8, 4)
        a.rgb[:] = 77
        a.alpha[:] = 255
        pool.release(a)
        b = pool.acquire(8, 4)
        assert b is a  # same buffer back
        assert b.coverage() == 0.0  # cleared to blank state
        assert (pool.hits, pool.misses) == (1, 1)

    def test_acquire_no_clear_keeps_pixels(self):
        pool = FramebufferPool()
        a = pool.acquire(4, 4, with_depth=True)
        a.rgb[:] = 5
        pool.release(a)
        b = pool.acquire(4, 4, with_depth=True, clear=False)
        assert (b.rgb == 5).all()

    def test_shapes_and_depthness_keyed_separately(self):
        pool = FramebufferPool()
        a = pool.acquire(4, 4)
        pool.release(a)
        b = pool.acquire(4, 4, with_depth=True)
        assert b is not a
        assert pool.misses == 2

    def test_memory_charged_once_and_drained(self):
        mem = MemoryTracker()
        pool = FramebufferPool(memory=mem, label="test::pool")
        img = pool.acquire(16, 16)
        assert mem.named("test::pool") == img.nbytes
        pool.release(img)
        again = pool.acquire(16, 16)
        assert mem.named("test::pool") == again.nbytes  # reuse: no new charge
        pool.release(again)
        pool.drain()
        assert mem.named("test::pool") == 0
        assert mem.current == 0

    def test_release_beyond_cap_evicts(self):
        """A resolution change must not pin the old resolution's buffers:
        releases beyond MAX_FREE_PER_KEY are dropped and uncharged."""
        mem = MemoryTracker()
        pool = FramebufferPool(memory=mem, label="test::pool")
        imgs = [pool.acquire(8, 8) for _ in range(pool.MAX_FREE_PER_KEY + 2)]
        nbytes = imgs[0].nbytes
        for img in imgs:
            pool.release(img)
        assert pool.evictions == 2
        assert pool.allocated_nbytes == pool.MAX_FREE_PER_KEY * nbytes
        assert mem.named("test::pool") == pool.MAX_FREE_PER_KEY * nbytes
        # The free list is capped: the next acquire is a hit, not a miss.
        pool.acquire(8, 8)
        assert pool.hits == 1

    def test_record_gauges(self):
        from repro.trace import TraceRecorder

        pool = FramebufferPool(label="test::pool")
        pool.release(pool.acquire(8, 8))
        pool.acquire(8, 8)
        rec = TraceRecorder(rank=0)
        pool.record_gauges(rec)
        assert rec.total("test::pool::hits") == 1
        assert rec.total("test::pool::misses") == 1
        assert rec.total("test::pool::evictions") == 0
        assert rec.total("test::pool::allocated_nbytes") == pool.allocated_nbytes
        pool.record_gauges(rec, prefix="other")
        assert rec.total("other::hits") == 1


def _rank_band_image(comm, width=16, height=32, with_depth=False):
    """Each rank renders a horizontal band of rows with its own color."""
    img = blank_image(width, height, with_depth=with_depth)
    h0 = height * comm.rank // comm.size
    h1 = height * (comm.rank + 1) // comm.size
    img.rgb[h0:h1] = (comm.rank + 1) * 10
    img.alpha[h0:h1] = 255
    if with_depth:
        img.depth[h0:h1] = 1.0
    return img


class TestParallelCompositing:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4, 5, 8])
    def test_binary_swap_matches_direct_send(self, nranks):
        def prog(comm):
            img = _rank_band_image(comm)
            ds = direct_send(comm, img.copy())
            bs = binary_swap(comm, img.copy())
            if comm.rank == 0:
                return ds.rgb, ds.alpha, bs.rgb, bs.alpha
            assert ds is None and bs is None
            return None

        out = run_spmd(nranks, prog)[0]
        ds_rgb, ds_alpha, bs_rgb, bs_alpha = out
        assert np.array_equal(ds_rgb, bs_rgb)
        assert np.array_equal(ds_alpha, bs_alpha)

    def test_full_coverage_from_disjoint_bands(self):
        def prog(comm):
            out = binary_swap(comm, _rank_band_image(comm))
            return None if out is None else out.coverage()

        assert run_spmd(4, prog)[0] == 1.0

    @pytest.mark.parametrize("nranks", [2, 4, 6])
    def test_depth_composite_across_ranks(self, nranks):
        """Overlapping full-screen layers: nearest rank's color must win."""

        def prog(comm):
            img = blank_image(8, 8, with_depth=True)
            img.rgb[:] = (comm.rank + 1) * 10
            img.alpha[:] = 255
            # rank r at depth (r + 1): rank 0 is nearest.
            img.depth[:] = comm.rank + 1.0
            ds = direct_send(comm, img.copy())
            bs = binary_swap(comm, img.copy())
            if comm.rank == 0:
                return ds.rgb[0, 0, 0], bs.rgb[0, 0, 0]
            return None

        ds0, bs0 = run_spmd(nranks, prog)[0]
        assert ds0 == 10 and bs0 == 10

    def test_overlap_rank_priority_consistent(self):
        """Without depth, both algorithms resolve overlap to the lowest rank."""

        def prog(comm):
            img = blank_image(8, 8)
            img.rgb[:] = (comm.rank + 1) * 10
            img.alpha[:] = 255
            ds = direct_send(comm, img.copy())
            bs = binary_swap(comm, img.copy())
            if comm.rank == 0:
                return ds.rgb[0, 0, 0], bs.rgb[0, 0, 0]
            return None

        ds0, bs0 = run_spmd(4, prog)[0]
        assert ds0 == 10 and bs0 == 10

    @pytest.mark.parametrize("nranks", [1, 2, 3, 4, 8])
    def test_pooled_swap_matches_unpooled(self, nranks):
        """binary_swap with a FramebufferPool is pixel-identical and, after
        the first frame, allocation-free on the stitching root."""

        def prog(comm):
            pool = FramebufferPool()
            img = _rank_band_image(comm)
            finals = []
            for _ in range(3):
                out = binary_swap(comm, img, pool=pool)
                if out is not None:
                    finals.append((out.rgb.copy(), out.alpha.copy()))
                    if out is not img:  # size 1 returns the partial itself
                        pool.release(out)
            ref = binary_swap(comm, img.copy())
            if comm.rank != 0:
                return None
            return finals, (ref.rgb, ref.alpha), pool.misses

        finals, (ref_rgb, ref_alpha), misses = run_spmd(nranks, prog)[0]
        for rgb, alpha in finals:
            assert np.array_equal(rgb, ref_rgb)
            assert np.array_equal(alpha, ref_alpha)
        assert misses <= 1

    def test_partial_not_mutated_by_swap(self):
        """The caller's partial image survives binary_swap untouched (the
        zero-alloc rounds must only write into received copies)."""

        def prog(comm):
            img = _rank_band_image(comm, with_depth=True)
            before = (img.rgb.copy(), img.alpha.copy(), img.depth.copy())
            binary_swap(comm, img)
            return (
                np.array_equal(img.rgb, before[0])
                and np.array_equal(img.alpha, before[1])
                and np.array_equal(img.depth, before[2])
            )

        assert all(run_spmd(6, prog))


class TestMarchingTetrahedra:
    def test_sphere_surface_distance(self):
        """All triangle vertices of an iso-sphere lie near the sphere."""
        n = 16
        ax = np.linspace(-1, 1, n)
        x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
        r = np.sqrt(x * x + y * y + z * z)
        h = ax[1] - ax[0]
        tris = marching_tetrahedra(r, 0.6, origin=(-1, -1, -1), spacing=(h, h, h))
        assert tris.shape[0] > 100
        radii = np.linalg.norm(tris.reshape(-1, 3), axis=1)
        assert np.all(np.abs(radii - 0.6) < h)

    def test_planar_field_gives_plane(self):
        n = 8
        x = np.meshgrid(
            np.arange(n, dtype=float), np.arange(n, dtype=float),
            np.arange(n, dtype=float), indexing="ij",
        )[0]
        tris = marching_tetrahedra(x, 3.5)
        assert tris.shape[0] > 0
        np.testing.assert_allclose(tris[..., 0], 3.5, atol=1e-12)

    def test_iso_outside_range_is_empty(self):
        f = np.zeros((4, 4, 4))
        assert marching_tetrahedra(f, 5.0).shape == (0, 3, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            marching_tetrahedra(np.zeros((1, 4, 4)), 0.5)
        with pytest.raises(ValueError):
            marching_tetrahedra(np.zeros((4, 4)), 0.5)

    def test_watertight_no_boundary_gaps(self):
        """Every interior triangle edge is shared by exactly two triangles
        (watertightness of marching tets on a closed surface)."""
        n = 10
        ax = np.linspace(-1, 1, n)
        x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
        r = np.sqrt(x * x + y * y + z * z)
        h = ax[1] - ax[0]
        tris = marching_tetrahedra(r, 0.55, origin=(-1, -1, -1), spacing=(h, h, h))
        # Quantize vertices so shared edges hash identically.
        q = np.round(tris / (h * 1e-6)).astype(np.int64)
        edge_count: dict = {}
        for t in range(q.shape[0]):
            for e in range(3):
                a = tuple(q[t, e])
                b = tuple(q[t, (e + 1) % 3])
                if a == b:  # degenerate edge from a vertex exactly on iso
                    continue
                key = (min(a, b), max(a, b))
                edge_count[key] = edge_count.get(key, 0) + 1
        counts = np.array(list(edge_count.values()))
        # A closed surface inside the domain: all edges shared exactly twice.
        assert (counts == 2).mean() > 0.95

    def test_isosurface_points_on_surface(self):
        n = 12
        ax = np.linspace(-1, 1, n)
        x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
        r = np.sqrt(x * x + y * y + z * z)
        h = ax[1] - ax[0]
        pts = isosurface_points(r, 0.5, origin=(-1, -1, -1), spacing=(h, h, h))
        assert pts.shape[0] > 0
        radii = np.linalg.norm(pts, axis=1)
        assert np.all(np.abs(radii - 0.5) < h)
