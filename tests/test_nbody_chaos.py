"""Chaos harness over the nbody app: fault recovery with ragged payloads.

The satellite contract: ``repro chaos --app nbody`` produces byte-identical
recovery reports per seed, and a ``sim.step`` death mid-migration is
recovered by checkpoint/restore replaying particle ownership *exactly* --
asserted by comparing per-rank particle fingerprints against a fault-free
run of the same seed.
"""

import json
import os

import pytest

from repro.faults import SITE_SIM_STEP, FaultEvent, FaultPlan
from repro.faults.chaos import render_report, run_chaos

pytestmark = pytest.mark.usefixtures("spmd_backend")

SEED = 20160214

#: Backend name -> (out_dir, report), filled as the module executes under
#: each backend param; the cross-backend test compares the entries.
_RUN_BY_BACKEND: dict = {}


def _nbody_chaos(out_dir, seed=SEED, **kwargs):
    kwargs.setdefault("ranks", 3)
    kwargs.setdefault("steps", 6)
    kwargs.setdefault("global_dims", (8, 8, 8))
    kwargs.setdefault("timeout", 90.0)
    return run_chaos(seed=seed, out_dir=str(out_dir), app="nbody", **kwargs)


@pytest.fixture(scope="module")
def chaos_pair(tmp_path_factory, spmd_backend):
    """Two identical nbody chaos runs, shared module-wide."""
    d1 = str(tmp_path_factory.mktemp(f"nchaos1-{spmd_backend}"))
    d2 = str(tmp_path_factory.mktemp(f"nchaos2-{spmd_backend}"))
    r1 = _nbody_chaos(d1)
    r2 = _nbody_chaos(d2)
    _RUN_BY_BACKEND[spmd_backend] = (d1, r1)
    return (d1, r1), (d2, r2)


class TestNbodyChaosRun:
    def test_report_carries_app_and_forced_interval(self, chaos_pair):
        (_, report), _ = chaos_pair
        assert report["app"] == "nbody"
        # Recovery must never replay a communicating step, so the harness
        # forces per-step checkpoints regardless of the requested interval.
        assert report["checkpoint_interval"] == 1
        assert report["completed"]

    def test_requested_interval_is_overridden(self, tmp_path):
        report = _nbody_chaos(tmp_path, steps=4, checkpoint_interval=3)
        assert report["checkpoint_interval"] == 1

    def test_all_steps_accounted(self, chaos_pair):
        (_, report), _ = chaos_pair
        acct = report["accounting"]
        assert (
            acct["staged_steps"] + acct["degraded_steps"] + acct["skipped_steps"]
            == report["steps"]
        )

    def test_nbody_section_reports_particles(self, chaos_pair):
        (_, report), _ = chaos_pair
        nb = report["nbody"]
        assert len(nb["final_counts"]) == report["ranks"] - 1
        assert len(nb["particles_fingerprints"]) == report["ranks"] - 1
        assert all(isinstance(fp, int) for fp in nb["particles_fingerprints"])
        assert sum(nb["final_counts"]) > 0

    def test_rank_death_recovered(self, chaos_pair):
        (_, report), _ = chaos_pair
        assert report["fault_counts"].get("sim.step::die", 0) >= 1
        acct = report["accounting"]
        assert acct["deaths"] >= 1
        assert acct["checkpoint_restores"] >= acct["deaths"]

    def test_same_seed_byte_identical_reports(self, chaos_pair):
        (d1, _), (d2, _) = chaos_pair
        a = open(os.path.join(d1, "recovery_report.json"), "rb").read()
        b = open(os.path.join(d2, "recovery_report.json"), "rb").read()
        assert a == b

    def test_different_seed_differs(self, chaos_pair, tmp_path):
        (_, report), _ = chaos_pair
        other = _nbody_chaos(tmp_path, seed=SEED + 1)
        assert other["nbody"] != report["nbody"] or (
            other["fault_counts"] != report["fault_counts"]
        )

    def test_artifacts_written(self, chaos_pair):
        (d1, report), _ = chaos_pair
        report_path = os.path.join(d1, "recovery_report.json")
        assert json.load(open(report_path)) == json.loads(json.dumps(report))
        hists = json.load(open(os.path.join(d1, "histograms.json")))
        assert len(hists) == report["steps"]
        assert all(sum(h["counts"]) > 0 for h in hists)
        assert render_report(report)  # renders without raising

    def test_invalid_app_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            run_chaos(out_dir=str(tmp_path), app="lattice")


class TestDeathReplaysOwnershipExactly:
    """The heart of the satellite: kill a writer inside ``sim.step`` while
    its migration outboxes are computed but unsent, recover, and demand
    the final particle ownership (per-rank fingerprints and counts) be
    bit-identical to a fault-free run of the same seed."""

    @staticmethod
    def _run_with_plan(out_dir, events):
        return _nbody_chaos(
            out_dir, plan=FaultPlan(seed=SEED, events=tuple(events))
        )

    def test_mid_migration_death_matches_fault_free_run(self, tmp_path):
        clean = self._run_with_plan(tmp_path / "clean", [])
        death = self._run_with_plan(
            tmp_path / "death",
            [FaultEvent(SITE_SIM_STEP, "die", rank=1, step=3)],
        )
        assert death["fault_counts"].get("sim.step::die") == 1
        assert death["accounting"]["deaths"] == 1
        assert death["accounting"]["checkpoint_restores"] == 1
        # Exact ownership replay: same particles on the same ranks.
        assert death["nbody"] == clean["nbody"]

    def test_death_on_each_writer_rank_recovers(self, tmp_path):
        clean = self._run_with_plan(tmp_path / "c", [])
        for rank in (0, 1):
            report = self._run_with_plan(
                tmp_path / f"r{rank}",
                [FaultEvent(SITE_SIM_STEP, "die", rank=rank, step=2)],
            )
            assert report["completed"], rank
            assert report["nbody"] == clean["nbody"], rank


class TestCrossBackend:
    def test_reports_byte_identical_across_backends(self, chaos_pair):
        if len(_RUN_BY_BACKEND) < 2:
            pytest.skip("second backend param not executed yet")
        (d_a, _), (d_b, _) = (
            _RUN_BY_BACKEND["thread"],
            _RUN_BY_BACKEND["process"],
        )
        a = open(os.path.join(d_a, "recovery_report.json"), "rb").read()
        b = open(os.path.join(d_b, "recovery_report.json"), "rb").read()
        assert a == b


class TestCli:
    def test_repro_chaos_app_nbody(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "cli")
        rc = main(
            [
                "chaos",
                "--app", "nbody",
                "--seed", str(SEED),
                "--ranks", "3",
                "--steps", "4",
                "--out", out,
            ]
        )
        assert rc == 0
        report = json.load(open(os.path.join(out, "recovery_report.json")))
        assert report["app"] == "nbody"
        assert "nbody" in report
        assert "chaos run" in capsys.readouterr().out
