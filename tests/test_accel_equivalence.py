"""Equivalence gates for the optional numba acceleration tier.

The :mod:`repro.accel` contract: the numpy reference implementations are
the source of truth, and the jitted variants must be indistinguishable --
rtol 1e-12 for the accumulate-order-sensitive matvec, byte-identity for
packing and compositing.  The container this suite normally runs in does
NOT ship numba, so the numpy-fallback paths are what execute here; the
jitted-vs-reference assertions are additionally exercised when numba is
importable (same test functions -- the dispatch happens inside accel).
The suite must pass identically in both configurations.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro import accel
from repro.miniapp.kernel_cache import FieldKernelCache
from repro.miniapp.oscillator import Oscillator
from repro.render.compositing import composite_over, composite_over_into
from repro.render.rasterize import RenderedImage


def _rng():
    return np.random.default_rng(20160813)


def _random_image(rng, h=33, w=47, with_depth=True, coverage=0.6):
    rgb = rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)
    alpha = np.where(rng.random((h, w)) < coverage, 255, 0).astype(np.uint8)
    depth = None
    if with_depth:
        depth = rng.random((h, w)).astype(np.float32)
        depth[alpha == 0] = np.inf
    rgb[alpha == 0] = 0
    return RenderedImage(rgb, alpha, depth)


class TestMatvec:
    def test_matches_blas_reference(self):
        rng = _rng()
        basis = rng.standard_normal((1024, 7))
        values = rng.standard_normal(7)
        out = np.empty(1024)
        got = accel.matvec_into(basis, values, out)
        assert got is out
        np.testing.assert_allclose(out, basis @ values, rtol=1e-12, atol=0.0)

    def test_kernel_cache_dispatches_through_accel(self):
        x, y, z = np.meshgrid(
            np.linspace(0, 1, 6), np.linspace(0, 1, 5), np.linspace(0, 1, 4),
            indexing="ij",
        )
        oscs = [
            Oscillator("damped", (0.3, 0.4, 0.5), radius=0.5, omega=3.0, zeta=0.1),
            Oscillator("periodic", (0.7, 0.6, 0.2), radius=0.4, omega=5.0),
        ]
        cache = FieldKernelCache(oscs, x, y, z)
        out = cache.evaluate(t=0.37)
        ref = cache.basis @ cache.time_values(0.37)
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=0.0)


class TestPackContiguous:
    def test_strided_face_view_bytes_identical(self):
        rng = _rng()
        vol = rng.standard_normal((9, 8, 7))
        for view in (vol[2:4, :, :], vol[:, 3:5, :], vol[:, :, 1:3], vol[::2, 1:, :-1]):
            packed = accel.pack_contiguous(view)
            assert packed.flags.c_contiguous
            assert packed.tobytes() == np.ascontiguousarray(view).tobytes()

    def test_contiguous_input_is_identity(self):
        arr = np.arange(24.0).reshape(2, 3, 4)
        assert accel.pack_contiguous(arr) is arr


class TestComposite:
    @pytest.mark.parametrize("with_depth", [True, False])
    def test_into_matches_allocating_reference(self, with_depth):
        rng = _rng()
        front = _random_image(rng, with_depth=with_depth)
        back = _random_image(rng, with_depth=with_depth)
        ref = composite_over(front.copy(), back.copy())
        out = composite_over_into(front, back.copy())
        assert out.rgb.tobytes() == ref.rgb.tobytes()
        assert out.alpha.tobytes() == ref.alpha.tobytes()
        if with_depth:
            assert out.depth.tobytes() == ref.depth.tobytes()

    def test_aliasing_out_is_front_safe(self):
        rng = _rng()
        front = _random_image(rng)
        back = _random_image(rng)
        ref = composite_over(front.copy(), back.copy())
        out = composite_over_into(front, back, out=front)
        assert out is front
        assert out.rgb.tobytes() == ref.rgb.tobytes()
        assert out.alpha.tobytes() == ref.alpha.tobytes()
        assert out.depth.tobytes() == ref.depth.tobytes()

    def test_accel_entry_point_contract(self):
        rng = _rng()
        front = _random_image(rng)
        back = _random_image(rng)
        out = back.copy()
        handled = accel.composite_into(
            out.rgb, out.alpha, out.depth,
            front.rgb, front.alpha, front.depth,
            back.rgb, back.alpha, back.depth,
        )
        assert handled == accel.HAVE_NUMBA
        if handled:
            ref = composite_over(front, back)
            assert out.rgb.tobytes() == ref.rgb.tobytes()
            assert out.alpha.tobytes() == ref.alpha.tobytes()
            assert out.depth.tobytes() == ref.depth.tobytes()


class TestDetection:
    def test_kill_switch_disables_tier(self):
        # A fresh interpreter with REPRO_NUMBA=0 must report the tier off
        # regardless of whether numba is installed.
        code = "from repro import accel; print(accel.HAVE_NUMBA)"
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": "src", "REPRO_NUMBA": "0", "PATH": "/usr/bin:/bin"},
            cwd=".",
        )
        assert out.stdout.strip() == "False"

    def test_tier_off_without_numba(self):
        try:
            import numba  # noqa: F401
        except ImportError:
            assert accel.HAVE_NUMBA is False
        else:  # pragma: no cover - container ships no numba
            pytest.skip("numba installed; detection covered by kill switch test")
