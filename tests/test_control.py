"""Tests for the online autotuning controller (repro.control).

Covers the per-config cost model and its derate inversion, the SLO, the
controller's state machine (tune / degrade / probe / recover) in both
spans and outcomes modes, the span sensor, the closed-loop demo under an
injected bandwidth derating, the chaos-harness integration, and the
determinism contract: same seed => byte-identical decision journals
across repeat runs, across writer ranks, and across SPMD backends.
"""

import json
import math

import pytest

from repro.control import SLO, Controller, run_control_demo
from repro.control.sensor import SpanSensor
from repro.perf import ControlConfig, ControlModel
from repro.trace import TraceRecorder


# -- the per-config cost model ------------------------------------------------


class TestControlConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ControlConfig(placement="in-memory")
        with pytest.raises(ValueError):
            ControlConfig(png_workers=-1)
        with pytest.raises(ValueError):
            ControlConfig(png_codec="gpu")
        with pytest.raises(ValueError):
            ControlConfig(framebuffer_depth=-1)
        with pytest.raises(ValueError):
            ControlConfig(ranks_per_aggregator=0)

    def test_as_dict_stable(self):
        d = ControlConfig().as_dict()
        assert list(d) == [
            "placement",
            "png_workers",
            "png_codec",
            "framebuffer_depth",
            "ranks_per_aggregator",
        ]


class TestControlModel:
    @pytest.fixture(scope="class")
    def model(self):
        return ControlModel()

    def test_candidates_inline_block_first(self, model):
        cands = model.candidate_configs()
        n_inline = sum(c.placement == "in-line" for c in cands)
        assert n_inline > 0
        assert all(c.placement == "in-line" for c in cands[:n_inline])
        assert all(c.placement == "in-transit" for c in cands[n_inline:])
        assert len(set(cands)) == len(cands)
        assert model.default_config() in cands

    def test_staging_derate_hits_only_in_transit(self, model):
        staged = model.default_config()
        inline = staged.with_placement("in-line")
        assert model.predict(staged, 0.9).total > model.predict(staged, 0.0).total
        assert model.predict(inline, 0.9).total == model.predict(inline, 0.0).total

    def test_png_workers_cut_inline_analysis(self, model):
        slow = ControlConfig(placement="in-line", png_workers=0)
        fast = ControlConfig(placement="in-line", png_workers=4)
        assert model.predict(fast, 0.0).analysis < model.predict(slow, 0.0).analysis

    def test_severe_derate_flips_optimum_in_line(self, model):
        cands = model.candidate_configs()
        healthy = min(cands, key=lambda c: model.predict(c, 0.0).total)
        derated = min(cands, key=lambda c: model.predict(c, 0.98).total)
        assert healthy.placement == "in-transit"
        assert derated.placement == "in-line"

    def test_derate_estimation_inverts_prediction(self, model):
        cfg = model.default_config()
        for d in (0.1, 0.5, 0.9, 0.98):
            observed = model.predict(cfg, d).analysis
            assert model.estimate_staging_derate(cfg, observed) == pytest.approx(
                d, abs=1e-9
            )

    def test_derate_estimation_clamps_and_validates(self, model):
        cfg = model.default_config()
        assert model.estimate_staging_derate(cfg, 0.0) == 0.0
        assert model.estimate_staging_derate(cfg, 1e9) == 0.995
        with pytest.raises(ValueError):
            model.estimate_staging_derate(cfg.with_placement("in-line"), 1.0)
        with pytest.raises(ValueError):
            model.predict(cfg, staging_derate=1.0)

    def test_default_slo_has_headroom(self, model):
        max_step, max_over = model.default_slo()
        assert max_step > model.predict(model.default_config()).total
        assert math.isinf(max_over)


class TestSLO:
    def test_step_bound(self):
        slo = SLO(max_step_seconds=1.0)
        assert not slo.violated_by(0.9, 0.5)
        assert slo.violated_by(1.1, 0.5)

    def test_overhead_bound(self):
        slo = SLO(max_overhead_fraction=0.5)
        assert not slo.violated_by(1.2, 1.0)
        assert slo.violated_by(1.6, 1.0)
        assert slo.violated_by(1.0, 0.0)  # zero sim time: unbounded overhead

    def test_as_dict_maps_inf_to_none(self):
        assert SLO().as_dict() == {
            "max_step_seconds": None,
            "max_overhead_fraction": None,
        }
        assert SLO(0.5).as_dict()["max_step_seconds"] == 0.5


# -- the span sensor ----------------------------------------------------------


class TestSpanSensor:
    def test_aggregates_top_level_per_step_spans(self):
        rec = TraceRecorder(rank=0, epoch=0.0)
        sensor = SpanSensor(rec)
        rec.complete("simulation::advance", 0.0, 1.0, step=0)
        rec.complete("sensei::execute", 1.0, 1.5, step=0)
        # Nested and step-less spans must not be double counted.
        rec.complete("catalyst::render", 1.0, 1.4, step=0, parent="sensei::execute")
        rec.complete("io::write", 1.5, 1.6, step=0)
        rec.complete("simulation::initialize", 0.0, 2.0)
        obs = sensor.drain(0)
        assert obs == {
            "simulation": pytest.approx(1.0),
            "analysis": pytest.approx(0.5),
            "write": pytest.approx(0.1),
        }
        assert sensor.drain(0) == {}  # buckets are popped

    def test_drain_sweeps_earlier_buckets(self):
        rec = TraceRecorder(rank=0, epoch=0.0)
        sensor = SpanSensor(rec)
        # The advance span for step N closes before set_step(N) runs in
        # the bridge, so it carries the previous step's tag.
        rec.complete("simulation::advance", 0.0, 1.0, step=0)
        rec.complete("sensei::execute", 1.0, 2.0, step=1)
        obs = sensor.drain(1)
        assert obs == {
            "simulation": pytest.approx(1.0),
            "analysis": pytest.approx(1.0),
        }

    def test_close_detaches(self):
        rec = TraceRecorder(rank=0, epoch=0.0)
        sensor = SpanSensor(rec)
        sensor.close()
        sensor.close()  # idempotent
        rec.complete("sensei::execute", 0.0, 1.0, step=0)
        assert sensor.drain(0) == {}


# -- controller state machine -------------------------------------------------


def _controller(**kwargs):
    kwargs.setdefault("model", ControlModel())
    kwargs.setdefault("slo", SLO(max_step_seconds=0.65))
    kwargs.setdefault("seed", 3)
    return Controller(**kwargs)


class TestController:
    def test_rejects_non_candidate_start_config(self):
        with pytest.raises(ValueError, match="candidate"):
            _controller(config=ControlConfig(png_workers=7))

    def test_first_healthy_step_tunes_the_default(self):
        ctrl = _controller()
        truth = ctrl.model.predict(ctrl.model.default_config(), 0.0)
        decision = ctrl.observe_step(
            0,
            {
                "simulation": truth.sim,
                "analysis": truth.analysis,
                "write": truth.write,
            },
        )
        assert decision.action == "reconfigure"
        assert decision.previous is not None
        assert ctrl.config.placement == "in-transit"
        assert ctrl.model.predict(ctrl.config, 0.0).total < truth.total

    def test_outcome_failures_degrade_in_line(self):
        ctrl = _controller()
        ctrl.observe_outcome(0, staged=True)
        assert ctrl.config.placement == "in-transit"
        actions = []
        for step in range(1, 6):
            actions.append(ctrl.observe_outcome(step, staged=False).action)
            if ctrl.config.placement == "in-line":
                break
        assert actions[-1] == "degrade"
        assert len(actions) <= 3  # bad news acts fast
        assert not ctrl.wants_in_transit()
        assert ctrl.believed_derate > 0.9

    def test_probe_scheduled_then_recovery(self):
        ctrl = _controller(probe_interval=3, probe_jitter=0)
        ctrl.observe_outcome(0, staged=True)
        step = 1
        while ctrl.config.placement != "in-line":
            ctrl.observe_outcome(step, staged=False)
            step += 1
        degrade_step = step - 1
        # In-line steps do not attempt staging until the probe fires.
        probed = []
        recovered_at = None
        for s in range(step, step + 12):
            attempted = ctrl.wants_in_transit()
            probed.append(attempted)
            decision = ctrl.observe_outcome(s, staged=attempted)
            if decision.action == "recover":
                recovered_at = s
                break
        assert any(probed), "no staging probe was ever scheduled"
        assert not probed[0], "probing must wait out the interval"
        assert recovered_at is not None
        assert ctrl.config.placement == "in-transit"
        assert recovered_at - degrade_step >= 3
        # The probe decision carries its seeded draw in the journal.
        draws = [d.draw for d in ctrl.journal.entries if d.draw is not None]
        assert draws, "probe scheduling never recorded its draw"

    def test_spans_mode_closed_loop_matches_outcomes_dynamics(self):
        ctrl = _controller()
        model = ctrl.model
        for step in range(6):
            true_d = 0.98 if step >= 3 else 0.0
            truth = model.predict(ctrl.plant_config(), true_d)
            ctrl.observe_step(
                step,
                {
                    "simulation": truth.sim,
                    "analysis": truth.analysis,
                    "write": truth.write,
                },
            )
        assert ctrl.config.placement == "in-line"
        assert ctrl.believed_derate > 0.9
        degrade = [
            d for d in ctrl.journal.entries if d.action == "degrade"
        ]
        assert len(degrade) == 1
        assert degrade[0].slo_violated

    def test_hysteresis_prevents_oscillation_on_ties(self):
        ctrl = _controller()
        truth = ctrl.model.predict(ctrl.model.default_config(), 0.0)
        obs = {
            "simulation": truth.sim,
            "analysis": truth.analysis,
            "write": truth.write,
        }
        ctrl.observe_step(0, obs)
        tuned = ctrl.config
        for step in range(1, 10):
            t = ctrl.model.predict(ctrl.plant_config(), 0.0)
            ctrl.observe_step(
                step,
                {"simulation": t.sim, "analysis": t.analysis, "write": t.write},
            )
        assert ctrl.config == tuned
        assert sum(d.action != "hold" for d in ctrl.journal.entries) == 1

    def test_actuators_fire_on_adoption(self):
        calls = []
        ctrl = _controller()
        ctrl.register_actuator(lambda old, new: calls.append((old, new)))
        ctrl.observe_outcome(0, staged=True)
        assert len(calls) == 1
        old, new = calls[0]
        assert old != new
        assert new == ctrl.config

    def test_identical_inputs_identical_journals(self):
        def run():
            ctrl = _controller(seed=11)
            for step in range(12):
                staged = not (3 <= step < 9)
                if ctrl.config.placement == "in-line" and not ctrl.wants_in_transit():
                    staged = False
                ctrl.observe_outcome(step, staged=staged)
            return ctrl.journal.to_json()

        assert run() == run()

    def test_journal_records_slo_with_inf_as_none(self):
        ctrl = Controller(model=ControlModel(), seed=0)
        assert ctrl.journal.slo["max_overhead_fraction"] is None
        assert ctrl.journal.slo["max_step_seconds"] is not None


# -- sensed outcomes: spans grafted onto the outcome feed ---------------------


def _sensed_controller(**kwargs):
    """A controller with a span sensor fed by synthetic (modeled) spans."""
    ctrl = _controller(**kwargs)
    rec = TraceRecorder(rank=0, epoch=0.0)
    ctrl.attach(rec)
    return ctrl, rec


def _feed_step(rec, step, sim, analysis, write=0.0):
    """Emit one step's top-level spans with fixed, deterministic times."""
    t = float(step)
    rec.complete("simulation::advance", t, t + sim, step=step)
    t += sim
    rec.complete("analysis::execute", t, t + analysis, step=step)
    if write > 0.0:
        t += analysis
        rec.complete("io::write", t, t + write, step=step)


class TestSensedOutcomes:
    def test_outcome_observation_includes_measured_phases(self):
        ctrl, rec = _sensed_controller()
        _feed_step(rec, 0, sim=0.2, analysis=0.1, write=0.05)
        decision = ctrl.observe_outcome(0, staged=True)
        assert decision.observed["attempted"] == 1.0
        assert decision.observed["staged"] == 1.0
        assert decision.observed["simulation"] == pytest.approx(0.2)
        assert decision.observed["analysis"] == pytest.approx(0.1)
        assert decision.observed["write"] == pytest.approx(0.05)

    def test_sensed_analysis_seconds_drive_continuous_derate(self):
        # A staged step whose measured analysis cost matches a heavily
        # derated fabric must raise belief continuously -- the signal the
        # discrete outcome feed (healthy => flat 0.0) cannot carry.
        ctrl, rec = _sensed_controller()
        slow = ctrl.model.predict(ctrl.plant_config(), 0.9)
        _feed_step(rec, 0, sim=slow.sim, analysis=slow.analysis)
        ctrl.observe_outcome(0, staged=True)
        assert ctrl.believed_derate > 0.5

    def test_sensed_failure_still_imputes_outcome_derate(self):
        from repro.control.controller import OUTCOME_DERATE

        ctrl, rec = _sensed_controller()
        _feed_step(rec, 0, sim=0.001, analysis=0.001)
        ctrl.observe_outcome(0, staged=False)
        # ALPHA_RAISE-weighted EWMA from 0 toward the imputed sample.
        assert ctrl.believed_derate == pytest.approx(0.9 * OUTCOME_DERATE)

    def test_sensed_slo_violation_bypasses_cooldown(self):
        ctrl, rec = _sensed_controller()
        _feed_step(rec, 0, sim=0.1, analysis=2.0)  # way past max_step_seconds
        decision = ctrl.observe_outcome(0, staged=True)
        assert decision.slo_violated

    def test_unsensed_observation_unchanged(self):
        # No sensor attached: the observed dict stays the discrete pair,
        # which is what keeps CI's chaos-smoke byte-identity diff green.
        ctrl = _controller()
        decision = ctrl.observe_outcome(0, staged=True)
        assert set(decision.observed) == {"attempted", "staged"}

    def test_sensed_journal_determinism(self):
        def run():
            ctrl, rec = _sensed_controller(seed=11)
            for step in range(12):
                staged = not (3 <= step < 9)
                if (
                    ctrl.config.placement == "in-line"
                    and not ctrl.wants_in_transit()
                ):
                    staged = False
                _feed_step(
                    rec, step, sim=0.01 + 0.001 * step, analysis=0.02
                )
                ctrl.observe_outcome(step, staged=staged)
            return ctrl.journal.to_json()

        assert run() == run()

    def test_chaos_spans_mode_group_journals_identical(self, tmp_path):
        from repro.faults.chaos import run_chaos

        report = run_chaos(
            seed=42,
            ranks=3,
            steps=6,
            out_dir=str(tmp_path),
            controller=True,
            sense="spans",
        )
        assert report["controller"]["journals_identical"]
        journal = json.loads((tmp_path / "decision_journal.json").read_text())
        assert journal["meta"]["mode"] == "spans"
        assert len(journal["decisions"]) == 6
        # At least one decision carries a measured per-phase observation.
        assert any(
            "simulation" in d["observed"] or "analysis" in d["observed"]
            for d in journal["decisions"]
        )

    def test_chaos_rejects_unknown_sense(self, tmp_path):
        from repro.faults.chaos import run_chaos

        with pytest.raises(ValueError, match="sense"):
            run_chaos(out_dir=str(tmp_path), sense="vibes")


# -- the closed-loop demo -----------------------------------------------------


class TestControlDemo:
    @pytest.fixture(scope="class")
    def demo(self):
        return run_control_demo()

    def test_degrades_during_outage_and_recovers_after(self, demo):
        s = demo["summary"]
        first, end = s["derate_window"]
        assert s["degraded_at"] is not None
        assert first <= s["degraded_at"] <= first + 2, "slow degrade"
        assert s["recovered_at"] is not None
        assert s["recovered_at"] >= end
        assert s["final_placement"] == "in-transit"

    def test_slo_held_except_detection_and_probes(self, demo):
        s = demo["summary"]
        first, end = s["derate_window"]
        over = s["steps_over_slo"]
        assert len(over) <= 4
        probe_steps = {
            d["step"] for d in demo["journal"]["decisions"] if d["probe"]
        }
        for step in over:
            assert first <= step < end
            assert step <= s["degraded_at"] or step in probe_steps

    def test_journal_consensus_metadata(self, demo):
        for d in demo["journal"]["decisions"]:
            assert d["adopted"] == d["proposal"]  # healthy lockstep group
            assert d["action"] in ("hold", "reconfigure", "degrade", "recover")

    def test_repeat_run_byte_identical(self, demo):
        again = run_control_demo()
        assert again["journal_text"] == demo["journal_text"]

    def test_backends_byte_identical(self):
        thread = run_control_demo(
            steps=16, derate_window=(4, 10), writers=2, backend="thread"
        )
        process = run_control_demo(
            steps=16, derate_window=(4, 10), writers=2, backend="process"
        )
        assert thread["journal_text"] == process["journal_text"]

    def test_seed_perturbs_probe_schedule(self):
        base = run_control_demo(steps=24, derate_window=(4, 18), seed=7)
        other = run_control_demo(steps=24, derate_window=(4, 18), seed=104)
        assert base["journal_text"] != other["journal_text"]

    def test_artifacts_written(self, tmp_path):
        out = tmp_path / "demo"
        result = run_control_demo(
            steps=12, derate_window=(4, 9), writers=2, out_dir=str(out)
        )
        journal = json.loads((out / "decision_journal.json").read_text())
        assert journal["meta"]["mode"] == "spans"
        assert len(journal["decisions"]) == 12
        assert (out / "decision_journal.json").read_text() == result[
            "journal_text"
        ]
        assert (out / "timeline.txt").read_text().strip()
        summary = json.loads((out / "summary.json").read_text())
        assert summary["steps"] == 12


# -- chaos-harness integration ------------------------------------------------


class TestChaosControllerIntegration:
    @pytest.fixture(scope="class")
    def chaos_pair(self, tmp_path_factory):
        from repro.faults.chaos import run_chaos

        root = tmp_path_factory.mktemp("chaos_ctl")
        a = run_chaos(seed=42, out_dir=str(root / "a"), controller=True)
        b = run_chaos(seed=42, out_dir=str(root / "b"), controller=True)
        return root, a, b

    def test_replay_byte_identical_journals(self, chaos_pair):
        root, a, b = chaos_pair
        ja = (root / "a" / "decision_journal.json").read_bytes()
        jb = (root / "b" / "decision_journal.json").read_bytes()
        assert ja == jb
        assert a["controller"]["actions"] == b["controller"]["actions"]

    def test_writer_group_journals_identical(self, chaos_pair):
        _, a, _ = chaos_pair
        assert a["controller"]["journals_identical"]

    def test_degrades_after_endpoint_disconnect(self, chaos_pair):
        _, a, _ = chaos_pair
        actions = dict((act, step) for step, act in a["controller"]["actions"])
        assert "degrade" in actions
        disconnect = a["endpoint"]["disconnected_at_step"]
        assert disconnect is not None
        assert a["controller"]["final_config"]["placement"] == "in-line"

    def test_accounting_invariant_holds_under_controller(self, chaos_pair):
        _, a, _ = chaos_pair
        acct = a["accounting"]
        total = (
            acct["staged_steps"] + acct["degraded_steps"] + acct["skipped_steps"]
        )
        assert total == a["steps"]
        assert 0 <= acct["lost_in_flight"] <= 1

    def test_journal_decision_per_step(self, chaos_pair):
        root, a, _ = chaos_pair
        journal = json.loads((root / "a" / "decision_journal.json").read_text())
        assert journal["meta"]["mode"] == "outcomes"
        assert len(journal["decisions"]) == a["steps"]


# -- bridge wiring ------------------------------------------------------------


class TestBridgeControllerHook:
    def test_end_step_called_per_execute(self):
        from repro.core.bridge import Bridge
        from repro.mpi import run_spmd

        class _Recorder:
            def __init__(self):
                self.attached = None
                self.steps = []

            def attach(self, recorder):
                self.attached = recorder

            def end_step(self, step):
                self.steps.append(step)

        ctrl = _Recorder()

        def program(comm):
            from repro.miniapp import OscillatorSimulation
            from repro.miniapp.oscillator import default_oscillators

            sim = OscillatorSimulation(
                comm, (8, 8, 8), default_oscillators(), dt=0.01
            )
            bridge = Bridge(comm, sim.make_data_adaptor(), controller=ctrl)
            bridge.initialize()
            for _ in range(3):
                sim.advance()
                bridge.execute(sim.time, sim.step)
            bridge.finalize()
            return ctrl.steps

        [steps] = run_spmd(1, program)
        assert steps == [1, 2, 3]
