"""ParticleSet, ragged DataArray views, and the exact deposit kernels.

Satellite contract of the nbody PR: ``DataArray`` introspection
(``is_zero_copy``, ``fingerprint``, the write guard) must hold on
*per-rank slices* of a ragged particle population, because that is what
the sanitizer polices when an analysis receives one rank's variable-length
share of a ``ParticleSet``.
"""

import numpy as np
import pytest

from repro.data import (
    Association,
    DataArray,
    DEPOSIT_SCALE,
    PARTICLE_ARRAYS,
    ParticleSet,
    cic_deposit_int,
    cic_deposit_int_2d,
    cic_gather,
)


def _make_set(n=12, seed=3):
    rng = np.random.default_rng(seed)
    return ParticleSet(
        np.arange(n, dtype=np.int64),
        rng.random((n, 3)),
        rng.random((n, 3)) - 0.5,
        rng.integers(1, 17, n) / 16.0,
    )


class TestParticleSet:
    def test_arrays_registered_zero_copy(self):
        p = _make_set()
        for name in PARTICLE_ARRAYS:
            arr = p.get_array(Association.POINT, name)
            assert arr.is_zero_copy
        pos = p.get_array(Association.POINT, "position")
        assert pos.is_zero_copy_of(p.positions)
        assert pos.as_aos() is p.positions  # AoS base returned uncopied

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ParticleSet(
                np.arange(3), np.zeros((4, 3)), np.zeros((3, 3)), np.zeros(3)
            )
        with pytest.raises(ValueError):
            ParticleSet(
                np.arange(3), np.zeros((3, 3)), np.zeros((3, 3)), np.zeros(4)
            )

    def test_empty_population_is_valid(self):
        p = ParticleSet.empty()
        assert p.num_particles == 0
        assert p.num_points == 0
        assert p.total_mass() == 0.0
        assert np.array_equal(p.momentum(), np.zeros(3))
        arr = p.get_array(Association.POINT, "mass")
        assert arr.num_tuples == 0

    def test_concatenate_preserves_order_and_bytes(self):
        a, b = _make_set(5, 1), _make_set(3, 2)
        c = ParticleSet.concatenate([a, b])
        assert c.num_particles == 8
        assert np.array_equal(c.positions[:5], a.positions)
        assert np.array_equal(c.positions[5:], b.positions)
        assert ParticleSet.concatenate([]).num_particles == 0

    def test_select_owns_its_memory(self):
        p = _make_set()
        sub = p.select(p.positions[:, 0] < 0.5)
        assert sub.num_particles > 0
        assert not np.shares_memory(sub.positions, p.positions)

    def test_slice_view_is_zero_copy(self):
        p = _make_set()
        v = p.slice_view(2, 7)
        assert v.num_particles == 5
        assert np.shares_memory(v.positions, p.positions)
        for name in PARTICLE_ARRAYS:
            arr = v.get_array(Association.POINT, name)
            assert arr.is_zero_copy

    def test_sorted_by_id_is_canonical(self):
        p = _make_set()
        perm = np.random.default_rng(0).permutation(p.num_particles)
        shuffled = ParticleSet(
            p.ids[perm],
            np.ascontiguousarray(p.positions[perm]),
            np.ascontiguousarray(p.velocities[perm]),
            p.masses[perm],
        )
        assert shuffled.state_tuple() == p.state_tuple()

    def test_fingerprint_tracks_content(self):
        p = _make_set()
        before = p.fingerprint()
        assert p.copy().fingerprint() == before
        p.positions[0, 0] += 0.25
        assert p.fingerprint() != before


class TestRaggedDataArrayViews:
    """The satellite fix: introspection on per-rank slices."""

    def test_slice_tuples_zero_copy_soa(self):
        base = np.arange(20, dtype=np.float64)
        arr = DataArray.from_soa("m", [base])
        view = arr.slice_tuples(5, 12)
        assert view.num_tuples == 7
        assert view.is_zero_copy
        assert view.is_zero_copy_of(base)
        assert view.nbytes_copied == 0

    def test_slice_tuples_zero_copy_aos(self):
        base = np.arange(30, dtype=np.float64).reshape(10, 3)
        arr = DataArray.from_aos("pos", base)
        view = arr.slice_tuples(2, 6)
        assert view.is_zero_copy
        assert view.is_zero_copy_of(base)
        # The AoS fast path must also stay a view of the parent storage.
        assert np.shares_memory(view.as_aos(), base)
        assert view.nbytes_copied == 0

    def test_empty_slice_is_valid(self):
        arr = DataArray.from_soa("m", [np.arange(8.0)])
        view = arr.slice_tuples(8, 8)
        assert view.num_tuples == 0
        assert view.is_zero_copy
        assert view.min() == float("inf")
        assert view.max() == float("-inf")

    def test_slice_of_copied_buffer_reports_copied(self):
        arr = DataArray.from_soa("m", [np.arange(8.0)]).deep_copy()
        assert not arr.is_zero_copy
        view = arr.slice_tuples(0, 4)
        assert not view.is_zero_copy

    def test_fingerprint_distinguishes_slices(self):
        base = np.arange(16, dtype=np.float64)
        arr = DataArray.from_soa("m", [base])
        a = arr.slice_tuples(0, 8).fingerprint()
        b = arr.slice_tuples(8, 16).fingerprint()
        assert a != b
        assert arr.slice_tuples(0, 8).fingerprint() == a

    def test_write_guard_survives_slicing(self):
        base = np.arange(30, dtype=np.float64).reshape(10, 3)
        guarded = DataArray.from_aos("pos", base).readonly_view()
        view = guarded.slice_tuples(3, 7)
        assert view.guarded
        with pytest.raises(ValueError):
            view.component(0)[0] = 99.0
        with pytest.raises(ValueError):
            view.as_aos()[0, 0] = 99.0
        # ... and the original storage is untouched.
        assert base[3, 0] == 9.0

    def test_guard_on_particle_set_slice(self):
        """End to end: guard a ParticleSet attribute, slice a per-rank
        range, and verify writes raise while reads fingerprint-match."""
        p = _make_set(10)
        pos = p.get_array(Association.POINT, "position").readonly_view()
        rank_share = pos.slice_tuples(4, 9)
        with pytest.raises(ValueError):
            rank_share.component(1)[:] = 0.0
        expected = DataArray.from_aos("position", p.positions[4:9])
        assert rank_share.fingerprint() == expected.fingerprint()


class TestDepositKernels:
    def test_deposit_conserves_quantized_mass(self):
        rng = np.random.default_rng(7)
        pos = rng.random((200, 3))
        mass = rng.integers(1, 17, 200) / 16.0
        grid = cic_deposit_int(pos, mass, 8)
        # Each particle's 8 corner weights sum to 1; after quantization the
        # grid total differs from mass*scale only by per-corner rounding.
        total = grid.sum()
        exact = int(round(mass.sum() * DEPOSIT_SCALE))
        assert abs(total - exact) <= 4 * 200  # <= half-ulp per corner

    def test_deposit_is_order_independent(self):
        rng = np.random.default_rng(11)
        pos = rng.random((300, 3))
        mass = rng.integers(1, 17, 300) / 16.0
        perm = rng.permutation(300)
        a = cic_deposit_int(pos, mass, 16)
        b = cic_deposit_int(pos[perm], mass[perm], 16)
        assert np.array_equal(a, b)

    def test_deposit_is_decomposition_independent(self):
        rng = np.random.default_rng(13)
        pos = rng.random((128, 3))
        mass = rng.integers(1, 17, 128) / 16.0
        whole = cic_deposit_int(pos, mass, 8)
        split = (
            cic_deposit_int(pos[:50], mass[:50], 8)
            + cic_deposit_int(pos[50:], mass[50:], 8)
        )
        assert np.array_equal(whole, split)

    def test_empty_deposit(self):
        out = cic_deposit_int(np.empty((0, 3)), np.empty(0), 4)
        assert out.shape == (4, 4, 4)
        assert out.sum() == 0
        out2 = cic_deposit_int_2d(np.empty((0, 3)), np.empty(0), 4)
        assert out2.shape == (4, 4)
        assert out2.sum() == 0

    def test_projection_matches_3d_sum(self):
        """The 2D projection kernel must agree with projecting the 3D
        deposit -- same corners, same quantization, same totals."""
        rng = np.random.default_rng(17)
        pos = rng.random((150, 3))
        mass = rng.integers(1, 17, 150) / 16.0
        for axis in (0, 1, 2):
            plane = cic_deposit_int_2d(pos, mass, 8, axis=axis)
            assert plane.sum() == cic_deposit_int_2d(
                pos, mass, 8, axis=axis
            ).sum()
            # Totals agree with the per-particle quantized masses exactly
            # as in the 3D kernel (4 corners instead of 8).
            exact = int(round(mass.sum() * DEPOSIT_SCALE))
            assert abs(plane.sum() - exact) <= 2 * 150
        with pytest.raises(ValueError):
            cic_deposit_int_2d(pos, mass, 8, axis=3)

    def test_gather_constant_field_is_exact(self):
        rng = np.random.default_rng(19)
        pos = rng.random((64, 3))
        field = np.full((8, 8, 8), 2.5)
        out = cic_gather([field], pos)
        assert out.shape == (64, 1)
        assert np.allclose(out, 2.5)
        assert cic_gather([field], np.empty((0, 3))).shape == (0, 1)
