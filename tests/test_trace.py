"""Tests for the structured tracing layer (repro.trace).

Covers the recorder/session primitives, the Chrome trace exporter and its
schema validator, the Sec. 4.1.1 phase report, the modeled-span producers,
and the end-to-end measured path: a 4-rank traced oscillator run whose
exported trace must validate and reproduce the phase breakdown.
"""

import json

import pytest

from repro.core import Bridge
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.trace import (
    TraceRecorder,
    TraceSession,
    classify_span,
    diff_reports,
    load_chrome_trace,
    render_report,
    report_from_chrome,
    report_from_events,
    report_from_session,
    session_from_breakdown,
    session_to_chrome,
    validate_chrome_trace,
)
from repro.util.timers import TimerRegistry


# -- recorder primitives ------------------------------------------------------


class TestRecorder:
    def test_begin_end_records_span_with_parent(self):
        rec = TraceRecorder(rank=3)
        rec.begin("outer")
        rec.begin("inner")
        inner = rec.end()
        outer = rec.end()
        assert inner.name == "inner"
        assert inner.parent == "outer"
        assert inner.rank == 3
        assert outer.parent is None
        assert outer.t0 <= inner.t0 <= inner.t1 <= outer.t1

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            TraceRecorder().end()

    def test_step_sampled_at_span_end(self):
        rec = TraceRecorder()
        rec.begin("advance")
        rec.set_step(7)  # the step increments *inside* the span
        span = rec.end()
        assert span.step == 7

    def test_complete_rejects_negative_duration(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError):
            rec.complete("x", 2.0, 1.0)

    def test_span_contextmanager_closes_on_error(self):
        rec = TraceRecorder()
        with pytest.raises(RuntimeError, match="boom"):
            with rec.span("x"):
                raise RuntimeError("boom")
        assert rec.open_spans == []
        assert rec.spans[-1].name == "x"

    def test_counter_accumulates_and_gauge_overwrites(self):
        rec = TraceRecorder()
        rec.count("bytes", 10)
        rec.count("bytes", 5)
        rec.gauge("pool_hits", 3)
        rec.gauge("pool_hits", 2)
        assert rec.total("bytes") == 15
        assert rec.total("pool_hits") == 2
        assert rec.counter_names() == ["bytes", "pool_hits"]

    def test_session_shares_epoch_across_ranks(self):
        session = TraceSession()
        assert session.recorder(0).epoch == session.recorder(5).epoch
        assert session.ranks == [0, 5]
        assert session.recorder(0) is session.recorder(0)


# -- timer registry hook ------------------------------------------------------


class TestTimerHook:
    def test_timed_block_emits_span(self):
        rec = TraceRecorder()
        reg = TimerRegistry(trace=rec)
        with reg.time("sensei::execute"):
            with reg.time("catalyst::render"):
                pass
        names = [s.name for s in rec.spans]
        assert names == ["catalyst::render", "sensei::execute"]
        assert rec.spans[0].parent == "sensei::execute"

    def test_registry_add_emits_backdated_span(self):
        rec = TraceRecorder()
        reg = TimerRegistry(trace=rec)
        reg.add("io::write", 0.5)
        (span,) = rec.spans
        assert span.duration == pytest.approx(0.5)

    def test_no_recorder_records_nothing(self):
        reg = TimerRegistry()
        with reg.time("x"):
            pass
        assert reg.trace is None  # and nothing to record into


# -- chrome export ------------------------------------------------------------


def _tiny_session():
    session = TraceSession(name="tiny")
    rec = session.recorder(0)
    rec.complete("simulation::initialize", 0.0, 1.0)
    rec.complete("simulation::advance", 1.0, 2.0, step=1)
    rec.complete("compute", 1.2, 1.8, step=1, parent="simulation::advance")
    rec.count("bytes", 64)
    return session


class TestChrome:
    def test_every_event_has_required_keys(self):
        doc = session_to_chrome(_tiny_session())
        for ev in doc["traceEvents"]:
            for key in ("ph", "ts", "pid", "tid"):
                assert key in ev
        assert validate_chrome_trace(doc) == []

    def test_span_fields(self):
        doc = session_to_chrome(_tiny_session())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        advance = next(e for e in xs if e["name"] == "simulation::advance")
        assert advance["ts"] == pytest.approx(1.0e6)
        assert advance["dur"] == pytest.approx(1.0e6)
        assert advance["args"]["step"] == 1
        nested = next(e for e in xs if e["name"] == "compute")
        assert nested["args"]["parent"] == "simulation::advance"

    def test_validator_flags_missing_keys_and_overlap(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 0, "tid": 0},
                # partial overlap with "a": starts inside, ends outside
                {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 0, "tid": 0},
                {"name": "c", "ph": "C", "ts": 0, "pid": 0},  # missing tid
            ]
        }
        problems = validate_chrome_trace(doc)
        assert any("partially overlaps" in p for p in problems)
        assert any("missing 'tid'" in p for p in problems)

    def test_export_load_roundtrip(self, tmp_path):
        session = _tiny_session()
        path = tmp_path / "trace.json"
        session.export(path)
        doc = load_chrome_trace(path)
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["session"] == "tiny"

    def test_load_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_chrome_trace(path)


# -- the phase report ---------------------------------------------------------


class TestReport:
    def test_classification_table(self):
        assert classify_span("simulation::initialize") == ("initialize", "one-time")
        assert classify_span("sensei::initialize") == (
            "analysis initialize",
            "one-time",
        )
        assert classify_span("libsim::session_parse") == (
            "analysis initialize",
            "one-time",
        )
        assert classify_span("simulation::advance") == ("simulation", "per-step")
        assert classify_span("io::write") == ("write", "per-step")
        assert classify_span("adios::write") == ("write", "per-step")
        assert classify_span("sensei::execute") == ("analysis", "per-step")
        assert classify_span("endpoint::analysis") == ("analysis", "per-step")
        assert classify_span("sensei::finalize") == ("finalize", "one-time")

    def test_nested_spans_not_double_counted(self):
        events = [
            {
                "name": "sensei::execute", "ph": "X", "ts": 0.0, "dur": 10e6,
                "pid": 0, "tid": 0, "args": {"step": 1},
            },
            {
                "name": "catalyst::render", "ph": "X", "ts": 1e6, "dur": 8e6,
                "pid": 0, "tid": 0,
                "args": {"step": 1, "parent": "sensei::execute"},
            },
        ]
        report = report_from_events(events)
        assert report.mean("analysis") == pytest.approx(10.0)
        assert report.n_steps == 1

    def test_mean_and_max_across_ranks(self):
        events = []
        for rank, dur in enumerate((2.0, 4.0)):
            events.append(
                {
                    "name": "simulation::advance", "ph": "X", "ts": 0.0,
                    "dur": dur * 1e6, "pid": 0, "tid": rank,
                    "args": {"step": 1},
                }
            )
        report = report_from_events(events)
        assert report.n_ranks == 2
        assert report.mean("simulation") == pytest.approx(3.0)
        assert report.max("simulation") == pytest.approx(4.0)
        assert report.per_step_mean("simulation") == pytest.approx(3.0)

    def test_counters_take_final_value_per_rank_then_sum(self):
        events = [
            {"name": "bytes", "ph": "C", "ts": 0.0, "pid": 0, "tid": 0,
             "args": {"value": 10.0}},
            {"name": "bytes", "ph": "C", "ts": 1.0, "pid": 0, "tid": 0,
             "args": {"value": 30.0}},  # monotonic counter: final wins
            {"name": "bytes", "ph": "C", "ts": 0.5, "pid": 0, "tid": 1,
             "args": {"value": 7.0}},
        ]
        report = report_from_events(events)
        assert report.counters == {"bytes": 37.0}

    def test_render_and_diff_are_stringly_sane(self):
        report = report_from_session(_tiny_session())
        text = render_report(report)
        assert "phase breakdown: tiny" in text
        assert "initialize" in text and "simulation" in text
        diff = diff_reports(report, report)
        assert "ratio" in diff
        assert "1.00x" in diff


# -- modeled spans ------------------------------------------------------------


class TestModeled:
    def _breakdown(self):
        from repro.perf.miniapp_model import PhaseBreakdown

        return PhaseBreakdown(
            config_name="unit",
            sim_initialize=1.0,
            analysis_initialize=0.5,
            sim_per_step=0.25,
            analysis_per_step=0.125,
            write_per_step=0.0625,
            finalize=0.75,
        )

    def test_session_from_breakdown_layout(self):
        session = session_from_breakdown(self._breakdown(), steps=3, ranks=2)
        assert session.ranks == [0, 1]
        spans = session.recorder(0).spans
        assert [s.name for s in spans[:2]] == [
            "simulation::initialize",
            "sensei::initialize",
        ]
        assert spans[-1].name == "sensei::finalize"
        # Timeline is gapless and ordered.
        for prev, cur in zip(spans, spans[1:]):
            assert cur.t0 == pytest.approx(prev.t1)
        assert validate_chrome_trace(session.to_chrome()) == []

    def test_report_matches_breakdown_arithmetic(self):
        b = self._breakdown()
        report = report_from_session(session_from_breakdown(b, steps=4, ranks=3))
        assert report.n_steps == 4
        assert report.mean("initialize") == pytest.approx(b.sim_initialize)
        assert report.per_step_mean("simulation") == pytest.approx(b.sim_per_step)
        assert report.per_step_mean("write") == pytest.approx(b.write_per_step)
        assert report.one_time_total_mean() == pytest.approx(
            b.sim_initialize + b.analysis_initialize + b.finalize
        )

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            session_from_breakdown(self._breakdown(), steps=0)
        with pytest.raises(ValueError):
            session_from_breakdown(self._breakdown(), steps=1, ranks=0)

    def test_simulate_staging_emits_modeled_spans(self):
        from repro.perf.events import simulate_staging

        session = TraceSession(name="staging-model")
        timeline = simulate_staging(
            n_steps=3,
            sim_time=1.0,
            advance_time=0.1,
            transfer_time=0.2,
            endpoint_time=2.0,  # slow endpoint => writer blocks from step 2
            trace=session,
        )
        assert session.ranks == [0, 1]
        writer = session.recorder(0).spans
        endpoint = session.recorder(1).spans
        assert [s.name for s in writer[:3]] == [
            "simulation::advance", "adios::advance", "adios::analysis",
        ]
        # The modeled adios::analysis spans carry the flow-control blocking.
        analysis = [s for s in writer if s.name == "adios::analysis"]
        assert [s.duration for s in analysis] == pytest.approx(
            timeline.writer_analysis
        )
        assert [s.duration for s in endpoint] == pytest.approx(
            timeline.endpoint_busy
        )
        assert analysis[1].duration > analysis[0].duration  # blocked
        assert validate_chrome_trace(session.to_chrome()) == []

    def test_simulate_staging_without_trace_unchanged(self):
        from repro.perf.events import simulate_staging

        a = simulate_staging(5, 1.0, 0.1, 0.2, 0.5)
        b = simulate_staging(5, 1.0, 0.1, 0.2, 0.5, trace=TraceSession())
        assert a.makespan == b.makespan
        assert a.writer_analysis == b.writer_analysis


# -- end to end: traced 4-rank run --------------------------------------------


RANKS = 4
STEPS = 3
DIMS = (16, 16, 16)


def _traced_program(comm):
    from repro.analysis import HistogramAnalysis

    sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.05)
    bridge = Bridge(comm, sim.make_data_adaptor())
    bridge.add_analysis(HistogramAnalysis(bins=16))
    bridge.initialize()
    sim.run(STEPS, bridge)
    bridge.finalize()
    return sim.timers.as_dict()


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def session(self):
        session = TraceSession()
        run_spmd(RANKS, _traced_program, trace=session)
        return session

    def test_every_rank_traced(self, session):
        assert session.ranks == list(range(RANKS))
        for rank in range(RANKS):
            names = {s.name for s in session.recorder(rank).spans}
            assert "simulation::advance" in names
            assert "sensei::execute" in names
            assert "sensei::initialize" in names
            assert "sensei::finalize" in names

    def test_spans_tagged_with_steps(self, session):
        advances = [
            s for s in session.recorder(0).spans if s.name == "simulation::advance"
        ]
        assert [s.step for s in advances] == list(range(1, STEPS + 1))

    def test_collective_byte_counters_recorded(self, session):
        rec = session.recorder(0)
        names = rec.counter_names()
        assert any(n.startswith("mpi::") for n in names)
        assert rec.total("sensei::bytes_zero_copy") > 0

    def test_exported_trace_validates_and_reports(self, session, tmp_path):
        path = tmp_path / "trace.json"
        session.export(path)
        doc = load_chrome_trace(path)
        assert validate_chrome_trace(doc) == []
        report = report_from_chrome(doc)
        assert report.n_ranks == RANKS
        assert report.n_steps == STEPS
        assert report.mean("simulation") > 0
        assert report.mean("analysis") > 0
        assert report.mean("analysis initialize") > 0

    def test_untraced_run_records_nothing_and_matches(self):
        # No session: every hook must stay silent and the run unaffected.
        snaps = run_spmd(RANKS, _traced_program)
        assert len(snaps) == RANKS
        assert "simulation::advance" in snaps[0]


# -- the CLI ------------------------------------------------------------------


class TestReportCLI:
    def _export(self, tmp_path):
        path = tmp_path / "m.json"
        _tiny_session().export(path)
        return path

    def test_report_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        path = self._export(tmp_path)
        assert main(["report", str(path), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out

    def test_report_against(self, tmp_path, capsys):
        from repro.cli import main

        a = self._export(tmp_path)
        b = tmp_path / "model.json"
        _tiny_session().export(b)
        assert main(["report", str(a), "--against", str(b)]) == 0
        out = capsys.readouterr().out
        assert "measured vs modeled" in out

    def test_report_missing_file_errors(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", str(tmp_path / "nope.json")]) == 2
        assert "cannot read trace" in capsys.readouterr().err


# -- diff ratios: inf vs -- semantics ----------------------------------------


class TestDiffRatios:
    """A measured cost the model prices at zero is an *unbounded* error
    (rendered ``inf !``), not an absent phase; ``--`` is reserved for 0/0
    on a phase at least one report recorded calls for."""

    def _report(self, name, **phase_seconds):
        from repro.trace.report import PHASE_ORDER, PhaseReport, PhaseStats

        phases = {p: PhaseStats(p, kind) for p, kind in PHASE_ORDER}
        for phase, seconds in phase_seconds.items():
            key = phase.replace("_", " ")
            phases[key].per_rank[0] = seconds
            phases[key].calls = 1
        return PhaseReport(
            name=name, n_ranks=1, n_steps=1, phases=phases, counters={}
        )

    def test_phase_ratio_cases(self):
        import math

        from repro.trace import phase_ratio

        assert phase_ratio(1.0, 2.0) == 0.5
        assert phase_ratio(0.5, 0.0) == math.inf
        assert phase_ratio(0.0, 0.5) == 0.0
        assert phase_ratio(0.0, 0.0) is None

    def test_measured_over_zero_model_is_inf(self):
        import math

        from repro.trace import diff_ratios

        measured = self._report("m", simulation=1.0, analysis=0.5)
        modeled = self._report("p", simulation=1.0)
        ratios = diff_ratios(measured, modeled)
        assert ratios["simulation"] == 1.0
        assert ratios["analysis"] == math.inf
        text = diff_reports(measured, modeled)
        [line] = [
            ln
            for ln in text.splitlines()
            if ln.startswith("analysis") and "initialize" not in ln
        ]
        assert "inf !" in line
        assert "--" not in line

    def test_zero_zero_with_calls_renders_dashes(self):
        from repro.trace import diff_ratios

        measured = self._report("m", simulation=1.0, write=0.0)
        modeled = self._report("p", simulation=1.0, write=0.0)
        assert "write" not in diff_ratios(measured, modeled)
        text = diff_reports(measured, modeled)
        [line] = [ln for ln in text.splitlines() if ln.startswith("write")]
        assert "--" in line
        assert "inf" not in line

    def test_phase_absent_from_both_reports_is_omitted(self):
        measured = self._report("m", simulation=1.0)
        modeled = self._report("p", simulation=1.0)
        text = diff_reports(measured, modeled)
        assert not any(ln.startswith("write") for ln in text.splitlines())


class TestSpanSubscription:
    def test_subscribers_see_spans_from_end_and_complete(self):
        rec = TraceRecorder(rank=0, epoch=0.0)
        seen = []
        rec.subscribe(seen.append)
        with rec.span("sensei::execute"):
            pass
        rec.complete("io::write", 0.0, 0.25, step=3)
        assert [s.name for s in seen] == ["sensei::execute", "io::write"]
        rec.unsubscribe(seen.append)
        rec.complete("io::write", 0.3, 0.4, step=4)
        assert len(seen) == 2

    def test_unsubscribe_is_idempotent(self):
        rec = TraceRecorder(rank=0)
        cb = lambda s: None  # noqa: E731
        rec.unsubscribe(cb)  # never subscribed: no error
        rec.subscribe(cb)
        rec.unsubscribe(cb)
        rec.unsubscribe(cb)

    def test_pickling_drops_subscribers(self):
        import pickle

        rec = TraceRecorder(rank=1)
        rec.subscribe(lambda s: None)
        clone = pickle.loads(pickle.dumps(rec))
        assert clone._subscribers == []
        clone.complete("sensei::execute", 0.0, 0.1, step=0)  # must not call
