"""Tests for the PNG codec and colormaps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render import COOL_WARM, GRAY, VIRIDIS, Colormap, decode_png, encode_png
from repro.render.png import PNGError, write_png


class TestColormap:
    def test_endpoints(self):
        rgb = GRAY.map(np.array([0.0, 1.0]))
        assert rgb[0].tolist() == [0, 0, 0]
        assert rgb[1].tolist() == [255, 255, 255]

    def test_midpoint_interpolated(self):
        rgb = GRAY.map(np.array([0.0, 0.5, 1.0]))
        assert 120 <= rgb[1][0] <= 135

    def test_explicit_range_clamps(self):
        rgb = GRAY.map(np.array([-10.0, 20.0]), vmin=0.0, vmax=1.0)
        assert rgb[0].tolist() == [0, 0, 0]
        assert rgb[1].tolist() == [255, 255, 255]

    def test_degenerate_range(self):
        rgb = VIRIDIS.map(np.full(3, 7.0))
        assert (rgb == rgb[0]).all()

    def test_nan_maps_to_black(self):
        rgb = VIRIDIS.map(np.array([0.0, np.nan, 1.0]))
        assert rgb[1].tolist() == [0, 0, 0]

    def test_shape_preserved(self):
        rgb = COOL_WARM.map(np.zeros((4, 5)))
        assert rgb.shape == (4, 5, 3)

    def test_monotone_perceptual_ordering(self):
        """VIRIDIS luminance increases monotonically with value."""
        vals = np.linspace(0, 1, 64)
        rgb = VIRIDIS.map(vals).astype(float)
        lum = 0.2126 * rgb[:, 0] + 0.7152 * rgb[:, 1] + 0.0722 * rgb[:, 2]
        assert np.all(np.diff(lum) > -1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            Colormap("bad", [(0.0, (0, 0, 0))])
        with pytest.raises(ValueError):
            Colormap("bad", [(0.1, (0, 0, 0)), (1.0, (255, 255, 255))])


class TestPNGCodec:
    def test_rgb_roundtrip(self):
        rng = np.random.default_rng(0)
        img = rng.integers(0, 256, (13, 17, 3), dtype=np.uint8)
        assert np.array_equal(decode_png(encode_png(img)), img)

    def test_gray_roundtrip(self):
        rng = np.random.default_rng(1)
        img = rng.integers(0, 256, (9, 21), dtype=np.uint8)
        assert np.array_equal(decode_png(encode_png(img)), img)

    def test_compression_levels_all_decode(self):
        img = np.zeros((32, 32, 3), dtype=np.uint8)
        img[8:24, 8:24] = 200
        sizes = {}
        for level in (0, 1, 6, 9):
            blob = encode_png(img, compression_level=level)
            assert np.array_equal(decode_png(blob), img)
            sizes[level] = len(blob)
        # Store (level 0) must be bigger than compressed for structured data.
        assert sizes[0] > sizes[6]

    def test_signature_enforced(self):
        with pytest.raises(PNGError):
            decode_png(b"GIF89a" + b"\x00" * 30)

    def test_crc_checked(self):
        blob = bytearray(encode_png(np.zeros((4, 4), dtype=np.uint8)))
        blob[20] ^= 0xFF  # corrupt inside IHDR payload
        with pytest.raises(PNGError):
            decode_png(bytes(blob))

    def test_bad_inputs_rejected(self):
        with pytest.raises(PNGError):
            encode_png(np.zeros((4, 4), dtype=np.float64))
        with pytest.raises(PNGError):
            encode_png(np.zeros((4, 4, 2), dtype=np.uint8))
        with pytest.raises(PNGError):
            encode_png(np.zeros((0, 4), dtype=np.uint8))
        with pytest.raises(PNGError):
            encode_png(np.zeros((4, 4), dtype=np.uint8), compression_level=11)

    def test_defilter_sub_up_average_paeth(self):
        """Hand-built PNGs using filters 1-4 decode correctly."""
        import struct
        import zlib

        from repro.render.png import _SIGNATURE, _chunk

        # 3x4 grayscale image rows; apply each filter manually.
        rows = np.array(
            [[10, 20, 30, 40], [15, 25, 35, 45], [100, 90, 80, 70]],
            dtype=np.uint8,
        )

        def encode_with_filters(ftypes):
            raw = bytearray()
            prev = np.zeros(4, dtype=np.int32)
            for r, ftype in enumerate(ftypes):
                line = rows[r].astype(np.int32)
                raw.append(ftype)
                if ftype == 0:
                    enc = line
                elif ftype == 1:  # Sub
                    enc = line.copy()
                    enc[1:] = (line[1:] - line[:-1]) & 0xFF
                elif ftype == 2:  # Up
                    enc = (line - prev) & 0xFF
                elif ftype == 3:  # Average
                    enc = line.copy()
                    for x in range(4):
                        left = line[x - 1] if x else 0
                        enc[x] = (line[x] - (left + prev[x]) // 2) & 0xFF
                else:  # Paeth
                    enc = line.copy()
                    for x in range(4):
                        a = line[x - 1] if x else 0
                        b = prev[x]
                        c = prev[x - 1] if x else 0
                        p = a + b - c
                        pa, pb, pc = abs(p - a), abs(p - b), abs(p - c)
                        pred = a if pa <= pb and pa <= pc else (b if pb <= pc else c)
                        enc[x] = (line[x] - pred) & 0xFF
                raw += bytes(enc.astype(np.uint8))
                prev = line
            ihdr = struct.pack(">IIBBBBB", 4, 3, 8, 0, 0, 0, 0)
            return (
                _SIGNATURE
                + _chunk(b"IHDR", ihdr)
                + _chunk(b"IDAT", zlib.compress(bytes(raw)))
                + _chunk(b"IEND", b"")
            )

        for ftypes in ([1, 1, 1], [2, 2, 2], [3, 3, 3], [4, 4, 4], [0, 1, 2]):
            out = decode_png(encode_with_filters(ftypes))
            assert np.array_equal(out, rows), f"filters {ftypes}"

    def test_write_png(self, tmp_path):
        img = np.zeros((8, 8, 3), dtype=np.uint8)
        p = tmp_path / "out.png"
        n = write_png(p, img)
        assert p.stat().st_size == n
        assert np.array_equal(decode_png(p.read_bytes()), img)

    def test_compression_monotone_on_compressible_data(self):
        """Higher zlib levels never enlarge highly structured images much;
        level 0 is strictly largest -- the Table 2 ablation's premise."""
        img = np.tile(np.arange(256, dtype=np.uint8), (64, 4)).reshape(64, 1024)
        s0 = len(encode_png(img, 0))
        s9 = len(encode_png(img, 9))
        assert s9 < s0 / 2

    @settings(max_examples=15, deadline=None)
    @given(
        h=st.integers(1, 16),
        w=st.integers(1, 16),
        seed=st.integers(0, 1000),
        level=st.integers(0, 9),
    )
    def test_roundtrip_property(self, h, w, seed, level):
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 256, (h, w, 3), dtype=np.uint8)
        assert np.array_equal(decode_png(encode_png(img, level)), img)


class TestParallelDeflate:
    """The pigz-style chunked encoder must be a drop-in ablation: a valid
    PNG whose decoded pixels are byte-identical to the serial encoder's."""

    def _structured(self, h, w, channels=3):
        y, x = np.mgrid[0:h, 0:w]
        v = ((np.sin(x / 9.0) + np.cos(y / 7.0) + 2) * 60).astype(np.uint8)
        if channels == 1:
            return v
        return np.stack([v, 255 - v, v // 2], axis=-1)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("level", [0, 1, 6, 9])
    def test_rgb_decodes_identically_to_serial(self, workers, level):
        img = self._structured(64, 48)
        serial = decode_png(encode_png(img, level))
        parallel = decode_png(encode_png(img, level, workers=workers))
        assert np.array_equal(parallel, serial)
        assert np.array_equal(parallel, img)

    def test_grayscale_roundtrip(self):
        img = self._structured(37, 61, channels=1)
        blob = encode_png(img, 6, workers=3)
        assert np.array_equal(decode_png(blob), img)

    @pytest.mark.parametrize("chunk_rows", [1, 2, 7, 1000])
    def test_chunk_rows_sweep(self, chunk_rows):
        """Any band size (including bands larger than the image) works."""
        img = self._structured(23, 31)
        blob = encode_png(img, 6, workers=2, chunk_rows=chunk_rows)
        assert np.array_equal(decode_png(blob), img)

    def test_cross_band_references_stay_valid(self):
        """Each band is one row of random bytes, incompressible on its own;
        the image only deflates well if matches reach the identical row in
        the *previous* band through the zdict priming."""
        rng = np.random.default_rng(5)
        row = rng.integers(0, 256, 300, dtype=np.uint8)
        img = np.tile(row, (64, 1))
        blob = encode_png(img, 6, workers=4, chunk_rows=1)
        assert np.array_equal(decode_png(blob), img)
        # Without cross-band references this would be ~img.nbytes; with
        # them every band after the first is a back-reference.
        assert len(blob) < 0.15 * img.nbytes
        # At realistic band sizes the chunking overhead is marginal.
        big = encode_png(img, 9, workers=4, chunk_rows=16)
        assert np.array_equal(decode_png(big), img)
        assert len(big) < 1.10 * len(encode_png(img, 9))

    def test_single_row_image(self):
        img = self._structured(1, 17)
        assert np.array_equal(decode_png(encode_png(img, 6, workers=4)), img)

    def test_workers_zero_is_serial(self):
        img = self._structured(8, 8)
        assert encode_png(img, 6, workers=0) == encode_png(img, 6)

    def test_negative_workers_rejected(self):
        with pytest.raises(PNGError):
            encode_png(np.zeros((4, 4), dtype=np.uint8), workers=-1)

    def test_write_png_workers(self, tmp_path):
        img = self._structured(16, 16)
        p = tmp_path / "parallel.png"
        n = write_png(p, img, workers=2)
        assert p.stat().st_size == n
        assert np.array_equal(decode_png(p.read_bytes()), img)

    @settings(max_examples=15, deadline=None)
    @given(
        h=st.integers(1, 24),
        w=st.integers(1, 16),
        seed=st.integers(0, 1000),
        level=st.integers(0, 9),
        workers=st.integers(1, 4),
    )
    def test_parallel_roundtrip_property(self, h, w, seed, level, workers):
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 256, (h, w, 3), dtype=np.uint8)
        blob = encode_png(img, level, workers=workers)
        assert np.array_equal(decode_png(blob), img)


class TestCodecSelection:
    """The GIL-free codec-pool path must be a pure transport change: the
    thread and process codecs band identically, so their PNG bytes are
    identical; the serial codec is one unbanded zlib stream (different
    bytes by construction) but decodes to the same pixels."""

    def _structured(self, h, w):
        y, x = np.mgrid[0:h, 0:w]
        v = ((np.sin(x / 9.0) + np.cos(y / 7.0) + 2) * 60).astype(np.uint8)
        return np.stack([v, 255 - v, v // 2], axis=-1)

    @pytest.mark.parametrize("level", [1, 6, 9])
    def test_thread_and_process_codecs_byte_identical(self, level):
        img = self._structured(96, 80)
        thread = encode_png(img, level, workers=3, codec="thread")
        process = encode_png(img, level, workers=3, codec="process")
        assert thread == process

    def test_serial_codec_pixel_identical(self):
        img = self._structured(64, 48)
        serial = encode_png(img, 6, workers=3, codec="serial")
        banded = encode_png(img, 6, workers=3, codec="thread")
        assert serial == encode_png(img, 6, workers=0)
        assert np.array_equal(decode_png(serial), decode_png(banded))

    def test_auto_picks_threads_below_process_floor(self):
        """A small image must not pay process-pool dispatch: auto and
        thread produce identical bytes (same banding either way, but this
        pins the dispatch decision's observable output)."""
        img = self._structured(32, 32)
        assert encode_png(img, 6, workers=2, codec="auto") == encode_png(
            img, 6, workers=2, codec="thread"
        )

    def test_forced_process_on_small_image_still_identical(self):
        img = self._structured(9, 13)
        assert encode_png(img, 6, workers=2, codec="process") == encode_png(
            img, 6, workers=2, codec="thread"
        )

    def test_unknown_codec_rejected(self):
        with pytest.raises(PNGError, match="codec"):
            encode_png(np.zeros((4, 4), dtype=np.uint8), codec="gpu")

    def test_write_png_codec_passthrough(self, tmp_path):
        img = self._structured(24, 24)
        p = tmp_path / "codec.png"
        n = write_png(p, img, workers=2, codec="process")
        assert p.stat().st_size == n
        assert p.read_bytes() == encode_png(img, workers=2, codec="thread")

    def test_process_codec_leaves_no_segments(self):
        """The staging segment is created and unlinked per encode; the
        autouse shm leak guard enforces the rest, this asserts eagerly."""
        from repro.mpi import shm as shm_mod

        img = self._structured(128, 64)
        encode_png(img, 6, workers=2, codec="process")
        assert shm_mod.list_segments() == []


class TestResolveCodec:
    """codec="auto" must consult the usable CPU count: on a core-starved
    box the process pool is pure dispatch overhead (the 0.90x regression
    the codec_pool benchmark measured on 1 CPU), so auto resolves to the
    in-process threaded deflate there."""

    def _structured(self, h, w):
        y, x = np.mgrid[0:h, 0:w]
        v = ((np.sin(x / 9.0) + np.cos(y / 7.0) + 2) * 60).astype(np.uint8)
        return np.stack([v, 255 - v, v // 2], axis=-1)

    def test_cpu_gate(self):
        from repro.render import resolve_codec
        from repro.render.png import _PROCESS_MIN_BYTES

        big = _PROCESS_MIN_BYTES
        assert resolve_codec("auto", 4, big, cpus=1) == "thread"
        assert resolve_codec("auto", 4, big, cpus=2) == "process"
        assert resolve_codec("auto", 4, big - 1, cpus=8) == "thread"
        assert resolve_codec("auto", 0, big, cpus=8) == "thread"
        assert resolve_codec("auto", 1, big, cpus=8) == "thread"

    def test_explicit_codec_bypasses_gate(self):
        from repro.render import resolve_codec

        assert resolve_codec("process", 4, 1, cpus=1) == "process"
        assert resolve_codec("serial", 4, 1 << 30, cpus=64) == "serial"

    def test_auto_stays_in_process_when_cores_scarce(self, monkeypatch):
        from repro.render import png as png_mod

        monkeypatch.setattr(png_mod, "_usable_cpus", lambda: 1)
        img = self._structured(640, 560)  # > _PROCESS_MIN_BYTES raw
        assert img.nbytes >= png_mod._PROCESS_MIN_BYTES
        pool_before = png_mod._POOL
        blob = encode_png(img, 1, workers=2, codec="auto")
        # Same bytes as the threaded codec, and no process pool spun up.
        assert blob == encode_png(img, 1, workers=2, codec="thread")
        assert png_mod._POOL is pool_before

    def test_auto_uses_process_pool_when_cores_allow(self, monkeypatch):
        from repro.render import png as png_mod

        monkeypatch.setattr(png_mod, "_usable_cpus", lambda: 8)
        img = self._structured(640, 560)
        blob = encode_png(img, 1, workers=2, codec="auto")
        assert blob == encode_png(img, 1, workers=2, codec="process")
