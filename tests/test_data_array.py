"""Tests for DataArray: SoA/AoS layouts and the zero-copy invariant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import AOS, SOA, DataArray


class TestConstruction:
    def test_from_numpy_scalar_field_is_view(self):
        grid = np.zeros((4, 5, 6))
        arr = DataArray.from_numpy("data", grid)
        assert arr.num_tuples == 120
        assert arr.num_components == 1
        assert arr.is_zero_copy_of(grid)
        grid[1, 2, 3] = 7.5
        assert 7.5 in arr.values

    def test_from_soa_wraps_components_zero_copy(self):
        vx, vy, vz = (np.arange(10.0) for _ in range(3))
        arr = DataArray.from_soa("velocity", [vx, vy, vz])
        assert arr.layout is SOA
        assert arr.num_components == 3
        assert np.shares_memory(arr.component(0), vx)

    def test_from_soa_strided_views_allowed(self):
        """Fortran-style interleaved storage mapped as strided SoA views."""
        backing = np.arange(30.0).reshape(10, 3)
        arr = DataArray.from_soa("v", [backing[:, i] for i in range(3)])
        assert arr.is_zero_copy_of(backing)

    def test_from_aos_column_views(self):
        inter = np.arange(20.0).reshape(10, 2)
        arr = DataArray.from_aos("uv", inter)
        assert arr.layout is AOS
        assert arr.num_components == 2
        assert arr.is_zero_copy_of(inter)

    def test_from_aos_1d_promoted(self):
        arr = DataArray.from_aos("s", np.arange(5.0))
        assert arr.num_components == 1
        assert arr.num_tuples == 5

    def test_mismatched_component_lengths_rejected(self):
        with pytest.raises(ValueError):
            DataArray.from_soa("v", [np.zeros(3), np.zeros(4)])

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            DataArray("x", [], SOA)

    def test_non_1d_component_rejected(self):
        with pytest.raises(ValueError):
            DataArray("x", [np.zeros((2, 2))], SOA)

    def test_aos_3d_rejected(self):
        with pytest.raises(ValueError):
            DataArray.from_aos("x", np.zeros((2, 2, 2)))


class TestAccess:
    def test_values_scalar_only(self):
        arr = DataArray.from_soa("v", [np.zeros(3), np.zeros(3)])
        with pytest.raises(ValueError):
            _ = arr.values

    def test_as_aos_from_aos_returns_base_no_copy(self):
        inter = np.arange(12.0).reshape(4, 3)
        arr = DataArray.from_aos("v", inter)
        out = arr.as_aos()
        assert out is inter

    def test_as_aos_from_soa_copies(self):
        comps = [np.arange(4.0), np.arange(4.0) * 2]
        arr = DataArray.from_soa("v", comps)
        out = arr.as_aos()
        assert out.shape == (4, 2)
        assert not np.shares_memory(out, comps[0])
        assert np.array_equal(out[:, 1], comps[1])

    def test_as_soa_never_copies(self):
        inter = np.arange(12.0).reshape(4, 3)
        arr = DataArray.from_aos("v", inter)
        for c in arr.as_soa():
            assert np.shares_memory(c, inter)

    def test_magnitude_scalar_is_abs(self):
        arr = DataArray.from_numpy("s", np.array([-3.0, 4.0]))
        assert np.array_equal(arr.magnitude(), [3.0, 4.0])

    def test_magnitude_vector(self):
        arr = DataArray.from_soa("v", [np.array([3.0]), np.array([4.0])])
        assert arr.magnitude()[0] == pytest.approx(5.0)

    def test_min_max_across_components(self):
        arr = DataArray.from_soa("v", [np.array([1.0, 2.0]), np.array([-5.0, 9.0])])
        assert arr.min() == -5.0
        assert arr.max() == 9.0

    def test_len_and_nbytes(self):
        arr = DataArray.from_soa("v", [np.zeros(10), np.zeros(10)])
        assert len(arr) == 10
        assert arr.nbytes == 160


class TestCopySemantics:
    def test_deep_copy_owns_data(self):
        backing = np.zeros(10)
        arr = DataArray.from_numpy("s", backing)
        assert not arr.owns_data
        cp = arr.deep_copy()
        assert cp.owns_data
        assert not np.shares_memory(cp.values, backing)

    def test_deep_copy_rename(self):
        arr = DataArray.from_numpy("a", np.zeros(3))
        assert arr.deep_copy("b").name == "b"

    def test_mutation_through_view_visible_in_simulation(self):
        """The zero-copy contract in the write direction."""
        backing = np.zeros(6)
        arr = DataArray.from_numpy("s", backing)
        arr.values[2] = 11.0
        assert backing[2] == 11.0


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 50),
    ncomp=st.integers(1, 4),
    seed=st.integers(0, 2**31 - 1),
)
def test_layout_roundtrip_property(n, ncomp, seed):
    """SoA -> AoS -> SoA preserves every component's values."""
    rng = np.random.default_rng(seed)
    comps = [rng.random(n) for _ in range(ncomp)]
    arr = DataArray.from_soa("v", comps)
    back = DataArray.from_aos("v", arr.as_aos())
    assert back.num_components == ncomp
    for i in range(ncomp):
        assert np.array_equal(back.component(i), comps[i])


class TestCopyIntrospection:
    """Mechanical verification of the no-copy / copy-on-conversion claims."""

    def test_from_numpy_is_zero_copy(self):
        arr = DataArray.from_numpy("s", np.zeros((4, 5)))
        assert arr.is_zero_copy
        assert arr.nbytes_copied == 0

    def test_from_soa_is_zero_copy(self):
        comps = [np.arange(10.0) for _ in range(3)]
        arr = DataArray.from_soa("v", comps)
        assert arr.is_zero_copy
        assert arr.nbytes_copied == 0

    def test_from_aos_is_zero_copy(self):
        arr = DataArray.from_aos("uv", np.arange(20.0).reshape(10, 2))
        assert arr.is_zero_copy
        assert arr.nbytes_copied == 0

    def test_non_contiguous_from_numpy_copies_and_reports(self):
        backing = np.zeros((10, 10))
        arr = DataArray.from_numpy("s", backing[::2, ::2])
        assert not arr.is_zero_copy
        assert arr.nbytes_copied == arr.nbytes

    def test_as_soa_never_copies(self):
        arr = DataArray.from_aos("uv", np.arange(20.0).reshape(10, 2))
        before = arr.nbytes_copied
        comps = arr.as_soa()
        assert arr.nbytes_copied == before
        assert np.shares_memory(comps[0], arr.component(0))

    def test_as_aos_on_soa_counts_conversion_copy(self):
        comps = [np.arange(10.0) for _ in range(3)]
        arr = DataArray.from_soa("v", comps)
        inter = arr.as_aos()
        assert not np.shares_memory(inter, comps[0])
        assert arr.nbytes_copied == inter.nbytes
        assert not arr.is_zero_copy or arr.nbytes_copied > 0

    def test_as_aos_on_aos_is_free(self):
        arr = DataArray.from_aos("uv", np.arange(20.0).reshape(10, 2))
        arr.as_aos()
        assert arr.nbytes_copied == 0

    def test_deep_copy_is_not_zero_copy(self):
        cp = DataArray.from_numpy("s", np.zeros(10)).deep_copy()
        assert not cp.is_zero_copy
        assert cp.nbytes_copied == cp.nbytes


class TestReadonlyViewAndFingerprint:
    def test_readonly_view_blocks_writes_shares_memory(self):
        backing = np.zeros(10)
        arr = DataArray.from_numpy("s", backing)
        view = arr.readonly_view()
        assert view.guarded and not view.writeable
        assert np.shares_memory(view.component(0), backing)
        with pytest.raises(ValueError):
            view.component(0)[0] = 1.0
        assert arr.writeable  # the original stays writable

    def test_fingerprint_tracks_content(self):
        backing = np.arange(10.0)
        arr = DataArray.from_numpy("s", backing)
        fp = arr.fingerprint()
        assert arr.fingerprint() == fp
        backing[3] = -1.0
        assert arr.fingerprint() != fp

    def test_fingerprint_distinguishes_dtype_and_shape(self):
        a = DataArray.from_numpy("s", np.zeros(4, dtype=np.float64))
        b = DataArray.from_numpy("s", np.zeros(4, dtype=np.float32))
        c = DataArray.from_numpy("s", np.zeros(8, dtype=np.float64))
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3
