"""End-to-end tests for the multi-tenant in situ service layer.

Each test stands up a real :class:`~repro.service.ServiceServer` on a Unix
socket under ``tmp_path`` and drives it with real
:class:`~repro.service.ServiceClient` connections.  Covered: auth rejections
(bad/expired/unknown tokens), admission control (capacity, per-tenant
exclusivity), quota exhaustion as a terminal REJECT, deterministic shedding,
wire-fault recovery (corrupt and dropped frames under seeded injection),
client disconnect mid-step, memory-budget backpressure, artifact
byte-identity against the in-process oracle, N-tenant isolation, journal
byte-identity across repeat seeded runs, and clean shutdown (socket
unlinked, no worker threads left).
"""

import json
import threading
import time

import pytest

from repro.faults import FaultInjector
from repro.faults.plan import (
    SITE_SERVICE_CLIENT,
    SITE_SERVICE_FRAME,
    SITE_SERVICE_STEP,
    FaultEvent,
    FaultPlan,
)
from repro.mpi.framing import encode_frame
from repro.service import (
    QuotaSpec,
    ServiceClient,
    ServiceDisconnected,
    ServiceRejected,
    ServiceServer,
    TenantRegistry,
    TenantSpec,
    issue_token,
    run_client_workload,
    run_workload_inproc,
)
from repro.service import protocol
from repro.service.workload import synthetic_steps

SECRET = "test-secret"
SHAPE = (16, 16)


def _registry(*specs):
    return TenantRegistry(list(specs))


def _server(tmp_path, registry, **kwargs):
    kwargs.setdefault("render", False)
    server = ServiceServer(
        str(tmp_path / "svc.sock"),
        registry,
        SECRET,
        str(tmp_path / "out"),
        **kwargs,
    )
    server.start()
    return server


def _token(tenant, **kwargs):
    return issue_token(SECRET, tenant, **kwargs)


def _run(server, tenant, steps=4, **kwargs):
    return run_client_workload(
        server.socket_path, tenant, _token(tenant), steps, shape=SHAPE,
        **kwargs,
    )


def _run_retry_busy(server, tenant, **kwargs):
    """Like ``_run`` but retries BUSY: after an abrupt disconnect the server
    releases the tenant slot only once handler cleanup finishes, so an
    immediate reconnect legitimately races it (a real client would retry)."""
    for _ in range(100):
        try:
            return _run(server, tenant, **kwargs)
        except ServiceRejected as err:
            if err.code != protocol.REJECT_BUSY:
                raise
            time.sleep(0.02)
    raise AssertionError("tenant slot never released after disconnect")


# -- auth ---------------------------------------------------------------------


class TestAuth:
    def test_bad_token_rejected(self, tmp_path):
        server = _server(tmp_path, _registry(TenantSpec("alpha")))
        try:
            client = ServiceClient(server.socket_path, "alpha", "v1.alpha.0.junk")
            with pytest.raises(ServiceRejected) as err:
                client.connect()
            assert err.value.code == protocol.REJECT_BAD_TOKEN
        finally:
            server.stop()
        journal = json.loads(
            (tmp_path / "out" / "decision_journal.json").read_text()
        )
        auth = journal["alpha"]["admission"]["decisions"][0]
        assert (auth["event"], auth["verdict"]) == ("auth", "bad_token")

    def test_expired_token_rejected_with_injected_clock(self, tmp_path):
        server = _server(
            tmp_path, _registry(TenantSpec("alpha")), now=lambda: 2000.0
        )
        try:
            token = _token("alpha", expires=1000)
            client = ServiceClient(server.socket_path, "alpha", token)
            with pytest.raises(ServiceRejected) as err:
                client.connect()
            assert err.value.code == protocol.REJECT_EXPIRED_TOKEN
        finally:
            server.stop()

    def test_unexpired_token_admitted_with_injected_clock(self, tmp_path):
        server = _server(
            tmp_path, _registry(TenantSpec("alpha")), now=lambda: 500.0
        )
        try:
            token = _token("alpha", expires=1000)
            client = ServiceClient(server.socket_path, "alpha", token)
            welcome = client.connect()
            assert welcome["placement"] == "staged"
            client.finish()
        finally:
            server.stop()

    def test_unknown_tenant_rejected(self, tmp_path):
        server = _server(tmp_path, _registry(TenantSpec("alpha")))
        try:
            client = ServiceClient(
                server.socket_path, "ghost", _token("ghost")
            )
            with pytest.raises(ServiceRejected) as err:
                client.connect()
            assert err.value.code == protocol.REJECT_UNKNOWN_TENANT
        finally:
            server.stop()


# -- admission control --------------------------------------------------------


class TestAdmission:
    def test_tenant_exclusive_connection(self, tmp_path):
        server = _server(tmp_path, _registry(TenantSpec("alpha")))
        try:
            first = ServiceClient(server.socket_path, "alpha", _token("alpha"))
            first.connect()
            second = ServiceClient(server.socket_path, "alpha", _token("alpha"))
            with pytest.raises(ServiceRejected) as err:
                second.connect()
            assert err.value.code == protocol.REJECT_BUSY
            first.finish()
        finally:
            server.stop()

    def test_capacity_limit_rejects_overflow(self, tmp_path):
        reg = _registry(TenantSpec("alpha"), TenantSpec("beta"))
        server = _server(tmp_path, reg, max_clients=1)
        try:
            first = ServiceClient(server.socket_path, "alpha", _token("alpha"))
            first.connect()
            second = ServiceClient(server.socket_path, "beta", _token("beta"))
            with pytest.raises(ServiceRejected) as err:
                second.connect()
            assert err.value.code == protocol.REJECT_CAPACITY
            first.finish()
        finally:
            server.stop()

    def test_tenant_may_reconnect_after_finish(self, tmp_path):
        server = _server(tmp_path, _registry(TenantSpec("alpha")))
        try:
            assert _run(server, "alpha", steps=2)["steps_admitted"] == 2
            assert _run(server, "alpha", steps=2)["steps_admitted"] == 2
        finally:
            server.stop()


# -- quotas and shedding ------------------------------------------------------


class TestQuotas:
    def test_max_steps_exhaustion_is_terminal(self, tmp_path):
        spec = TenantSpec("alpha", QuotaSpec(max_steps=3))
        server = _server(tmp_path, _registry(spec))
        try:
            with pytest.raises(ServiceRejected) as err:
                _run(server, "alpha", steps=6)
            assert err.value.code == protocol.REJECT_QUOTA
        finally:
            server.stop()
        journal = json.loads(
            (tmp_path / "out" / "decision_journal.json").read_text()
        )
        verdicts = [
            d["verdict"]
            for d in journal["alpha"]["admission"]["decisions"]
            if d["event"] == "step"
        ]
        assert verdicts == ["admit", "admit", "admit", "reject_steps"]

    def test_oversized_step_rejected(self, tmp_path):
        spec = TenantSpec("alpha", QuotaSpec(max_step_bytes=64))
        server = _server(tmp_path, _registry(spec))
        try:
            with pytest.raises(ServiceRejected) as err:
                _run(server, "alpha", steps=2)
            assert "max_step_bytes" in err.value.reason
        finally:
            server.stop()

    def test_soft_budget_sheds_deterministically(self, tmp_path):
        payload = len(
            protocol.encode_step(
                0, 0.0, dict(list(synthetic_steps("alpha", 1, SHAPE, 0))[0][2])
            )
        )
        spec = TenantSpec(
            "alpha",
            QuotaSpec(
                byte_budget=payload * 20,
                soft_byte_fraction=0.1,
                shed_probability=0.5,
            ),
        )

        def run_once(sub):
            server = _server(tmp_path / sub, _registry(spec), seed=9)
            try:
                summary = _run(server, "alpha", steps=10)
            finally:
                server.stop()
            return summary

        a, b = run_once("a"), run_once("b")
        assert a["verdicts"] == b["verdicts"]
        assert a["steps_shed"] > 0
        assert a["steps_admitted"] + a["steps_shed"] == 10
        j_a = (tmp_path / "a" / "out" / "decision_journal.json").read_bytes()
        j_b = (tmp_path / "b" / "out" / "decision_journal.json").read_bytes()
        assert j_a == j_b, "seeded shed journals must be byte-identical"


# -- wire faults --------------------------------------------------------------


class TestWireFaults:
    def test_corrupt_frame_recovered_by_nack_retransmit(self, tmp_path):
        plan = FaultPlan(
            seed=7,
            events=(
                FaultEvent(SITE_SERVICE_FRAME, "corrupt", rank=0, occurrence=1),
            ),
        )
        server = _server(tmp_path, _registry(TenantSpec("alpha")))
        try:
            summary = _run(
                server, "alpha", steps=4, injector=FaultInjector(plan)
            )
            assert summary["steps_admitted"] == 4
        finally:
            server.stop()
        report = json.loads(
            (tmp_path / "out" / "cost_report.json").read_text()
        )
        assert report["tenants"]["alpha"]["steps_admitted"] == 4

    def test_dropped_frame_recovered_by_nack_retransmit(self, tmp_path):
        # An injected drop needs credits >= 2: the NACK only fires when a
        # *subsequent* frame exposes the sequence gap.
        plan = FaultPlan(
            seed=7,
            events=(
                FaultEvent(SITE_SERVICE_FRAME, "drop", rank=0, occurrence=1),
            ),
        )
        spec = TenantSpec("alpha", QuotaSpec(credits=3))
        server = _server(tmp_path, _registry(spec))
        try:
            summary = _run(
                server, "alpha", steps=5, injector=FaultInjector(plan)
            )
            assert summary["steps_admitted"] == 5
        finally:
            server.stop()

    def test_truncated_frame_journals_disconnect(self, tmp_path):
        server = _server(tmp_path, _registry(TenantSpec("alpha")))
        try:
            client = ServiceClient(server.socket_path, "alpha", _token("alpha"))
            client.connect()
            # Hand-feed half a STEP frame, then slam the socket shut.
            frame = encode_frame(protocol.STEP, 1, b"\0" * 256)
            client.channel.sock.sendall(frame[: len(frame) // 2])
            client.close()
        finally:
            server.stop()
        journal = json.loads(
            (tmp_path / "out" / "decision_journal.json").read_text()
        )
        events = [
            (d["event"], d["verdict"])
            for d in journal["alpha"]["admission"]["decisions"]
        ]
        assert ("disconnect", "abort") in events


# -- client disconnect mid-step ----------------------------------------------


class TestClientDisconnect:
    def test_injected_disconnect_cleans_up_and_allows_reconnect(self, tmp_path):
        plan = FaultPlan(
            seed=3,
            events=(
                FaultEvent(SITE_SERVICE_CLIENT, "disconnect", rank=0, step=2),
            ),
        )
        server = _server(tmp_path, _registry(TenantSpec("alpha")))
        try:
            with pytest.raises(ServiceDisconnected):
                _run(server, "alpha", steps=6, injector=FaultInjector(plan))
            # The tenant slot must be released: a fresh connection works.
            summary = _run_retry_busy(server, "alpha", steps=2)
            assert summary["steps_admitted"] == 2
        finally:
            server.stop()
        journal = json.loads(
            (tmp_path / "out" / "decision_journal.json").read_text()
        )
        decisions = journal["alpha"]["admission"]["decisions"]
        aborts = [d for d in decisions if d["verdict"] == "abort"]
        assert len(aborts) == 1
        assert "connection lost" in aborts[0]["detail"]
        # The endpoint still analyzed the steps admitted before the cut.
        hist = json.loads(
            (tmp_path / "out" / "tenants" / "alpha" / "histograms.json")
            .read_text()
        )
        assert len(hist) >= 2


# -- endpoint degradation -----------------------------------------------------


class TestEndpointDegradation:
    def test_injected_analysis_failures_trip_breaker_not_connection(
        self, tmp_path
    ):
        plan = FaultPlan(
            seed=1,
            events=tuple(
                FaultEvent(SITE_SERVICE_STEP, "analysis_fail", rank=0, step=s)
                for s in (1, 2)
            ),
        )
        server = _server(
            tmp_path, _registry(TenantSpec("alpha")),
            injector=FaultInjector(plan),
        )
        try:
            summary = _run(server, "alpha", steps=6)
            # Admission is unaffected: degradation is the endpoint's story.
            assert summary["steps_admitted"] == 6
        finally:
            server.stop()
        journal = json.loads(
            (tmp_path / "out" / "decision_journal.json").read_text()
        )
        verdicts = [
            d["verdict"] for d in journal["alpha"]["endpoint"]["decisions"]
        ]
        assert verdicts.count("failed") == 2
        assert "skipped" in verdicts, "two failures must open the breaker"
        assert verdicts[0] == "ok"


# -- backpressure -------------------------------------------------------------


class TestBackpressure:
    def test_memory_budget_stalls_but_completes(self, tmp_path):
        payload = len(
            protocol.encode_step(
                0, 0.0, dict(list(synthetic_steps("alpha", 1, SHAPE, 0))[0][2])
            )
        )
        spec = TenantSpec("alpha", QuotaSpec(credits=4))
        server = _server(
            tmp_path, _registry(spec), memory_budget=payload + 1,
        )
        try:
            summary = _run(server, "alpha", steps=6)
            assert summary["steps_admitted"] == 6
        finally:
            server.stop()
        assert server.budget.held == 0, "all in-flight bytes must drain"

    def test_rate_limit_throttles(self, tmp_path):
        spec = TenantSpec("alpha", QuotaSpec(rate_steps_per_s=50.0))
        server = _server(tmp_path, _registry(spec))
        try:
            summary = _run(server, "alpha", steps=4)
            assert summary["steps_admitted"] == 4
        finally:
            server.stop()
        report = json.loads(
            (tmp_path / "out" / "cost_report.json").read_text()
        )
        assert report["tenants"]["alpha"]["throttle_seconds"] > 0.0


# -- artifact byte-identity and isolation -------------------------------------


class TestArtifacts:
    def test_streamed_artifacts_match_inproc_oracle(self, tmp_path):
        server = _server(
            tmp_path,
            _registry(TenantSpec("alpha"), TenantSpec("beta", placement="in-line")),
            render=True,
            resolution=(64, 36),
        )
        try:
            _run(server, "alpha", steps=3)
            _run(server, "beta", steps=3)
        finally:
            server.stop()
        for tenant in ("alpha", "beta"):
            run_workload_inproc(
                tenant,
                synthetic_steps(tenant, 3, SHAPE, 0),
                str(tmp_path / "oracle" / tenant),
                resolution=(64, 36),
            )
            served = tmp_path / "out" / "tenants" / tenant
            oracle = tmp_path / "oracle" / tenant
            served_files = sorted(p.name for p in served.iterdir())
            oracle_files = sorted(p.name for p in oracle.iterdir())
            assert served_files == oracle_files
            for name in served_files:
                assert (served / name).read_bytes() == (
                    oracle / name
                ).read_bytes(), f"{tenant}/{name} diverged from the oracle"

    def test_four_concurrent_tenants_isolated(self, tmp_path):
        names = ["t0", "t1", "t2", "t3"]
        server = _server(
            tmp_path, _registry(*(TenantSpec(n) for n in names)), expect=4
        )
        results: dict[str, dict] = {}
        errors: list[Exception] = []

        def drive(name):
            try:
                results[name] = _run(server, name, steps=5)
            except Exception as exc:  # noqa: BLE001 -- surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(n,)) for n in names]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert server.wait(timeout=10), "server should see 4 completions"
        finally:
            server.stop()
        assert not errors, errors
        assert all(results[n]["steps_admitted"] == 5 for n in names)
        # Isolation: each tenant's histogram equals its own oracle and
        # differs from every other tenant's (distinct synthetic phases).
        docs = {}
        for n in names:
            run_workload_inproc(
                n, synthetic_steps(n, 5, SHAPE, 0),
                str(tmp_path / "oracle" / n), render=False,
            )
            served = (
                tmp_path / "out" / "tenants" / n / "histograms.json"
            ).read_bytes()
            oracle = (
                tmp_path / "oracle" / n / "histograms.json"
            ).read_bytes()
            assert served == oracle, f"tenant {n} diverged from its oracle"
            docs[n] = served
        assert len(set(docs.values())) == len(names)

    def test_clean_shutdown_no_socket_no_workers(self, tmp_path):
        server = _server(tmp_path, _registry(TenantSpec("alpha")))
        sock = tmp_path / "svc.sock"
        try:
            assert sock.exists()
            _run(server, "alpha", steps=2)
        finally:
            server.stop()
        assert not sock.exists(), "stop() must unlink the listening socket"
        leftovers = [
            t.name
            for t in threading.enumerate()
            if t.name.startswith(("svc-worker", "svc-accept"))
        ]
        assert leftovers == [], f"orphaned service threads: {leftovers}"


# -- journal determinism under faults -----------------------------------------


class TestJournalDeterminism:
    def test_seeded_fault_run_replays_byte_identical_journal(self, tmp_path):
        plan = FaultPlan(
            seed=13,
            events=(
                FaultEvent(SITE_SERVICE_FRAME, "corrupt", rank=0, occurrence=2),
                FaultEvent(SITE_SERVICE_CLIENT, "disconnect", rank=1, step=3),
                FaultEvent(SITE_SERVICE_STEP, "analysis_fail", rank=0, step=1),
            ),
        )

        def run_once(sub):
            reg = _registry(TenantSpec("alpha"), TenantSpec("beta"))
            server = _server(
                tmp_path / sub, reg, seed=21,
                injector=FaultInjector(plan),
            )
            try:
                _run(
                    server, "alpha", steps=5,
                    injector=FaultInjector(plan),
                )
                with pytest.raises(ServiceDisconnected):
                    _run(
                        server, "beta", steps=5,
                        injector=FaultInjector(plan),
                    )
            finally:
                server.stop()
            return (
                tmp_path / sub / "out" / "decision_journal.json"
            ).read_bytes()

        assert run_once("a") == run_once("b")
