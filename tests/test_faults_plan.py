"""Tests for the deterministic fault-plan layer (repro.faults.plan)."""

import pytest

from repro.faults import (
    KNOWN_SITES,
    SITE_MPI_SEND,
    SITE_SIM_STEP,
    SITE_STAGING_ENDPOINT,
    SITE_STORAGE_WRITE,
    FaultEvent,
    FaultPlan,
    FaultRule,
    chaos_plan,
    unit_draw,
)


class TestUnitDraw:
    def test_deterministic(self):
        a = unit_draw(42, "storage.write", 3, 17, salt="rule1")
        b = unit_draw(42, "storage.write", 3, 17, salt="rule1")
        assert a == b

    def test_in_unit_interval(self):
        for occ in range(200):
            v = unit_draw(7, "mpi.send", 1, occ)
            assert 0.0 <= v < 1.0

    def test_every_argument_separates_streams(self):
        base = unit_draw(1, "mpi.send", 0, 0, salt="")
        assert unit_draw(2, "mpi.send", 0, 0, salt="") != base
        assert unit_draw(1, "sim.step", 0, 0, salt="") != base
        assert unit_draw(1, "mpi.send", 1, 0, salt="") != base
        assert unit_draw(1, "mpi.send", 0, 1, salt="") != base
        assert unit_draw(1, "mpi.send", 0, 0, salt="x") != base

    def test_roughly_uniform(self):
        draws = [unit_draw(9, "sim.step", 0, i) for i in range(2000)]
        frac = sum(1 for d in draws if d < 0.25) / len(draws)
        assert 0.2 < frac < 0.3


class TestFaultEvent:
    def test_site_and_rank_must_match(self):
        ev = FaultEvent(SITE_SIM_STEP, "die", rank=2, step=5)
        assert ev.matches(SITE_SIM_STEP, 2, 0, 5)
        assert not ev.matches(SITE_SIM_STEP, 1, 0, 5)
        assert not ev.matches(SITE_MPI_SEND, 2, 0, 5)

    def test_step_selector(self):
        ev = FaultEvent(SITE_SIM_STEP, "die", rank=0, step=3)
        assert not ev.matches(SITE_SIM_STEP, 0, 9, 2)
        assert ev.matches(SITE_SIM_STEP, 0, 9, 3)

    def test_occurrence_selector(self):
        ev = FaultEvent(SITE_STORAGE_WRITE, "write_fail", rank=0, occurrence=2)
        assert not ev.matches(SITE_STORAGE_WRITE, 0, 1, None)
        assert ev.matches(SITE_STORAGE_WRITE, 0, 2, None)

    def test_bare_event_fires_on_first_draw(self):
        ev = FaultEvent(SITE_STAGING_ENDPOINT, "disconnect", rank=0)
        assert ev.matches(SITE_STAGING_ENDPOINT, 0, 0, None)
        assert ev.matches(SITE_STAGING_ENDPOINT, 0, 5, 7)


class TestFaultRule:
    def test_probability_validated(self):
        with pytest.raises(ValueError):
            FaultRule(SITE_MPI_SEND, "drop", probability=1.5)

    def test_rank_filter(self):
        rule = FaultRule(SITE_MPI_SEND, "drop", 0.5, ranks=frozenset({1, 3}))
        assert rule.applies_to(SITE_MPI_SEND, 1)
        assert not rule.applies_to(SITE_MPI_SEND, 2)
        assert not rule.applies_to(SITE_SIM_STEP, 1)


class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(seed=1, events=(FaultEvent("bogus.site", "die", rank=0),))
        assert "mpi.send" in KNOWN_SITES

    def test_empty(self):
        assert FaultPlan(seed=0).empty
        assert not chaos_plan(0, 2, 10).empty

    def test_events_take_precedence_over_rules(self):
        plan = FaultPlan(
            seed=1,
            events=(FaultEvent(SITE_SIM_STEP, "die", rank=0),),
            rules=(FaultRule(SITE_SIM_STEP, "stall", probability=1.0),),
        )
        hit = plan.match(SITE_SIM_STEP, 0, 0, None, frozenset(), {})
        action, event_idx, rule_idx = hit
        assert (action.kind, event_idx, rule_idx) == ("die", 0, None)

    def test_fired_event_not_rematched(self):
        plan = FaultPlan(seed=1, events=(FaultEvent(SITE_SIM_STEP, "die", rank=0),))
        assert plan.match(SITE_SIM_STEP, 0, 1, None, frozenset({0}), {}) is None

    def test_rule_cap_is_per_rank(self):
        """The firing-cap bookkeeping is keyed (rule_index, rank): one rank
        exhausting its cap must not starve another rank's schedule, or the
        schedule would depend on thread interleaving."""
        plan = FaultPlan(
            seed=1,
            rules=(FaultRule(SITE_SIM_STEP, "stall", 1.0, max_firings=1),),
        )
        assert plan.match(SITE_SIM_STEP, 0, 0, None, frozenset(), {(0, 0): 1}) is None
        hit = plan.match(SITE_SIM_STEP, 1, 0, None, frozenset(), {(0, 0): 1})
        assert hit is not None and hit[0].kind == "stall"

    def test_match_is_pure(self):
        plan = chaos_plan(42, 3, 10)
        args = (SITE_STORAGE_WRITE, 1, 4, 2, frozenset(), {})
        assert plan.match(*args) == plan.match(*args)


class TestChaosPlan:
    def test_structural_guarantees(self):
        plan = chaos_plan(42, n_writers=3, steps=12)
        kinds = {(e.site, e.kind) for e in plan.events}
        assert (SITE_SIM_STEP, "die") in kinds
        assert (SITE_STAGING_ENDPOINT, "disconnect") in kinds
        die = next(e for e in plan.events if e.kind == "die")
        assert 0 <= die.rank < 3
        assert 2 <= die.step < 12
        assert any(r.site == SITE_MPI_SEND for r in plan.rules)
        assert any(r.site == SITE_STORAGE_WRITE for r in plan.rules)

    def test_seeded_and_deterministic(self):
        assert chaos_plan(42, 3, 10) == chaos_plan(42, 3, 10)
        assert chaos_plan(42, 3, 10) != chaos_plan(43, 3, 10)

    def test_opt_outs(self):
        plan = chaos_plan(1, 2, 10, kill_rank=False, kill_endpoint=False)
        assert plan.events == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            chaos_plan(1, 0, 10)
        with pytest.raises(ValueError):
            chaos_plan(1, 2, 2)
