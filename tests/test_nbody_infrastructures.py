"""NBody through every delivery path: four infrastructures, staging, the
service, and the CLI.

The acceptance criterion: one nbody run produces an artifact-checksum
manifest (density PNGs, power spectrum, halo counts, Catalyst/libsim
image CRCs) that is byte-identical across SPMD backends and rank counts.
"""

import json
import os

import pytest

from repro.apps.nbody import NBodyDataAdaptor, NBodySimulation, run_nbody
from repro.core.bridge import Bridge


#: Keys whose values must be invariant to decomposition and backend.
INVARIANT_KEYS = (
    "density_png_crcs",
    "power_spectrum",
    "halo_counts",
    "halo_sizes",
    "catalyst_png_crc",
    "libsim_png_crc",
)


def _manifest(tmp_path, sub, **kwargs):
    kwargs.setdefault("steps", 3)
    kwargs.setdefault("grid", 16)
    kwargs.setdefault("n_particles", 300)
    kwargs.setdefault("seed", 7)
    return run_nbody(str(tmp_path / sub), **kwargs)


class TestManifestEquivalence:
    def test_identical_across_rank_counts(self, tmp_path):
        manifests = {
            nr: _manifest(tmp_path, f"r{nr}", ranks=nr) for nr in (1, 2, 4)
        }
        for key in INVARIANT_KEYS:
            assert (
                manifests[1][key] == manifests[2][key] == manifests[4][key]
            ), key

    def test_identical_across_backends(self, tmp_path):
        thread = _manifest(tmp_path, "thread", ranks=2, backend="thread")
        process = _manifest(tmp_path, "process", ranks=2, backend="process")
        for key in INVARIANT_KEYS:
            assert thread[key] == process[key], key
        # Not just the summary: the bytes on disk must match too.
        for name in ("manifest.json", "density_proj_000002.png"):
            a = (tmp_path / "thread" / name).read_bytes()
            b = (tmp_path / "process" / name).read_bytes()
            assert a == b, name

    def test_artifacts_on_disk(self, tmp_path):
        manifest = _manifest(tmp_path, "full", ranks=2)
        out = tmp_path / "full"
        assert json.loads((out / "manifest.json").read_text()) == manifest
        assert (out / "steps.bp").exists()
        assert sorted(p.name for p in (out / "catalyst").glob("*.png"))
        assert sorted(p.name for p in (out / "libsim").glob("*.png"))
        assert (out / "glean").is_dir()
        assert (out / "power_spectrum.json").exists()
        assert (out / "halos.json").exists()

    def test_analyses_only_subset(self, tmp_path):
        manifest = _manifest(tmp_path, "bare", ranks=2, infrastructures=())
        assert "catalyst_png_crc" not in manifest
        assert manifest["infrastructures"] == []
        assert len(manifest["density_png_crcs"]) == 3

    def test_unknown_infrastructure_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown infrastructures"):
            _manifest(tmp_path, "bad", infrastructures=("catalyst", "vtk"))


class TestFlexPathStaging:
    def test_nbody_density_through_staged_endpoint(self, tmp_path):
        """The fourth delivery mode: writers stage the density grid over
        FlexPath to an in-transit Catalyst endpoint."""
        from repro.analysis.slice_ import SlicePlane
        from repro.infrastructure.adios import run_flexpath_job
        from repro.infrastructure.catalyst import CatalystAdaptor

        grid = 16

        def writer_program(group, writer_adaptor):
            sim = NBodySimulation(group, grid=grid, n_particles=200, seed=5)
            bridge = Bridge(group, sim.make_data_adaptor())
            bridge.add_analysis(writer_adaptor)
            bridge.initialize()
            sim.run(3, bridge)
            return bridge.finalize()

        job = run_flexpath_job(
            2,
            1,
            writer_program,
            lambda comm: CatalystAdaptor(
                plane=SlicePlane(2, grid // 2),
                array=NBodyDataAdaptor.DENSITY,
                resolution=(100, 100),
                output_dir=str(tmp_path / "staged"),
            ),
            array=NBodyDataAdaptor.DENSITY,
            timeout=90.0,
        )
        flex = [w["AdiosFlexPathWriter"] for w in job.writer_results]
        assert all(f["steps_sent"] == 3 for f in flex)
        assert job.endpoint_results[0]["steps_analyzed"] == 3
        assert sorted(p.name for p in (tmp_path / "staged").glob("*.png"))


class TestServiceTenant:
    def test_nbody_stream_matches_inproc_oracle(self, tmp_path):
        """An nbody tenant streamed through the socket service produces
        byte-identical artifacts to the in-process oracle."""
        from repro.service import (
            ServiceServer,
            TenantRegistry,
            TenantSpec,
            issue_token,
            run_client_workload,
            run_workload_inproc,
        )
        from repro.service.workload import nbody_steps

        secret = "nbody-secret"
        server = ServiceServer(
            str(tmp_path / "svc.sock"),
            TenantRegistry([TenantSpec("nb")]),
            secret,
            str(tmp_path / "out"),
            render=False,
        )
        server.start()
        try:
            summary = run_client_workload(
                server.socket_path,
                "nb",
                issue_token(secret, "nb"),
                steps=3,
                shape=(8, 8),
                workload="nbody",
            )
        finally:
            server.stop()
        assert summary["steps_admitted"] == 3
        run_workload_inproc(
            "nb",
            nbody_steps("nb", 3, grid=8),
            str(tmp_path / "oracle"),
            render=False,
        )
        served = (
            tmp_path / "out" / "tenants" / "nb" / "histograms.json"
        ).read_bytes()
        oracle = (tmp_path / "oracle" / "histograms.json").read_bytes()
        assert served == oracle

    def test_nbody_steps_deterministic_and_tenant_distinct(self):
        from repro.service.workload import nbody_seed, nbody_steps

        a1 = [f[2]["data"].tobytes() for f in nbody_steps("a", 2, grid=8)]
        a2 = [f[2]["data"].tobytes() for f in nbody_steps("a", 2, grid=8)]
        b = [f[2]["data"].tobytes() for f in nbody_steps("b", 2, grid=8)]
        assert a1 == a2
        assert a1 != b
        assert nbody_seed("a") != nbody_seed("b")
        assert nbody_seed("a", seed=0) != nbody_seed("a", seed=1)

    def test_unknown_workload_rejected(self):
        from repro.service import run_client_workload

        with pytest.raises(ValueError, match="unknown workload"):
            run_client_workload("/nonexistent", "t", "tok", 1, workload="x")


class TestCli:
    def test_repro_nbody_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "cli")
        rc = main(
            [
                "nbody",
                "--out", out,
                "--ranks", "2",
                "--steps", "2",
                "--grid", "8",
                "--particles", "100",
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "manifest.json" in text
        assert os.path.exists(os.path.join(out, "manifest.json"))
        assert os.path.exists(os.path.join(out, "measured.json"))
        assert os.path.exists(os.path.join(out, "phase_report.txt"))
        # The trace actually carries the nbody phases.
        doc = json.loads(open(os.path.join(out, "measured.json")).read())
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "nbody::advance" in names
        assert "sensei::execute" in names

    def test_repro_nbody_subset_of_infrastructures(self, tmp_path):
        from repro.cli import main

        out = str(tmp_path / "cli2")
        rc = main(
            [
                "nbody",
                "--out", out,
                "--ranks", "1",
                "--steps", "2",
                "--grid", "8",
                "--particles", "50",
                "--infrastructures", "adios",
                "--no-sanitize",
            ]
        )
        assert rc == 0
        manifest = json.loads(
            open(os.path.join(out, "manifest.json")).read()
        )
        assert manifest["infrastructures"] == ["adios"]
        assert "catalyst_png_crc" not in manifest
