"""Unit tests for the configuration substrate (SENSEI config / Libsim sessions)."""

import pytest

from repro.util import Configuration, ConfigError


@pytest.fixture
def cfg():
    return Configuration(
        {
            "analysis": {
                "histogram": {"bins": 32, "enabled": True},
                "slice": {"origin": [0.5, 0.5, 0.5], "resolution": "1920x1080"},
            },
            "timestep": 0.01,
        }
    )


def test_dotted_get(cfg):
    assert cfg.get("analysis.histogram.bins") == 32
    assert cfg.get("timestep") == 0.01


def test_get_default_for_missing(cfg):
    assert cfg.get("analysis.missing", "d") == "d"
    assert cfg.get("no.such.path", 7) == 7


def test_require_raises_for_missing(cfg):
    with pytest.raises(ConfigError):
        cfg.require("analysis.nothing")
    assert cfg.require("analysis.histogram.bins") == 32


def test_typed_getters(cfg):
    assert cfg.get_int("analysis.histogram.bins") == 32
    assert cfg.get_float("timestep") == pytest.approx(0.01)
    assert cfg.get_bool("analysis.histogram.enabled") is True
    assert cfg.get_list("analysis.slice.origin") == [0.5, 0.5, 0.5]


def test_typed_getter_errors(cfg):
    with pytest.raises(ConfigError):
        cfg.get_int("analysis.slice.resolution")
    with pytest.raises(ConfigError):
        cfg.get_bool("timestep")
    with pytest.raises(ConfigError):
        cfg.get_list("timestep")
    with pytest.raises(ConfigError):
        cfg.get_int("missing.path")


def test_bool_string_coercion():
    c = Configuration({"a": "true", "b": "off", "c": "Yes"})
    assert c.get_bool("a") is True
    assert c.get_bool("b") is False
    assert c.get_bool("c") is True


def test_set_creates_nested(cfg):
    cfg.set("new.deep.key", 5)
    assert cfg.get("new.deep.key") == 5


def test_json_roundtrip(cfg):
    again = Configuration.from_json(cfg.to_json())
    assert again.get("analysis.histogram.bins") == 32
    assert again.as_dict() == cfg.as_dict()


def test_from_json_rejects_non_object():
    with pytest.raises(ConfigError):
        Configuration.from_json("[1, 2, 3]")
    with pytest.raises(ConfigError):
        Configuration.from_json("{not json")


def test_section(cfg):
    hist = cfg.section("analysis.histogram")
    assert hist.get_int("bins") == 32
    with pytest.raises(ConfigError):
        cfg.section("timestep")


def test_contains(cfg):
    assert "analysis.histogram" in cfg
    assert "analysis.zzz" not in cfg


def test_from_file(tmp_path, cfg):
    p = tmp_path / "session.json"
    p.write_text(cfg.to_json())
    loaded = Configuration.from_file(p)
    assert loaded.get("analysis.slice.resolution") == "1920x1080"
