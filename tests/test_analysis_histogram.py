"""Tests for the parallel histogram analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import HistogramAnalysis, local_histogram, parallel_histogram
from repro.core import Bridge
from repro.core.generic import LazyStructuredDataAdaptor
from repro.data import Association
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.util import Extent, MemoryTracker


class TestLocalHistogram:
    def test_counts_uniform_values(self):
        values = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        counts = local_histogram(values, 4, 0.0, 1.0)
        assert counts.tolist() == [1, 1, 1, 2]  # vmax lands in last bin

    def test_empty_input(self):
        assert local_histogram(np.array([]), 4, 0.0, 1.0).tolist() == [0, 0, 0, 0]

    def test_degenerate_range_all_in_first_bin(self):
        counts = local_histogram(np.full(7, 3.3), 5, 3.3, 3.3)
        assert counts.tolist() == [7, 0, 0, 0, 0]

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            local_histogram(np.zeros(3), 0, 0, 1)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=200),
        st.integers(1, 64),
    )
    def test_matches_numpy_histogram(self, values, bins):
        """Our bincount implementation agrees with np.histogram.

        Degenerate ranges (all values identical) use a different, documented
        convention (everything in bin 0) and are skipped here.
        """
        a = np.array(values)
        if a.min() == a.max():
            return
        counts = local_histogram(a, bins, float(a.min()), float(a.max()))
        expected, _ = np.histogram(a, bins=bins, range=(a.min(), a.max()))
        assert counts.tolist() == expected.tolist()


class TestParallelHistogram:
    def test_matches_serial(self):
        rng = np.random.default_rng(7)
        data = rng.normal(size=4096)
        chunks = np.array_split(data, 4)

        def prog(comm):
            return parallel_histogram(comm, chunks[comm.rank], bins=32)

        out = run_spmd(4, prog)
        assert out[1] is None and out[2] is None
        h = out[0]
        expected, edges = np.histogram(data, bins=32, range=(data.min(), data.max()))
        assert h.counts.tolist() == expected.tolist()
        np.testing.assert_allclose(h.edges, edges)
        assert h.total == data.size
        assert h.vmin == pytest.approx(data.min())
        assert h.vmax == pytest.approx(data.max())

    def test_empty_rank_participates(self):
        data = [np.arange(10.0), np.array([]), np.arange(5.0)]

        def prog(comm):
            return parallel_histogram(comm, data[comm.rank], bins=4)

        h = run_spmd(3, prog)[0]
        assert h.total == 15
        assert h.vmin == 0.0 and h.vmax == 9.0

    def test_independent_of_decomposition(self):
        data = np.linspace(-3, 5, 1000)

        def prog_n(comm):
            chunks = np.array_split(data, comm.size)
            return parallel_histogram(comm, chunks[comm.rank], bins=16)

        counts = None
        for n in (1, 2, 5, 8):
            h = run_spmd(n, prog_n)[0]
            if counts is None:
                counts = h.counts
            assert np.array_equal(h.counts, counts)

    @pytest.mark.parametrize("nranks", [1, 3, 4])
    def test_fused_range_bit_identical(self, nranks):
        """One (min, max) allreduce vs the paper's two: same histogram,
        same range, bit for bit -- including negative-only data."""
        rng = np.random.default_rng(11)
        data = rng.normal(loc=-2.0, size=900)

        def prog(comm):
            chunks = np.array_split(data, comm.size)
            two = parallel_histogram(comm, chunks[comm.rank], bins=32)
            one = parallel_histogram(
                comm, chunks[comm.rank], bins=32, fused_range=True
            )
            if comm.rank != 0:
                assert two is None and one is None
                return None
            return two, one

        two, one = run_spmd(nranks, prog)[0]
        assert one.vmin == two.vmin and one.vmax == two.vmax
        assert np.array_equal(one.counts, two.counts)
        assert np.array_equal(one.edges, two.edges)

    def test_fused_range_with_empty_rank(self):
        data = [np.array([]), np.array([3.0, -7.0, 2.0])]

        def prog(comm):
            return parallel_histogram(comm, data[comm.rank], bins=4, fused_range=True)

        h = run_spmd(2, prog)[0]
        assert h.vmin == -7.0 and h.vmax == 3.0 and h.total == 3

    def test_fused_range_config_knob(self):
        """The ConfigurableAnalysis surface exposes fused_range."""
        from repro.core.configurable import ConfigurableAnalysis
        from repro.util.config import Configuration

        cfg = Configuration(
            {"analyses": [{"type": "histogram", "bins": 8, "fused_range": True}]}
        )
        comp = ConfigurableAnalysis(cfg)
        (adaptor,) = comp.analyses
        assert adaptor.fused_range is True


class TestHistogramAnalysisAdaptor:
    def test_in_situ_histogram_over_miniapp(self):
        """End-to-end: miniapp -> SENSEI bridge -> histogram adaptor equals a
        direct recomputation on the assembled global field."""
        dims = (10, 8, 6)
        oscs = default_oscillators()

        def prog(comm):
            sim = OscillatorSimulation(comm, dims, oscs, dt=0.1)
            bridge = Bridge(comm, sim.make_data_adaptor())
            hist = HistogramAnalysis(bins=20)
            bridge.add_analysis(hist)
            bridge.initialize()
            sim.run(2, bridge)
            bridge.finalize()
            return sim.extent, sim.field.copy(), hist.history

        out = run_spmd(4, prog)
        # Rebuild the final global field and recompute the histogram.
        assembled = np.zeros(dims)
        for ext, block, _ in out:
            assembled[
                ext.i0 : ext.i1 + 1, ext.j0 : ext.j1 + 1, ext.k0 : ext.k1 + 1
            ] = block
        history = out[0][2]
        assert len(history) == 2
        final = history[-1]
        # NOTE: overlapping boundary points are counted once per owning rank
        # in this simple regular decomposition, exactly as in the paper's
        # miniapp (points are not deduplicated); compare against the same
        # per-rank accounting.
        total_points = sum(
            (e.i1 - e.i0 + 1) * (e.j1 - e.j0 + 1) * (e.k1 - e.k0 + 1)
            for e, _, _ in out
        )
        assert final.total == total_points
        assert final.vmin == pytest.approx(assembled.min())
        assert final.vmax == pytest.approx(assembled.max())

    def test_memory_is_bins_proportional(self):
        def prog(comm):
            mem = MemoryTracker()
            hist = HistogramAnalysis(bins=128)
            hist.set_instrumentation(None, mem)
            hist.initialize(comm)
            return mem.named("histogram::bins")

        assert run_spmd(1, prog)[0] == 128 * 8

    def test_ghost_values_excluded(self):
        from repro.data import GHOST_ARRAY_NAME

        def prog(comm):
            ext = Extent(0, 2, 0, 0, 0, 0)
            ad = LazyStructuredDataAdaptor(comm, ext, ext)
            values = np.array([1.0, 2.0, 999.0]).reshape(3, 1, 1)
            ghosts = np.array([0, 0, 1], dtype=np.uint8)
            ad.register_array(Association.POINT, "data", lambda: values)
            ad.register_array(
                Association.POINT, GHOST_ARRAY_NAME, lambda: ghosts
            )
            hist = HistogramAnalysis(bins=4)
            hist.initialize(comm)
            hist.execute(ad)
            return hist.history[-1]

        h = run_spmd(1, prog)[0]
        assert h.total == 2
        assert h.vmax == 2.0  # the ghost 999.0 is blanked

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            HistogramAnalysis(bins=0)
