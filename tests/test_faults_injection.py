"""Integration tests: fault injection wired through MPI, storage, the I/O
model, and the miniapp -- plus the recovery paths that absorb each fault."""

import numpy as np
import pytest

from repro.faults import (
    SITE_MPI_SEND,
    SITE_SIM_STEP,
    SITE_STORAGE_WRITE,
    CheckpointManager,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedRankDeath,
    InjectedWriteError,
    RetryPolicy,
    retry_call,
)
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import SPMDError, run_spmd
from repro.perf import CORI, IOModel
from repro.storage import BPReader, BPWriter, mpiio_read_block, mpiio_write_collective
from repro.util import Extent
from repro.util.decomp import regular_decompose_3d

#: A noisy fabric: most sends are delayed/duplicated/dropped, yet the
#: reliable-transport emulation must keep results exact.
NOISY_FABRIC = FaultPlan(
    seed=11,
    rules=(
        FaultRule(SITE_MPI_SEND, "delay", 0.30, params={"seconds": 0.002}),
        FaultRule(SITE_MPI_SEND, "duplicate", 0.20),
        FaultRule(SITE_MPI_SEND, "drop", 0.10, params={"retransmit_after": 0.004}),
    ),
)


class TestInjector:
    def test_type_checked(self):
        with pytest.raises(TypeError):
            run_spmd(1, lambda c: None, faults="not a plan")

    def test_one_shot_event_fires_once(self):
        inj = FaultInjector(FaultPlan(seed=0, events=(
            FaultEvent(SITE_SIM_STEP, "die", rank=0),
        )))
        assert inj.draw(SITE_SIM_STEP, 0).kind == "die"
        assert inj.draw(SITE_SIM_STEP, 0) is None
        assert inj.injections == 1

    def test_per_rank_cap(self):
        inj = FaultInjector(FaultPlan(seed=0, rules=(
            FaultRule(SITE_SIM_STEP, "stall", 1.0, max_firings=2),
        )))
        fired = {r: sum(inj.draw(SITE_SIM_STEP, r) is not None for _ in range(5))
                 for r in (0, 1)}
        assert fired == {0: 2, 1: 2}

    def test_schedule_is_sorted_and_counts_match(self):
        inj = FaultInjector(FaultPlan(seed=0, rules=(
            FaultRule(SITE_SIM_STEP, "stall", 1.0),
        )))
        for rank in (1, 0, 1):
            inj.draw(SITE_SIM_STEP, rank, step=rank)
        sched = inj.schedule()
        assert [(e["rank"], e["occurrence"]) for e in sched] == [(0, 0), (1, 0), (1, 1)]
        assert inj.counts_by_kind() == {"sim.step::stall": 3}


class TestMPIFaults:
    def test_point_to_point_exact_under_noise(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(30):
                    comm.send(i, dest=1, tag=5)
                return None
            return [comm.recv(source=0, tag=5) for _ in range(30)]

        out = run_spmd(2, prog, faults=NOISY_FABRIC, timeout=30.0)
        assert out[1] == list(range(30))

    def test_collectives_exact_under_noise(self):
        plan = FaultPlan(seed=3, rules=(
            FaultRule("mpi.collective", "stall", 0.2, params={"seconds": 0.002}),
        ))

        def prog(comm):
            return [comm.allreduce(comm.rank + i) for i in range(20)]

        clean = run_spmd(4, prog)
        noisy = run_spmd(4, prog, faults=plan, timeout=30.0)
        assert noisy == clean

    def test_injection_traced(self):
        plan = FaultPlan(seed=1, events=(
            FaultEvent(SITE_MPI_SEND, "duplicate", rank=0, occurrence=0),
        ))
        inj = FaultInjector(plan)

        def prog(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)
                return None
            return comm.recv(source=0)

        out = run_spmd(2, prog, faults=inj, timeout=10.0)
        assert out[1] == "x"
        assert inj.counts_by_kind() == {"mpi.send::duplicate": 1}


class TestStorageFaults:
    def _extent(self, comm, dims):
        ext, _, _ = regular_decompose_3d(dims, comm.size, comm.rank)
        return ext

    def test_bp_write_fail_raises_injected(self, tmp_path):
        plan = FaultPlan(seed=0, events=(
            FaultEvent(SITE_STORAGE_WRITE, "write_fail", rank=0, occurrence=0),
        ))
        path = str(tmp_path / "f.bp")

        def prog(comm):
            w = BPWriter(comm, path, (4, 4, 4))
            w.begin_step()
            with pytest.raises(InjectedWriteError):
                w.write("data", np.zeros((4, 4, 4)), Extent(0, 3, 0, 3, 0, 3))

        run_spmd(1, prog, faults=plan)

    def test_bp_partial_write_is_idempotent_under_retry(self, tmp_path):
        """A truncated write rolls the file back, so the retry lands on a
        clean offset and the final file round-trips exactly."""
        plan = FaultPlan(seed=0, events=(
            FaultEvent(SITE_STORAGE_WRITE, "write_partial", rank=0, occurrence=0,
                       params={"fraction": 0.5}),
            FaultEvent(SITE_STORAGE_WRITE, "write_fail", rank=0, occurrence=1),
        ))
        path = str(tmp_path / "p.bp")
        data = np.arange(64.0).reshape(4, 4, 4)

        def prog(comm):
            w = BPWriter(comm, path, (4, 4, 4))
            w.begin_step()
            retry_call(
                lambda: w.write("data", data, Extent(0, 3, 0, 3, 0, 3)),
                RetryPolicy(max_attempts=4, base_delay=0.0),
            )
            w.end_step()
            w.close()

        run_spmd(1, prog, faults=plan)
        back = BPReader(path).read("data", step=0)
        np.testing.assert_array_equal(back, data)

    def test_mpiio_collective_retry_roundtrip(self, tmp_path):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(SITE_STORAGE_WRITE, "write_fail", 1.0, max_firings=2),
        ))
        dims = (8, 4, 4)
        path = str(tmp_path / "c.raw")
        field = np.arange(np.prod(dims), dtype=np.float64).reshape(dims)

        def prog(comm):
            ext = self._extent(comm, dims)
            block = field[ext.i0:ext.i1 + 1, ext.j0:ext.j1 + 1, ext.k0:ext.k1 + 1]
            mpiio_write_collective(
                comm, path, block, ext, dims,
                retry=RetryPolicy(max_attempts=5, base_delay=0.0),
            )

        run_spmd(2, prog, faults=plan, timeout=30.0)
        whole = Extent(0, dims[0] - 1, 0, dims[1] - 1, 0, dims[2] - 1)
        np.testing.assert_array_equal(mpiio_read_block(path, whole), field)

    def test_mpiio_unretried_failure_propagates(self, tmp_path):
        plan = FaultPlan(seed=0, events=(
            FaultEvent(SITE_STORAGE_WRITE, "write_fail", rank=0, occurrence=0),
        ))

        def prog(comm):
            ext = Extent(0, 3, 0, 3, 0, 3)
            mpiio_write_collective(
                comm, str(tmp_path / "u.raw"), np.zeros((4, 4, 4)), ext, (4, 4, 4)
            )

        with pytest.raises(SPMDError) as ei:
            run_spmd(1, prog, faults=plan, timeout=10.0)
        assert isinstance(ei.value.failures[0], InjectedWriteError)


class TestIOModelDegradation:
    def test_derate_slows_every_bandwidth_bound_path(self):
        base = IOModel(CORI)
        slow = IOModel(CORI, degraded_fraction=0.5)
        n, b = 64, 2**34
        assert slow.file_per_process_write(n, b) > base.file_per_process_write(n, b)
        assert slow.shared_file_write(n, b) > base.shared_file_write(n, b)
        assert slow.aggregated_write(n, b, 8) > base.aggregated_write(n, b, 8)

    def test_degraded_stripes_can_overwhelm_burst_buffer_drain(self):
        """Half the OSTs gone halves the drain rate: a step interval the
        healthy filesystem absorbs asynchronously stops keeping up."""
        b = 2**30
        interval = 1.5 * b / CORI.io_aggregate_bw
        _, healthy_keeps_up = IOModel(CORI).burst_buffer_write(64, b, interval)
        _, degraded_keeps_up = IOModel(CORI, degraded_fraction=0.5).burst_buffer_write(
            64, b, interval
        )
        assert healthy_keeps_up and not degraded_keeps_up

    def test_zero_fraction_is_identity(self):
        n, b = 16, 2**28
        assert IOModel(CORI, degraded_fraction=0.0).shared_file_write(
            n, b
        ) == IOModel(CORI).shared_file_write(n, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            IOModel(CORI, degraded_fraction=1.0)
        with pytest.raises(ValueError):
            IOModel(CORI, degraded_fraction=-0.1)


class TestSimulationFaults:
    DIMS = (8, 8, 8)

    def test_death_raises_before_mutation(self):
        plan = FaultPlan(seed=0, events=(
            FaultEvent(SITE_SIM_STEP, "die", rank=0, step=2),
        ))

        def prog(comm):
            sim = OscillatorSimulation(comm, self.DIMS, default_oscillators(), dt=0.01)
            sim.advance()
            before = (sim.step, sim.time, sim.field.copy())
            with pytest.raises(InjectedRankDeath) as ei:
                sim.advance()
            after = (sim.step, sim.time, sim.field)
            return ei.value.rank, ei.value.step, before[0] == after[0], np.array_equal(
                before[2], after[2]
            )

        rank, step, step_unchanged, field_unchanged = run_spmd(1, prog, faults=plan)[0]
        assert (rank, step) == (0, 2)
        assert step_unchanged and field_unchanged

    def test_checkpoint_recovery_is_exact(self):
        """Die at step 5, rewind to the step-3 checkpoint, replay: the final
        field must be byte-identical to a fault-free run (the one-shot death
        event does not re-fire during replay)."""
        plan = FaultPlan(seed=0, events=(
            FaultEvent(SITE_SIM_STEP, "die", rank=0, step=5),
        ))

        def prog(comm, steps=6):
            sim = OscillatorSimulation(comm, self.DIMS, default_oscillators(), dt=0.01)
            ckpt = CheckpointManager(interval=3)
            ckpt.save(sim)
            deaths = 0
            for _ in range(steps):
                try:
                    sim.advance()
                except InjectedRankDeath:
                    deaths += 1
                    ckpt.recover_step(sim, sim.advance)
                    sim.advance()
                ckpt.maybe_save(sim)
            return deaths, ckpt.restores, sim.step, sim.field

        deaths, restores, step, field = run_spmd(1, prog, faults=plan)[0]
        _, _, clean_step, clean_field = run_spmd(1, prog)[0]
        assert (deaths, restores) == (1, 1)
        assert step == clean_step == 6
        assert np.array_equal(field, clean_field)
