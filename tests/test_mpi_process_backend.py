"""Tests specific to the process-backed SPMD runtime.

The equivalence matrix (test_mpi_runtime / test_mpi_halo / the adios and
chaos suites, parametrized over ``spmd_backend``) proves both backends
compute the same thing; this file covers what only the process backend can
get wrong: real process lifecycle (no orphans after failures, including
hard ``os._exit`` deaths), shared-memory payload transfer and sweep,
start-method safety, backend selection plumbing, and the merge paths that
carry fault logs and trace data back across the process boundary.
"""

import os
import threading
import time

import multiprocessing as mp

import numpy as np
import pytest

from tests import _spmd_programs as progs
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.faults.injector import InjectedRankDeath
from repro.mpi import BACKENDS, MPIError, SPMDError, resolve_backend, run_spmd
from repro.mpi import shm as shm_mod
from repro.trace import TraceSession


def _no_live_children():
    """True once no worker processes survive (reaped by the launcher)."""
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if not mp.active_children():
            return True
        time.sleep(0.05)
    return False


class TestBackendSelection:
    def test_resolve_order(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPMD_BACKEND", raising=False)
        assert resolve_backend() == "thread"
        monkeypatch.setenv("REPRO_SPMD_BACKEND", "process")
        assert resolve_backend() == "process"
        # An explicit argument beats the environment.
        assert resolve_backend("thread") == "thread"
        with pytest.raises(ValueError, match="unknown SPMD backend"):
            resolve_backend("greenlet")
        monkeypatch.setenv("REPRO_SPMD_BACKEND", "fiber")
        with pytest.raises(ValueError, match="unknown SPMD backend"):
            run_spmd(1, lambda c: None)

    def test_backends_constant(self):
        assert BACKENDS == ("thread", "process")

    def test_process_backend_runs_distinct_processes(self):
        out = run_spmd(3, progs.rank_pid, backend="process")
        pids = {pid for _, pid in out}
        assert len(pids) == 3
        assert os.getpid() not in pids

    def test_thread_backend_shares_this_process(self):
        out = run_spmd(3, progs.rank_pid, backend="thread")
        assert {pid for _, pid in out} == {os.getpid()}

    def test_env_var_selects_process_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_BACKEND", "process")
        out = run_spmd(2, progs.rank_pid)
        assert os.getpid() not in {pid for _, pid in out}


class TestProcessLifecycle:
    def test_worker_exception_leaves_no_orphans(self):
        """The SPMDError abort cascade must terminate every rank process:
        a worker exception may not strand its peers as live children."""

        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(SPMDError) as ei:
            run_spmd(4, prog, backend="process", timeout=30.0)
        assert set(ei.value.failures) == {1}
        assert ei.value.aborted_ranks == [0, 2, 3]
        assert _no_live_children(), "worker processes survived the abort"

    def test_hard_rank_death_leaves_no_orphans(self):
        """A rank dying without reporting (os._exit -- no exception, no
        result) must be detected, attributed with its exit code, and must
        release and reap every peer."""

        def prog(comm):
            if comm.rank == 2:
                os._exit(17)
            comm.barrier()

        t0 = time.monotonic()
        with pytest.raises(SPMDError) as ei:
            run_spmd(3, prog, backend="process", timeout=60.0)
        assert time.monotonic() - t0 < 30.0
        assert set(ei.value.failures) == {2}
        assert "exit code 17" in str(ei.value.failures[2])
        assert sorted(ei.value.aborted_ranks) == [0, 1]
        assert _no_live_children(), "worker processes survived a rank death"

    def test_failure_releases_blocked_peers_quickly(self):
        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("dead on arrival")
            comm.recv(source=0)

        t0 = time.monotonic()
        with pytest.raises(SPMDError) as ei:
            run_spmd(3, prog, backend="process", timeout=60.0)
        assert time.monotonic() - t0 < 30.0
        assert set(ei.value.failures) == {0}
        assert ei.value.aborted_ranks == [1, 2]

    def test_no_thread_leak_in_parent(self):
        """The launcher must not accumulate helper threads run over run."""
        run_spmd(2, progs.ring_allreduce, backend="process")
        before = threading.active_count()
        for _ in range(3):
            run_spmd(2, progs.ring_allreduce, backend="process")
        assert threading.active_count() <= before + 1


class TestStartMethods:
    def test_spawn_runs_module_level_program(self):
        out = run_spmd(
            2, progs.ring_allreduce, backend="process", start_method="spawn", scale=3.0
        )
        assert out == run_spmd(2, progs.ring_allreduce, scale=3.0)

    def test_forkserver_runs_module_level_program(self):
        out = run_spmd(
            2, progs.rank_pid, backend="process", start_method="forkserver"
        )
        assert len({pid for _, pid in out}) == 2

    def test_spawn_rejects_closures_with_clear_error(self):
        with pytest.raises(ValueError, match="picklable .* program"):
            run_spmd(
                2, lambda c: c.rank, backend="process", start_method="spawn"
            )

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ValueError, match="not available"):
            run_spmd(
                1, progs.rank_pid, backend="process", start_method="warp"
            )


class TestSharedMemoryTransport:
    def test_large_payloads_ride_shared_memory(self, monkeypatch):
        """Force a tiny spill threshold so every array maps through a
        segment, and check results still match the thread backend exactly."""
        monkeypatch.setenv("REPRO_SPMD_SHM_THRESHOLD", "1")

        def prog(comm):
            a = np.arange(4096, dtype=np.float64) * (comm.rank + 1)
            g = comm.allgather(a)
            comm.send(a * 2, (comm.rank + 1) % comm.size, tag=9)
            r = comm.recv(source=(comm.rank - 1) % comm.size, tag=9)
            return np.concatenate(g + [r])

        t = run_spmd(3, prog, backend="thread")
        p = run_spmd(3, prog, backend="process")
        for a, b in zip(t, p):
            assert a.tobytes() == b.tobytes()
        assert shm_mod.list_segments() == []

    def test_send_buffer_snapshot_beats_feeder_thread(self):
        """Regression: mutating an array right after send() must not change
        what the receiver sees.  mp.Queue pickles in a background feeder
        thread, so a by-reference inline payload (e.g. the view
        np.ascontiguousarray returns for a contiguous slice) would ship the
        mutated bytes -- the bug that silently lost mass in the Nyx halo
        fold."""

        def prog(comm):
            field = np.zeros((4, 64), dtype=np.float64)
            field[0] = comm.rank + 1.0
            # ascontiguousarray of a contiguous slice is a *view*.
            comm.send(np.ascontiguousarray(field[0]), (comm.rank + 1) % comm.size)
            field[0] = 0.0
            got = comm.recv(source=(comm.rank - 1) % comm.size)
            return float(got.sum())

        for backend in BACKENDS:
            out = run_spmd(2, prog, backend=backend)
            assert out == [2.0 * 64, 1.0 * 64], backend

    def test_segments_swept_after_aborted_job(self):
        """A job that dies with envelopes in flight must not leak segments:
        the launcher sweeps the job's namespace after reaping workers."""

        def prog(comm):
            big = np.ones(100_000, dtype=np.float64)
            # Unmatched sends: the receiver dies before consuming them.
            comm.send(big, dest=(comm.rank + 1) % comm.size)
            if comm.rank == 0:
                raise RuntimeError("die with payloads in flight")
            comm.barrier()

        with pytest.raises(SPMDError):
            run_spmd(3, prog, backend="process", timeout=30.0)
        deadline = time.monotonic() + 5.0
        while shm_mod.list_segments() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert shm_mod.list_segments() == []

    def test_threshold_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPMD_SHM_THRESHOLD", raising=False)
        assert shm_mod.shm_threshold() == shm_mod.DEFAULT_SHM_THRESHOLD
        monkeypatch.setenv("REPRO_SPMD_SHM_THRESHOLD", "123")
        assert shm_mod.shm_threshold() == 123
        monkeypatch.setenv("REPRO_SPMD_SHM_THRESHOLD", "not-a-number")
        assert shm_mod.shm_threshold() == shm_mod.DEFAULT_SHM_THRESHOLD
        monkeypatch.setenv("REPRO_SPMD_SHM_THRESHOLD", "-5")
        assert shm_mod.shm_threshold() == 0

    def test_codec_roundtrip_and_inline_small(self):
        codec = shm_mod.PayloadCodec("testjob", 0, threshold=64)
        small = np.arange(4, dtype=np.float64)
        kind, payload = codec.encode(small)
        assert kind == "inline"
        # Snapshotted at encode time: mp.Queue pickles in a feeder thread,
        # so by-reference inline arrays would race with sender mutation.
        assert payload is not small
        assert not np.shares_memory(payload, small)
        assert payload.tobytes() == small.tobytes()
        big = np.arange(64, dtype=np.float64)
        spec = codec.encode(big)
        assert spec[0] == "shm"
        out = shm_mod.PayloadCodec.decode(spec)
        assert out.tobytes() == big.tobytes()
        assert not np.shares_memory(out, big)
        # The consumer unlinked; nothing survives.
        assert shm_mod.list_segments("testjob") == []


class TestCrossBoundaryMerging:
    def test_unpicklable_result_is_a_clear_diagnostic(self):
        """A program returning something that cannot cross the process
        boundary must fail with a message saying exactly that -- not a
        silent hang or a feeder-thread stack trace."""

        def prog(comm):
            return threading.Lock()  # unpicklable

        with pytest.raises(SPMDError) as ei:
            run_spmd(2, prog, backend="process", timeout=30.0)
        assert any(
            "unpicklable" in str(exc) for exc in ei.value.failures.values()
        )

    def test_injected_rank_death_crosses_process_boundary(self):
        """InjectedRankDeath has a custom __init__; it must still arrive in
        the launcher as the same type with rank/step intact."""

        def prog(comm):
            if comm.rank == 1:
                raise InjectedRankDeath(rank=1, step=4)
            comm.barrier()

        with pytest.raises(SPMDError) as ei:
            run_spmd(2, prog, backend="process", timeout=30.0)
        exc = ei.value.failures[1]
        assert isinstance(exc, InjectedRankDeath)
        assert (exc.rank, exc.step) == (1, 4)

    def test_fault_log_merges_into_launcher_injector(self):
        """Per-rank injectors draw in their own processes; the launcher's
        injector must absorb their logs into the same deterministic
        schedule the shared-injector thread backend records."""
        rules = (FaultRule("mpi.send", "duplicate", 0.6),)

        def prog(comm):
            for i in range(5):
                comm.send(i, (comm.rank + 1) % comm.size, tag=i)
            return [comm.recv(source=(comm.rank - 1) % comm.size, tag=i) for i in range(5)]

        inj_t = FaultInjector(FaultPlan(seed=11, rules=rules))
        inj_p = FaultInjector(FaultPlan(seed=11, rules=rules))
        t = run_spmd(3, prog, faults=inj_t, timeout=30.0)
        p = run_spmd(3, prog, faults=inj_p, timeout=30.0, backend="process")
        assert t == p
        assert inj_p.injections > 0
        assert inj_t.schedule() == inj_p.schedule()
        assert inj_t.counts_by_kind() == inj_p.counts_by_kind()

    def test_trace_merges_into_launcher_session(self):
        """Spans and counters recorded inside rank processes must land in
        the launcher's TraceSession with the same taxonomy and totals the
        thread backend produces."""

        def prog(comm):
            rec = comm.trace_recorder
            with rec.span("work"):
                comm.allreduce(np.arange(8, dtype=np.float64))
            comm.send(b"x" * 32, (comm.rank + 1) % comm.size)
            comm.recv(source=(comm.rank - 1) % comm.size)
            return None

        sessions = {}
        for backend in BACKENDS:
            sess = TraceSession(backend)
            run_spmd(2, prog, trace=sess, backend=backend, timeout=30.0)
            sessions[backend] = sess
        t, p = sessions["thread"], sessions["process"]
        assert t.ranks == p.ranks == [0, 1]
        assert sorted({s.name for s in t.spans()}) == sorted(
            {s.name for s in p.spans()}
        )

        def transport_specific(name):
            # The process backend additionally splits every payload-bytes
            # counter by transport (shm segments vs. pickled envelopes) and
            # gauges its segment pool; the thread backend has no transport,
            # so those names are legitimately process-only.
            return name.endswith(("::shm", "::pickled")) or name.startswith(
                "shm::pool::"
            )

        for rank in p.ranks:
            rt, rp = t.recorder(rank), p.recorder(rank)
            assert rt.counter_names() == [
                n for n in rp.counter_names() if not transport_specific(n)
            ]
            for name in rt.counter_names():
                assert rt.total(name) == rp.total(name), name
            # The split must account for every byte of the totals it splits.
            for name in rp.counter_names():
                if name.endswith("::pickled"):
                    stem = name[: -len("::pickled")]
                    assert rp.total(name) + rp.total(f"{stem}::shm") == rp.total(
                        stem
                    ), stem
            assert [s.name for s in rp.spans] == [s.name for s in rt.spans]
            assert all(s.rank == rank for s in rp.spans)

    def test_live_connection_fails_fast_across_processes(self):
        """Shared-address-space layers must work across processes or fail
        with a clear diagnostic.  LiveConnection is the latter: each rank
        process would get a private copy and publishes would silently
        vanish, so any cross-process use raises instead."""
        from repro.core import LiveConnection

        conn = LiveConnection()

        def prog(comm):
            conn.drain_updates()

        with pytest.raises(SPMDError) as ei:
            run_spmd(2, prog, backend="process", timeout=30.0)
        assert any(
            "cannot cross a process boundary" in str(e)
            for e in ei.value.failures.values()
        )
        # Same-process use (the thread backend) stays unrestricted.
        assert run_spmd(2, prog, backend="thread") == [None, None]

    def test_collective_trace_divergence_raises_on_every_rank(self):
        """The race detector's cross-check is backend-portable: divergent
        collectives raise CollectiveMismatchError on all ranks, not a
        timeout."""
        from repro.mpi import CollectiveMismatchError

        def prog(comm):
            if comm.rank == 0:
                comm.bcast(1, root=0)
            else:
                comm.barrier()

        with pytest.raises(SPMDError) as ei:
            run_spmd(2, prog, backend="process", timeout=30.0)
        assert all(
            isinstance(exc, CollectiveMismatchError)
            for exc in ei.value.failures.values()
        )
        assert len(ei.value.failures) == 2

    def test_timeout_diagnostic_matches_thread_backend(self):
        """The deadlock watchdog must name arrived/missing ranks in the
        exact phrasing the thread backend uses."""

        def prog(comm):
            if comm.rank != 1:
                comm.barrier()

        messages = {}
        for backend in BACKENDS:
            with pytest.raises(SPMDError) as ei:
                run_spmd(3, prog, backend=backend, timeout=1.0)
            failing = [e for e in ei.value.failures.values() if isinstance(e, MPIError)]
            # How many blocked ranks raise their own timeout (vs being
            # released by the abort cascade first) is a race; the text of
            # the diagnostic is not.
            assert failing, f"no timeout diagnostic on the {backend} backend"
            messages[backend] = {str(e) for e in failing}
            assert len(messages[backend]) == 1
        assert messages["thread"] == messages["process"]
        (msg,) = messages["process"]
        assert "ranks [1] had not arrived" in msg
        assert "arrived: [0, 2]" in msg
