"""Tests for the end-to-end chaos harness (repro.faults.chaos).

Parametrized over both execution backends (``spmd_backend``): the chaos
determinism contract -- same seed, same schedule, byte-identical artifacts
-- must hold per backend, and ``TestCrossBackend`` closes the loop by
asserting the artifacts are byte-identical *across* backends too.
"""

import json
import os

import pytest

from repro.faults import FaultEvent, FaultPlan, chaos_plan
from repro.faults.chaos import render_report, run_chaos


#: Backend name -> (out_dir, report) of that backend's seed-42 run, filled
#: by ``chaos_pair`` as the module executes under each backend param; the
#: cross-backend byte-identity test compares the two entries.
_RUN_BY_BACKEND: dict = {}


@pytest.fixture(scope="module")
def chaos_pair(tmp_path_factory, spmd_backend):
    """Two identical seed-42 runs (plus their reports), shared module-wide:
    chaos runs are the expensive part of this file."""
    d1 = str(tmp_path_factory.mktemp(f"chaos1-{spmd_backend}"))
    d2 = str(tmp_path_factory.mktemp(f"chaos2-{spmd_backend}"))
    r1 = run_chaos(seed=42, ranks=3, steps=8, out_dir=d1, timeout=60.0)
    r2 = run_chaos(seed=42, ranks=3, steps=8, out_dir=d2, timeout=60.0)
    _RUN_BY_BACKEND[spmd_backend] = (d1, r1)
    return (d1, r1), (d2, r2)


@pytest.fixture(scope="module", autouse=True)
def _backend(spmd_backend):
    """Run this whole module under each execution backend."""
    return spmd_backend


class TestChaosRun:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            run_chaos(ranks=1, out_dir=str(tmp_path))
        with pytest.raises(ValueError):
            run_chaos(steps=2, out_dir=str(tmp_path))

    def test_completes_with_all_steps_accounted(self, chaos_pair):
        (_, report), _ = chaos_pair
        acct = report["accounting"]
        assert report["completed"]
        assert (
            acct["staged_steps"] + acct["degraded_steps"] + acct["skipped_steps"]
            == report["steps"]
        )
        assert 0 <= acct["lost_in_flight"] <= 1

    def test_structural_faults_recovered(self, chaos_pair):
        """The guaranteed rank death and endpoint disconnect both happen
        and both are absorbed."""
        (_, report), _ = chaos_pair
        assert report["accounting"]["deaths"] == 1
        assert report["accounting"]["checkpoint_restores"] == 1
        assert report["endpoint"]["disconnected_at_step"] is not None
        assert report["accounting"]["degraded_steps"] > 0
        assert report["fault_counts"]["sim.step::die"] == 1
        assert report["fault_counts"]["staging.endpoint::disconnect"] == 1

    def test_writer_accounting_uniform(self, chaos_pair):
        """The degrade decision is collective: every writer must report the
        identical staged/degraded/skipped split."""
        (_, report), _ = chaos_pair
        splits = {
            (w["staged_steps"], w["degraded_steps"], w["skipped_steps"])
            for w in report["writers"]
        }
        assert len(splits) == 1

    def test_artifacts_written(self, chaos_pair):
        (out_dir, report), _ = chaos_pair
        with open(os.path.join(out_dir, "recovery_report.json")) as fh:
            on_disk = json.load(fh)
        assert on_disk == json.loads(json.dumps(report))
        with open(os.path.join(out_dir, "histograms.json")) as fh:
            hists = json.load(fh)
        assert len(hists) == report["steps"]
        assert all(sum(h["counts"]) > 0 for h in hists)
        pngs = [
            f
            for sub in ("staged", "inline")
            if os.path.isdir(os.path.join(out_dir, sub))
            for f in os.listdir(os.path.join(out_dir, sub))
            if f.endswith(".png")
        ]
        assert pngs

    def test_same_seed_byte_identical(self, chaos_pair):
        """The hard determinism requirement: same seed, same schedule, same
        recovery actions, byte-identical artifacts."""
        (d1, r1), (d2, r2) = chaos_pair
        assert r1 == r2
        for name in ("recovery_report.json", "histograms.json"):
            with open(os.path.join(d1, name), "rb") as f1, open(
                os.path.join(d2, name), "rb"
            ) as f2:
                assert f1.read() == f2.read(), name
        for sub in ("staged", "inline"):
            p1, p2 = os.path.join(d1, sub), os.path.join(d2, sub)
            assert os.path.isdir(p1) == os.path.isdir(p2)
            if not os.path.isdir(p1):
                continue
            assert sorted(os.listdir(p1)) == sorted(os.listdir(p2))
            for png in sorted(os.listdir(p1)):
                with open(os.path.join(p1, png), "rb") as f1, open(
                    os.path.join(p2, png), "rb"
                ) as f2:
                    assert f1.read() == f2.read(), f"{sub}/{png}"

    def test_different_seed_differs(self, chaos_pair, tmp_path):
        (_, r1), _ = chaos_pair
        r3 = run_chaos(seed=7, ranks=3, steps=8, out_dir=str(tmp_path), timeout=60.0)
        assert r3["fault_schedule"] != r1["fault_schedule"]

    def test_fault_free_plan_stages_everything(self, tmp_path):
        """With an empty plan the resilient pipeline is pure overhead: all
        steps staged, none degraded, nothing lost."""
        report = run_chaos(
            seed=0,
            ranks=3,
            steps=4,
            out_dir=str(tmp_path),
            plan=FaultPlan(seed=0),
            timeout=60.0,
        )
        acct = report["accounting"]
        assert acct["staged_steps"] == 4
        assert acct["degraded_steps"] == acct["skipped_steps"] == 0
        assert acct["lost_in_flight"] == 0
        assert acct["deaths"] == 0
        assert report["endpoint"]["steps_analyzed"] == 4

    def test_render_report(self, chaos_pair):
        (_, report), _ = chaos_pair
        text = render_report(report)
        assert "seed=42" in text
        assert "all steps accounted for: yes" in text


class TestCrossBackend:
    def test_artifacts_byte_identical_across_backends(self, chaos_pair):
        """The headline equivalence claim for the chaos pipeline: for the
        same seed, the recovery report, histogram history, and every
        rendered PNG are byte-identical whether ranks were threads or OS
        processes.  Compares the cached seed-42 run of each backend, so it
        resolves on the second (process) pass of the module."""
        if len(_RUN_BY_BACKEND) < 2:
            pytest.skip("needs both backend runs; compared on the second pass")
        dt, rt = _RUN_BY_BACKEND["thread"]
        dp, rp = _RUN_BY_BACKEND["process"]
        assert rt == rp
        for name in ("recovery_report.json", "histograms.json"):
            with open(os.path.join(dt, name), "rb") as f1, open(
                os.path.join(dp, name), "rb"
            ) as f2:
                assert f1.read() == f2.read(), name
        for sub in ("staged", "inline"):
            p1, p2 = os.path.join(dt, sub), os.path.join(dp, sub)
            assert os.path.isdir(p1) == os.path.isdir(p2)
            if not os.path.isdir(p1):
                continue
            assert sorted(os.listdir(p1)) == sorted(os.listdir(p2))
            for png in sorted(os.listdir(p1)):
                with open(os.path.join(p1, png), "rb") as f1, open(
                    os.path.join(p2, png), "rb"
                ) as f2:
                    assert f1.read() == f2.read(), f"{sub}/{png}"


class TestChaosEdgePlans:
    def test_endpoint_death_only(self, tmp_path):
        """Kill just the endpoint: the job must finish in-line with every
        step accounted for and no hang (graceful-degradation contract)."""
        plan = FaultPlan(
            seed=5,
            events=(FaultEvent("staging.endpoint", "disconnect", rank=0, step=1),),
        )
        report = run_chaos(
            seed=5, ranks=3, steps=5, out_dir=str(tmp_path), plan=plan, timeout=60.0
        )
        acct = report["accounting"]
        assert report["completed"]
        assert acct["staged_steps"] + acct["degraded_steps"] + acct["skipped_steps"] == 5
        assert acct["degraded_steps"] >= 1

    def test_chaos_plan_used_by_default_is_seeded(self):
        assert chaos_plan(42, 2, 8) == chaos_plan(42, 2, 8)
