"""Particle analyses: FoF clustering, projection/spectrum invariance.

The cross-rank-count assertions here are *byte* comparisons: identical
PNG CRCs, identical spectra, identical halo counts for 1/2/4 ranks --
the property the fixed-point deposit and canonical FoF ordering exist
to provide.
"""

import numpy as np
import pytest

from repro.analysis.particles import (
    DensityProjectionAnalysis,
    FriendsOfFriendsAnalysis,
    PowerSpectrumAnalysis,
    friends_of_friends,
    halo_sizes,
)
from repro.apps.nbody import NBodySimulation
from repro.core.bridge import Bridge
from repro.core.configurable import (
    ConfigurableAnalysis,
    registered_analysis_types,
)
from repro.mpi import run_spmd
from repro.util.config import Configuration


class TestFriendsOfFriends:
    def test_two_well_separated_clusters(self):
        a = 0.2 + 0.01 * np.random.default_rng(1).random((10, 3))
        b = 0.8 + 0.01 * np.random.default_rng(2).random((7, 3))
        pos = np.vstack([a, b])
        labels = friends_of_friends(pos, 0.05)
        assert len(set(labels[:10])) == 1
        assert len(set(labels[10:])) == 1
        assert labels[0] != labels[10]
        assert halo_sizes(labels) == [10, 7]

    def test_labels_are_canonical_min_index(self):
        pos = np.array([[0.5, 0.5, 0.5], [0.51, 0.5, 0.5], [0.1, 0.1, 0.1]])
        labels = friends_of_friends(pos, 0.05)
        assert labels.tolist() == [0, 0, 2]

    def test_periodic_minimum_image_links_across_wrap(self):
        pos = np.array([[0.995, 0.5, 0.5], [0.005, 0.5, 0.5]])
        labels = friends_of_friends(pos, 0.05)
        assert labels[0] == labels[1]

    def test_isolated_particles_form_no_halos(self):
        pos = np.array([[0.1, 0.1, 0.1], [0.5, 0.5, 0.5], [0.9, 0.9, 0.1]])
        labels = friends_of_friends(pos, 0.01)
        assert halo_sizes(labels) == []
        assert halo_sizes(labels, min_members=1) == [1, 1, 1]
        assert halo_sizes(np.empty(0, dtype=np.int64)) == []

    def test_partition_invariant_under_permutation(self):
        rng = np.random.default_rng(5)
        pos = rng.random((60, 3))
        labels = friends_of_friends(pos, 0.12)
        perm = rng.permutation(60)
        permuted = friends_of_friends(pos[perm], 0.12)
        # Same partition: particles i, j share a halo iff their images do.
        for i in range(60):
            for j in range(i + 1, 60):
                same = labels[i] == labels[j]
                pi, pj = np.nonzero(perm == i)[0][0], np.nonzero(perm == j)[0][0]
                assert same == (permuted[pi] == permuted[pj])


def _run_analyses(nranks, steps=3, grid=16, n=300, seed=7, out_dir=None):
    def prog(comm):
        sim = NBodySimulation(comm, grid=grid, n_particles=n, seed=seed)
        bridge = Bridge(comm, sim.make_data_adaptor(), sanitize=True)
        bridge.add_analysis(DensityProjectionAnalysis(grid=grid, output_dir=out_dir))
        bridge.add_analysis(PowerSpectrumAnalysis(grid=grid, output_dir=out_dir))
        bridge.add_analysis(FriendsOfFriendsAnalysis(linking_length=0.06))
        bridge.initialize()
        sim.run(steps, bridge)
        return bridge.finalize()

    return run_spmd(nranks, prog, timeout=90.0)[0]


class TestRankInvariance:
    def test_all_three_analyses_identical_across_1_2_4_ranks(self):
        results = {nr: _run_analyses(nr) for nr in (1, 2, 4)}
        r1, r2, r4 = results[1], results[2], results[4]
        assert (
            r1["DensityProjectionAnalysis"]["png_crcs"]
            == r2["DensityProjectionAnalysis"]["png_crcs"]
            == r4["DensityProjectionAnalysis"]["png_crcs"]
        )
        assert (
            r1["PowerSpectrumAnalysis"]["power"]
            == r2["PowerSpectrumAnalysis"]["power"]
            == r4["PowerSpectrumAnalysis"]["power"]
        )
        assert (
            r1["FriendsOfFriendsAnalysis"]["halo_counts"]
            == r2["FriendsOfFriendsAnalysis"]["halo_counts"]
            == r4["FriendsOfFriendsAnalysis"]["halo_counts"]
        )
        assert (
            r1["FriendsOfFriendsAnalysis"]["halo_sizes"]
            == r2["FriendsOfFriendsAnalysis"]["halo_sizes"]
            == r4["FriendsOfFriendsAnalysis"]["halo_sizes"]
        )

    def test_artifact_files_written(self, tmp_path):
        out = str(tmp_path / "artifacts")
        result = _run_analyses(2, out_dir=out)
        assert result["DensityProjectionAnalysis"]["steps"] == 3
        pngs = sorted(p.name for p in (tmp_path / "artifacts").glob("*.png"))
        assert pngs == [
            "density_proj_000001.png",
            "density_proj_000002.png",
            "density_proj_000003.png",
        ]
        assert (tmp_path / "artifacts" / "power_spectrum.json").exists()


class TestAnalysisBehavior:
    def test_spectrum_shape_and_bins(self):
        result = _run_analyses(2, grid=16)
        ps = result["PowerSpectrumAnalysis"]
        assert ps["k"] == list(range(9))  # 16//2 + 1 shells
        assert all(len(p) == 9 for p in ps["power"])
        assert all(v >= 0.0 for p in ps["power"] for v in p)

    def test_frequency_skips_steps(self):
        def prog(comm):
            sim = NBodySimulation(comm, grid=8, n_particles=64, seed=3)
            bridge = Bridge(comm, sim.make_data_adaptor())
            bridge.add_analysis(DensityProjectionAnalysis(grid=8, frequency=2))
            bridge.initialize()
            sim.run(4, bridge)
            return bridge.finalize()

        result = run_spmd(1, prog, timeout=60.0)[0]
        # Steps 1..4; only the even ones execute under frequency=2.
        assert result["DensityProjectionAnalysis"]["steps"] == 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DensityProjectionAnalysis(grid=0)
        with pytest.raises(ValueError):
            PowerSpectrumAnalysis(frequency=0)
        with pytest.raises(ValueError):
            FriendsOfFriendsAnalysis(linking_length=0.0)
        with pytest.raises(ValueError):
            FriendsOfFriendsAnalysis(min_members=0)

    def test_registered_in_configurable_registry(self):
        types = registered_analysis_types()
        for name in ("density_projection", "power_spectrum", "fof"):
            assert name in types

    def test_configurable_analysis_builds_and_runs(self):
        config = Configuration(
            {
                "analyses": [
                    {"type": "density_projection", "grid": 8},
                    {"type": "fof", "linking_length": 0.08},
                ]
            }
        )

        def prog(comm):
            sim = NBodySimulation(comm, grid=8, n_particles=64, seed=3)
            bridge = Bridge(comm, sim.make_data_adaptor())
            bridge.add_analysis(ConfigurableAnalysis(config))
            bridge.initialize()
            sim.run(2, bridge)
            return bridge.finalize()

        result = run_spmd(2, prog, timeout=60.0)[0]
        inner = result["ConfigurableAnalysis"]
        assert inner["DensityProjectionAnalysis"]["steps"] == 2
        assert len(inner["FriendsOfFriendsAnalysis"]["halo_counts"]) == 2
