"""Tests for the Cinema-style explorable-extract subsystem."""

import numpy as np
import pytest

from repro.core import Bridge
from repro.extracts import CameraParameter, CinemaDatabase, CinemaExtractAnalysis
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd

DIMS = (12, 12, 12)


def _build_db(tmpdir, nranks=2, steps=3, frequency=1, indices=(2, 6, 10)):
    def prog(comm):
        sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.1)
        bridge = Bridge(comm, sim.make_data_adaptor())
        cinema = CinemaExtractAnalysis(
            tmpdir,
            sweep=CameraParameter(axis=2, indices=indices),
            resolution=(32, 32),
            frequency=frequency,
        )
        bridge.add_analysis(cinema)
        bridge.initialize()
        sim.run(steps, bridge)
        return bridge.finalize()

    return run_spmd(nranks, prog)[0]


class TestCameraParameter:
    def test_validation(self):
        with pytest.raises(ValueError):
            CameraParameter(axis=4, indices=(1,))
        with pytest.raises(ValueError):
            CameraParameter(axis=0, indices=())


class TestExtractGeneration:
    def test_database_written(self, tmp_path):
        results = _build_db(str(tmp_path))
        info = results["CinemaExtractAnalysis"]
        assert info["images"] == 3 * 3  # steps x sweep values
        assert info["bytes"] > 0
        db = CinemaDatabase(tmp_path)
        assert db.steps == [1, 2, 3]
        assert db.slice_indices == [2, 6, 10]
        assert len(db.entries) == 9

    def test_frequency(self, tmp_path):
        results = _build_db(str(tmp_path), steps=4, frequency=2)
        assert results["CinemaExtractAnalysis"]["images"] == 2 * 3

    def test_images_decode_at_resolution(self, tmp_path):
        _build_db(str(tmp_path))
        db = CinemaDatabase(tmp_path)
        img = db.load_image(db.entries[0])
        assert img.shape == (32, 32, 3)

    def test_parallel_database_matches_serial(self, tmp_path):
        _build_db(str(tmp_path / "p1"), nranks=1, steps=2)
        _build_db(str(tmp_path / "p4"), nranks=4, steps=2)
        a = CinemaDatabase(tmp_path / "p1")
        b = CinemaDatabase(tmp_path / "p4")
        for ea, eb in zip(a.entries, b.entries):
            np.testing.assert_array_equal(a.load_image(ea), b.load_image(eb))

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            CinemaExtractAnalysis("x", CameraParameter(0, (1,)), frequency=0)


class TestDatabaseQueries:
    def test_exact_query(self, tmp_path):
        _build_db(str(tmp_path))
        db = CinemaDatabase(tmp_path)
        e = db.query(step=2, index=6)
        assert e["step"] == 2 and e["index"] == 6

    def test_nearest_query(self, tmp_path):
        _build_db(str(tmp_path))
        db = CinemaDatabase(tmp_path)
        e = db.query(step=99, index=7)
        assert e["step"] == 3  # last step is nearest
        assert e["index"] == 6

    def test_extract_much_smaller_than_field(self, tmp_path):
        """The Cinema premise: the explorable product is far smaller than
        the raw time series it replaces."""
        _build_db(str(tmp_path))
        db = CinemaDatabase(tmp_path)
        field_bytes = DIMS[0] * DIMS[1] * DIMS[2] * 8 * 3  # 3 stored steps
        # At production scale fields dwarf images by orders of magnitude;
        # even this tiny grid yields a real reduction.
        assert db.total_bytes() < field_bytes

    def test_not_a_database(self, tmp_path):
        import json

        (tmp_path / "index.json").write_text(json.dumps({"type": "other"}))
        with pytest.raises(ValueError):
            CinemaDatabase(tmp_path)
