"""Tests for distributed probing and oblique slices."""

import numpy as np
import pytest

from repro.analysis.probe import (
    ObliqueSliceAnalysis,
    plane_sample_points,
    probe_points,
)
from repro.core import Bridge
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.mpi.halo import HaloExchanger
from repro.render import decode_png


def _linear_field(ext):
    ni, nj, nk = ext.shape
    i = (ext.i0 + np.arange(ni))[:, None, None]
    j = (ext.j0 + np.arange(nj))[None, :, None]
    k = (ext.k0 + np.arange(nk))[None, None, :]
    return (2.0 * i + 3.0 * j - 1.5 * k) * np.ones((ni, nj, nk))


class TestProbePoints:
    def test_linear_field_exact(self):
        """Trilinear interpolation reproduces any trilinear field exactly,
        including across block boundaries."""
        dims = (8, 6, 6)
        rng = np.random.default_rng(0)
        pts = rng.random((50, 3)) * [7.0, 5.0, 5.0]

        def prog(comm):
            ex = HaloExchanger(comm, dims, periodic=(False, False, False))
            field = _linear_field(ex.extent)
            return probe_points(comm, ex, field, pts, spacing=(1.0, 1.0, 1.0))

        for nranks in (1, 2, 4):
            values, inside = run_spmd(nranks, prog)[0]
            assert inside.all()
            expected = 2.0 * pts[:, 0] + 3.0 * pts[:, 1] - 1.5 * pts[:, 2]
            np.testing.assert_allclose(values, expected, rtol=1e-12)

    def test_parallel_equals_serial(self):
        dims = (8, 8, 8)
        rng = np.random.default_rng(1)
        pts = rng.random((40, 3)) * 7.0
        global_field = rng.random(dims)

        def prog(comm):
            ex = HaloExchanger(comm, dims, periodic=(False, False, False))
            e = ex.extent
            field = global_field[
                e.i0 : e.i1 + 1, e.j0 : e.j1 + 1, e.k0 : e.k1 + 1
            ]
            return probe_points(comm, ex, field, pts, spacing=(1.0, 1.0, 1.0))

        serial, _ = run_spmd(1, prog)[0]
        for nranks in (2, 3, 8):
            parallel, _ = run_spmd(nranks, prog)[0]
            np.testing.assert_allclose(parallel, serial, rtol=1e-12)

    def test_each_rank_gets_full_result(self):
        dims = (6, 6, 6)
        pts = np.array([[2.5, 2.5, 2.5]])

        def prog(comm):
            ex = HaloExchanger(comm, dims, periodic=(False, False, False))
            field = _linear_field(ex.extent)
            values, _ = probe_points(comm, ex, field, pts, spacing=(1.0, 1.0, 1.0))
            return float(values[0])

        out = run_spmd(4, prog)
        assert len(set(out)) == 1  # allreduced: identical everywhere

    def test_outside_points_flagged(self):
        dims = (4, 4, 4)
        pts = np.array([[1.0, 1.0, 1.0], [99.0, 0.0, 0.0], [-1.0, 2.0, 2.0]])

        def prog(comm):
            ex = HaloExchanger(comm, dims, periodic=(False, False, False))
            field = _linear_field(ex.extent)
            return probe_points(comm, ex, field, pts, spacing=(1.0, 1.0, 1.0))

        _, inside = run_spmd(2, prog)[0]
        assert inside.tolist() == [True, False, False]

    def test_domain_face_points(self):
        """Points exactly on the global high face still sample."""
        dims = (4, 4, 4)
        pts = np.array([[3.0, 3.0, 3.0], [0.0, 0.0, 0.0]])

        def prog(comm):
            ex = HaloExchanger(comm, dims, periodic=(False, False, False))
            field = _linear_field(ex.extent)
            return probe_points(comm, ex, field, pts, spacing=(1.0, 1.0, 1.0))

        values, inside = run_spmd(2, prog)[0]
        assert inside.all()
        assert values[0] == pytest.approx(2 * 3 + 3 * 3 - 1.5 * 3)
        assert values[1] == pytest.approx(0.0)

    def test_validation(self):
        def prog(comm):
            ex = HaloExchanger(comm, (4, 4, 4))
            with pytest.raises(ValueError):
                probe_points(
                    comm, ex, _linear_field(ex.extent), np.zeros((3, 2)),
                    spacing=(1, 1, 1),
                )

        run_spmd(1, prog)


class TestPlaneSamplePoints:
    def test_points_lie_on_plane(self):
        origin = (0.5, 0.5, 0.5)
        normal = (1.0, 2.0, -0.5)
        pts = plane_sample_points(origin, normal, 8, 8, 0.4)
        n = np.asarray(normal) / np.linalg.norm(normal)
        offsets = (pts - np.asarray(origin)) @ n
        np.testing.assert_allclose(offsets, 0.0, atol=1e-12)

    def test_extent_respected(self):
        pts = plane_sample_points((0, 0, 0), (0, 0, 1), 16, 16, 0.3)
        assert np.abs(pts).max() <= 0.3 * np.sqrt(2) + 1e-12

    def test_zero_normal_rejected(self):
        with pytest.raises(ValueError):
            plane_sample_points((0, 0, 0), (0, 0, 0), 4, 4, 1.0)


class TestObliqueSliceAnalysis:
    def _run(self, nranks, normal=(1.0, 1.0, 0.0)):
        def prog(comm):
            sim = OscillatorSimulation(comm, (12, 12, 12), default_oscillators())
            bridge = Bridge(comm, sim.make_data_adaptor())
            ob = ObliqueSliceAnalysis(
                origin=(0.5, 0.5, 0.5),
                normal=normal,
                resolution=(40, 40),
                extent=0.45,
            )
            bridge.add_analysis(ob)
            bridge.initialize()
            sim.run(1, bridge)
            bridge.finalize()
            return ob.last_png

        return run_spmd(nranks, prog)[0]

    def test_image_produced(self):
        png = self._run(1)
        img = decode_png(png)
        assert img.shape == (40, 40, 3)
        assert img.std() > 1.0

    def test_parallel_matches_serial_exactly(self):
        serial = decode_png(self._run(1))
        for n in (2, 4):
            np.testing.assert_array_equal(decode_png(self._run(n)), serial)

    def test_diagonal_plane_differs_from_axis_plane(self):
        a = decode_png(self._run(1, normal=(1.0, 1.0, 0.0)))
        b = decode_png(self._run(1, normal=(0.0, 0.0, 1.0)))
        assert not np.array_equal(a, b)

    def test_configurable_registration(self):
        from repro.core import ConfigurableAnalysis
        from repro.util import Configuration

        ca = ConfigurableAnalysis(
            Configuration(
                {
                    "analyses": [
                        {"type": "oblique_slice", "normal": [0, 1, 1], "width": 32}
                    ]
                }
            )
        )
        assert ca.analyses[0].normal == (0, 1, 1)
        assert ca.analyses[0].resolution[0] == 32
