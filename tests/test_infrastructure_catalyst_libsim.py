"""Tests for the Catalyst and Libsim infrastructure emulations."""

import numpy as np
import pytest

from repro.analysis.slice_ import SlicePlane
from repro.core import Bridge
from repro.infrastructure import (
    CatalystAdaptor,
    EDITIONS,
    LibsimAdaptor,
    write_session_file,
)
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.render import decode_png
from repro.util import MemoryTracker, TimerRegistry


def _run_catalyst(nranks, dims=(12, 10, 8), steps=2, **kwargs):
    def prog(comm):
        timers = TimerRegistry()
        mem = MemoryTracker()
        sim = OscillatorSimulation(comm, dims, default_oscillators(), dt=0.1)
        bridge = Bridge(comm, sim.make_data_adaptor(), timers=timers, memory=mem)
        cat = CatalystAdaptor(
            plane=SlicePlane(axis=2, index=dims[2] // 2),
            resolution=kwargs.pop("resolution", (64, 48)),
            **kwargs,
        )
        bridge.add_analysis(cat)
        bridge.initialize()
        sim.run(steps, bridge)
        results = bridge.finalize()
        return {
            "png": cat.last_png,
            "written": cat.images_written,
            "timers": timers.names(),
            "mem_static": mem.static,
            "results": results,
        }

    return run_spmd(nranks, prog)


class TestCatalyst:
    def test_writes_image_every_step(self):
        out = _run_catalyst(1, steps=3)[0]
        assert out["written"] == 3
        assert out["results"]["CatalystAdaptor"]["images_written"] == 3

    def test_png_decodes_to_resolution(self):
        out = _run_catalyst(1, resolution=(64, 48))[0]
        img = decode_png(out["png"])
        assert img.shape == (48, 64, 3)

    def test_image_fully_covered_and_nontrivial(self):
        out = _run_catalyst(1)[0]
        img = decode_png(out["png"])
        # Full-domain slice: no background pixels, and actual color variation.
        assert img.std() > 1.0

    def test_parallel_image_matches_serial(self):
        """Compositing invariant: N-rank render == 1-rank render."""
        serial = decode_png(_run_catalyst(1)[0]["png"])
        for n in (2, 4):
            parallel_out = _run_catalyst(n)
            png = parallel_out[0]["png"]
            assert png is not None
            np.testing.assert_array_equal(decode_png(png), serial)

    def test_only_root_has_png(self):
        out = _run_catalyst(4)
        assert out[0]["png"] is not None
        assert all(o["png"] is None for o in out[1:])

    def test_edition_footprint_charged(self):
        out = _run_catalyst(1, edition="full")[0]
        assert out["mem_static"] >= EDITIONS["full"].static_bytes

    def test_phase_timers_present(self):
        names = _run_catalyst(2)[0]["timers"]
        for phase in (
            "catalyst::slice",
            "catalyst::render",
            "catalyst::composite",
            "catalyst::png",
        ):
            assert phase in names

    def test_frequency_skips_steps(self):
        out = _run_catalyst(1, steps=4, frequency=2)[0]
        assert out["written"] == 2

    def test_output_dir_files(self, tmp_path):
        _run_catalyst(1, steps=2, output_dir=str(tmp_path / "imgs"))
        files = sorted((tmp_path / "imgs").glob("catalyst_*.png"))
        assert len(files) == 2
        assert decode_png(files[0].read_bytes()).shape == (48, 64, 3)

    def test_unknown_edition_rejected(self):
        with pytest.raises(ValueError):
            CatalystAdaptor(SlicePlane(2, 0), edition="mystery")

    def test_extract_edition_cannot_render(self):
        with pytest.raises(ValueError):
            CatalystAdaptor(SlicePlane(2, 0), edition="extract")

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            CatalystAdaptor(SlicePlane(2, 0), frequency=0)


def _session(tmp_path, plots, resolution=(48, 48)):
    path = tmp_path / "session.json"
    write_session_file(path, plots, resolution=resolution)
    return path


class TestLibsim:
    def test_slice_session_renders(self, tmp_path):
        session = _session(
            tmp_path,
            [{"type": "pseudocolor_slice", "axis": 2, "index": 3, "colormap": "viridis"}],
        )

        def prog(comm):
            sim = OscillatorSimulation(comm, (10, 10, 8), default_oscillators())
            bridge = Bridge(comm, sim.make_data_adaptor())
            lib = LibsimAdaptor(session_file=session)
            bridge.add_analysis(lib)
            bridge.initialize()
            sim.run(2, bridge)
            bridge.finalize()
            return lib.last_png, lib.images_written

        png, n = run_spmd(2, prog)[0]
        assert n == 2
        assert decode_png(png).shape == (48, 48, 3)

    def test_avf_style_session_iso_plus_slices(self, tmp_path):
        """The AVF-LESLIE visualization: 3 isosurfaces + 3 slice planes."""
        session = _session(
            tmp_path,
            [
                {"type": "isosurface", "isovalues": [0.2, 0.5, 0.8]},
                {"type": "pseudocolor_slice", "axis": 0, "index": 4},
                {"type": "pseudocolor_slice", "axis": 1, "index": 4},
                {"type": "pseudocolor_slice", "axis": 2, "index": 4},
            ],
        )

        def prog(comm):
            sim = OscillatorSimulation(comm, (10, 10, 10), default_oscillators())
            bridge = Bridge(comm, sim.make_data_adaptor())
            lib = LibsimAdaptor(session_file=session)
            bridge.add_analysis(lib)
            bridge.initialize()
            sim.run(1, bridge)
            bridge.finalize()
            return lib.last_png

        png = run_spmd(1, prog)[0]
        img = decode_png(png)
        assert img.shape == (48, 48, 3)
        assert img.std() > 1.0

    def test_per_rank_session_parse_timed(self, tmp_path):
        session = _session(tmp_path, [{"type": "pseudocolor_slice"}])

        def prog(comm):
            timers = TimerRegistry()
            sim = OscillatorSimulation(comm, (8, 8, 8), default_oscillators())
            bridge = Bridge(comm, sim.make_data_adaptor(), timers=timers)
            bridge.add_analysis(LibsimAdaptor(session_file=session))
            bridge.initialize()
            return timers.timer("libsim::session_parse").count

        # Every rank parses the session file once.
        assert run_spmd(4, prog) == [1, 1, 1, 1]

    def test_frequency_sawtooth(self, tmp_path):
        """With frequency=5, 4/5 executes are cheap no-ops (Fig. 16)."""
        session = _session(tmp_path, [{"type": "pseudocolor_slice", "index": 2}])

        def prog(comm):
            timers = TimerRegistry()
            sim = OscillatorSimulation(comm, (8, 8, 8), default_oscillators())
            bridge = Bridge(comm, sim.make_data_adaptor(), timers=timers)
            lib = LibsimAdaptor(session_file=session, frequency=5)
            bridge.add_analysis(lib)
            bridge.initialize()
            sim.run(10, bridge)
            bridge.finalize()
            return lib.images_written, timers.timer("libsim::render").count

        written, renders = run_spmd(1, prog)[0]
        assert written == 2  # steps 5 and 10
        assert renders == 2

    def test_parallel_matches_serial(self, tmp_path):
        session = _session(
            tmp_path, [{"type": "pseudocolor_slice", "axis": 2, "index": 4}]
        )

        def prog(comm):
            sim = OscillatorSimulation(comm, (10, 10, 10), default_oscillators())
            bridge = Bridge(comm, sim.make_data_adaptor())
            lib = LibsimAdaptor(session_file=session)
            bridge.add_analysis(lib)
            bridge.initialize()
            sim.run(1, bridge)
            bridge.finalize()
            return lib.last_png

        serial = decode_png(run_spmd(1, prog)[0])
        for n in (2, 4):
            png = run_spmd(n, prog)[0]
            np.testing.assert_array_equal(decode_png(png), serial)

    def test_unknown_plot_type_rejected(self, tmp_path):
        from repro.util.config import ConfigError

        session = _session(tmp_path, [{"type": "volume_render"}])

        def prog(comm):
            lib = LibsimAdaptor(session_file=session)
            with pytest.raises(ConfigError):
                lib.initialize(comm)

        run_spmd(1, prog)

    def test_invalid_frequency(self, tmp_path):
        with pytest.raises(ValueError):
            LibsimAdaptor(session_file="x", frequency=0)
