"""Cross-transport equivalence for pooled shared-memory collectives.

The process backend ships ndarray collective contributions three ways:
pickled inline envelopes (below the spill threshold), pooled shared-memory
segments (at or above it), and -- on the thread backend -- no transport at
all.  The contract is that the choice is *invisible*: every collective
returns bit-identical results on all three, including Fortran-order and
non-contiguous inputs, and large-array collectives serialize zero array
bytes (the ``mpi::<kind>::bytes::{shm,pickled}`` counter split proves it).

The transports are forced through ``REPRO_SPMD_SHM_THRESHOLD``: ``1``
pools every array, ``0`` disables the segment path entirely, unset leaves
the 64 KiB default (the mixed production configuration).
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.chaos import run_chaos
from repro.mpi import run_spmd
from repro.mpi.ops import MAX, PROD, SUM
from repro.trace import TraceSession

#: transport name -> (backend, forced REPRO_SPMD_SHM_THRESHOLD or None).
TRANSPORTS = {
    "thread": ("thread", None),
    "process-shm": ("process", "1"),
    "process-pickled": ("process", "0"),
    "process-default": ("process", None),
}


def _run(transport, prog, nranks=3, **kwargs):
    backend, threshold = TRANSPORTS[transport]
    previous = os.environ.get("REPRO_SPMD_SHM_THRESHOLD")
    if threshold is None:
        os.environ.pop("REPRO_SPMD_SHM_THRESHOLD", None)
    else:
        os.environ["REPRO_SPMD_SHM_THRESHOLD"] = threshold
    try:
        return run_spmd(nranks, prog, backend=backend, timeout=60.0, **kwargs)
    finally:
        if previous is None:
            os.environ.pop("REPRO_SPMD_SHM_THRESHOLD", None)
        else:
            os.environ["REPRO_SPMD_SHM_THRESHOLD"] = previous


def _make_array(rank, seed, n, dtype, layout):
    """Deterministic per-rank array in the requested memory layout.

    ``sliced`` builds a larger buffer and returns a strided view --
    the non-contiguous case the segment packer must copy correctly.
    """
    rng = np.random.default_rng(seed * 1000 + rank)
    if np.issubdtype(np.dtype(dtype), np.integer):
        base = rng.integers(1, 5, size=2 * n).astype(dtype)
    else:
        base = rng.random(2 * n).astype(dtype)
    if layout == "sliced":
        return base[::2]
    if layout == "fortran":
        return np.asfortranarray(base[:n].reshape(8, -1))
    return base[:n]


def _fingerprint(tree):
    """Recursive bytes-level fingerprint of a result tree."""
    if isinstance(tree, np.ndarray):
        return ("nd", tree.shape, tree.dtype.str, tree.tobytes())
    if isinstance(tree, (list, tuple)):
        return (type(tree).__name__, tuple(_fingerprint(v) for v in tree))
    if isinstance(tree, dict):
        return ("dict", tuple(sorted((k, _fingerprint(v)) for k, v in tree.items())))
    return tree


class TestTransportEquivalence:
    @given(
        seed=st.integers(0, 2**16),
        n=st.sampled_from([64, 1024, 16384]),  # spans <64 KiB and >=64 KiB
        dtype=st.sampled_from(["f8", "i8", "f4"]),
        layout=st.sampled_from(["c", "fortran", "sliced"]),
        op=st.sampled_from([SUM, MAX, PROD]),
    )
    @settings(max_examples=8, deadline=None)
    def test_allreduce_and_gather_bit_identical(self, seed, n, dtype, layout, op):
        def prog(comm):
            a = _make_array(comm.rank, seed, n, dtype, layout)
            red = comm.allreduce(a, op=op)
            gat = comm.gather(a, root=0)
            return _fingerprint((red, gat))

        results = {t: _run(t, prog) for t in ("thread", "process-shm", "process-pickled")}
        assert results["thread"] == results["process-shm"] == results["process-pickled"]

    @pytest.mark.parametrize("layout", ["c", "fortran", "sliced"])
    def test_every_collective_bit_identical(self, layout):
        """All collectives, 512 KiB payloads (pooled under the default
        threshold), across all four transports."""
        n = 65536  # 512 KiB of float64

        def prog(comm):
            a = _make_array(comm.rank, 7, n, "f8", layout)
            out = {
                "allreduce": comm.allreduce(a),
                "reduce": comm.reduce(a, op=MAX, root=1),
                "allgather": comm.allgather(a),
                "gather": comm.gather(a, root=0),
                "bcast": comm.bcast(a if comm.rank == 2 else None, root=2),
                "scatter": comm.scatter(
                    [a * r for r in range(comm.size)] if comm.rank == 0 else None,
                    root=0,
                ),
                "alltoall": comm.alltoall([a + r for r in range(comm.size)]),
                "exscan": comm.exscan(a),
            }
            return {k: _fingerprint(v) for k, v in out.items()}

        results = {t: _run(t, prog) for t in TRANSPORTS}
        ref = results.pop("thread")
        for transport, got in results.items():
            assert got == ref, transport

    def test_mixed_payload_trees_bit_identical(self):
        """Tuples mixing large arrays, small arrays, and scalars: the
        packer pools the big leaves, inlines the rest."""

        def prog(comm):
            big = np.full(20000, float(comm.rank + 1))
            small = np.arange(4, dtype=np.int32) + comm.rank
            val = (big, {"rank": comm.rank, "small": small}, comm.rank * 0.5)
            return _fingerprint(comm.allgather(val))

        results = {t: _run(t, prog) for t in TRANSPORTS}
        ref = results.pop("thread")
        for transport, got in results.items():
            assert got == ref, transport


class TestZeroSerialization:
    def test_large_collectives_pickle_zero_array_bytes(self):
        """The headline perf claim: with pooling on, no array byte of a
        large-ndarray collective crosses a pipe.  The per-kind byte
        counters are split by transport; the pickled share must be zero
        and the shm share must carry the full payload."""
        n = 65536  # 512 KiB, far above the 64 KiB default threshold
        kinds = ("allreduce", "allgather", "gather", "bcast", "alltoall")

        def prog(comm):
            a = np.full(n, float(comm.rank + 1))
            comm.allreduce(a)
            comm.allgather(a)
            comm.gather(a, root=0)
            comm.bcast(a if comm.rank == 0 else None, root=0)
            comm.alltoall([a] * comm.size)

        sess = TraceSession("zero-serialization")
        _run("process-default", prog, trace=sess)
        for rank in sess.ranks:
            rec = sess.recorder(rank)
            for kind in kinds:
                stem = f"mpi::{kind}::bytes"
                total = rec.total(stem)
                if kind == "bcast" and rank != 0:
                    # Non-root ranks contribute None to bcast: no payload.
                    assert total == 0, (rank, kind)
                else:
                    assert total >= n * 8, (rank, kind)
                assert rec.total(f"{stem}::pickled") == 0, (rank, kind)
                assert rec.total(f"{stem}::shm") == total, (rank, kind)

    def test_small_collectives_ride_pickled_envelopes(self):
        """Below the threshold the pool must stay out of the way: all
        bytes pickled, none mapped."""

        def prog(comm):
            comm.allreduce(np.arange(16, dtype=np.float64) + comm.rank)

        sess = TraceSession("small-pickled")
        _run("process-default", prog, trace=sess)
        for rank in sess.ranks:
            rec = sess.recorder(rank)
            total = rec.total("mpi::allreduce::bytes")
            assert total == 16 * 8
            assert rec.total("mpi::allreduce::bytes::shm") == 0
            assert rec.total("mpi::allreduce::bytes::pickled") == total

    def test_pool_gauges_report_ring_reuse(self):
        """A step loop reusing one (comm, slot) ring must show pool hits
        dominating misses: RING_DEPTH misses per shape, hits thereafter."""

        def prog(comm):
            a = np.full(20000, float(comm.rank))
            for _ in range(6):
                comm.allreduce(a)

        sess = TraceSession("pool-gauges")
        _run("process-default", prog, trace=sess)
        for rank in sess.ranks:
            rec = sess.recorder(rank)
            assert rec.total("shm::pool::misses") == 2  # ring depth
            assert rec.total("shm::pool::hits") == 4
            assert rec.total("shm::pool::evictions") == 0
            assert rec.total("shm::pool::bytes_packed") == 6 * 20000 * 8


class TestRaggedPayloads:
    """Variable-length (gatherv-style) contributions: the particle
    migration traffic shape.  Per-rank array lengths differ, some ranks
    legitimately contribute *zero* elements, and the empty contributions
    must neither deadlock a transport nor allocate 0-byte shm segments."""

    @staticmethod
    def _ragged(rank, n_factor=1000):
        """rank 0 -> empty, rank r -> r * n_factor elements."""
        n = rank * n_factor
        return (
            np.arange(n, dtype=np.int64) + rank,
            np.full((n, 3), float(rank)),
        )

    def test_ragged_allgather_bit_identical(self):
        def prog(comm):
            return _fingerprint(comm.allgather(self._ragged(comm.rank)))

        results = {t: _run(t, prog) for t in TRANSPORTS}
        ref = results.pop("thread")
        for transport, got in results.items():
            assert got == ref, transport

    def test_ragged_gather_with_empty_root_contribution(self):
        def prog(comm):
            return _fingerprint(comm.gather(self._ragged(comm.rank), root=0))

        results = {t: _run(t, prog) for t in TRANSPORTS}
        ref = results.pop("thread")
        for transport, got in results.items():
            assert got == ref, transport

    def test_migration_shaped_exchange_bit_identical(self):
        """Point-to-point all-pairs exchange of ragged outboxes, exactly
        the nbody migration pattern: send-all-then-receive-all, with rank
        0 sending empty arrays to everyone."""

        def prog(comm):
            for dest in range(comm.size):
                if dest != comm.rank:
                    n = comm.rank * 500  # rank 0: empty payloads
                    comm.send(
                        (np.arange(n, dtype=np.int64),
                         np.full((n, 3), float(dest))),
                        dest,
                        tag=9,
                    )
            inbox = []
            for src in range(comm.size):
                if src != comm.rank:
                    inbox.append(comm.recv(src, tag=9))
            return _fingerprint(inbox)

        results = {t: _run(t, prog) for t in TRANSPORTS}
        ref = results.pop("thread")
        for transport, got in results.items():
            assert got == ref, transport

    def test_empty_arrays_never_allocate_segments(self):
        """Even with pooling forced on for every array (threshold 1), a
        zero-length contribution must stay on the inline pickle path:
        0-byte shm segments are invalid and must never be created."""

        def prog(comm):
            empty = (np.empty(0, dtype=np.int64), np.empty((0, 3)))
            comm.allgather(empty)
            for dest in range(comm.size):
                if dest != comm.rank:
                    comm.send(empty, dest, tag=5)
            for src in range(comm.size):
                if src != comm.rank:
                    comm.recv(src, tag=5)

        sess = TraceSession("ragged-empty")
        _run("process-shm", prog, trace=sess)
        for rank in sess.ranks:
            rec = sess.recorder(rank)
            for kind in ("allgather", "send"):
                assert rec.total(f"mpi::{kind}::bytes::shm") == 0, (rank, kind)

    def test_large_ragged_leaves_ride_shm(self):
        """The counterpart: a rank's non-empty migration payload above the
        threshold must map through the pool, not the pickle stream."""

        def prog(comm):
            n = 0 if comm.rank == 0 else 20000
            payload = (np.arange(n, dtype=np.int64), np.full(n, 1.0))
            comm.allgather(payload)

        sess = TraceSession("ragged-mixed")
        _run("process-default", prog, trace=sess)
        shm_bytes = {
            rank: sess.recorder(rank).total("mpi::allgather::bytes::shm")
            for rank in sess.ranks
        }
        assert shm_bytes[0] == 0  # empty contribution: nothing to map
        for rank in (1, 2):
            assert shm_bytes[rank] == 20000 * 16, rank

    def test_nbody_migration_state_identical_across_transports(self):
        """End to end: the particle app's migrated global state is
        bit-identical whether migration payloads ride pooled segments,
        pickled envelopes, or thread-shared memory."""
        from repro.apps.nbody import NBodySimulation
        from repro.data import ParticleSet

        def prog(comm):
            sim = NBodySimulation(
                comm, grid=8, n_particles=200, seed=3, velocity_scale=0.25
            )
            sim.run(4)
            parts = comm.allgather(
                (sim.particles.ids, sim.particles.positions,
                 sim.particles.velocities, sim.particles.masses)
            )
            world = ParticleSet.concatenate([ParticleSet(*p) for p in parts])
            return world.state_tuple(), sim.migrated_out

        results = {t: _run(t, prog) for t in TRANSPORTS}
        ref = results.pop("thread")
        assert sum(r[1] for r in ref) > 0  # migration actually exercised
        for transport, got in results.items():
            assert [r[0] for r in got] == [r[0] for r in ref], transport


class TestChaosWithShmCollectives:
    def test_chaos_artifacts_invariant_to_transport(self, tmp_path):
        """Regression gate for the fault-injection draw order: the chaos
        pipeline's artifacts must be byte-identical on the process backend
        whether collectives ride pooled segments or pickled envelopes."""
        dirs = {}
        previous = os.environ.get("REPRO_SPMD_SHM_THRESHOLD")
        os.environ["REPRO_SPMD_BACKEND"] = "process"
        try:
            for name, threshold in (("shm", "1"), ("pickled", "0")):
                os.environ["REPRO_SPMD_SHM_THRESHOLD"] = threshold
                out = str(tmp_path / name)
                run_chaos(seed=42, ranks=3, steps=6, out_dir=out, timeout=60.0)
                dirs[name] = out
        finally:
            os.environ.pop("REPRO_SPMD_BACKEND", None)
            if previous is None:
                os.environ.pop("REPRO_SPMD_SHM_THRESHOLD", None)
            else:
                os.environ["REPRO_SPMD_SHM_THRESHOLD"] = previous

        d1, d2 = dirs["shm"], dirs["pickled"]
        names = []
        for root, _, files in os.walk(d1):
            rel = os.path.relpath(root, d1)
            names.extend(os.path.join(rel, f) for f in files)
        assert names
        for name in sorted(names):
            with open(os.path.join(d1, name), "rb") as f1, open(
                os.path.join(d2, name), "rb"
            ) as f2:
                assert f1.read() == f2.read(), name
