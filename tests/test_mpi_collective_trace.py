"""Tests for the SPMD collective-trace race detector."""

import numpy as np
import pytest

from repro.mpi import (
    ANY_SOURCE,
    SUM,
    MAX,
    CollectiveMismatchError,
    MPIError,
    SPMDError,
    run_spmd,
)


def _spmd_error(excinfo) -> str:
    """Flattened per-rank traceback text of an SPMDError."""
    return str(excinfo.value)


class TestDivergenceDetection:
    def test_rank_conditional_collective_fails_fast(self):
        """The motivating bug: a collective inside a rank branch.  Rank 0's
        barrier pairs with rank 1's allgather -- immediate error, not a
        120 s deadlock timeout."""

        def prog(comm):
            if comm.rank == 0:
                comm.barrier()
            comm.allgather(comm.rank)

        with pytest.raises(SPMDError) as excinfo:
            run_spmd(2, prog, timeout=30.0)
        msg = _spmd_error(excinfo)
        assert "CollectiveMismatchError" in msg
        assert "divergent collective kinds" in msg
        assert "rank 0:" in msg and "rank 1:" in msg
        assert "barrier" in msg and "allgather" in msg

    def test_divergent_reduce_ops(self):
        def prog(comm):
            op = SUM if comm.rank == 0 else MAX
            comm.allreduce(1.0, op)

        with pytest.raises(SPMDError) as excinfo:
            run_spmd(2, prog, timeout=30.0)
        assert "divergent reduce ops" in _spmd_error(excinfo)

    def test_divergent_roots(self):
        def prog(comm):
            comm.bcast(comm.rank, root=comm.rank)

        with pytest.raises(SPMDError) as excinfo:
            run_spmd(2, prog, timeout=30.0)
        assert "divergent roots" in _spmd_error(excinfo)

    def test_mismatched_reduction_shapes_fail_with_both_payloads(self):
        def prog(comm):
            shape = (4,) if comm.rank == 0 else (5,)
            comm.allreduce(np.ones(shape), SUM)

        with pytest.raises(SPMDError) as excinfo:
            run_spmd(2, prog, timeout=30.0)
        msg = _spmd_error(excinfo)
        assert "incompatible reduction payloads" in msg
        # Both ranks' payload signatures appear in the divergence report.
        assert "(4,)" in msg and "(5,)" in msg

    def test_mismatched_reduction_dtypes_fail(self):
        def prog(comm):
            dtype = np.float64 if comm.rank == 0 else np.float32
            comm.reduce(np.ones(3, dtype=dtype), SUM, root=0)

        with pytest.raises(SPMDError) as excinfo:
            run_spmd(2, prog, timeout=30.0)
        msg = _spmd_error(excinfo)
        assert "incompatible reduction payloads" in msg
        assert "float64" in msg and "float32" in msg

    def test_gather_with_heterogeneous_payloads_is_fine(self):
        """Non-reducing collectives legitimately carry per-rank shapes."""

        def prog(comm):
            return comm.gather(np.ones(comm.rank + 1), root=0)

        out = run_spmd(3, prog, timeout=30.0)
        assert [len(v) for v in out[0]] == [1, 2, 3]

    def test_matched_collectives_pass(self):
        def prog(comm):
            comm.barrier()
            total = comm.allreduce(np.ones(4), SUM)
            return float(total.sum())

        assert run_spmd(4, prog, timeout=30.0) == [16.0] * 4


class TestTraceMode:
    def test_call_sites_reported_under_trace(self):
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()
            comm.allgather(comm.rank)

        with pytest.raises(SPMDError) as excinfo:
            run_spmd(2, prog, timeout=30.0, trace_collectives=True)
        msg = _spmd_error(excinfo)
        # Under tracing the divergence report names this test file.
        assert "test_mpi_collective_trace.py" in msg

    def test_hint_points_at_trace_mode_when_disabled(self):
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()
            comm.allgather(comm.rank)

        with pytest.raises(SPMDError) as excinfo:
            run_spmd(2, prog, timeout=30.0)
        assert "trace_collectives=True" in _spmd_error(excinfo)

    def test_history_recorded_under_trace(self):
        def prog(comm):
            comm.barrier()
            comm.allreduce(1.0, SUM)
            return [rec[1] for rec in comm.collective_history]

        kinds = run_spmd(2, prog, timeout=30.0, trace_collectives=True)[0]
        assert kinds == ["barrier", "allreduce"]

    def test_history_empty_when_not_tracing(self):
        def prog(comm):
            comm.barrier()
            return comm.collective_history

        assert run_spmd(2, prog, timeout=30.0) == [[], []]


class TestWildcardReceiveRaces:
    def test_any_source_race_flagged_under_trace(self):
        """Two sends race for one wildcard receive: flagged, not fatal."""

        # Rank 0 waits on a barrier that the senders only reach after
        # sending, guaranteeing both messages are in the mailbox when the
        # wildcard recv runs.
        def prog2(comm):
            if comm.rank != 0:
                comm.send(comm.rank * 10, dest=0, tag=5)
                comm.barrier()
                comm.barrier()
                return []
            comm.barrier()  # both sends have completed (eager/buffered)
            comm.recv(source=ANY_SOURCE, tag=5)
            comm.recv(source=ANY_SOURCE, tag=5)
            comm.barrier()
            return comm.race_events

        events = run_spmd(3, prog2, timeout=30.0, trace_collectives=True)[0]
        # The first wildcard recv raced against two matching sends.
        assert len(events) >= 1
        first = events[0]
        assert first["rank"] == 0
        assert first["source"] == ANY_SOURCE
        assert len(first["candidates"]) == 2

    def test_no_race_event_for_specific_source(self):
        def prog(comm):
            if comm.rank != 0:
                comm.send(comm.rank, dest=0, tag=5)
                comm.barrier()
                return []
            comm.barrier()
            comm.recv(source=1, tag=5)
            comm.recv(source=2, tag=5)
            return comm.race_events

        assert run_spmd(3, prog, timeout=30.0, trace_collectives=True)[0] == []

    def test_races_not_tracked_when_disabled(self):
        def prog(comm):
            if comm.rank != 0:
                comm.send(comm.rank, dest=0, tag=5)
                comm.barrier()
                return []
            comm.barrier()
            comm.recv(source=ANY_SOURCE, tag=5)
            comm.recv(source=ANY_SOURCE, tag=5)
            return comm.race_events

        assert run_spmd(3, prog, timeout=30.0)[0] == []


class TestDeadlockTimeoutDiagnostics:
    def test_missing_collective_times_out_with_history_hint(self):
        """A rank that never reaches the collective still times out (there
        is nothing to cross-check), but the error carries trace context."""

        def prog(comm):
            if comm.rank == 0:
                comm.barrier()
            # rank 1 exits without ever calling a collective

        with pytest.raises(SPMDError) as excinfo:
            run_spmd(2, prog, timeout=2.0)
        msg = _spmd_error(excinfo)
        assert "MPIError" in msg
