"""Tests for the mesh types: ImageData, RectilinearGrid, UnstructuredGrid,
MultiBlockDataset, and ghost-level handling."""

import numpy as np
import pytest

from repro.data import (
    Association,
    CellType,
    DataArray,
    GHOST_ARRAY_NAME,
    ImageData,
    MultiBlockDataset,
    RectilinearGrid,
    UnstructuredGrid,
    ghost_levels_for_extent,
    interior_mask,
)
from repro.util import Extent


class TestImageData:
    def test_dims_points_cells(self):
        img = ImageData(Extent(0, 9, 0, 4, 0, 2))
        assert img.dims == (10, 5, 3)
        assert img.num_points == 150
        assert img.num_cells == 9 * 4 * 2

    def test_sub_extent_coordinates_offset(self):
        img = ImageData(
            Extent(5, 9, 0, 0, 0, 0), origin=(1.0, 0, 0), spacing=(0.5, 1, 1)
        )
        x = img.point_coordinates_1d(0)
        assert x[0] == pytest.approx(1.0 + 0.5 * 5)
        assert x[-1] == pytest.approx(1.0 + 0.5 * 9)

    def test_bounds(self):
        img = ImageData(Extent(0, 3, 0, 3, 0, 3), spacing=(2.0, 2.0, 2.0))
        assert img.bounds() == (0.0, 6.0, 0.0, 6.0, 0.0, 6.0)

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            ImageData(Extent(0, 1, 0, 1, 0, 1), spacing=(0.0, 1, 1))

    def test_point_field_3d_is_view(self):
        img = ImageData(Extent(0, 2, 0, 2, 0, 2))
        field = np.arange(27.0)
        img.add_point_array(DataArray.from_numpy("f", field))
        f3 = img.point_field_3d("f")
        assert f3.shape == (3, 3, 3)
        assert np.shares_memory(f3, field)

    def test_attribute_size_validated(self):
        img = ImageData(Extent(0, 2, 0, 2, 0, 2))
        with pytest.raises(ValueError):
            img.add_point_array(DataArray.from_numpy("f", np.zeros(5)))
        with pytest.raises(ValueError):
            img.add_cell_array(DataArray.from_numpy("f", np.zeros(27)))
        img.add_cell_array(DataArray.from_numpy("f", np.zeros(8)))

    def test_world_to_index(self):
        img = ImageData(Extent(0, 9, 0, 9, 0, 9), origin=(1, 2, 3), spacing=(0.5, 1, 2))
        assert img.world_to_index((2.0, 2.0, 7.0)) == pytest.approx((2.0, 0.0, 2.0))

    def test_array_management(self):
        img = ImageData(Extent(0, 1, 0, 1, 0, 1))
        img.add_point_array(DataArray.from_numpy("a", np.zeros(8)))
        img.add_point_array(DataArray.from_numpy("b", np.zeros(8)))
        assert img.array_names(Association.POINT) == ["a", "b"]
        assert img.num_arrays(Association.POINT) == 2
        assert img.has_array(Association.POINT, "a")
        img.remove_array(Association.POINT, "a")
        assert not img.has_array(Association.POINT, "a")
        with pytest.raises(KeyError):
            img.get_array(Association.POINT, "zzz")


class TestRectilinearGrid:
    def test_basic(self):
        g = RectilinearGrid(np.arange(4.0), np.arange(3.0), np.arange(2.0))
        assert g.dims == (4, 3, 2)
        assert g.num_points == 24
        assert g.num_cells == 3 * 2 * 1

    def test_nonuniform_coords(self):
        x = np.array([0.0, 1.0, 10.0])
        g = RectilinearGrid(x, np.arange(2.0), np.arange(2.0))
        assert g.bounds()[:2] == (0.0, 10.0)

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            RectilinearGrid(np.array([0.0, 0.0, 1.0]), np.arange(2.0), np.arange(2.0))

    def test_extent_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RectilinearGrid(
                np.arange(4.0), np.arange(3.0), np.arange(2.0),
                extent=Extent(0, 9, 0, 2, 0, 1),
            )

    def test_cell_field_3d(self):
        g = RectilinearGrid(np.arange(3.0), np.arange(3.0), np.arange(3.0))
        g.add_cell_array(DataArray.from_numpy("rho", np.arange(8.0)))
        assert g.cell_field_3d("rho").shape == (2, 2, 2)

    def test_point_field_3d(self):
        g = RectilinearGrid(np.arange(2.0), np.arange(2.0), np.arange(2.0))
        g.add_point_array(DataArray.from_numpy("phi", np.arange(8.0)))
        assert g.point_field_3d("phi").shape == (2, 2, 2)


class TestUnstructuredGrid:
    @pytest.fixture
    def tet_grid(self):
        points = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 1]], dtype=float
        )
        cells = np.array([[0, 1, 2, 3], [1, 2, 3, 4]])
        return points, UnstructuredGrid.from_cells(points, CellType.TETRA, cells)

    def test_from_cells(self, tet_grid):
        points, g = tet_grid
        assert g.num_points == 5
        assert g.num_cells == 2
        assert np.array_equal(g.cell(0), [0, 1, 2, 3])
        assert np.array_equal(g.cell(1), [1, 2, 3, 4])

    def test_points_zero_copy(self, tet_grid):
        points, g = tet_grid
        assert np.shares_memory(g.points, points)

    def test_cells_as_array_homogeneous_no_copy(self, tet_grid):
        _, g = tet_grid
        cells = g.cells_as_array(CellType.TETRA)
        assert cells.shape == (2, 4)
        assert np.shares_memory(cells, g.connectivity)

    def test_cell_centers(self, tet_grid):
        _, g = tet_grid
        centers = g.cell_centers()
        assert centers.shape == (2, 3)
        assert centers[0] == pytest.approx([0.25, 0.25, 0.25])

    def test_bounds(self, tet_grid):
        _, g = tet_grid
        assert g.bounds() == (0, 1, 0, 1, 0, 1)

    def test_bad_connectivity_rejected(self):
        pts = np.zeros((3, 3))
        with pytest.raises(ValueError):
            UnstructuredGrid.from_cells(pts, CellType.TRIANGLE, np.array([[0, 1, 5]]))

    def test_bad_offsets_rejected(self):
        pts = np.zeros((4, 3))
        with pytest.raises(ValueError):
            UnstructuredGrid(
                pts, np.array([0, 1, 2]), np.array([2, 2]), np.array([5, 5])
            )

    def test_wrong_cell_shape_rejected(self):
        with pytest.raises(ValueError):
            UnstructuredGrid.from_cells(
                np.zeros((4, 3)), CellType.TETRA, np.array([[0, 1, 2]])
            )

    def test_points_must_be_n_by_3(self):
        with pytest.raises(ValueError):
            UnstructuredGrid.from_cells(
                np.zeros((4, 2)), CellType.TRIANGLE, np.array([[0, 1, 2]])
            )

    def test_topology_nbytes_positive(self, tet_grid):
        _, g = tet_grid
        assert g.topology_nbytes() > 0

    def test_point_attributes(self, tet_grid):
        _, g = tet_grid
        v = np.random.default_rng(0).random((5, 3))
        g.add_point_array(DataArray.from_aos("velocity", v))
        assert g.get_array(Association.POINT, "velocity").num_components == 3


class TestMultiBlock:
    def test_local_vs_global(self):
        mb = MultiBlockDataset(4)
        img = ImageData(Extent(0, 1, 0, 1, 0, 1))
        mb.set_block(2, img)
        assert mb.num_blocks == 4
        assert mb.num_local_blocks == 1
        assert mb.get_block(0) is None
        assert mb.get_block(2) is img
        assert list(mb.local_blocks()) == [(2, img)]

    def test_index_validation(self):
        mb = MultiBlockDataset(2)
        with pytest.raises(IndexError):
            mb.set_block(5, ImageData(Extent(0, 1, 0, 1, 0, 1)))
        with pytest.raises(IndexError):
            mb.get_block(-1)

    def test_local_counts(self):
        mb = MultiBlockDataset(2)
        mb.set_block(0, ImageData(Extent(0, 2, 0, 2, 0, 2)))
        mb.set_block(1, ImageData(Extent(0, 1, 0, 1, 0, 1)))
        assert mb.local_num_points() == 27 + 8
        assert mb.local_num_cells() == 8 + 1
        assert len(mb) == 2
        assert len(list(iter(mb))) == 2


class TestGhosts:
    def test_ghost_levels_no_ghost_region(self):
        e = Extent(0, 3, 0, 3, 0, 3)
        levels = ghost_levels_for_extent(e, e)
        assert levels.dtype == np.uint8
        assert np.all(levels == 0)

    def test_ghost_levels_one_layer(self):
        ghosted = Extent(0, 4, 0, 4, 0, 4)
        owned = Extent(1, 3, 1, 3, 1, 3)
        levels = ghost_levels_for_extent(ghosted, owned).reshape(5, 5, 5)
        assert levels[0, 0, 0] == 1
        assert levels[2, 2, 2] == 0
        assert levels[4, 2, 2] == 1
        # owned count = 3^3
        assert int((levels == 0).sum()) == 27

    def test_ghost_levels_two_layers(self):
        ghosted = Extent(0, 6, 0, 6, 0, 6)
        owned = Extent(2, 4, 2, 4, 2, 4)
        levels = ghost_levels_for_extent(ghosted, owned).reshape(7, 7, 7)
        assert levels[0, 3, 3] == 2
        assert levels[1, 3, 3] == 1

    def test_interior_mask_extracts_owned(self):
        ghosted = Extent(0, 4, 0, 4, 0, 4)
        owned = Extent(1, 3, 1, 3, 1, 3)
        field = np.zeros((5, 5, 5))
        sl = interior_mask(ghosted, owned)
        field[sl] = 1.0
        assert field.sum() == 27

    def test_interior_mask_validates_containment(self):
        with pytest.raises(ValueError):
            interior_mask(Extent(0, 2, 0, 2, 0, 2), Extent(0, 5, 0, 2, 0, 2))

    def test_dataset_ghost_array_and_owned_mask(self):
        img = ImageData(Extent(0, 4, 0, 4, 0, 4))
        owned = Extent(1, 3, 1, 3, 1, 3)
        img.set_ghost_levels(
            Association.POINT, ghost_levels_for_extent(img.extent, owned)
        )
        assert img.has_array(Association.POINT, GHOST_ARRAY_NAME)
        mask = img.owned_mask(Association.POINT)
        assert int(mask.sum()) == 27

    def test_owned_mask_without_ghosts_is_all_true(self):
        img = ImageData(Extent(0, 1, 0, 1, 0, 1))
        assert img.owned_mask(Association.POINT).all()
