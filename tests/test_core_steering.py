"""Tests for live connection + computational steering (the PHASTA loop)."""

import threading

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _thread_backend(monkeypatch):
    """Live steering is an in-memory, shared-address-space channel, so its
    tests always run on the thread backend; the process backend refuses a
    LiveConnection with a diagnostic (covered in
    test_mpi_process_backend.py)."""
    monkeypatch.setenv("REPRO_SPMD_BACKEND", "thread")

from repro.apps.phasta_proxy import PhastaSimulation, PhastaSliceRender
from repro.core import Bridge, Frame, LiveConnection, SteeringAnalysis
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import SPMDError, run_spmd


class TestLiveConnection:
    def test_update_roundtrip(self):
        conn = LiveConnection()
        conn.submit_update(freq=4.0)
        conn.submit_update(amp=0.2, freq=8.0)
        assert conn.drain_updates() == [{"freq": 4.0}, {"amp": 0.2, "freq": 8.0}]
        assert conn.drain_updates() == []

    def test_empty_update_rejected(self):
        with pytest.raises(ValueError):
            LiveConnection().submit_update()

    def test_stop_request(self):
        conn = LiveConnection()
        assert not conn.stop_requested()
        conn.request_stop()
        assert conn.stop_requested()

    def test_frame_ring_buffer(self):
        conn = LiveConnection(max_frames=2)
        for s in range(5):
            conn.publish_frame(Frame(step=s, time=float(s), png=bytes([s])))
        assert conn.latest_frame().step == 4

    def test_wait_for_frame_timeout(self):
        conn = LiveConnection()
        assert conn.wait_for_frame(min_step=1, timeout=0.05) is None

    def test_wait_for_frame_cross_thread(self):
        conn = LiveConnection()

        def publisher():
            conn.publish_frame(Frame(step=3, time=0.3, png=b"x"))

        t = threading.Timer(0.02, publisher)
        t.start()
        frame = conn.wait_for_frame(min_step=2, timeout=5.0)
        t.join()
        assert frame is not None and frame.step == 3

    def test_metrics_accumulate(self):
        conn = LiveConnection()
        conn.publish_metric(1, 0.1, 5.0)
        conn.publish_metric(2, 0.2, 6.0)
        assert conn.metrics() == [(1, 0.1, 5.0), (2, 0.2, 6.0)]

    def test_invalid_max_frames(self):
        with pytest.raises(ValueError):
            LiveConnection(max_frames=0)


class TestSteeringAnalysis:
    def test_updates_applied_on_all_ranks(self):
        conn = LiveConnection()
        conn.submit_update(dt=0.5)

        def prog(comm):
            sim = OscillatorSimulation(comm, (6, 6, 6), default_oscillators())
            steering = SteeringAnalysis(
                conn, parameters={"dt": lambda v: setattr(sim, "dt", v)}
            )
            bridge = Bridge(comm, sim.make_data_adaptor())
            bridge.add_analysis(steering)
            bridge.initialize()
            sim.run(2, bridge)
            bridge.finalize()
            return sim.dt

        # Every rank applies the same update at the same step.
        assert run_spmd(4, prog) == [0.5, 0.5, 0.5, 0.5]

    def test_unknown_parameter_raises(self):
        conn = LiveConnection()
        conn.submit_update(zeta=0.1)

        def prog(comm):
            sim = OscillatorSimulation(comm, (6, 6, 6), default_oscillators())
            steering = SteeringAnalysis(conn, parameters={"dt": lambda v: None})
            bridge = Bridge(comm, sim.make_data_adaptor())
            bridge.add_analysis(steering)
            bridge.initialize()
            sim.run(1, bridge)

        with pytest.raises(SPMDError):
            run_spmd(2, prog)

    def test_stop_request_halts_simulation(self):
        conn = LiveConnection()
        conn.request_stop()

        def prog(comm):
            sim = OscillatorSimulation(comm, (6, 6, 6), default_oscillators())
            steering = SteeringAnalysis(conn, parameters={})
            bridge = Bridge(comm, sim.make_data_adaptor())
            bridge.add_analysis(steering)
            bridge.initialize()
            sim.run(10, bridge)
            bridge.finalize()
            return sim.step

        # The bridge returns False on the first step; run() breaks.
        assert run_spmd(2, prog) == [1, 1]

    def test_metric_published(self):
        conn = LiveConnection()

        def prog(comm):
            sim = OscillatorSimulation(comm, (6, 6, 6), default_oscillators())
            from repro.data import Association

            steering = SteeringAnalysis(
                conn,
                parameters={},
                metric=lambda data: float(
                    data.get_array(Association.POINT, "data").values.max()
                ),
            )
            bridge = Bridge(comm, sim.make_data_adaptor())
            bridge.add_analysis(steering)
            bridge.initialize()
            sim.run(3, bridge)
            bridge.finalize()

        run_spmd(2, prog)
        assert len(conn.metrics()) == 3

    def test_closed_loop_phasta_jet_tuning(self):
        """The Sec. 4.2.1 scenario end to end: a controller watches frames
        and a metric, then retunes the jet mid-run; the change takes effect
        and new imagery reflects it."""
        conn = LiveConnection()

        def prog(comm):
            sim = PhastaSimulation(comm, (8, 6, 6), jet_amplitude=0.0)
            slicer = PhastaSliceRender(resolution=(60, 16))
            steering = SteeringAnalysis(
                conn,
                parameters={
                    "jet_amplitude": lambda v: setattr(sim, "jet_amplitude", v)
                },
                metric=lambda data: float(np.abs(sim.vel_w).max()),
                frame_source=slicer,
            )
            bridge = Bridge(comm, sim.make_data_adaptor())
            bridge.add_analysis(slicer)
            bridge.add_analysis(steering)
            bridge.initialize()
            for i in range(4):
                sim.advance()
                bridge.execute(sim.time, sim.step)
                if comm.rank == 0 and i == 1:
                    # "Engineer" reacts to the live imagery: crank the jet.
                    conn.submit_update(jet_amplitude=0.8)
            bridge.finalize()
            return sim.jet_amplitude, len(steering.applied)

        out = run_spmd(2, prog)
        assert all(amp == 0.8 for amp, _ in out)
        assert all(n == 1 for _, n in out)
        metrics = [v for _, _, v in conn.metrics()]
        # Jet off -> near-zero w; after the update, |w| jumps.
        assert metrics[-1] > metrics[0] * 5
        assert conn.latest_frame() is not None
