"""Tests for the AST-based repo-contract linter (repro.lint)."""

import os
import textwrap

import pytest

from repro.lint import ALL_RULES, lint_paths, lint_source, main

_SRC_REPRO = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")


def _lint(code: str, path: str = "src/repro/somemod.py"):
    return lint_source(textwrap.dedent(code), path)


def _ids(violations):
    return [v.rule_id for v in violations]


class TestCollectiveInRankBranch:
    def test_seeded_violation_caught(self):
        out = _lint(
            """
            def exchange(comm):
                if comm.rank == 0:
                    comm.barrier()
            """
        )
        assert _ids(out) == ["collective-in-rank-branch"]
        assert "barrier" in out[0].message
        assert out[0].line == 4

    def test_collective_after_rank_branch_ok(self):
        out = _lint(
            """
            def setup(comm):
                if comm.rank == 0:
                    prepare()
                comm.barrier()
            """
        )
        assert out == []

    def test_self_rank_attribute_detected(self):
        out = _lint(
            """
            class A:
                def go(self):
                    if self._rank == self.root:
                        self.comm.reduce(x)
            """
        )
        assert _ids(out) == ["collective-in-rank-branch"]

    def test_non_comm_receiver_ignored(self):
        out = _lint(
            """
            def f(rank, path, net):
                if rank == 0:
                    parts = path.split(".")
                    cost = net.reduce(64, 8)
            """
        )
        assert out == []

    def test_mpi_package_exempt(self):
        out = _lint(
            """
            def broadcast(comm, root):
                if comm.rank == root:
                    comm.bcast(1)
            """,
            path="src/repro/mpi/communicator.py",
        )
        assert out == []

    def test_pragma_waives(self):
        out = _lint(
            """
            def render(comm, rank, active, root):
                if rank >= active:
                    comm.gather(None, root=root)  # lint: allow(collective-in-rank-branch)
            """
        )
        assert out == []


class TestTimerBalance:
    def test_seeded_unbalanced_start_caught(self):
        out = _lint(
            """
            def work(timers):
                t = timers.timer("phase")
                t.start()
                compute()
            """
        )
        assert _ids(out) == ["timer-balance"]
        assert "'t'" in out[0].message

    def test_balanced_pair_ok(self):
        out = _lint(
            """
            def work(timers):
                t = timers.timer("phase")
                t.start()
                try:
                    compute()
                finally:
                    t.stop()
            """
        )
        assert out == []

    def test_chained_start_caught(self):
        out = _lint(
            """
            def work(timers):
                timers.timer("phase").start()
            """
        )
        assert _ids(out) == ["timer-balance"]
        assert "chained" in out[0].message

    def test_unrelated_start_calls_ignored(self):
        out = _lint(
            """
            import threading

            def work():
                thread = threading.Thread(target=run)
                thread.start()
            """
        )
        assert out == []


class TestMemoryPairing:
    def test_seeded_unpaired_allocate_caught(self):
        out = _lint(
            """
            class A:
                def initialize(self):
                    self.memory.allocate(1024, label="a::buffer")
            """
        )
        assert _ids(out) == ["memory-pairing"]
        assert "a::buffer" in out[0].message

    def test_free_without_allocate_caught(self):
        out = _lint(
            """
            def teardown(memory):
                memory.free(1024, label="b::buffer")
            """
        )
        assert _ids(out) == ["memory-pairing"]

    def test_paired_labels_ok(self):
        out = _lint(
            """
            class A:
                def initialize(self):
                    self.memory.allocate(1024, label="a::buffer")

                def finalize(self):
                    self.memory.free(1024, label="a::buffer")
            """
        )
        assert out == []

    def test_dynamic_labels_ignored(self):
        out = _lint(
            """
            def work(memory, label):
                memory.allocate(1024, label=label)
            """
        )
        assert out == []

    def test_add_static_not_matched(self):
        out = _lint(
            """
            def init(memory):
                memory.add_static(1024, label="lib::static")
            """
        )
        assert out == []


class TestAnalysisSimImport:
    def test_seeded_violation_caught(self):
        out = _lint(
            """
            from repro.miniapp import OscillatorSimulation
            """,
            path="src/repro/analysis/evil.py",
        )
        assert _ids(out) == ["analysis-sim-import"]
        assert "repro.miniapp" in out[0].message

    def test_infrastructure_also_covered(self):
        out = _lint(
            "import repro.apps.nyx_proxy\n",
            path="src/repro/infrastructure/evil.py",
        )
        assert _ids(out) == ["analysis-sim-import"]

    def test_dataadaptor_import_ok(self):
        out = _lint(
            "from repro.core.adaptors import DataAdaptor\n",
            path="src/repro/analysis/fine.py",
        )
        assert out == []

    def test_rule_scoped_to_decoupled_dirs(self):
        out = _lint(
            "from repro.miniapp import OscillatorSimulation\n",
            path="src/repro/perf/calibrate.py",
        )
        assert out == []


class TestBareTimeCall:
    def test_seeded_violation_caught(self):
        out = _lint(
            """
            import time

            def measure():
                t0 = time.time()
                compute()
                return time.time() - t0
            """
        )
        assert _ids(out) == ["bare-time-call", "bare-time-call"]

    def test_perf_counter_ok(self):
        out = _lint(
            """
            import time

            def measure():
                return time.perf_counter()
            """
        )
        assert out == []

    def test_timers_module_exempt(self):
        out = _lint(
            "import time\nnow = time.time()\n",
            path="src/repro/util/timers.py",
        )
        assert out == []


class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        out = _lint("def broken(:\n")
        assert _ids(out) == ["syntax-error"]

    def test_pragma_on_line_above(self):
        out = _lint(
            """
            def measure():
                # lint: allow(bare-time-call)
                return time.time()
            """
        )
        assert out == []

    def test_pragma_for_other_rule_does_not_waive(self):
        out = _lint(
            """
            def measure():
                return time.time()  # lint: allow(timer-balance)
            """
        )
        assert _ids(out) == ["bare-time-call"]

    def test_rule_ids_unique(self):
        ids = [r.id for r in ALL_RULES]
        assert len(ids) == len(set(ids)) == 5

    def test_shipped_tree_is_clean(self):
        assert lint_paths([_SRC_REPRO]) == []

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        assert main([str(tmp_path / "missing.py")]) == 2
        out = capsys.readouterr().out
        assert "bare-time-call" in out

    def test_main_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out
