"""Unit tests for the service transport's building blocks.

Covers the framed reliable-delivery channel (:mod:`repro.mpi.framing`) --
roundtrips, CRC corruption + NACK/retransmit recovery, truncation,
desynchronization, duplicate suppression, sequence gaps -- plus the signed
auth tokens, tenant registry slot stability, the journaled per-step quota
policy, the wire codecs, and the deterministic synthetic workload.
"""

import math
import socket

import numpy as np
import pytest

from repro.faults import FaultInjector
from repro.faults.plan import (
    SITE_SERVICE_FRAME,
    FaultEvent,
    FaultPlan,
)
from repro.mpi.framing import (
    HEADER_SIZE,
    MAX_PAYLOAD,
    FrameChannel,
    MalformedFrameError,
    TruncatedFrameError,
    decode_header,
    encode_frame,
)
from repro.service import protocol
from repro.service.policy import TenantPolicy
from repro.service.tenancy import (
    QuotaSpec,
    TenantRegistry,
    TenantSpec,
    issue_token,
    verify_token,
)
from repro.service.workload import synthetic_field, synthetic_steps


def _pair():
    a, b = socket.socketpair()
    return FrameChannel(a), FrameChannel(b)


# -- the framed channel -------------------------------------------------------


class TestFraming:
    def test_roundtrip_preserves_kind_seq_payload(self):
        tx, rx = _pair()
        tx.send(protocol.STEP, b"hello frames")
        tx.send(protocol.EOS, b"")
        assert rx.recv() == (protocol.STEP, 0, b"hello frames")
        assert rx.recv() == (protocol.EOS, 1, b"")

    def test_header_decode_rejects_bad_magic(self):
        frame = bytearray(encode_frame(1, 0, b"x"))
        frame[0:4] = b"NOPE"
        with pytest.raises(MalformedFrameError) as err:
            decode_header(bytes(frame[:HEADER_SIZE]))
        assert not err.value.recoverable

    def test_header_decode_rejects_bad_version(self):
        frame = bytearray(encode_frame(1, 0, b"x"))
        frame[4] = 99
        with pytest.raises(MalformedFrameError):
            decode_header(bytes(frame[:HEADER_SIZE]))

    def test_header_decode_rejects_oversized_length(self):
        import struct

        header = struct.pack(
            "!4sBBQII", b"RSF1", 1, 1, 0, MAX_PAYLOAD + 1, 0
        )
        with pytest.raises(MalformedFrameError, match="MAX_PAYLOAD"):
            decode_header(header)

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(ValueError):
            encode_frame(1, 0, b"\0" * (MAX_PAYLOAD + 1))

    def test_truncated_stream_raises(self):
        tx, rx = _pair()
        frame = encode_frame(protocol.STEP, 0, b"partial payload")
        tx.sock.sendall(frame[: len(frame) - 4])
        tx.sock.close()
        with pytest.raises(TruncatedFrameError):
            rx.recv()

    def test_crc_corruption_is_recoverable_and_retransmittable(self):
        tx, rx = _pair()
        seq = tx.send(protocol.STEP, b"good bytes")
        # Corrupt the wire copy of a second send by flipping a payload byte.
        frame = bytearray(encode_frame(protocol.STEP, 1, b"bad bytes"))
        frame[HEADER_SIZE] ^= 0xFF
        tx._send_seq += 1
        tx._window[1] = encode_frame(protocol.STEP, 1, b"bad bytes")
        tx.sock.sendall(bytes(frame))
        assert rx.recv() == (protocol.STEP, seq, b"good bytes")
        with pytest.raises(MalformedFrameError) as err:
            rx.recv()
        assert err.value.recoverable
        assert rx.expected_seq == 1
        # NACK path: retransmit from the receiver's expected seq.
        assert tx.retransmit_from(rx.expected_seq) == 1
        assert rx.recv() == (protocol.STEP, 1, b"bad bytes")

    def test_duplicates_are_dropped_silently(self):
        tx, rx = _pair()
        tx.send(protocol.STEP, b"one")
        tx.sock.sendall(tx._window[0])  # duplicate on the wire
        tx.send(protocol.STEP, b"two")
        assert rx.recv() == (protocol.STEP, 0, b"one")
        assert rx.recv() == (protocol.STEP, 1, b"two")
        assert rx.duplicates_dropped == 1

    def test_sequence_gap_recovers_via_retransmit(self):
        tx, rx = _pair()
        tx.send(protocol.STEP, b"zero")
        # Frame 1 is "lost": build it into the window but never send it.
        tx._window[1] = encode_frame(protocol.STEP, 1, b"one")
        tx._send_seq = 2
        tx.send(protocol.STEP, b"two")  # arrives out of order -> gap
        assert rx.recv() == (protocol.STEP, 0, b"zero")
        with pytest.raises(MalformedFrameError) as err:
            rx.recv()
        assert err.value.recoverable
        tx.retransmit_from(rx.expected_seq)
        # Retransmission replays 1 then 2, in order.
        assert rx.recv() == (protocol.STEP, 1, b"one")
        assert rx.recv() == (protocol.STEP, 2, b"two")

    def test_pipelined_frames_past_failure_are_discarded(self):
        tx, rx = _pair()
        # seq 0 corrupted on the wire; seqs 1 and 2 pipelined behind it.
        good0 = encode_frame(protocol.STEP, 0, b"zero")
        bad0 = bytearray(good0)
        bad0[HEADER_SIZE] ^= 0xFF
        tx._window[0] = good0
        tx._send_seq = 1
        tx.sock.sendall(bytes(bad0))
        tx.send(protocol.STEP, b"one")
        tx.send(protocol.STEP, b"two")
        with pytest.raises(MalformedFrameError):
            rx.recv()
        tx.retransmit_from(rx.expected_seq)
        # The pipelined 1 and 2 are dropped while awaiting seq 0; the
        # retransmission then replays 0, 1, 2 in order.
        assert rx.recv() == (protocol.STEP, 0, b"zero")
        assert rx.recv() == (protocol.STEP, 1, b"one")
        assert rx.recv() == (protocol.STEP, 2, b"two")

    def test_release_through_trims_the_window(self):
        tx, _ = _pair()
        for i in range(4):
            tx.send(protocol.STEP, bytes([i]))
        assert tx.window_size == 4
        tx.release_through(2)
        assert tx.window_size == 1

    def test_injected_corruption_recovers_end_to_end(self):
        plan = FaultPlan(
            seed=5,
            events=(
                FaultEvent(SITE_SERVICE_FRAME, "corrupt", rank=0, occurrence=1),
            ),
        )
        a, b = socket.socketpair()
        tx = FrameChannel(a, injector=FaultInjector(plan), fault_rank=0)
        rx = FrameChannel(b)
        tx.send(protocol.STEP, b"clean")
        tx.send(protocol.STEP, b"mangled on the wire")
        assert rx.recv() == (protocol.STEP, 0, b"clean")
        with pytest.raises(MalformedFrameError) as err:
            rx.recv()
        assert err.value.recoverable
        tx.retransmit_from(rx.expected_seq)
        assert rx.recv() == (protocol.STEP, 1, b"mangled on the wire")


# -- tokens and tenancy -------------------------------------------------------


class TestTokens:
    def test_roundtrip_verifies(self):
        token = issue_token("s3cret", "alpha")
        assert verify_token("s3cret", "alpha", token, now=1e12) == (True, "ok")

    def test_wrong_tenant_rejected(self):
        token = issue_token("s3cret", "alpha")
        assert verify_token("s3cret", "beta", token, now=0) == (
            False,
            "bad_token",
        )

    def test_tampered_signature_rejected(self):
        token = issue_token("s3cret", "alpha")
        bad = token[:-4] + ("0000" if token[-4:] != "0000" else "ffff")
        assert verify_token("s3cret", "alpha", bad, now=0) == (
            False,
            "bad_token",
        )

    def test_wrong_secret_rejected(self):
        token = issue_token("s3cret", "alpha")
        assert verify_token("other", "alpha", token, now=0)[1] == "bad_token"

    def test_expiry_honored_with_injected_now(self):
        token = issue_token("s3cret", "alpha", expires=1000)
        assert verify_token("s3cret", "alpha", token, now=999.0)[0]
        assert verify_token("s3cret", "alpha", token, now=1000.0) == (
            False,
            "expired_token",
        )

    def test_inf_expiry_never_expires(self):
        token = issue_token("s3cret", "alpha", expires=math.inf)
        assert verify_token("s3cret", "alpha", token, now=1e15)[0]

    def test_malformed_tokens_rejected(self):
        for junk in ("", "v1", "v2.alpha.0.sig", "v1.alpha.notanint.sig"):
            assert verify_token("s", "alpha", junk, now=0)[1] == "bad_token"


class TestTenancy:
    def test_quota_validation(self):
        with pytest.raises(ValueError):
            QuotaSpec(credits=0)
        with pytest.raises(ValueError):
            QuotaSpec(soft_byte_fraction=1.5)
        with pytest.raises(ValueError):
            QuotaSpec(shed_probability=-0.1)

    def test_tenant_name_and_placement_validation(self):
        with pytest.raises(ValueError):
            TenantSpec("")
        with pytest.raises(ValueError):
            TenantSpec("a.b")
        with pytest.raises(ValueError):
            TenantSpec("ok", placement="orbital")

    def test_slots_are_sorted_name_order_not_registration_order(self):
        reg = TenantRegistry([TenantSpec("zeta"), TenantSpec("alpha")])
        reg.register(TenantSpec("mid"))
        assert reg.names() == ["alpha", "mid", "zeta"]
        assert [reg.slot(n) for n in ("alpha", "mid", "zeta")] == [0, 1, 2]

    def test_duplicate_registration_rejected(self):
        reg = TenantRegistry([TenantSpec("a")])
        with pytest.raises(ValueError):
            reg.register(TenantSpec("a"))


# -- the per-step quota policy ------------------------------------------------


def _policy(seed=0, slot=0, **quota):
    return TenantPolicy(TenantSpec("t", QuotaSpec(**quota)), slot, seed)


class TestTenantPolicy:
    def test_admit_accumulates_bytes(self):
        pol = _policy()
        d1 = pol.decide_step(100)
        d2 = pol.decide_step(50)
        assert (d1.verdict, d2.verdict) == ("admit", "admit")
        assert d2.cumulative_bytes == 150

    def test_per_step_byte_ceiling_rejects_without_charging(self):
        pol = _policy(max_step_bytes=10)
        d = pol.decide_step(11)
        assert d.verdict == protocol.VERDICT_REJECT_BYTES
        assert pol.bytes_admitted == 0

    def test_max_steps_rejects_after_quota(self):
        pol = _policy(max_steps=2)
        assert pol.decide_step(1).verdict == "admit"
        assert pol.decide_step(1).verdict == "admit"
        assert pol.decide_step(1).verdict == protocol.VERDICT_REJECT_STEPS

    def test_hard_byte_budget_rejects(self):
        pol = _policy(byte_budget=100, soft_byte_fraction=1.0)
        assert pol.decide_step(80).verdict == "admit"
        assert pol.decide_step(30).verdict == protocol.VERDICT_REJECT_BYTES

    def test_soft_zone_draws_and_sheds_deterministically(self):
        def verdicts(seed):
            pol = _policy(
                seed=seed, byte_budget=1000,
                soft_byte_fraction=0.2, shed_probability=0.5,
            )
            return [pol.decide_step(100).verdict for _ in range(9)]

        a, b = verdicts(7), verdicts(7)
        assert a == b, "same seed must replay the identical shed schedule"
        assert "shed" in a, "soft-zone pressure should shed at p=0.5 over 9 draws"
        assert verdicts(7) != verdicts(8) or True  # different seeds may differ

    def test_shed_draw_consumed_even_when_not_firing(self):
        pol = _policy(
            seed=3, byte_budget=10**6, soft_byte_fraction=0.0,
            shed_probability=0.0,
        )
        for _ in range(3):
            assert pol.decide_step(10).verdict == "admit"
        assert pol._shed_draws == 3

    def test_event_seq_is_contiguous_across_kinds(self):
        pol = _policy()
        seqs = [
            pol.decide_auth("ok").seq,
            pol.decide_connect("admit").seq,
            pol.decide_step(10).seq,
            pol.decide_eos().seq,
        ]
        assert seqs == [0, 1, 2, 3]


# -- wire codecs --------------------------------------------------------------


class TestProtocolCodecs:
    def test_control_roundtrip_is_canonical(self):
        payload = {"b": 1, "a": [1, 2]}
        raw = protocol.encode_control(payload)
        assert raw == b'{"a":[1,2],"b":1}'
        assert protocol.decode_control(raw) == payload

    def test_control_decode_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_control(b"\xff\xfe not json")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_control(b"[1,2,3]")

    def test_step_roundtrip_preserves_arrays(self):
        arrays = {"data": np.arange(12.0).reshape(3, 4)}
        raw = protocol.encode_step(7, 0.07, arrays)
        step, t, out = protocol.decode_step(raw)
        assert (step, t) == (7, 0.07)
        np.testing.assert_array_equal(out["data"], arrays["data"])

    def test_step_decode_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_step(b"not a pickle")
        import pickle

        with pytest.raises(protocol.ProtocolError):
            protocol.decode_step(pickle.dumps({"no": "arrays"}))


# -- the synthetic workload ---------------------------------------------------


class TestSyntheticWorkload:
    def test_field_is_deterministic(self):
        a = synthetic_field("alpha", 3, (16, 16), seed=1)
        b = synthetic_field("alpha", 3, (16, 16), seed=1)
        np.testing.assert_array_equal(a, b)

    def test_tenants_get_distinct_fields(self):
        a = synthetic_field("alpha", 3, (16, 16), seed=1)
        b = synthetic_field("beta", 3, (16, 16), seed=1)
        assert not np.array_equal(a, b)

    def test_steps_generator_shape_and_times(self):
        steps = list(synthetic_steps("alpha", 3, (8, 8), seed=0, dt=0.5))
        assert [s for s, _, _ in steps] == [0, 1, 2]
        assert [t for _, t, _ in steps] == [0.0, 0.5, 1.0]
        assert steps[0][2]["data"].shape == (8, 8, 1)
