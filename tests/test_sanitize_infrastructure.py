"""Sanitize-mode integration: every infrastructure backend runs clean under
the zero-copy write/retention guard.

These are the paper's four infrastructure configurations (Catalyst, Libsim,
ADIOS, GLEAN); each executing under ``sanitize=True`` demonstrates they
honor the zero-copy contract their measured overheads depend on.
"""

import numpy as np
import pytest

from repro.analysis.histogram import HistogramAnalysis
from repro.analysis.slice_ import SlicePlane
from repro.core import Bridge
from repro.infrastructure import (
    AdiosBPAdaptor,
    CatalystAdaptor,
    GleanAdaptor,
    LibsimAdaptor,
    write_session_file,
)
from repro.infrastructure.adios import run_flexpath_job
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.storage.bp import BPReader

DIMS = (8, 6, 4)
STEPS = 2


def _run_sanitized(analysis_factory, nranks=2, steps=STEPS):
    def prog(comm):
        sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.1)
        bridge = Bridge(comm, sim.make_data_adaptor(), sanitize=True)
        analysis = analysis_factory(comm)
        bridge.add_analysis(analysis)
        bridge.initialize()
        sim.run(steps, bridge)
        results = bridge.finalize()
        return results

    return run_spmd(nranks, prog)


class TestSanitizedBackends:
    def test_catalyst_clean_under_guard(self):
        out = _run_sanitized(
            lambda comm: CatalystAdaptor(
                plane=SlicePlane(axis=2, index=DIMS[2] // 2),
                resolution=(32, 24),
            )
        )
        assert out[0]["CatalystAdaptor"]["images_written"] == STEPS

    def test_libsim_clean_under_guard(self, tmp_path):
        session = tmp_path / "session.json"
        write_session_file(
            session,
            [
                {"type": "pseudocolor_slice", "axis": 2, "index": DIMS[2] // 2},
                {"type": "isosurface", "isovalues": [0.1]},
            ],
            resolution=(32, 32),
        )
        out = _run_sanitized(lambda comm: LibsimAdaptor(session_file=session))
        assert out[0]["LibsimAdaptor"]["images_written"] == STEPS

    def test_adios_bp_clean_under_guard(self, tmp_path):
        path = tmp_path / "sim"
        _run_sanitized(lambda comm: AdiosBPAdaptor(path))
        assert BPReader(path).num_steps == STEPS

    def test_glean_clean_under_guard(self, tmp_path):
        out = _run_sanitized(
            lambda comm: GleanAdaptor(
                output_dir=tmp_path, ranks_per_aggregator=2
            ),
            nranks=4,
        )
        assert out[0]["GleanAdaptor"]["steps_staged"] == STEPS

    def test_histogram_clean_under_guard(self):
        out = _run_sanitized(lambda comm: HistogramAnalysis(bins=8), nranks=2)
        assert len(out[0]["HistogramAnalysis"]) == STEPS


class TestSanitizedFlexPath:
    def test_endpoint_analysis_runs_under_guard(self):
        def writer_program(comm, writer):
            sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.1)
            bridge = Bridge(comm, sim.make_data_adaptor(), sanitize=True)
            bridge.add_analysis(writer)
            bridge.initialize()
            sim.run(STEPS, bridge)
            bridge.finalize()
            return writer.steps_sent

        result = run_flexpath_job(
            n_writers=2,
            n_endpoints=1,
            writer_program=writer_program,
            analysis_factory=lambda comm: HistogramAnalysis(bins=8),
            sanitize=True,
        )
        assert result.writer_results == [STEPS, STEPS]
        history = result.endpoint_results[0]["result"]
        assert history is not None and len(history) == STEPS


class TestSanitizeOffByDefault:
    def test_bridge_default_has_no_guard(self):
        def prog(comm):
            sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.1)
            bridge = Bridge(comm, sim.make_data_adaptor())
            return bridge.sanitize, bridge._guard

        sanitize, guard = run_spmd(1, prog)[0]
        assert sanitize is False and guard is None

    def test_sanitized_results_match_unsanitized(self):
        def prog(comm, sanitize):
            sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.1)
            bridge = Bridge(comm, sim.make_data_adaptor(), sanitize=sanitize)
            hist = HistogramAnalysis(bins=8)
            bridge.add_analysis(hist)
            bridge.initialize()
            sim.run(STEPS, bridge)
            bridge.finalize()
            return hist.history

        plain = run_spmd(2, prog, False)[0]
        guarded = run_spmd(2, prog, True)[0]
        for a, b in zip(plain, guarded):
            assert np.array_equal(a.counts, b.counts)
            assert a.vmin == pytest.approx(b.vmin)
            assert a.vmax == pytest.approx(b.vmax)
