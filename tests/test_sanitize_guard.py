"""Tests for the zero-copy write/retention sanitizer (repro.sanitize)."""

import numpy as np
import pytest

from repro.core import AnalysisAdaptor, Bridge, LazyStructuredDataAdaptor
from repro.data import Association
from repro.mpi import run_spmd
from repro.sanitize import (
    GuardedDataAdaptor,
    RetentionViolation,
    SanitizerError,
    WriteViolation,
)
from repro.util import Extent


def _mk_adaptor(comm, field):
    ext = Extent(0, 3, 0, 3, 0, 0)
    ad = LazyStructuredDataAdaptor(comm, ext, ext)
    ad.register_array(Association.POINT, "data", lambda: field)
    return ad


def _run_bridge(analysis_cls, field, steps=1, sanitize=True):
    def prog(comm):
        a = analysis_cls()
        b = Bridge(comm, _mk_adaptor(comm, field), sanitize=sanitize)
        b.add_analysis(a)
        b.initialize()
        for step in range(steps):
            b.execute(0.1 * step, step)
        b.finalize()
        return a

    return run_spmd(1, prog)[0]


class CleanAnalysis(AnalysisAdaptor):
    """Reads the array and the mesh, keeps nothing, writes nothing."""

    def execute(self, data):
        arr = data.get_array(Association.POINT, "data")
        self.total = float(arr.as_soa()[0].sum())
        data.get_mesh()
        return True


class MutatingAnalysis(AnalysisAdaptor):
    """Seeded violation: writes through the mapped view."""

    def execute(self, data):
        arr = data.get_array(Association.POINT, "data")
        comp = arr.as_soa()[0]
        # The handed-out view is write-protected; force the flag back on to
        # emulate an analysis bypassing the guard (C extensions can).
        comp.flags.writeable = True
        comp[0] = -999.0
        return True


class RetainingAnalysis(AnalysisAdaptor):
    """Seeded violation: keeps the mapped array past release_data()."""

    def execute(self, data):
        self.kept = data.get_array(Association.POINT, "data")
        return True


class MeshRetainingAnalysis(AnalysisAdaptor):
    """Seeded violation: keeps the mesh past release_data()."""

    def execute(self, data):
        self.kept = data.get_mesh()
        return True


class DeclaredMutator(AnalysisAdaptor):
    """Opted-in in-place transform: must receive a private copy."""

    mutates_data = True

    def execute(self, data):
        arr = data.get_array(Association.POINT, "data")
        arr.as_soa()[0][:] = 0.0
        return True


class WriteProtectionProbe(AnalysisAdaptor):
    """Module-level (not a closure) so instances pickle on any backend."""

    def execute(self, data):
        arr = data.get_array(Association.POINT, "data")
        assert arr.guarded
        assert not arr.writeable
        with pytest.raises(ValueError):
            arr.as_soa()[0][0] = 1.0
        return True


class DeepCopyingAnalysis(AnalysisAdaptor):
    """Keeps a deep copy -- the sanctioned retention escape hatch."""

    def execute(self, data):
        self.kept = data.get_array(Association.POINT, "data").deep_copy()
        return True


class TestWriteGuard:
    def test_handed_out_views_are_write_protected(self):
        _run_bridge(WriteProtectionProbe, np.zeros((4, 4)))

    def test_mutation_raises_naming_analysis_and_array(self):
        field = np.arange(16.0).reshape(4, 4)
        with pytest.raises(Exception) as exc_info:
            _run_bridge(MutatingAnalysis, field)
        msg = str(exc_info.value)
        assert "WriteViolation" in msg
        assert "MutatingAnalysis" in msg
        assert "'data'" in msg

    def test_mutation_not_detected_when_disabled(self):
        field = np.arange(16.0).reshape(4, 4)

        def prog(comm):
            b = Bridge(comm, _mk_adaptor(comm, field), sanitize=False)
            b.add_analysis(MutatingAnalysis())
            b.initialize()
            b.execute(0.0, 0)
            b.finalize()
            # Returned rather than asserted on the closure: the program may
            # run in another process with a private copy of `field`.
            return field[0, 0]

        assert run_spmd(1, prog)[0] == -999.0  # the write went through

    def test_declared_mutator_gets_private_copy(self):
        field = np.arange(16.0).reshape(4, 4)
        _run_bridge(DeclaredMutator, field)
        # Simulation memory untouched despite the in-place zeroing.
        assert field[2, 2] == 10.0

    def test_clean_analysis_passes_multiple_steps(self):
        a = _run_bridge(CleanAnalysis, np.ones((4, 4)), steps=3)
        assert a.total == 16.0


class TestRetentionGuard:
    def test_retained_array_raises_naming_requester(self):
        with pytest.raises(Exception) as exc_info:
            _run_bridge(RetainingAnalysis, np.zeros((4, 4)))
        msg = str(exc_info.value)
        assert "RetentionViolation" in msg
        assert "RetainingAnalysis" in msg
        assert "'data'" in msg

    def test_retained_mesh_raises(self):
        with pytest.raises(Exception) as exc_info:
            _run_bridge(MeshRetainingAnalysis, np.zeros((4, 4)))
        msg = str(exc_info.value)
        assert "RetentionViolation" in msg
        assert "MeshRetainingAnalysis" in msg
        assert "mesh" in msg

    def test_retention_not_detected_when_disabled(self):
        a = _run_bridge(RetainingAnalysis, np.zeros((4, 4)), sanitize=False)
        assert a.kept is not None

    def test_deep_copy_escape_hatch_is_clean(self):
        a = _run_bridge(DeepCopyingAnalysis, np.arange(16.0).reshape(4, 4), steps=2)
        assert a.kept.num_tuples == 16


class TestGuardedDataAdaptorUnit:
    def test_violations_are_sanitizer_errors(self):
        assert issubclass(WriteViolation, SanitizerError)
        assert issubclass(RetentionViolation, SanitizerError)
        assert issubclass(SanitizerError, RuntimeError)

    def test_metadata_calls_delegate(self):
        field = np.arange(16.0).reshape(4, 4)

        def prog(comm):
            guard = GuardedDataAdaptor(_mk_adaptor(comm, field))
            guard.set_data_time(0.5, 7)
            return (
                guard.get_data_time(),
                guard.get_data_time_step(),
                guard.available_arrays(Association.POINT),
                guard.get_number_of_arrays(Association.POINT),
                guard.get_array_name(Association.POINT, 0),
            )

        t, step, names, count, first = run_spmd(1, prog)[0]
        assert (t, step) == (0.5, 7)
        assert names == ["data"] and count == 1 and first == "data"

    def test_release_data_routes_through_check(self):
        field = np.arange(16.0).reshape(4, 4)

        def prog(comm):
            guard = GuardedDataAdaptor(_mk_adaptor(comm, field))
            kept = guard.get_array(Association.POINT, "data")
            with pytest.raises(RetentionViolation):
                guard.release_data()

        run_spmd(1, prog)

    def test_same_array_leased_once_per_step(self):
        field = np.arange(16.0).reshape(4, 4)

        def prog(comm):
            guard = GuardedDataAdaptor(_mk_adaptor(comm, field))
            a1 = guard.get_array(Association.POINT, "data")
            a2 = guard.get_array(Association.POINT, "data")
            assert a1 is a2
            del a1, a2  # drop our own refs so the retention check passes
            guard.release_data()

        run_spmd(1, prog)


class TestTimerBalanceAtFinalize:
    def test_dangling_timer_raises_under_sanitize(self):
        class Dangler(AnalysisAdaptor):
            def execute(self, data):
                if self.timers is not None:
                    self.timers.timer("dangling::phase").start()
                return True

        def prog(comm):
            b = Bridge(
                comm, _mk_adaptor(comm, np.zeros((4, 4))), sanitize=True
            )
            b.add_analysis(Dangler())
            b.initialize()
            b.execute(0.0, 0)
            b.finalize()

        with pytest.raises(Exception) as exc_info:
            run_spmd(1, prog)
        msg = str(exc_info.value)
        assert "SanitizerError" in msg
        assert "dangling::phase" in msg
