"""Tests for the oscillator miniapplication."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.miniapp import (
    FieldKernelCache,
    Oscillator,
    OscillatorKind,
    OscillatorSimulation,
    format_oscillators,
    parse_oscillators,
    read_oscillators,
)
from repro.miniapp.input import OscillatorInputError
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import SPMDError, run_spmd
from repro.util import MemoryTracker, TimerRegistry


class TestOscillator:
    def test_periodic_signal(self):
        o = Oscillator(OscillatorKind.PERIODIC, (0, 0, 0), 0.1, 2 * math.pi)
        assert o.time_value(0.0) == pytest.approx(1.0)
        assert o.time_value(0.5) == pytest.approx(-1.0)
        assert o.time_value(1.0) == pytest.approx(1.0)

    def test_decaying_signal_monotone(self):
        o = Oscillator(OscillatorKind.DECAYING, (0, 0, 0), 0.1, 3.0)
        ts = [o.time_value(t) for t in (0.0, 0.5, 1.0, 2.0)]
        assert ts[0] == pytest.approx(1.0)
        assert all(a > b > 0 for a, b in zip(ts, ts[1:]))

    def test_damped_envelope_decays(self):
        o = Oscillator(OscillatorKind.DAMPED, (0, 0, 0), 0.1, 2 * math.pi, 0.2)
        assert o.time_value(0.0) == pytest.approx(1.0)
        # After several periods the envelope must have shrunk.
        assert abs(o.time_value(5.0)) < 0.05

    def test_gaussian_peak_at_center(self):
        o = Oscillator(OscillatorKind.PERIODIC, (0.5, 0.5, 0.5), 0.1, 1.0)
        x = np.array([0.5, 0.6])
        g = o.gaussian(x, np.full_like(x, 0.5), np.full_like(x, 0.5))
        assert g[0] == pytest.approx(1.0)
        assert g[1] == pytest.approx(math.exp(-0.01 / 0.02))
        assert g[1] < g[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            Oscillator(OscillatorKind.PERIODIC, (0, 0, 0), -1.0, 1.0)
        with pytest.raises(ValueError):
            Oscillator(OscillatorKind.PERIODIC, (0, 0, 0), 1.0, 0.0)
        with pytest.raises(ValueError):
            Oscillator(OscillatorKind.DAMPED, (0, 0, 0), 1.0, 1.0, 1.5)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0.0, 10.0), st.floats(0.05, 1.0), st.floats(0.5, 20.0))
    def test_signal_bounded_property(self, t, radius, omega):
        """All oscillator kinds produce |signal| <= ~1 for t >= 0."""
        for kind, zeta in (
            (OscillatorKind.PERIODIC, 0.0),
            (OscillatorKind.DECAYING, 0.0),
            (OscillatorKind.DAMPED, 0.3),
        ):
            o = Oscillator(kind, (0, 0, 0), radius, omega, zeta)
            assert abs(o.time_value(t)) <= 1.0 + 1e-9


class TestInputParsing:
    GOOD = """
    # comment line
    damped   0.3 0.3 0.5 0.2 6.2832 0.1
    periodic 0.6 0.2 0.7 0.1 12.566   # trailing comment
    decaying 0.7 0.7 0.3 0.15 3.0
    """

    def test_parse_good(self):
        oscs = parse_oscillators(self.GOOD)
        assert [o.kind for o in oscs] == [
            OscillatorKind.DAMPED,
            OscillatorKind.PERIODIC,
            OscillatorKind.DECAYING,
        ]
        assert oscs[0].zeta == pytest.approx(0.1)
        assert oscs[1].center == (0.6, 0.2, 0.7)

    def test_roundtrip_through_format(self):
        oscs = default_oscillators()
        again = parse_oscillators(format_oscillators(oscs))
        assert len(again) == len(oscs)
        for a, b in zip(oscs, again):
            assert a.kind == b.kind
            assert a.center == pytest.approx(b.center)
            assert a.omega == pytest.approx(b.omega)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "periodic 0.5 0.5 0.5 0.1",  # too few fields
            "sinusoid 0.5 0.5 0.5 0.1 1.0",  # unknown kind
            "periodic a b c 0.1 1.0",  # non-numeric
            "periodic 0.5 0.5 0.5 -0.1 1.0",  # invalid radius
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(OscillatorInputError):
            parse_oscillators(bad)

    def test_read_broadcasts_from_root(self, tmp_path):
        p = tmp_path / "in.osc"
        p.write_text(format_oscillators(default_oscillators()))

        def prog(comm):
            oscs = read_oscillators(comm, p)
            return len(oscs)

        assert run_spmd(4, prog) == [3, 3, 3, 3]

    def test_read_error_raises_on_all_ranks(self, tmp_path):
        p = tmp_path / "missing.osc"

        def prog(comm):
            read_oscillators(comm, p)

        with pytest.raises(SPMDError) as ei:
            run_spmd(3, prog)
        assert set(ei.value.failures) == {0, 1, 2}


class TestSimulation:
    def test_serial_matches_analytic_sum(self):
        oscs = default_oscillators()

        def prog(comm):
            sim = OscillatorSimulation(comm, (8, 8, 8), oscs, dt=0.05)
            sim.advance()
            return sim.field.copy(), sim.time

        field, t = run_spmd(1, prog)[0]
        # Independent evaluation at one grid point.
        i, j, k = 3, 4, 5
        h = 1.0 / 7
        x, y, z = i * h, j * h, k * h
        expected = sum(
            o.evaluate(np.array(x), np.array(y), np.array(z), t) for o in oscs
        )
        assert field[i, j, k] == pytest.approx(float(expected))

    def test_parallel_matches_serial(self):
        """Weak invariant behind every study: decomposition doesn't change
        the computed field."""
        oscs = default_oscillators()
        dims = (12, 10, 8)

        def serial(comm):
            sim = OscillatorSimulation(comm, dims, oscs, dt=0.1)
            sim.run(3)
            return sim.field.copy()

        reference = run_spmd(1, serial)[0]

        def parallel(comm):
            sim = OscillatorSimulation(comm, dims, oscs, dt=0.1)
            sim.run(3)
            return sim.extent, sim.field.copy()

        for nranks in (2, 4, 8):
            pieces = run_spmd(nranks, parallel)
            assembled = np.zeros(dims)
            for ext, block in pieces:
                assembled[
                    ext.i0 : ext.i1 + 1, ext.j0 : ext.j1 + 1, ext.k0 : ext.k1 + 1
                ] = block
            np.testing.assert_allclose(assembled, reference, rtol=1e-12)

    def test_sync_mode_runs(self):
        def prog(comm):
            sim = OscillatorSimulation(
                comm, (6, 6, 6), default_oscillators(), sync=True
            )
            sim.run(2)
            return sim.step

        assert run_spmd(4, prog) == [2, 2, 2, 2]

    def test_memory_tracked(self):
        def prog(comm):
            mem = MemoryTracker()
            sim = OscillatorSimulation(
                comm, (8, 8, 8), default_oscillators(), memory=mem
            )
            return mem.named("miniapp::field"), sim.field.nbytes

        named, nbytes = run_spmd(1, prog)[0]
        assert named == nbytes

    def test_timers_record_phases(self):
        def prog(comm):
            timers = TimerRegistry()
            sim = OscillatorSimulation(
                comm, (6, 6, 6), default_oscillators(), timers=timers
            )
            sim.run(4)
            return (
                timers.timer("simulation::advance").count,
                timers.timer("simulation::initialize").count,
            )

        assert run_spmd(1, prog)[0] == (4, 1)

    def test_validation(self):
        def prog(comm):
            with pytest.raises(ValueError):
                OscillatorSimulation(comm, (4, 4, 4), [])
            with pytest.raises(ValueError):
                OscillatorSimulation(comm, (4, 4, 4), default_oscillators(), dt=0)

        run_spmd(1, prog)

    def test_data_adaptor_zero_copy(self):
        from repro.data import Association

        def prog(comm):
            sim = OscillatorSimulation(comm, (6, 6, 6), default_oscillators())
            ad = sim.make_data_adaptor()
            sim.advance()
            arr = ad.get_array(Association.POINT, "data")
            return arr.is_zero_copy_of(sim.field)

        assert run_spmd(2, prog) == [True, True]


class TestKernelCache:
    """The separable-kernel fast path must be a pure space-for-time trade:
    identical numbers, extra tracked memory, graceful budget fallback."""

    KINDS = {
        "periodic": [Oscillator(OscillatorKind.PERIODIC, (0.6, 0.2, 0.7), 0.1, 4.0)],
        "damped": [Oscillator(OscillatorKind.DAMPED, (0.3, 0.3, 0.5), 0.2, 6.0, 0.1)],
        "decaying": [Oscillator(OscillatorKind.DECAYING, (0.7, 0.7, 0.3), 0.15, 3.0)],
        "all": default_oscillators(),
    }

    @pytest.mark.parametrize("kind", sorted(KINDS))
    def test_cached_matches_streaming(self, kind):
        oscs = self.KINDS[kind]

        def prog(comm):
            streaming = OscillatorSimulation(comm, (10, 9, 8), oscs, dt=0.07)
            cached = OscillatorSimulation(
                comm, (10, 9, 8), oscs, dt=0.07, kernel_cache=True
            )
            assert cached.use_kernel_cache
            assert not streaming.use_kernel_cache
            for _ in range(4):
                streaming.advance()
                cached.advance()
                np.testing.assert_allclose(
                    cached.field, streaming.field, rtol=1e-12, atol=0
                )
            return True

        assert run_spmd(2, prog) == [True, True]

    def test_parallel_cached_matches_serial_streaming(self):
        """Decomposed cached solve assembles to the serial streaming field."""
        oscs = default_oscillators()
        dims = (12, 10, 8)

        def serial(comm):
            sim = OscillatorSimulation(comm, dims, oscs, dt=0.1)
            sim.run(3)
            return sim.field.copy()

        reference = run_spmd(1, serial)[0]

        def parallel(comm):
            sim = OscillatorSimulation(comm, dims, oscs, dt=0.1, kernel_cache=True)
            sim.run(3)
            return sim.extent, sim.field.copy()

        assembled = np.zeros(dims)
        for ext, block in run_spmd(4, parallel):
            assembled[
                ext.i0 : ext.i1 + 1, ext.j0 : ext.j1 + 1, ext.k0 : ext.k1 + 1
            ] = block
        np.testing.assert_allclose(assembled, reference, rtol=1e-12)

    def test_memory_registered_with_tracker(self):
        def prog(comm):
            mem = MemoryTracker()
            sim = OscillatorSimulation(
                comm, (8, 8, 8), default_oscillators(), kernel_cache=True, memory=mem
            )
            tracked = mem.named("miniapp::kernel_cache")
            sim.kernel_cache.release()
            return tracked, sim.kernel_cache.nbytes, mem.named("miniapp::kernel_cache")

        tracked, nbytes, after = run_spmd(1, prog)[0]
        assert tracked == nbytes == 8 * 8 * 8 * 3 * 8
        assert after == 0

    def test_budget_fallback_to_streaming(self):
        def prog(comm):
            mem = MemoryTracker()
            sim = OscillatorSimulation(
                comm,
                (8, 8, 8),
                default_oscillators(),
                kernel_cache=True,
                kernel_cache_budget=1024,  # basis needs 12 KiB/osc: too small
                memory=mem,
            )
            sim.advance()
            return sim.use_kernel_cache, mem.named("miniapp::kernel_cache")

        use_cache, tracked = run_spmd(1, prog)[0]
        assert not use_cache  # fell back to the streaming path
        assert tracked == 0

    def test_budget_large_enough_enables_cache(self):
        def prog(comm):
            sim = OscillatorSimulation(
                comm,
                (8, 8, 8),
                default_oscillators(),
                kernel_cache=True,
                kernel_cache_budget=FieldKernelCache.estimate_nbytes(512, 3),
            )
            return sim.use_kernel_cache

        assert run_spmd(1, prog) == [True]

    def test_estimate_matches_actual(self):
        oscs = default_oscillators()
        x = np.linspace(0, 1, 6)[:, None, None]
        y = np.linspace(0, 1, 5)[None, :, None]
        z = np.linspace(0, 1, 4)[None, None, :]
        cache = FieldKernelCache(oscs, x, y, z)
        assert cache.nbytes == FieldKernelCache.estimate_nbytes(6 * 5 * 4, len(oscs))
        # evaluate() agrees with the direct sum at an arbitrary time.
        expected = sum(o.evaluate(x, y, z, 0.42) for o in oscs).reshape(-1)
        np.testing.assert_allclose(cache.evaluate(0.42), expected, rtol=1e-12)
