"""Tests for the extreme-scale performance models.

These assert the *shape claims* of the paper's figures hold in the model --
the same claims EXPERIMENTS.md records quantitatively.
"""

import numpy as np
import pytest

from repro.perf import CORI, MIRA, TITAN, IOModel, NetworkModel
from repro.perf.apps_model import (
    AVFRun,
    NYX_RUNS,
    PHASTA_RUNS,
    avf_periteration_series,
    avf_strong_scaling,
    nyx_scaling,
    phasta_table2,
)
from repro.perf.events import simulate_staging
from repro.perf.miniapp_model import SCALES, MiniappConfig, MiniappModel


class TestNetworkModel:
    net = NetworkModel(CORI)

    def test_ptp_monotone_in_size(self):
        assert self.net.ptp(1e6) < self.net.ptp(1e7)

    def test_collectives_zero_for_single_rank(self):
        assert self.net.bcast(1, 100) == 0.0
        assert self.net.allreduce(1, 100) == 0.0
        assert self.net.binary_swap(1, 1e6) == 0.0
        assert self.net.direct_send(1, 1e6) == 0.0

    def test_collectives_grow_logarithmically(self):
        r1k = self.net.allreduce(1024, 8)
        r1m = self.net.allreduce(1024 * 1024, 8)
        assert r1m == pytest.approx(2 * r1k)

    def test_binary_swap_beats_direct_send_at_scale(self):
        """The structural reason Catalyst and Libsim composite differently."""
        img = 1920 * 1080 * 4
        for p in (64, 1024, 45440):
            assert self.net.binary_swap(p, img) < self.net.direct_send(p, img)

    def test_binary_swap_traffic_bounded(self):
        """Binary swap's exchange cost approaches ~1 image transfer,
        regardless of P."""
        img = 1e7
        t_small = self.net.binary_swap(16, img)
        t_big = self.net.binary_swap(65536, img)
        assert t_big < 4 * t_small


class TestIOModel:
    io = IOModel(CORI)

    def test_table1_vtk_faster_than_mpiio_everywhere(self):
        for scale, (cores, ppc) in SCALES.items():
            nbytes = cores * ppc * 8
            assert self.io.file_per_process_write(cores, nbytes) < self.io.shared_file_write(cores, nbytes)

    def test_table1_magnitudes(self):
        """Within ~2x of the paper's Table 1 absolutes (same machine)."""
        paper = {"1K": (0.12, 0.40), "6K": (0.67, 3.17), "45K": (9.05, 22.87)}
        for scale, (vtk_ref, mpiio_ref) in paper.items():
            cores, ppc = SCALES[scale]
            nbytes = cores * ppc * 8
            vtk = self.io.file_per_process_write(cores, nbytes)
            mpiio = self.io.shared_file_write(cores, nbytes)
            assert vtk_ref / 2 < vtk < vtk_ref * 2, f"{scale} vtk {vtk}"
            assert mpiio_ref / 2 < mpiio < mpiio_ref * 2, f"{scale} mpiio {mpiio}"

    def test_metadata_term_dominates_at_scale(self):
        """The 45K write cost is metadata-, not bandwidth-, dominated."""
        cores, ppc = SCALES["45K"]
        nbytes = cores * ppc * 8
        transfer_only = nbytes / CORI.io_aggregate_bw
        total = self.io.file_per_process_write(cores, nbytes)
        assert total > 5 * transfer_only

    def test_read_variability_is_real(self):
        samples = self.io.read_samples(4544, 45440, 123e9, n=50, seed=1)
        assert samples.std() / samples.mean() > 0.2

    def test_read_deterministic_without_rng(self):
        a = self.io.read(100, 1000, 1e9)
        b = self.io.read(100, 1000, 1e9)
        assert a == b

    def test_aggregation_beats_file_per_process_at_scale(self):
        cores, ppc = SCALES["45K"]
        nbytes = cores * ppc * 8
        fpp = self.io.file_per_process_write(cores, nbytes)
        agg = self.io.aggregated_write(cores, nbytes, ranks_per_aggregator=32)
        assert agg < fpp

    def test_aggregated_write_counts_partial_group(self):
        """Aggregator count must be ceil(p / rpa): a trailing partial group
        still writes its own file (regression: flooring 100/64 gave 1
        aggregator, undercounting the metadata term)."""
        nbytes = 1e9
        rpa = 64
        cost = self.io.aggregated_write(100, nbytes, ranks_per_aggregator=rpa)
        forward = (nbytes / 100) * (rpa - 1) / CORI.net_bandwidth
        transfer = nbytes / CORI.io_aggregate_bw
        expected_two = forward + transfer + 2 * CORI.io_file_create
        assert cost == pytest.approx(expected_two)
        # Exactly divisible layouts are unchanged.
        cost_even = self.io.aggregated_write(128, nbytes, ranks_per_aggregator=rpa)
        forward_even = (nbytes / 128) * (rpa - 1) / CORI.net_bandwidth
        assert cost_even == pytest.approx(
            forward_even + transfer + 2 * CORI.io_file_create
        )

    def test_aggregated_write_table1_glean_shape(self):
        """Pins the Table 1 GLEAN-path shape: the metadata term scales with
        ceil(p / rpa) across the paper's scales, so doubling the group size
        roughly halves the metadata share while forward/transfer persist."""
        for scale in ("1K", "6K", "45K"):
            cores, ppc = SCALES[scale]
            nbytes = cores * ppc * 8
            a64 = self.io.aggregated_write(cores, nbytes, ranks_per_aggregator=64)
            a128 = self.io.aggregated_write(cores, nbytes, ranks_per_aggregator=128)
            meta64 = -(-cores // 64) * CORI.io_file_create
            meta128 = -(-cores // 128) * CORI.io_file_create
            forward_delta = (nbytes / cores) * 64 / CORI.net_bandwidth
            assert a64 - a128 == pytest.approx(
                (meta64 - meta128) - forward_delta, rel=1e-9
            )


class TestMiniappModelShapes:
    @pytest.fixture(params=["1K", "6K", "45K"])
    def model(self, request):
        return MiniappModel(MiniappConfig.at_scale(request.param))

    def test_fig3_sensei_overhead_negligible(self, model):
        """Original vs SENSEI-instrumented: 'no measurable difference'."""
        orig = model.original()
        base = model.baseline()
        assert base.analysis_per_step < 0.001 * base.sim_per_step

    def test_fig4_memory_overhead_negligible(self, model):
        orig = model.original()
        base = model.baseline()
        assert base.high_water_bytes_per_rank == orig.high_water_bytes_per_rank

    def test_fig5_libsim_init_grows_with_scale(self):
        inits = [
            MiniappModel(MiniappConfig.at_scale(s)).libsim_slice().analysis_initialize
            for s in ("1K", "6K", "45K")
        ]
        assert inits[0] < inits[1] < inits[2]
        assert 2.0 < inits[2] < 5.0  # ~3.5 s at 45K

    def test_fig5_autocorr_finalize_nonneg_and_grows(self):
        fins = [
            MiniappModel(MiniappConfig.at_scale(s)).autocorrelation().finalize
            for s in ("1K", "45K")
        ]
        assert fins[0] > 0
        assert fins[1] > fins[0]

    def test_fig6_sim_weak_scales(self):
        """Near-perfect weak scaling of the simulation phase."""
        t1 = MiniappModel(MiniappConfig.at_scale("1K")).sim_step
        t6 = MiniappModel(MiniappConfig.at_scale("6K")).sim_step
        assert t1 == pytest.approx(t6)

    def test_fig6_slice_analysis_grows_with_scale(self, model):
        cat = model.catalyst_slice()
        hist = model.histogram()
        assert cat.analysis_per_step > hist.analysis_per_step

    def test_fig7_memory_ranking(self, model):
        """Slice configs carry the library + framebuffer; histogram ~bins."""
        base = model.baseline().high_water_bytes_per_rank
        hist = model.histogram().high_water_bytes_per_rank
        cat = model.catalyst_slice().high_water_bytes_per_rank
        assert hist - base == model.cfg.bins * 8
        assert cat - base > 80 * 1024 * 1024

    def test_fig10_write_to_sim_ratio_blows_up(self):
        ratios = {}
        for scale in ("1K", "6K", "45K"):
            m = MiniappModel(MiniappConfig.at_scale(scale))
            b = m.baseline_with_writes()
            ratios[scale] = b.write_per_step / b.sim_per_step
        assert ratios["1K"] < 1.0  # "little impact on time to solution"
        assert 2.0 < ratios["6K"] < 8.0  # "about four times"
        assert 12.0 < ratios["45K"] < 30.0  # "about 20x"

    def test_fig11_posthoc_read_dominates_at_scale(self):
        m = MiniappModel(MiniappConfig.at_scale("45K"))
        ph = m.posthoc("histogram")
        sim_total = m.cfg.steps * m.sim_step
        assert 5.0 < ph["read"] / sim_total < 15.0  # "5x to 10x"

    def test_fig12_insitu_beats_posthoc(self):
        """Each in situ configuration vs the *matching* post hoc pipeline
        (write every step + read at 10% cores + the same analysis)."""
        matching = {
            "histogram": "histogram",
            "autocorrelation": "autocorrelation",
            "catalyst-slice": "slice",
            "libsim-slice": "slice",
        }
        for scale in ("1K", "6K", "45K"):
            m = MiniappModel(MiniappConfig.at_scale(scale))
            for b in m.all_insitu_configs():
                if b.config_name not in matching:
                    continue
                insitu_total = b.time_to_solution(m.cfg.steps)
                sim_only = m.cfg.steps * b.sim_per_step
                writes = m.cfg.steps * m.io.file_per_process_write(
                    m.cfg.cores, m.cfg.step_bytes
                )
                ph = m.posthoc(matching[b.config_name])
                posthoc_total = (
                    sim_only + writes + ph["read"] + ph["process"] + ph["write"]
                )
                assert insitu_total < posthoc_total, (scale, b.config_name)

    def test_fig8_flexpath_writer_blocking_appears_when_endpoint_slow(self):
        m = MiniappModel(MiniappConfig.at_scale("6K"))
        fp = m.flexpath("catalyst-slice")
        assert fp["adios_analysis"] > 0
        # ~50% in transit penalty on the Catalyst-slice operation.
        inline = m.catalyst_slice().analysis_per_step
        assert 1.3 < fp["endpoint_analysis"] / inline < 1.7

    def test_fig9_reader_init_cheaper_on_titan(self):
        cfg_c = MiniappConfig.at_scale("6K", machine=CORI)
        cfg_t = MiniappConfig(cores=6496, points_per_core=308_000, machine=TITAN)
        init_c = MiniappModel(cfg_c).flexpath()["endpoint_initialize"]
        init_t = MiniappModel(cfg_t).flexpath()["endpoint_initialize"]
        assert init_c / init_t == pytest.approx(10.0, rel=0.1)

    def test_scale_names(self):
        assert SCALES["1K"][0] == 812
        assert SCALES["6K"][0] == 6496
        assert SCALES["45K"][0] == 45440


class TestStagingSimulator:
    def test_fast_endpoint_no_blocking(self):
        tl = simulate_staging(10, sim_time=1.0, advance_time=0.01, transfer_time=0.05, endpoint_time=0.5)
        assert tl.writer_analysis_mean == pytest.approx(0.05)
        assert tl.endpoint_idle_total > 0

    def test_slow_endpoint_blocks_writer(self):
        tl = simulate_staging(20, sim_time=1.0, advance_time=0.0, transfer_time=0.0, endpoint_time=2.0)
        # Steady state: writer waits ~1 s per step.
        assert tl.writer_analysis[-1] == pytest.approx(1.0)
        assert tl.makespan == pytest.approx(1.0 + 20 * 2.0, rel=0.05)

    def test_larger_window_reduces_blocking(self):
        t1 = simulate_staging(20, 1.0, 0.0, 0.0, 1.5, window=1)
        t4 = simulate_staging(20, 1.0, 0.0, 0.0, 1.5, window=4)
        assert sum(t4.writer_analysis) <= sum(t1.writer_analysis)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_staging(0, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            simulate_staging(5, 1, 1, 1, 1, window=0)


class TestPhastaTable2:
    def test_percentages_match_paper_band(self):
        paper_pct = {"IS1": 8.2, "IS2": 33.0, "IS3": 13.0}
        for name, run in PHASTA_RUNS.items():
            r = phasta_table2(run)
            assert paper_pct[name] * 0.6 < r.percent_insitu < paper_pct[name] * 1.4, name

    def test_image_size_not_problem_size_drives_cost(self):
        """IS1 vs IS2: image grows, cost jumps; IS2 vs IS3: problem grows
        4.9x, cost ~flat."""
        r1 = phasta_table2(PHASTA_RUNS["IS1"])
        r2 = phasta_table2(PHASTA_RUNS["IS2"])
        r3 = phasta_table2(PHASTA_RUNS["IS3"])
        assert r2.insitu_per_step > 3 * r1.insitu_per_step
        assert abs(r3.insitu_per_step - r2.insitu_per_step) < 0.5

    def test_png_compression_is_the_culprit(self):
        with_c = phasta_table2(PHASTA_RUNS["IS2"], compression=True)
        without = phasta_table2(PHASTA_RUNS["IS2"], compression=False)
        assert with_c.insitu_per_step > 2.5 * without.insitu_per_step
        assert with_c.png_time > 0.5 * with_c.insitu_per_step

    def test_onetime_cost_small_fraction(self):
        for run in PHASTA_RUNS.values():
            r = phasta_table2(run)
            assert r.onetime_cost < 0.01 * r.total_time


class TestAVF:
    def test_libsim_cost_band(self):
        res = avf_strong_scaling(AVFRun(cores=65_536))
        assert 6.0 < res.libsim_per_invocation < 9.0  # "7-8 seconds"
        assert res.sensei_overhead_per_step < 0.5

    def test_avg_added_per_step_band(self):
        for cores in (8192, 32768, 131072):
            res = avf_strong_scaling(AVFRun(cores=cores))
            assert 1.0 < res.libsim_per_invocation / 5 < 2.0  # "1-1.5 s"

    def test_analysis_exceeds_solver_at_scale(self):
        res = avf_strong_scaling(AVFRun(cores=65_536))
        assert res.libsim_per_invocation > res.solver_per_step

    def test_strong_scaling_efficiency_degrades(self):
        t16 = avf_strong_scaling(AVFRun(cores=16_384)).solver_per_step
        t131 = avf_strong_scaling(AVFRun(cores=131_072)).solver_per_step
        ideal = t16 / 8
        assert t131 > ideal * 1.1

    def test_temporal_resolution_gain_3_to_4x(self):
        res = avf_strong_scaling(AVFRun(cores=65_536))
        assert 20.0 < res.posthoc_write_per_step < 30.0  # "approximately 24 s"
        assert 2.5 < res.temporal_resolution_gain < 4.5  # "3-4 times"

    def test_periteration_sawtooth(self):
        series = avf_periteration_series(AVFRun(cores=65_536, steps=20))
        assert len(series) == 20
        expensive = [s for i, s in enumerate(series, 1) if i % 5 == 0]
        cheap = [s for i, s in enumerate(series, 1) if i % 5 != 0]
        assert min(expensive) > 10 * max(cheap)
        assert all(c < 0.5 for c in cheap)
        assert all(6.5 < e < 9.5 for e in expensive)


class TestNyx:
    def test_analysis_negligible_vs_solver(self):
        for run in NYX_RUNS:
            r = nyx_scaling(run)
            assert r.histogram_per_step < 1.0
            assert r.slice_per_step < 1.0
            assert r.solver_per_step > 50 * r.slice_per_step

    def test_solver_times_match_paper_band(self):
        paper = {1024: 67.5, 2048: 90.0, 4096: 202.0}
        for run in NYX_RUNS:
            r = nyx_scaling(run)
            assert paper[run.grid] * 0.6 < r.solver_per_step < paper[run.grid] * 1.4

    def test_plotfile_cost_matches_paper_band(self):
        paper = {1024: 17.0, 2048: 80.0, 4096: 312.0}
        for run in NYX_RUNS:
            r = nyx_scaling(run)
            assert paper[run.grid] * 0.5 < r.plotfile_write < paper[run.grid] * 2.0

    def test_memory_overheads(self):
        r = nyx_scaling(NYX_RUNS[0])
        assert r.ghost_bytes_per_rank == 2 * 1024 * 1024
        assert 200e6 < r.slice_extra_bytes < 320e6

    def test_insitu_amortizes_skipped_plotfiles(self):
        """'each plot file that does not need to be written saves
        significant time'"""
        for run in NYX_RUNS:
            r = nyx_scaling(run)
            per_step_insitu = r.histogram_per_step + r.slice_per_step
            assert r.plotfile_write > 10 * per_step_insitu


class TestHostCalibration:
    def test_rates_positive_and_ordered(self):
        from repro.perf.calibrate import calibrate_host

        cal = calibrate_host(n=32, window=4, image=128)
        assert cal.oscillator_rate > 0
        assert cal.histogram_rate > 0
        assert cal.autocorr_rate > cal.oscillator_rate  # vectorized MACs
        assert cal.zlib_rate > 1e6
        assert cal.hist_factor > 0.1
        assert cal.autocorr_factor > 0.1
