"""Tests for the post hoc pipeline: write with N ranks, analyze with N/k
readers, and check the products agree with the in situ path."""

import numpy as np
import pytest

from repro.analysis import AutocorrelationAnalysis, HistogramAnalysis
from repro.core import Bridge
from repro.miniapp import OscillatorSimulation
from repro.miniapp.oscillator import default_oscillators
from repro.mpi import run_spmd
from repro.posthoc import run_posthoc_analysis
from repro.render import decode_png
from repro.storage import write_timestep
from repro.util import TimerRegistry

DIMS = (12, 10, 8)
STEPS = 3


@pytest.fixture(scope="module")
def written_run(tmp_path_factory):
    """A 4-writer miniapp run with every step stored, plus the in situ
    histogram/autocorrelation products for comparison."""
    directory = tmp_path_factory.mktemp("sim_output")

    def writer(comm):
        sim = OscillatorSimulation(comm, DIMS, default_oscillators(), dt=0.1)
        bridge = Bridge(comm, sim.make_data_adaptor())
        hist = HistogramAnalysis(bins=16)
        ac = AutocorrelationAnalysis(window=2, k=3)
        bridge.add_analysis(hist)
        bridge.add_analysis(ac)
        bridge.initialize()
        for _ in range(STEPS):
            sim.advance()
            bridge.execute(sim.time, sim.step)
            img = sim.make_data_adaptor().get_mesh()
            from repro.data import Association

            img.add_array(
                Association.POINT,
                sim.make_data_adaptor().get_array(Association.POINT, "data"),
            )
            write_timestep(comm, directory, sim.step, sim.time, img, "data")
        bridge.finalize()
        return hist.history, ac.result

    results = run_spmd(4, writer)
    return directory, results[0]


class TestPosthocHistogram:
    def test_matches_insitu(self, written_run):
        directory, (insitu_hist, _) = written_run

        def reader(comm):
            return run_posthoc_analysis(
                comm, directory, steps=[1, 2, 3], analysis="histogram", bins=16
            )

        # 1 reader vs the 4 writers (the few-readers pattern).
        res = run_spmd(1, reader)[0]
        assert len(res.histograms) == STEPS
        for mine, ref in zip(res.histograms, insitu_hist):
            assert np.array_equal(mine.counts, ref.counts)
            assert mine.vmin == pytest.approx(ref.vmin)
            assert mine.vmax == pytest.approx(ref.vmax)

    def test_reader_count_invariance(self, written_run):
        directory, (insitu_hist, _) = written_run

        def reader(comm):
            res = run_posthoc_analysis(
                comm, directory, steps=[3], analysis="histogram", bins=16
            )
            return res.histograms[0] if comm.rank == 0 else None

        h1 = run_spmd(1, reader)[0]
        h2 = run_spmd(2, reader)[0]
        assert np.array_equal(h1.counts, h2.counts)

    def test_timers_split(self, written_run):
        directory, _ = written_run

        def reader(comm):
            return run_posthoc_analysis(
                comm, directory, steps=[1, 2, 3], analysis="histogram"
            )

        res = run_spmd(2, reader)[0]
        assert res.read_time > 0
        assert res.process_time > 0


class TestPosthocAutocorrelation:
    def test_topk_values_match_insitu(self, written_run):
        directory, (_, insitu_ac) = written_run

        def reader(comm):
            res = run_posthoc_analysis(
                comm, directory, steps=[1, 2, 3], analysis="autocorrelation",
                ac_window=2, ac_topk=3,
            )
            return res.autocorrelation if comm.rank == 0 else None

        post = run_spmd(2, reader)[0]
        assert post is not None
        for d in range(2):
            post_vals = [c for c, _ in post.top[d]]
            insitu_vals = [c for c, _ in insitu_ac.top[d]]
            assert post_vals == pytest.approx(insitu_vals)


class TestPosthocSlice:
    def test_slice_png_produced(self, written_run, tmp_path):
        directory, _ = written_run

        def reader(comm):
            res = run_posthoc_analysis(
                comm, directory, steps=[2], analysis="slice",
                slice_axis=2, slice_index=4, resolution=(40, 30),
                output_dir=str(tmp_path),
            )
            return res.slice_pngs

        pngs = run_spmd(2, reader)[0]
        assert len(pngs) == 1
        assert decode_png(pngs[0]).shape == (30, 40, 3)
        assert (tmp_path / "posthoc_000002.png").exists()

    def test_reader_count_invariance(self, written_run):
        directory, _ = written_run

        def reader(comm):
            res = run_posthoc_analysis(
                comm, directory, steps=[2], analysis="slice",
                slice_axis=2, slice_index=4, resolution=(40, 30),
            )
            return res.slice_pngs[0] if comm.rank == 0 else None

        a = run_spmd(1, reader)[0]
        b = run_spmd(3, reader)[0]
        assert a == b


class TestValidation:
    def test_unknown_analysis(self, written_run):
        directory, _ = written_run

        def reader(comm):
            with pytest.raises(ValueError):
                run_posthoc_analysis(comm, directory, [1], "fourier")

        run_spmd(1, reader)

    def test_output_files_written(self, written_run, tmp_path):
        directory, _ = written_run

        def reader(comm):
            run_posthoc_analysis(
                comm, directory, [1], "histogram", output_dir=str(tmp_path)
            )

        run_spmd(1, reader)
        assert (tmp_path / "posthoc_histogram.txt").exists()
