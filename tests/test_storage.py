"""Tests for the storage substrate: VTK-style I/O, MPI-IO, and BP files."""

import numpy as np
import pytest

from repro.data import DataArray, ImageData
from repro.mpi import run_spmd
from repro.storage import (
    BPReader,
    BPWriter,
    mpiio_read_block,
    mpiio_write_collective,
    read_global_field,
    read_index,
    read_piece,
    read_subextent,
    write_block,
    write_timestep,
)
from repro.storage.vtk_io import reader_extent
from repro.util import Extent
from repro.util.decomp import regular_decompose_3d


def _block_image(extent, whole, seed=0):
    img = ImageData(extent, whole_extent=whole)
    rng = np.random.default_rng(seed)
    data = rng.random(extent.shape)
    img.add_point_array(DataArray.from_numpy("data", data))
    return img, data


class TestBlockFiles:
    def test_write_read_roundtrip(self, tmp_path):
        ext = Extent(2, 5, 0, 3, 1, 4)
        whole = Extent(0, 9, 0, 9, 0, 9)
        img, data = _block_image(ext, whole)
        p = tmp_path / "b.rvi"
        n = write_block(p, img, "data")
        assert p.stat().st_size == n
        back = read_piece(p)
        assert back.extent == ext
        assert back.whole_extent == whole
        np.testing.assert_array_equal(back.point_field_3d("data"), data)

    def test_bad_magic_rejected(self, tmp_path):
        p = tmp_path / "junk"
        p.write_bytes(b"NOPE" + b"\x00" * 100)
        with pytest.raises(ValueError):
            read_piece(p)

    def test_truncated_rejected(self, tmp_path):
        ext = Extent(0, 3, 0, 3, 0, 3)
        img, _ = _block_image(ext, ext)
        p = tmp_path / "b.rvi"
        write_block(p, img, "data")
        p.write_bytes(p.read_bytes()[:-10])
        with pytest.raises(ValueError):
            read_piece(p)


class TestParallelTimestep:
    def _write(self, tmp_path, nranks, dims=(8, 6, 4)):
        def prog(comm):
            ext, _, _ = regular_decompose_3d(dims, comm.size, comm.rank)
            whole = Extent(0, dims[0] - 1, 0, dims[1] - 1, 0, dims[2] - 1)
            img, data = _block_image(ext, whole, seed=comm.rank)
            write_timestep(comm, tmp_path, step=3, time=0.3, image=img, field="data")
            return ext, data

        return run_spmd(nranks, prog), dims

    def test_index_lists_all_pieces(self, tmp_path):
        out, dims = self._write(tmp_path, 4)
        idx = read_index(tmp_path, 3)
        assert len(idx.pieces) == 4
        assert idx.whole_extent.shape == dims
        assert idx.step == 3 and idx.time == 0.3

    def test_global_reassembly(self, tmp_path):
        out, dims = self._write(tmp_path, 4)
        expected = np.zeros(dims)
        for ext, data in out:
            expected[
                ext.i0 : ext.i1 + 1, ext.j0 : ext.j1 + 1, ext.k0 : ext.k1 + 1
            ] = data
        got = read_global_field(tmp_path, 3)
        np.testing.assert_array_equal(got, expected)

    def test_subextent_read_with_fewer_readers(self, tmp_path):
        """The 10%-cores post hoc pattern: write with 8, read with 2."""
        out, dims = self._write(tmp_path, 8)
        expected = np.zeros(dims)
        for ext, data in out:
            expected[
                ext.i0 : ext.i1 + 1, ext.j0 : ext.j1 + 1, ext.k0 : ext.k1 + 1
            ] = data
        whole = Extent(0, dims[0] - 1, 0, dims[1] - 1, 0, dims[2] - 1)

        def reader(comm):
            want = reader_extent(whole, comm.size, comm.rank)
            return want, read_subextent(tmp_path, 3, want)

        pieces = run_spmd(2, reader)
        got = np.zeros(dims)
        for want, block in pieces:
            got[want.i0 : want.i1 + 1] = block
        np.testing.assert_array_equal(got, expected)

    def test_reader_extents_tile(self):
        whole = Extent(0, 10, 0, 4, 0, 4)
        exts = [reader_extent(whole, 3, r) for r in range(3)]
        assert exts[0].i0 == 0 and exts[-1].i1 == 10
        total = sum(e.num_points for e in exts)
        assert total == whole.num_points


class TestMPIIO:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 6])
    def test_collective_write_matches_blocks(self, tmp_path, nranks):
        dims = (6, 5, 4)
        path = tmp_path / f"shared_{nranks}.dat"

        def prog(comm):
            ext, _, _ = regular_decompose_3d(dims, comm.size, comm.rank)
            rng = np.random.default_rng(comm.rank + 100)
            block = rng.random(ext.shape)
            written = mpiio_write_collective(comm, path, block, ext, dims)
            return ext, block, written

        out = run_spmd(nranks, prog)
        expected = np.zeros(dims)
        total_written = 0
        for ext, block, written in out:
            expected[
                ext.i0 : ext.i1 + 1, ext.j0 : ext.j1 + 1, ext.k0 : ext.k1 + 1
            ] = block
            total_written += written
        assert total_written == dims[0] * dims[1] * dims[2] * 8
        whole = Extent(0, dims[0] - 1, 0, dims[1] - 1, 0, dims[2] - 1)
        got = mpiio_read_block(path, whole)
        np.testing.assert_array_equal(got, expected)

    def test_sub_block_read(self, tmp_path):
        dims = (4, 4, 4)
        path = tmp_path / "s.dat"

        def prog(comm):
            whole = Extent(0, 3, 0, 3, 0, 3)
            block = np.arange(64.0).reshape(4, 4, 4)
            mpiio_write_collective(comm, path, block, whole, dims)

        run_spmd(1, prog)
        sub = mpiio_read_block(path, Extent(1, 2, 1, 2, 1, 2))
        expected = np.arange(64.0).reshape(4, 4, 4)[1:3, 1:3, 1:3]
        np.testing.assert_array_equal(sub, expected)

    def test_out_of_range_read_rejected(self, tmp_path):
        path = tmp_path / "s.dat"

        def prog(comm):
            whole = Extent(0, 1, 0, 1, 0, 1)
            mpiio_write_collective(
                comm, path, np.zeros((2, 2, 2)), whole, (2, 2, 2)
            )

        run_spmd(1, prog)
        with pytest.raises(ValueError):
            mpiio_read_block(path, Extent(0, 5, 0, 1, 0, 1))

    def test_shape_mismatch_rejected(self, tmp_path):
        def prog(comm):
            with pytest.raises(ValueError):
                mpiio_write_collective(
                    comm,
                    tmp_path / "x.dat",
                    np.zeros((2, 2, 2)),
                    Extent(0, 3, 0, 1, 0, 1),
                    (4, 2, 2),
                )

        run_spmd(1, prog)


class TestBP:
    def test_multistep_multivar_roundtrip(self, tmp_path):
        dims = (6, 4, 4)
        path = tmp_path / "out"

        def prog(comm):
            ext, _, _ = regular_decompose_3d(dims, comm.size, comm.rank)
            writer = BPWriter(comm, path, dims)
            blocks = {}
            for step in range(3):
                writer.begin_step()
                rng = np.random.default_rng(comm.rank * 10 + step)
                a = rng.random(ext.shape)
                b = rng.random(ext.shape)
                writer.write("u", a, ext)
                writer.write("v", b, ext)
                writer.end_step()
                blocks[step] = (ext, a, b)
            writer.close()
            return blocks

        out = run_spmd(4, prog)
        reader = BPReader(path)
        assert reader.variables() == ["u", "v"]
        assert reader.num_steps == 3
        for step in range(3):
            for vi, var in enumerate(("u", "v")):
                expected = np.zeros(dims)
                for blocks in out:
                    ext, a, b = blocks[step]
                    expected[
                        ext.i0 : ext.i1 + 1, ext.j0 : ext.j1 + 1, ext.k0 : ext.k1 + 1
                    ] = (a, b)[vi]
                got = reader.read(var, step)
                np.testing.assert_array_equal(got, expected)

    def test_selection_read(self, tmp_path):
        dims = (8, 4, 4)
        path = tmp_path / "sel"

        def prog(comm):
            ext, _, _ = regular_decompose_3d(dims, comm.size, comm.rank)
            w = BPWriter(comm, path, dims)
            w.begin_step()
            block = np.full(ext.shape, float(comm.rank))
            w.write("data", block, ext)
            w.end_step()
            w.close()
            return ext

        exts = run_spmd(2, prog)
        reader = BPReader(path)
        sel = Extent(0, 3, 0, 3, 0, 3)
        got = reader.read("data", 0, selection=sel)
        assert got.shape == (4, 4, 4)
        # That selection is entirely inside rank 0's half (i in [0,3]).
        assert exts[0].i1 >= 3
        assert (got == 0.0).all()

    def test_protocol_misuse(self, tmp_path):
        def prog(comm):
            w = BPWriter(comm, tmp_path / "p", (2, 2, 2))
            with pytest.raises(RuntimeError):
                w.write("x", np.zeros((2, 2, 2)), Extent(0, 1, 0, 1, 0, 1))
            w.begin_step()
            with pytest.raises(RuntimeError):
                w.begin_step()
            w.end_step()
            with pytest.raises(RuntimeError):
                w.end_step()
            w.close()
            w.close()  # idempotent

        run_spmd(1, prog)

    def test_unknown_var_raises(self, tmp_path):
        def prog(comm):
            w = BPWriter(comm, tmp_path / "q", (2, 2, 2))
            w.begin_step()
            w.write("x", np.zeros((2, 2, 2)), Extent(0, 1, 0, 1, 0, 1))
            w.end_step()
            w.close()

        run_spmd(1, prog)
        r = BPReader(tmp_path / "q")
        with pytest.raises(KeyError):
            r.read("y", 0)
        with pytest.raises(KeyError):
            r.read("x", 5)
