"""Legacy setup shim so `pip install -e .` works without network/wheel."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
