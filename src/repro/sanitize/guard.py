"""Zero-copy write/retention sanitizer for the SENSEI bridge.

The paper's headline overhead results (Figs. 3-4) depend on analyses
consuming simulation memory *in place* without mutating or retaining it:

- **No writes.**  Zero-copy mapped arrays are simulation-owned; an analysis
  that writes through a mapped view corrupts the simulation state feeding
  every later step (and every sibling analysis this step).
- **No retention.**  "The pointers to the ... grid data structures are
  passed every time in situ is accessed" (Sec. 4.2.1): after
  ``release_data()`` the per-step mappings are stale, so a retained array or
  mesh silently aliases memory the simulation is free to reuse.

:class:`GuardedDataAdaptor` turns both rules into machine-checked contracts.
It wraps a concrete :class:`~repro.core.adaptors.DataAdaptor` and, per step:

1. hands each analysis *write-protected* views
   (:meth:`~repro.data.DataArray.readonly_view`) -- in-place writes raise at
   the write site;
2. fingerprints the underlying buffers and re-verifies after each
   analysis's ``execute`` -- the backstop for writes that bypass the
   read-only flag (raises :class:`WriteViolation` naming the analysis);
3. takes weakrefs to every handed-out array view and mesh, and after
   ``release_data()`` garbage-collects and checks they died -- anything
   still alive is a retention-contract violation (raises
   :class:`RetentionViolation` naming the requesting analyses).

Analyses that legitimately transform data in place declare
``mutates_data = True`` (see :class:`~repro.core.adaptors.AnalysisAdaptor`)
and receive a private deep copy instead, keeping simulation memory protected
without false positives.

Enabled via ``Bridge(..., sanitize=True)``; off by default and entirely out
of the hot path when disabled.
"""

from __future__ import annotations

import gc
import weakref

from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.data import Association, DataArray, Dataset


class SanitizerError(RuntimeError):
    """Base class for sanitizer contract violations."""


class WriteViolation(SanitizerError):
    """An analysis mutated a zero-copy mapped, simulation-owned array."""


class RetentionViolation(SanitizerError):
    """A mapped array or mesh outlived ``release_data()``."""


class _ArrayLease:
    """Per-step bookkeeping for one handed-out array."""

    __slots__ = ("key", "inner", "guarded", "fingerprint", "requesters", "refs")

    def __init__(self, key: tuple, inner: DataArray, guarded: DataArray) -> None:
        self.key = key
        self.inner = inner
        self.guarded = guarded
        self.fingerprint = inner.fingerprint()
        self.requesters: set[str] = set()
        # Weakrefs to the wrapper and each handed-out component view: a
        # retained sub-view keeps its parent view alive through ``.base``,
        # so retention is visible even if only a slice was kept.
        self.refs: list[weakref.ref] = [weakref.ref(guarded)] + [
            weakref.ref(c) for c in guarded.as_soa()
        ]


class GuardedDataAdaptor(DataAdaptor):
    """Debug-mode proxy enforcing the zero-copy write/retention contract.

    Drop-in :class:`DataAdaptor`: the bridge passes it to analyses in place
    of the real adaptor.  All metadata calls delegate to the wrapped
    adaptor; ``get_array`` interposes the write guard.
    """

    def __init__(self, inner: DataAdaptor) -> None:
        super().__init__(inner.comm)
        self._inner = inner
        self._leases: dict[tuple, _ArrayLease] = {}
        self._mesh_leases: list[tuple[weakref.ref, frozenset[str]]] = []
        self._mesh_requesters: set[str] = set()
        self._current: str = "<no analysis>"
        self._current_mutates = False

    # -- per-analysis bracketing (driven by the Bridge) ---------------------
    def begin_analysis(self, analysis: AnalysisAdaptor) -> None:
        self._current = analysis.name
        self._current_mutates = bool(getattr(analysis, "mutates_data", False))

    def verify_analysis(self, analysis: AnalysisAdaptor) -> None:
        """Fingerprint check after one analysis's ``execute``."""
        for lease in self._leases.values():
            if lease.inner.fingerprint() != lease.fingerprint:
                association, name = lease.key
                raise WriteViolation(
                    f"analysis {analysis.name!r} mutated zero-copy mapped "
                    f"array {name!r} ({association.value} data) at step "
                    f"{self._inner.get_data_time_step()}: content fingerprint "
                    "changed during execute().  Zero-copy views are "
                    "simulation-owned; declare `mutates_data = True` on the "
                    "analysis to receive a private copy instead."
                )
        self._current = "<no analysis>"
        self._current_mutates = False

    def release_and_check(self) -> None:
        """Release per-step data, then verify nothing was retained."""
        self._inner.release_data()
        pending: list[tuple[str, str, list[weakref.ref], frozenset[str]]] = [
            (
                "array",
                lease.key[1],
                lease.refs,
                frozenset(lease.requesters),
            )
            for lease in self._leases.values()
        ]
        pending.extend(
            ("mesh", "<mesh>", [ref], requesters)
            for ref, requesters in self._mesh_leases
        )
        # Drop every strong reference the guard itself holds before probing.
        self._leases.clear()
        self._mesh_leases.clear()
        self._mesh_requesters = set()
        gc.collect()
        retained = [
            (kind, name, requesters)
            for kind, name, refs, requesters in pending
            if any(ref() is not None for ref in refs)
        ]
        if retained:
            step = self._inner.get_data_time_step()
            lines = "\n".join(
                f"  {kind} {name!r}, requested by: "
                f"{', '.join(sorted(requesters)) or '<unknown>'}"
                for kind, name, requesters in retained
            )
            raise RetentionViolation(
                f"zero-copy mapping(s) outlived release_data() at step {step}:\n"
                f"{lines}\n"
                "Per-step mappings are stale once release_data() runs "
                "(Sec. 4.2.1); analyses must deep-copy anything they keep.  "
                "If no listed analysis retains it, the data adaptor itself "
                "violates its release contract."
            )

    # -- DataAdaptor contract (delegating) ----------------------------------
    def set_data_time(self, time: float, step: int) -> None:
        super().set_data_time(time, step)
        self._inner.set_data_time(time, step)

    def get_data_time(self) -> float:
        return self._inner.get_data_time()

    def get_data_time_step(self) -> int:
        return self._inner.get_data_time_step()

    def get_mesh(self, structure_only: bool = False) -> Dataset:
        mesh = self._inner.get_mesh(structure_only)
        self._mesh_requesters.add(self._current)
        tracked = any(ref() is mesh for ref, _ in self._mesh_leases)
        if not tracked:
            self._mesh_leases.append(
                (weakref.ref(mesh), frozenset())
            )
        # Refresh requester attribution for the live mesh lease(s).
        self._mesh_leases = [
            (ref, frozenset(self._mesh_requesters)) for ref, _ in self._mesh_leases
        ]
        return mesh

    def get_array(self, association: Association, name: str) -> DataArray:
        inner_arr = self._inner.get_array(association, name)
        if self._current_mutates:
            # Mutating analyses get a private writable copy; simulation
            # memory stays untouched and untracked for them.
            return inner_arr.deep_copy()
        key = (association, name)
        lease = self._leases.get(key)
        if lease is None:
            lease = _ArrayLease(key, inner_arr, inner_arr.readonly_view())
            self._leases[key] = lease
        lease.requesters.add(self._current)
        return lease.guarded

    def get_number_of_arrays(self, association: Association) -> int:
        return self._inner.get_number_of_arrays(association)

    def get_array_name(self, association: Association, index: int) -> str:
        return self._inner.get_array_name(association, index)

    def available_arrays(self, association: Association) -> list[str]:
        return self._inner.available_arrays(association)

    def release_data(self) -> None:
        """Direct calls route through the full release-and-check cycle."""
        self.release_and_check()
