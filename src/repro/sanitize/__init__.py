"""In situ sanitizer suite: debug-mode contract checkers.

Three runtime checkers protect the correctness assumptions behind the
paper's performance claims:

- :class:`GuardedDataAdaptor` (this package) -- zero-copy write/retention
  guard, enabled via ``Bridge(..., sanitize=True)``;
- the collective-trace race detector in :mod:`repro.mpi.communicator`
  (always-on divergence cross-check; call sites/history/wildcard-receive
  race flagging via ``run_spmd(..., trace_collectives=True)``);
- the static repo-contract linter in :mod:`repro.lint`
  (``python -m repro.lint src/``).
"""

from repro.sanitize.guard import (
    GuardedDataAdaptor,
    RetentionViolation,
    SanitizerError,
    WriteViolation,
)

__all__ = [
    "GuardedDataAdaptor",
    "SanitizerError",
    "WriteViolation",
    "RetentionViolation",
]
