"""``repro.analyze``: CFG- and dataflow-based static analysis for the repo.

``python -m repro.analyze src/`` parses every Python file, builds
per-function control-flow graphs (:mod:`repro.analyze.cfg`), runs the
registered checkers (:mod:`repro.analyze.checkers`) over them with the
worklist solvers in :mod:`repro.analyze.dataflow`, and reports findings
with rule id, severity, and -- for the path-sensitive rules -- the CFG
path that witnesses the defect.

Output formats: human-readable text (default), ``--format json`` for
tooling, and ``--format sarif`` (SARIF 2.1.0 with code flows) for CI
upload.  Exit status is 0 when clean, 1 when findings are reported, 2 on
usage/IO errors.

Suppressions, two layers:

- **pragmas** on the flagged line or the line above it waive a rule at
  one site; both the historical ``# lint: allow(rule-id)`` spelling and
  ``# analyze: allow(rule-id)`` are honored::

      comm.gather(None, root=root)  # lint: allow(collective-in-rank-branch)

- a **baseline file** (``analyze-baseline.json``, auto-loaded from the
  working directory) records documented false positives as
  ``{path, rule, line, reason}`` entries; matching findings are
  suppressed so the shipped tree analyzes clean while every suppression
  stays reviewable in one place.

The historical ``repro.lint`` entry point still works: it is an alias
that runs exactly the five PR 2 contract rules through this engine.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analyze.checkers import ALL_CHECKERS, RULE_CATALOG, checker_emits
from repro.analyze.model import Checker, Finding, ModuleModel, normalize_path
from repro.analyze.sarif import sarif_json, to_sarif

__all__ = [
    "Finding",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "load_baseline",
    "apply_baseline",
    "main",
    "ALL_CHECKERS",
    "RULE_CATALOG",
]

DEFAULT_BASELINE = "analyze-baseline.json"

_PRAGMA_RE = re.compile(r"#\s*(?:lint|analyze):\s*allow\(([a-z0-9_,\s-]+)\)")


def _waivers(source: str) -> dict[int, frozenset[str]]:
    """Line number -> rule ids waived on that line (pragma comments)."""
    out: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _PRAGMA_RE.search(text)
        if m:
            out[lineno] = frozenset(
                part.strip() for part in m.group(1).split(",") if part.strip()
            )
    return out


def _waived(waivers: dict[int, frozenset[str]], line: int, rule_id: str) -> bool:
    for probe in (line, line - 1):
        rules = waivers.get(probe)
        if rules and rule_id in rules:
            return True
    return False


# --------------------------------------------------------------------------
# Core driver
# --------------------------------------------------------------------------


def analyze_source(
    source: str,
    path: str = "<string>",
    checkers: Sequence[Checker] | None = None,
    rules: frozenset[str] | None = None,
) -> list[Finding]:
    """Analyze one module's source text; findings sorted by location."""
    norm = normalize_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=norm,
                line=exc.lineno or 0,
                col=(exc.offset or 1) - 1,
                rule_id="syntax-error",
                message=f"cannot parse: {exc.msg}",
            )
        ]
    module = ModuleModel(norm, source, tree)
    waivers = _waivers(source)
    found: list[Finding] = []
    for checker in checkers if checkers is not None else ALL_CHECKERS:
        if rules is not None and not (set(checker_emits(checker)) & rules):
            continue
        if not checker.applies_to(norm):
            continue
        for finding in checker.check(module):
            if rules is not None and finding.rule_id not in rules:
                continue
            if _waived(waivers, finding.line, finding.rule_id):
                continue
            found.append(finding)
    found.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return found


def analyze_file(
    path: str,
    checkers: Sequence[Checker] | None = None,
    rules: frozenset[str] | None = None,
) -> list[Finding]:
    with open(path, "r", encoding="utf-8") as fh:
        return analyze_source(fh.read(), path, checkers, rules)


def _iter_python_files(paths: Iterable[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            yield path


def analyze_paths(
    paths: Iterable[str],
    checkers: Sequence[Checker] | None = None,
    rules: frozenset[str] | None = None,
) -> list[Finding]:
    """Analyze files and directory trees; returns all findings."""
    found: list[Finding] = []
    for path in _iter_python_files(paths):
        found.extend(analyze_file(path, checkers, rules))
    return found


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BaselineEntry:
    path: str
    rule: str
    line: int
    reason: str

    def key(self) -> tuple[str, str, int]:
        return (self.path, self.rule, self.line)


def load_baseline(path: str) -> list[BaselineEntry]:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    entries = []
    for raw in data.get("entries", []):
        entries.append(
            BaselineEntry(
                path=normalize_path(str(raw["path"])),
                rule=str(raw["rule"]),
                line=int(raw["line"]),
                reason=str(raw.get("reason", "")),
            )
        )
    return entries


def apply_baseline(
    findings: Sequence[Finding], baseline: Sequence[BaselineEntry]
) -> tuple[list[Finding], int]:
    """Drop baselined findings; returns (kept, suppressed count)."""
    keys = {e.key() for e in baseline}
    kept = [f for f in findings if f.location_key() not in keys]
    return kept, len(findings) - len(kept)


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


def _findings_json(findings: Sequence[Finding]) -> str:
    return json.dumps(
        [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule_id,
                "severity": f.severity,
                "message": f.message,
                "witness": list(f.witness),
            }
            for f in findings
        ],
        indent=2,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="CFG/dataflow static analyzer for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze (default: src/)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument("--output", help="write the report to this file instead of stdout")
    parser.add_argument(
        "--baseline",
        help=f"baseline file of documented suppressions (default: ./{DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore any baseline file"
    )
    parser.add_argument(
        "--rules", help="comma-separated rule ids to run (default: all)"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULE_CATALOG:
            print(f"{rule.id} [{rule.severity}]: {rule.description}")
        return 0

    rules: frozenset[str] | None = None
    if args.rules:
        rules = frozenset(r.strip() for r in args.rules.split(",") if r.strip())
        known = {r.id for r in RULE_CATALOG} | {"syntax-error"}
        unknown = rules - known
        if unknown:
            print(f"error: unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    paths = args.paths or ["src/"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline: list[BaselineEntry] = []
    if not args.no_baseline:
        baseline_path = args.baseline or (
            DEFAULT_BASELINE if os.path.exists(DEFAULT_BASELINE) else None
        )
        if baseline_path is not None:
            if not os.path.exists(baseline_path):
                print(f"error: no such baseline file: {baseline_path}", file=sys.stderr)
                return 2
            baseline = load_baseline(baseline_path)

    findings = analyze_paths(paths, rules=rules)
    findings, suppressed = apply_baseline(findings, baseline)

    if args.format == "sarif":
        report = sarif_json(findings)
    elif args.format == "json":
        report = _findings_json(findings)
    else:
        lines = [str(f) for f in findings]
        nfiles = sum(1 for _ in _iter_python_files(paths))
        if findings:
            nerr = sum(1 for f in findings if f.severity == "error")
            nwarn = len(findings) - nerr
            lines.append(
                f"{len(findings)} finding(s) ({nerr} error(s), {nwarn} warning(s)) "
                f"in {nfiles} file(s)"
                + (f"; {suppressed} baselined" if suppressed else "")
            )
        else:
            lines.append(
                f"clean: {nfiles} file(s), {len(RULE_CATALOG)} rules"
                + (f"; {suppressed} baselined" if suppressed else "")
            )
        report = "\n".join(lines)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
    else:
        print(report)
    return 1 if findings else 0


# Re-export for callers that want to build SARIF themselves.
to_sarif = to_sarif
