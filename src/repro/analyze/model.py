"""Shared model types for the static analyzer: findings, checkers, modules.

A :class:`Checker` sees one :class:`ModuleModel` at a time -- the parsed
tree plus lazily-built per-function CFGs and the module call graph -- and
yields :class:`Finding` objects.  Findings carry a severity and an optional
**CFG path witness**: the sequence of control-flow decisions that leads to
the defect, rendered as human-readable steps (and exported as a SARIF code
flow by :mod:`repro.analyze.sarif`).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterator

from repro.analyze.callgraph import CallGraph
from repro.analyze.cfg import CFG, build_cfg

__all__ = ["Finding", "Checker", "ModuleModel", "FunctionUnit", "normalize_path"]

#: Finding severities, in SARIF terms.
SEVERITIES = ("error", "warning", "note")


def normalize_path(path: str) -> str:
    return path.replace(os.sep, "/")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: str = "error"
    #: Human-readable CFG path steps leading to the defect ("entry",
    #: "L12: branch true", ...); empty for purely syntactic rules.
    witness: tuple[str, ...] = ()

    def __str__(self) -> str:
        text = f"{self.path}:{self.line}:{self.col + 1}: [{self.rule_id}] {self.message}"
        if self.witness:
            text += f"\n    path: {' -> '.join(self.witness)}"
        return text

    def location_key(self) -> tuple[str, str, int]:
        return (self.path, self.rule_id, self.line)


@dataclass
class FunctionUnit:
    """One function/method definition inside a module."""

    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None


class ModuleModel:
    """Everything the checkers need to know about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = normalize_path(path)
        self.source = source
        self.tree = tree
        self._cfgs: dict[int, CFG] = {}
        self._callgraph: CallGraph | None = None
        self._functions: list[FunctionUnit] | None = None

    @property
    def functions(self) -> list[FunctionUnit]:
        if self._functions is None:
            units: list[FunctionUnit] = []

            def visit(body: list[ast.stmt], cls: str | None, prefix: str) -> None:
                for node in body:
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{prefix}{node.name}"
                        units.append(FunctionUnit(qual, node, cls))
                        visit(node.body, cls, f"{qual}.<locals>.")
                    elif isinstance(node, ast.ClassDef):
                        visit(node.body, node.name, f"{prefix}{node.name}.")

            visit(self.tree.body, None, "")
            self._functions = units
        return self._functions

    def cfg(self, unit: FunctionUnit) -> CFG:
        key = id(unit.node)
        got = self._cfgs.get(key)
        if got is None:
            got = self._cfgs[key] = build_cfg(unit.node, unit.qualname)
        return got

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph(self.tree)
        return self._callgraph


class Checker:
    """Base class for analyzer rules.

    Subclasses set ``rule_id``/``description``/``severity`` and implement
    :meth:`check`.  ``exempt_paths`` lists posix path substrings where the
    rule does not apply (typically the module that *implements* the
    machinery the rule protects).
    """

    rule_id: str = ""
    description: str = ""
    severity: str = "error"
    exempt_paths: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        return not any(sub in path for sub in self.exempt_paths)

    def check(self, module: ModuleModel) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self,
        module: ModuleModel,
        line: int,
        col: int,
        message: str,
        witness: tuple[str, ...] = (),
        severity: str | None = None,
    ) -> Finding:
        return Finding(
            path=module.path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
            severity=severity or self.severity,
            witness=witness,
        )
