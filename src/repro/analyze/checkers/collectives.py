"""Path-sensitive collective-matching checkers.

MPI collectives must be entered by **every** rank of the communicator, in
the same order.  The PR 2 syntactic rule only catches the literal shape
``if rank == 0: comm.barrier()``; these checkers enumerate the function's
CFG paths and compare the *sequence of collectives* each path executes.
If two paths disagree and the first decision separating them is
rank-dependent, then different ranks of the same communicator can take
different paths and the collective schedules no longer line up -- the
canonical in situ deadlock (coupled simulation + analysis share the
communicator, Sec. 4.1 of the paper).

Two rule ids come out of the same analysis:

``rank-divergent-collectives``
    A rank-dependent branch (or early ``return``/``break`` under a
    rank-dependent condition) makes two paths execute different collective
    sequences.
``collective-in-rank-loop``
    The diverging decision is a loop bound: a loop whose trip count
    depends on the rank contains a collective, so ranks with fewer
    iterations stop participating while the others block.

Both findings carry the two witness paths and their collective sequences.
Calls to module-local helpers are resolved through the call graph, so a
rank-guarded ``self._flush()`` that transitively hits ``comm.barrier()``
is caught too.  Truncated path enumerations report nothing: a partial
view cannot prove divergence.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze.callgraph import is_collective_call
from repro.analyze.cfg import Block, Edge, Path, enumerate_paths
from repro.analyze.checkers.contracts import _mentions_rank
from repro.analyze.model import Checker, Finding, FunctionUnit, ModuleModel

__all__ = ["CollectiveMatchChecker", "COLLECTIVE_CHECKERS"]

_LOOP_KINDS = frozenset({"loop", "exit", "back", "true", "false"})


def _block_events(block: Block, module: ModuleModel, cls: str | None) -> list[str]:
    """Collective events this block executes, in source order.

    Direct collective calls contribute their method name; calls to
    module-local functions whose summary (transitively) contains a
    collective contribute ``name()->collective``.
    """
    events: list[tuple[int, int, str]] = []
    cg = module.callgraph
    for node in block.walk_owned():
        if not isinstance(node, ast.Call):
            continue
        if is_collective_call(node):
            assert isinstance(node.func, ast.Attribute)
            events.append((node.lineno, node.col_offset, node.func.attr))
            continue
        callee = cg._callee_name(node, cls)
        if callee is not None and cg.has_collective(callee):
            hit = cg.first_collective(callee)
            name = hit[0] if hit else "collective"
            events.append((node.lineno, node.col_offset, f"{callee}()->{name}"))
    events.sort()
    return [name for _, _, name in events]


def _path_sequence(path: Path, events: dict[int, list[str]]) -> tuple[str, ...]:
    seq: list[str] = []
    for block in path.blocks:
        seq.extend(events.get(block.id, ()))
    return tuple(seq)


def _diverging_edge(a: Path, b: Path) -> Edge | None:
    """First edge where the two paths part ways (the decision point)."""
    for ea, eb in zip(a.edges, b.edges):
        if ea is not eb:
            return ea
    # One path is a strict prefix of the other (can't happen for distinct
    # entry->exit walks, but be safe).
    return a.edges[len(b.edges)] if len(a.edges) > len(b.edges) else None


def _loop_header_divergence(edge: Edge) -> bool:
    """Does the divergence happen at a loop header (trip-count decision)?"""
    stmt = edge.src.stmt
    return isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)) and edge.kind in _LOOP_KINDS


class CollectiveMatchChecker(Checker):
    rule_id = "rank-divergent-collectives"
    loop_rule_id = "collective-in-rank-loop"
    description = (
        "every rank must execute the same collective sequence: no "
        "rank-dependent branch, early exit, or loop bound may change "
        "which collectives run"
    )
    severity = "error"
    emits = ("rank-divergent-collectives", "collective-in-rank-loop")
    # The communicator implementation itself legitimately branches on rank.
    exempt_paths = ("repro/mpi/",)

    #: Path-enumeration budget per function; incomplete => silent.
    max_paths = 200

    def check(self, module: ModuleModel) -> Iterator[Finding]:
        for unit in module.functions:
            yield from self._check_function(module, unit)

    # -- per function ------------------------------------------------------

    def _check_function(self, module: ModuleModel, unit: FunctionUnit) -> Iterator[Finding]:
        cfg = module.cfg(unit)
        events: dict[int, list[str]] = {}
        for block in cfg.blocks:
            ev = _block_events(block, module, unit.cls)
            if ev:
                events[block.id] = ev
        if not events:
            return
        # Cheap pre-filter: some decision in the function must be
        # rank-dependent, otherwise no rank can diverge here.
        if not any(
            e.cond is not None and _mentions_rank(e.cond)
            for b in cfg.blocks
            for e in b.succs
        ):
            return
        paths, complete = enumerate_paths(cfg, max_paths=self.max_paths)
        if not complete or len(paths) < 2:
            return
        sequences = [_path_sequence(p, events) for p in paths]
        reported: set[int] = set()
        for i in range(len(paths)):
            for j in range(i + 1, len(paths)):
                if sequences[i] == sequences[j]:
                    continue
                edge = _diverging_edge(paths[i], paths[j])
                if edge is None or edge.cond is None:
                    continue
                if not _mentions_rank(edge.cond):
                    continue
                if edge.src.id in reported:
                    continue
                reported.add(edge.src.id)
                yield self._emit(module, unit, edge, paths[i], sequences[i], paths[j], sequences[j])

    def _emit(
        self,
        module: ModuleModel,
        unit: FunctionUnit,
        edge: Edge,
        pa: Path,
        sa: tuple[str, ...],
        pb: Path,
        sb: tuple[str, ...],
    ) -> Finding:
        line = edge.src.line or unit.node.lineno
        col = edge.src.col
        fmt = lambda s: "[" + ", ".join(s) + "]" if s else "[]"  # noqa: E731
        witness = (
            f"path A: {pa.describe()} => collectives {fmt(sa)}",
            f"path B: {pb.describe()} => collectives {fmt(sb)}",
        )
        if _loop_header_divergence(edge):
            rule, msg = self.loop_rule_id, (
                f"collective sequence inside a loop whose bound depends on "
                f"the rank (loop at line {line} in {unit.qualname}): ranks "
                "with fewer iterations stop participating while the rest "
                "block in the collective"
            )
        else:
            rule, msg = self.rule_id, (
                f"rank-dependent decision at line {line} in {unit.qualname} "
                f"makes paths execute different collective sequences "
                f"({fmt(sa)} vs {fmt(sb)}): ranks taking different paths "
                "deadlock the communicator"
            )
        return Finding(
            path=module.path,
            line=line,
            col=col,
            rule_id=rule,
            message=msg,
            severity=self.severity,
            witness=witness,
        )


COLLECTIVE_CHECKERS: tuple[Checker, ...] = (CollectiveMatchChecker(),)
