"""The repo-contract rules inherited from the PR 2 linter.

These five rules are syntactic (single-pass over the AST) and are kept
bug-for-bug compatible with the original ``repro.lint`` engine --
:mod:`repro.lint` is now a thin alias that runs exactly these checkers, so
existing ``# lint: allow(rule-id)`` pragmas and the historical messages
keep working.  The deeper, path-sensitive families (collective matching,
resource typestate, fork safety) live in the sibling checker modules.

Rule catalogue:

``collective-in-rank-branch``
    Collective calls (``comm.barrier``, ``comm.reduce``, ...) inside an
    ``if`` whose condition mentions a rank deadlock the job: MPI collectives
    must be entered by every rank of the communicator.
``timer-balance``
    ``Timer.start()`` without a matching ``stop()`` in the same function
    corrupts phase totals (Figs. 5-6) and raises on the next ``start``.
``memory-pairing``
    ``MemoryTracker.allocate(label=...)`` labels must have a matching
    ``free`` somewhere in the module (and vice versa), else high-water
    marks (Fig. 4) drift across steps.  Only string-literal labels are
    checked.
``analysis-sim-import``
    Analysis, infrastructure, and extract modules must not import
    simulation internals (``repro.miniapp``, ``repro.apps``): the SENSEI
    decoupling (Sec. 3.2) is the paper's core portability claim.
``bare-time-call``
    ``time.time()`` is wall-clock (non-monotonic, coarse); timed hot paths
    must use the :class:`Timer` machinery (``perf_counter``-based).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.analyze.callgraph import COLLECTIVE_NAMES, is_collective_call, receiver_name
from repro.analyze.model import Checker, Finding, ModuleModel

__all__ = ["Rule", "ALL_RULES", "CONTRACT_CHECKERS", "ContractChecker"]

LintFinding = tuple[int, int, str]  # (line, col, message)


@dataclass(frozen=True)
class Rule:
    id: str
    description: str
    check: Callable[[ast.Module, str], Iterator[LintFinding]]
    #: Path substrings (posix-normalized) where the rule does not apply.
    exempt_paths: tuple[str, ...] = ()


# --------------------------------------------------------------------------
# collective-in-rank-branch
# --------------------------------------------------------------------------

#: Re-exported for compatibility with the PR 2 rules module.
_COLLECTIVE_NAMES = COLLECTIVE_NAMES

_receiver_name = receiver_name
_is_collective_call = is_collective_call


def _mentions_rank(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and "rank" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and "rank" in node.attr.lower():
            return True
    return False


def _check_collective_in_rank_branch(
    tree: ast.Module, path: str
) -> Iterator[LintFinding]:
    for node in ast.walk(tree):
        if not (isinstance(node, ast.If) and _mentions_rank(node.test)):
            continue
        for sub in ast.walk(node):
            if sub is node.test or not _is_collective_call(sub):
                continue
            # Skip calls that live in the test expression itself.
            assert isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)
            yield (
                sub.lineno,
                sub.col_offset,
                f"collective '{sub.func.attr}' called inside a "
                "rank-conditional branch "
                f"(if at line {node.lineno}): collectives must be entered "
                "by every rank or the job deadlocks",
            )


# --------------------------------------------------------------------------
# timer-balance
# --------------------------------------------------------------------------


def _is_timer_factory_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "timer"
    )


def _check_timer_balance(tree: ast.Module, path: str) -> Iterator[LintFinding]:
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        timer_vars: dict[str, int] = {}
        starts: dict[str, int] = {}
        stops: dict[str, int] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and _is_timer_factory_call(node.value):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        timer_vars.setdefault(tgt.id, node.lineno)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("start", "stop")
            ):
                recv = node.func.value
                if isinstance(recv, ast.Name):
                    bucket = starts if node.func.attr == "start" else stops
                    bucket[recv.id] = bucket.get(recv.id, 0) + 1
                elif _is_timer_factory_call(recv) and node.func.attr == "start":
                    yield (
                        node.lineno,
                        node.col_offset,
                        "chained .timer(...).start() discards the timer: "
                        "nothing can ever stop it, so its phase total is "
                        "never recorded",
                    )
        for var, lineno in timer_vars.items():
            n_start, n_stop = starts.get(var, 0), stops.get(var, 0)
            if n_start != n_stop:
                yield (
                    lineno,
                    0,
                    f"timer variable '{var}' in {fn.name}() has "
                    f"{n_start} start() but {n_stop} stop() call(s); "
                    "unbalanced timers corrupt phase totals",
                )


# --------------------------------------------------------------------------
# memory-pairing
# --------------------------------------------------------------------------


def _memory_label(node: ast.Call) -> str | None:
    """String-literal label of an allocate/free call, if any."""
    for kw in node.keywords:
        if kw.arg == "label" and isinstance(kw.value, ast.Constant):
            if isinstance(kw.value.value, str):
                return kw.value.value
    for arg in node.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def _is_memory_call(node: ast.AST, attr: str) -> bool:
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return False
    if node.func.attr != attr:
        return False
    recv = _receiver_name(node.func.value)
    return recv is not None and "mem" in recv.lower()


def _check_memory_pairing(tree: ast.Module, path: str) -> Iterator[LintFinding]:
    allocs: dict[str, tuple[int, int]] = {}
    frees: dict[str, tuple[int, int]] = {}
    for node in ast.walk(tree):
        for attr, sink in (("allocate", allocs), ("free", frees)):
            if _is_memory_call(node, attr):
                assert isinstance(node, ast.Call)
                label = _memory_label(node)
                if label is not None:
                    sink.setdefault(label, (node.lineno, node.col_offset))
    for label, (line, col) in sorted(allocs.items(), key=lambda kv: kv[1]):
        if label not in frees:
            yield (
                line,
                col,
                f"memory label {label!r} is allocate()d but never free()d "
                "in this module: per-label accounting drifts and the "
                "tracker's negative-balance guard cannot protect it",
            )
    for label, (line, col) in sorted(frees.items(), key=lambda kv: kv[1]):
        if label not in allocs:
            yield (
                line,
                col,
                f"memory label {label!r} is free()d but never allocate()d "
                "in this module: free() will raise MemoryAccountingError "
                "at runtime",
            )


# --------------------------------------------------------------------------
# analysis-sim-import
# --------------------------------------------------------------------------

_SIM_INTERNAL_PREFIXES = ("repro.miniapp", "repro.apps")
_DECOUPLED_DIRS = ("repro/analysis/", "repro/infrastructure/", "repro/extracts/")


def _check_analysis_sim_import(tree: ast.Module, path: str) -> Iterator[LintFinding]:
    if not any(d in path for d in _DECOUPLED_DIRS):
        return
    for node in ast.walk(tree):
        modules: list[str] = []
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            modules = [node.module]
        for mod in modules:
            if mod.startswith(_SIM_INTERNAL_PREFIXES) or mod in (
                p.rstrip(".") for p in _SIM_INTERNAL_PREFIXES
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"import of simulation internals {mod!r} from an "
                    "analysis/infrastructure module: analyses must consume "
                    "simulations only through the DataAdaptor contract "
                    "(Sec. 3.2)",
                )


# --------------------------------------------------------------------------
# bare-time-call
# --------------------------------------------------------------------------


def _check_bare_time_call(tree: ast.Module, path: str) -> Iterator[LintFinding]:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "time"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
        ):
            yield (
                node.lineno,
                node.col_offset,
                "bare time.time() call: wall-clock time is non-monotonic "
                "and coarse; use Timer/TimerRegistry (perf_counter-based) "
                "for anything measured",
            )


ALL_RULES: tuple[Rule, ...] = (
    Rule(
        id="collective-in-rank-branch",
        description="no collective calls inside rank-conditional branches",
        check=_check_collective_in_rank_branch,
        # The communicator implements collectives and legitimately branches
        # on its own rank (e.g. root-only reduction evaluation).
        exempt_paths=("repro/mpi/",),
    ),
    Rule(
        id="timer-balance",
        description="Timer.start()/stop() must balance per function",
        check=_check_timer_balance,
    ),
    Rule(
        id="memory-pairing",
        description="MemoryTracker allocate/free labels must pair per module",
        check=_check_memory_pairing,
    ),
    Rule(
        id="analysis-sim-import",
        description="analysis modules must not import simulation internals",
        check=_check_analysis_sim_import,
    ),
    Rule(
        id="bare-time-call",
        description="no bare time.time() outside the timer machinery",
        check=_check_bare_time_call,
        exempt_paths=("repro/util/timers.py",),
    ),
)


class ContractChecker(Checker):
    """Adapter running one PR 2 :class:`Rule` on the checker framework."""

    def __init__(self, rule: Rule):
        self.rule = rule
        self.rule_id = rule.id
        self.description = rule.description
        self.severity = "error"
        self.exempt_paths = rule.exempt_paths

    def check(self, module: ModuleModel) -> Iterator[Finding]:
        for line, col, message in self.rule.check(module.tree, module.path):
            yield self.finding(module, line, col, message)


CONTRACT_CHECKERS: tuple[ContractChecker, ...] = tuple(
    ContractChecker(rule) for rule in ALL_RULES
)
