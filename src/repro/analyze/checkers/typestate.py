"""Resource typestate checkers: every acquire must reach its release.

The repo's measurement and transport machinery is full of paired
operations whose imbalance silently corrupts results or leaks kernel
objects: ``Timer.start``/``stop`` (phase totals, Figs. 5-6),
``MemoryTracker.allocate``/``free`` (high-water marks, Fig. 4),
``SharedMemory`` create/close/unlink (the PR 6 zero-copy transport), and
``FramebufferPool.acquire``/``release`` (compositing buffers).  The PR 2
linter counted call sites; these checkers instead run a *typestate*
analysis over the CFG: each tracked resource is a little state machine,
facts are propagated with :class:`~repro.analyze.dataflow.FactSolver`,
and a resource still "open" at function exit -- on the normal **or** the
exceptional path -- is reported together with the CFG path that leaks it.

Exception edges are the point: an ``exc`` edge leaving a statement carries
the state *unchanged* (the statement raised, its effect never happened),
so ``seg = SharedMemory(...); risky(); seg.close()`` correctly reports a
leak on the path where ``risky()`` raises, while ``try/finally`` cleanup
is recognized because the CFG duplicates ``finally`` bodies per
continuation.

Tracking is deliberately dropped ("escape") the moment a resource leaves
the function's hands -- returned, yielded, stored to an attribute,
aliased, or passed to any call that is not one of the resource's own
operations.  Escaped resources produce no findings: missing a real leak
is acceptable, crying wolf on ownership transfer is not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze.callgraph import receiver_name
from repro.analyze.cfg import CFG, Block
from repro.analyze.checkers.contracts import _is_memory_call, _memory_label
from repro.analyze.dataflow import FactSolver
from repro.analyze.model import Checker, Finding, FunctionUnit, ModuleModel

__all__ = [
    "TypestateChecker",
    "TimerSpec",
    "MemorySpec",
    "ShmSpec",
    "FramebufferSpec",
    "TYPESTATE_CHECKERS",
]

#: Fact meaning "this resource does not exist yet on this path".
UNTRACKED = "untracked"

# Event kinds produced per block, applied in order on non-exceptional
# out-edges: ("create", state0) | ("op", opname, line) | ("drop",).
Event = tuple


class _Error:
    """A statement- or exit-level typestate violation."""

    __slots__ = ("rule", "message", "severity", "line", "col", "witness")

    def __init__(self, rule, message, severity, line, col, witness):
        self.rule = rule
        self.message = message
        self.severity = severity
        self.line = line
        self.col = col
        self.witness = witness


class ResourceSpec:
    """One resource family: creation shape, operations, exit contract."""

    rule_id: str = ""
    description: str = ""
    severity: str = "error"
    exempt_paths: tuple[str, ...] = ()
    #: Every rule id this spec can emit (for --rules filtering / listing).
    emits: tuple[str, ...] = ()
    #: Resources are named local variables (enables escape analysis).
    var_based: bool = True
    #: Check leaks on the exceptional exit too?
    check_raise_exit: bool = True

    def creations(self, stmt: ast.stmt) -> list[tuple[str, str]]:
        """(key, initial state) pairs created by this statement."""
        raise NotImplementedError

    def creation_calls(self, node: ast.AST) -> list[tuple[str, str]]:
        """Expression-level creations (non-var-based specs only)."""
        return []

    def op_of(self, call: ast.Call, key: str) -> str | None:
        """Operation name if ``call`` is one of the resource's own ops."""
        raise NotImplementedError

    def apply(self, op: str, state: str, qualname: str, key: str):
        """-> (new state, error message | None, rule id, severity)."""
        raise NotImplementedError

    def exit_error(self, state: str, exceptional: bool, qualname: str, key: str) -> str | None:
        raise NotImplementedError


# --------------------------------------------------------------------------
# Specs
# --------------------------------------------------------------------------


class TimerSpec(ResourceSpec):
    rule_id = "timer-typestate"
    description = "timers created via .timer(...) must be stopped on every path"
    emits = ("timer-typestate",)
    exempt_paths = ("repro/util/timers.py",)

    def creations(self, stmt: ast.stmt) -> list[tuple[str, str]]:
        if not isinstance(stmt, ast.Assign):
            return []
        v = stmt.value
        if not (
            isinstance(v, ast.Call)
            and isinstance(v.func, ast.Attribute)
            and v.func.attr == "timer"
        ):
            return []
        return [
            (t.id, "stopped") for t in stmt.targets if isinstance(t, ast.Name)
        ]

    def op_of(self, call: ast.Call, key: str) -> str | None:
        f = call.func
        if (
            isinstance(f, ast.Attribute)
            and f.attr in ("start", "stop")
            and isinstance(f.value, ast.Name)
            and f.value.id == key
        ):
            return f.attr
        return None

    def apply(self, op: str, state: str, qualname: str, key: str):
        if op == "start":
            if state == "running":
                return (
                    "running",
                    f"timer '{key}' started twice without an intervening "
                    f"stop() in {qualname}: Timer.start() raises on a "
                    "running timer",
                    self.rule_id,
                    "error",
                )
            return ("running", None, self.rule_id, "error")
        # stop
        if state == "stopped":
            return (
                "stopped",
                f"timer '{key}' stopped without a start() on this path in "
                f"{qualname}: Timer.stop() raises on a stopped timer",
                self.rule_id,
                "error",
            )
        return ("stopped", None, self.rule_id, "error")

    def exit_error(self, state: str, exceptional: bool, qualname: str, key: str) -> str | None:
        if state != "running":
            return None
        where = "when an exception escapes" if exceptional else "at function exit"
        return (
            f"timer '{key}' is still running {where} in {qualname}: its "
            "interval is never recorded and the next start() raises; stop "
            "it in a finally block or use TimerRegistry.time()"
        )


class MemorySpec(ResourceSpec):
    rule_id = "memory-typestate"
    description = (
        "allocate(label=...)/free(label=...) must balance on every path "
        "within a function that does both"
    )
    emits = ("memory-typestate",)
    var_based = False  # keys are string labels, not variables
    check_raise_exit = False  # exceptions tear the tracker down anyway

    def creations(self, stmt: ast.stmt) -> list[tuple[str, str]]:
        out = []
        for node in ast.walk(stmt):
            out.extend(self.creation_calls(node))
        return out

    def creation_calls(self, node: ast.AST) -> list[tuple[str, str]]:
        if _is_memory_call(node, "allocate"):
            label = _memory_label(node)  # type: ignore[arg-type]
            if label is not None:
                return [(label, "allocated")]
        return []

    def op_of(self, call: ast.Call, key: str) -> str | None:
        if _is_memory_call(call, "free") and _memory_label(call) == key:
            return "free"
        return None

    def apply(self, op: str, state: str, qualname: str, key: str):
        return ("freed", None, self.rule_id, "error")

    def exit_error(self, state: str, exceptional: bool, qualname: str, key: str) -> str | None:
        if state != "allocated":
            return None
        return (
            f"memory label {key!r} is allocated but not freed on this path "
            f"through {qualname}: the function frees it on other paths, so "
            "per-label accounting drifts step over step"
        )


class ShmSpec(ResourceSpec):
    rule_id = "shm-lifecycle"
    description = (
        "SharedMemory segments must be closed on every path; only their "
        "creator (or designated consumer) may unlink"
    )
    worker_rule_id = "shm-worker-unlink"
    emits = ("shm-lifecycle", "shm-worker-unlink")
    # The transport implements the consume-once protocol: its consumer
    # intentionally unlinks segments it only attached to.
    exempt_paths = ("repro/mpi/shm.py",)

    def creations(self, stmt: ast.stmt) -> list[tuple[str, str]]:
        if not isinstance(stmt, ast.Assign):
            return []
        v = stmt.value
        if not isinstance(v, ast.Call):
            return []
        f = v.func
        name = f.id if isinstance(f, ast.Name) else f.attr if isinstance(f, ast.Attribute) else None
        if name != "SharedMemory":
            return []
        created = any(
            kw.arg == "create" and isinstance(kw.value, ast.Constant) and kw.value.value is True
            for kw in v.keywords
        )
        state = "created" if created else "attached"
        return [(t.id, state) for t in stmt.targets if isinstance(t, ast.Name)]

    def op_of(self, call: ast.Call, key: str) -> str | None:
        f = call.func
        if (
            isinstance(f, ast.Attribute)
            and f.attr in ("close", "unlink")
            and isinstance(f.value, ast.Name)
            and f.value.id == key
        ):
            return f.attr
        return None

    def apply(self, op: str, state: str, qualname: str, key: str):
        if op == "close":
            if state in ("created", "attached"):
                return (f"closed:{state}", None, self.rule_id, "error")
            return (state, None, self.rule_id, "error")
        # unlink
        if state in ("attached", "closed:attached"):
            return (
                "unlinked",
                f"segment '{key}' was attached (create=False) but {qualname} "
                "unlinks it: workers must close() and leave unlink() to the "
                "segment's owner, or a consume-once consumer by protocol",
                self.worker_rule_id,
                "error",
            )
        if state == "created":
            return (
                "unlinked",
                f"segment '{key}' unlinked before close() in {qualname}: "
                "the local mapping outlives the name and masks leak "
                "detection; close() first",
                self.rule_id,
                "warning",
            )
        return ("unlinked", None, self.rule_id, "error")

    def exit_error(self, state: str, exceptional: bool, qualname: str, key: str) -> str | None:
        if state not in ("created", "attached"):
            return None
        where = "when an exception escapes" if exceptional else "at function exit"
        verb = "created" if state == "created" else "attached"
        return (
            f"shared-memory segment '{key}' ({verb}) is never close()d "
            f"{where} in {qualname}: the mapping (and for creators the "
            "named segment) leaks; close in a finally block"
        )


class FramebufferSpec(ResourceSpec):
    rule_id = "framebuffer-release"
    description = "framebuffers acquired from a pool must be released or handed off"
    emits = ("framebuffer-release",)
    check_raise_exit = False  # pools are per-pipeline; teardown reclaims them

    def creations(self, stmt: ast.stmt) -> list[tuple[str, str]]:
        if not isinstance(stmt, ast.Assign):
            return []
        v = stmt.value
        if not (
            isinstance(v, ast.Call)
            and isinstance(v.func, ast.Attribute)
            and v.func.attr == "acquire"
        ):
            return []
        recv = receiver_name(v.func.value)
        if recv is None or "pool" not in recv.lower():
            return []
        return [(t.id, "held") for t in stmt.targets if isinstance(t, ast.Name)]

    def op_of(self, call: ast.Call, key: str) -> str | None:
        f = call.func
        if isinstance(f, ast.Attribute) and f.attr == "release":
            for arg in call.args:
                if isinstance(arg, ast.Name) and arg.id == key:
                    return "release"
        return None

    def apply(self, op: str, state: str, qualname: str, key: str):
        return ("released", None, self.rule_id, "error")

    def exit_error(self, state: str, exceptional: bool, qualname: str, key: str) -> str | None:
        if state != "held":
            return None
        return (
            f"framebuffer '{key}' acquired from a pool is neither released "
            f"nor handed off by {qualname}: the pool grows a buffer per "
            "call and compositing memory is never reused"
        )


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def _escapes(stmt: ast.stmt, key: str, spec: ResourceSpec) -> bool:
    """Does this statement move ``key`` out of the function's hands?

    Passing the bare name to a foreign call transfers ownership;
    passing a *view* of it (``bytes(seg.buf[:n])``) does not.
    """
    if isinstance(stmt, ast.Return):
        return stmt.value is not None and _contains_name(stmt.value, key)
    if isinstance(stmt, ast.Assign):
        for tgt in stmt.targets:
            if isinstance(tgt, (ast.Attribute, ast.Subscript, ast.Tuple, ast.List)):
                if _contains_name(stmt.value, key):
                    return True
            if isinstance(tgt, ast.Name) and tgt.id != key:
                if isinstance(stmt.value, ast.Name) and stmt.value.id == key:
                    return True  # plain alias: the alias now owns it
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
            if _contains_name(node.value, key):
                return True
        if isinstance(node, ast.Call) and spec.op_of(node, key) is None:
            for arg in node.args:
                if _is_name(arg, key):
                    return True
                if isinstance(arg, ast.Starred) and _is_name(arg.value, key):
                    return True
            for kw in node.keywords:
                if _is_name(kw.value, key):
                    return True
    return False


def _is_name(node: ast.AST, name: str) -> bool:
    return isinstance(node, ast.Name) and node.id == name


def _contains_name(node: ast.AST, name: str) -> bool:
    return any(isinstance(n, ast.Name) and n.id == name for n in ast.walk(node))


def _rebinds(stmt: ast.stmt, key: str, spec: ResourceSpec) -> bool:
    """Is the *name* ``key`` itself reassigned (not a store through it)?"""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        if spec.creations(stmt):
            return False  # handled as a (re-)creation event
        targets = stmt.targets
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [i.optional_vars for i in stmt.items if i.optional_vars is not None]
    for t in targets:
        if _is_name(t, key):
            return True
        if isinstance(t, (ast.Tuple, ast.List)) and _contains_name(t, key):
            return True
    return False


class _Tracker:
    """One (spec, key) typestate run over one function CFG."""

    def __init__(self, spec: ResourceSpec, key: str, cfg: CFG, unit: FunctionUnit):
        self.spec = spec
        self.key = key
        self.cfg = cfg
        self.unit = unit
        self.events: dict[int, list[Event]] = {}
        self.creation_line = 0
        self.creation_col = 0
        self._index_blocks()
        self.errors: list[_Error] = []
        self._seen: set[tuple[int, str]] = set()
        self.solver = FactSolver(cfg, self._transfer, UNTRACKED)

    def _index_blocks(self) -> None:
        spec, key = self.spec, self.key
        for block in self.cfg.blocks:
            stmt = block.stmt
            if stmt is None:
                continue
            evs: list[Event] = []
            if spec.var_based:
                created = spec.creations(stmt)
            else:
                created = [
                    c for node in block.walk_owned() for c in spec.creation_calls(node)
                ]
            for ck, state in created:
                if ck == key:
                    evs.append(("create", state))
                    if not self.creation_line:
                        self.creation_line = stmt.lineno
                        self.creation_col = stmt.col_offset
            for node in block.walk_owned():
                if isinstance(node, ast.Call):
                    op = spec.op_of(node, key)
                    if op is not None:
                        evs.append(("op", op, node.lineno))
            if spec.var_based and not any(e[0] == "create" for e in evs):
                if _escapes(stmt, key, spec) or _rebinds(stmt, key, spec):
                    evs.append(("drop",))
            if evs:
                self.events[block.id] = evs

    def _transfer(self, edge, fact):
        if edge.kind == "exc":
            evs = self.events.get(edge.src.id)
            if (
                fact != UNTRACKED
                and evs is not None
                and any(e[0] == "op" for e in evs)
            ):
                # The resource's own op (close/stop/free/...) raised: the
                # release was *attempted*; reporting "leaked because the
                # cleanup call itself blew up" is noise, so stop tracking.
                return ()
            # Any other raising statement: its effects never happened.
            return (fact,)
        evs = self.events.get(edge.src.id)
        if evs is None:
            return (fact,)
        state = fact
        for ev in evs:
            if ev[0] == "create":
                state = ev[1]
            elif ev[0] == "op":
                if state == UNTRACKED:
                    continue  # op on a name this path never created
                new, msg, rule, sev = self.spec.apply(
                    ev[1], state, self.unit.qualname, self.key
                )
                if msg is not None:
                    self._record(edge.src, fact, msg, rule, sev, ev[2])
                state = new
            elif ev[0] == "drop":
                return ()  # escaped: stop tracking on this path
        return (state,)

    def _record(self, block: Block, in_fact, msg: str, rule: str, sev: str, line: int) -> None:
        dkey = (block.id, msg)
        if dkey in self._seen:
            return
        self._seen.add(dkey)
        self.errors.append(
            _Error(rule, msg, sev, line, block.col, self.solver.witness(block, in_fact))
        )

    def run(self) -> list[_Error]:
        self.solver.solve()
        spec = self.spec
        exits = [(self.cfg.exit, False)]
        if spec.check_raise_exit:
            exits.append((self.cfg.raise_exit, True))
        reported_states: set[str] = set()
        for block, exceptional in exits:
            for fact in sorted(self.solver.at(block), key=str):
                if fact == UNTRACKED:
                    continue
                msg = spec.exit_error(fact, exceptional, self.unit.qualname, self.key)
                if msg is None:
                    continue
                if fact in reported_states:
                    continue  # already leaked on the normal exit
                reported_states.add(fact)
                dkey = (block.id, msg)
                if dkey in self._seen:
                    continue
                self._seen.add(dkey)
                self.errors.append(
                    _Error(
                        spec.rule_id,
                        msg,
                        spec.severity,
                        self.creation_line or (self.unit.node.lineno),
                        self.creation_col,
                        self.solver.witness(block, fact),
                    )
                )
        return self.errors


class TypestateChecker(Checker):
    """Runs one :class:`ResourceSpec` over every function in a module."""

    def __init__(self, spec: ResourceSpec):
        self.spec = spec
        self.rule_id = spec.rule_id
        self.description = spec.description
        self.severity = spec.severity
        self.exempt_paths = spec.exempt_paths
        self.emits = spec.emits

    def check(self, module: ModuleModel) -> Iterator[Finding]:
        spec = self.spec
        for unit in module.functions:
            keys: dict[str, bool] = {}
            for node in ast.walk(unit.node):
                if isinstance(node, ast.stmt) and spec.var_based:
                    for key, _ in spec.creations(node):
                        keys[key] = True
                elif not spec.var_based:
                    for key, _ in spec.creation_calls(node):
                        keys[key] = True
            if not keys:
                continue
            has_op: set[str] = set()
            for node in ast.walk(unit.node):
                if isinstance(node, ast.Call):
                    for key in keys:
                        if spec.op_of(node, key) is not None:
                            has_op.add(key)
            cfg = module.cfg(unit)
            for key in keys:
                if not spec.var_based and key not in has_op:
                    # Label-based pairing across functions is legitimate
                    # (allocate here, free in the drain method): only check
                    # functions that do both sides themselves.
                    continue
                for err in _Tracker(spec, key, cfg, unit).run():
                    yield Finding(
                        path=module.path,
                        line=err.line,
                        col=err.col,
                        rule_id=err.rule,
                        message=err.message,
                        severity=err.severity,
                        witness=err.witness,
                    )


TYPESTATE_CHECKERS: tuple[TypestateChecker, ...] = (
    TypestateChecker(TimerSpec()),
    TypestateChecker(MemorySpec()),
    TypestateChecker(ShmSpec()),
    TypestateChecker(FramebufferSpec()),
)
