"""Fork- and pickle-safety checkers for the process-parallel transports.

The PR 5/6 runtimes mix three concurrency regimes -- ``threading`` for
drainers and tile workers, fork-based ``ProcessPoolExecutor``/
``multiprocessing.Process`` for the codec pool and SPMD backend, and
pickled messages over the in-memory/shm transports.  Two hazards follow:

``thread-before-fork``
    A fork taken while the parent already created threads (or locks)
    clones a child whose copied lock state can never be released by the
    (non-existent) owning thread -- the classic fork-after-thread
    deadlock.  The checker runs a reaching-events analysis over each
    function's CFG: if any path reaches a fork-based launch with a
    thread/lock creation already behind it, it reports, with the path
    through the thread site as witness.  Module-local calls are resolved
    through the call graph, so a constructor that spins up a drainer
    thread taints its callers.

``mutate-after-send``
    The in-memory and shm transports hand a buffer to ``send()`` whose
    bytes are captured at an unspecified point (pickled eagerly today,
    but the MPI contract -- and any future nonblocking transport -- only
    guarantees capture by the next synchronization).  Mutating an ndarray
    between a ``send`` and the next collective is therefore latently
    racy: the checker tracks sent names per path and flags in-place
    mutations (subscript/attribute stores, ``AugAssign``, mutating ndarray
    methods, ``out=`` kwargs, ``np.copyto``) before a collective clears
    the in-flight set.  Reported as a warning: today's eager transports
    make it a portability hazard, not a live bug.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze.callgraph import (
    is_collective_call,
    is_fork_launch,
    is_thread_creation,
    receiver_name,
)
from repro.analyze.cfg import Block
from repro.analyze.dataflow import SetSolver, shortest_path
from repro.analyze.model import Checker, Finding, FunctionUnit, ModuleModel

__all__ = ["ThreadBeforeForkChecker", "MutateAfterSendChecker", "FORKSAFETY_CHECKERS"]

_SEND_NAMES = frozenset({"send", "isend", "ssend"})

_MUTATING_METHODS = frozenset(
    {"fill", "sort", "resize", "put", "partition", "itemset", "byteswap", "setfield"}
)


def _is_comm_receiver(recv: str | None) -> bool:
    if recv is None:
        return False
    recv = recv.lower()
    return "comm" in recv or recv in {"world", "group"}


def _is_send_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _SEND_NAMES
        and _is_comm_receiver(receiver_name(node.func.value))
    )


class ThreadBeforeForkChecker(Checker):
    rule_id = "thread-before-fork"
    description = (
        "no thread/lock creation may be reachable before a fork-based "
        "process launch in the same module"
    )
    severity = "error"
    emits = ("thread-before-fork",)

    def check(self, module: ModuleModel) -> Iterator[Finding]:
        cg = module.callgraph
        for unit in module.functions:
            fn = unit.node
            # Cheap pre-filter before building the CFG.
            any_thread = any_fork = False
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    if is_thread_creation(node):
                        any_thread = True
                    if is_fork_launch(node):
                        any_fork = True
                    callee = cg._callee_name(node, unit.cls)
                    if callee is not None:
                        if cg.creates_thread(callee):
                            any_thread = True
                        if cg.creates_fork(callee):
                            any_fork = True
            if not (any_thread and any_fork):
                continue
            yield from self._check_function(module, unit)

    def _check_function(self, module: ModuleModel, unit: FunctionUnit) -> Iterator[Finding]:
        cfg = module.cfg(unit)
        cg = module.callgraph

        def classify(block: Block) -> tuple[list[tuple], list[tuple]]:
            """(thread events, fork sites) contributed by this block."""
            threads: list[tuple] = []
            forks: list[tuple] = []
            for node in block.walk_owned():
                if not isinstance(node, ast.Call):
                    continue
                if is_thread_creation(node):
                    threads.append(("thread", _call_name(node), node.lineno, block.id))
                elif is_fork_launch(node):
                    forks.append((_call_name(node), node.lineno))
                else:
                    callee = cg._callee_name(node, unit.cls)
                    if callee is None:
                        continue
                    if cg.creates_thread(callee):
                        threads.append(("thread-via", callee, node.lineno, block.id))
                    if cg.creates_fork(callee):
                        forks.append((f"{callee}()", node.lineno))
            return threads, forks

        per_block = {b.id: classify(b) for b in cfg.blocks}
        solver = SetSolver(cfg, lambda b: frozenset(per_block[b.id][0])).solve()
        by_id = {b.id: b for b in cfg.blocks}
        for block in cfg.blocks:
            forks = per_block[block.id][1]
            if not forks:
                continue
            reaching = sorted(solver.before(block), key=lambda ev: ev[2])
            if not reaching:
                continue
            kind, what, tline, tblock = reaching[0]
            fname, fline = forks[0]
            via = "" if kind == "thread" else f" (via {what}())"
            yield self.finding(
                module,
                fline,
                block.col,
                f"fork-based launch '{fname}' at line {fline} in "
                f"{unit.qualname} is reachable after a thread/lock was "
                f"created at line {tline}{via}: forking a threaded process "
                "clones lock state no child thread can ever release",
                witness=shortest_path(cfg, block, via=by_id.get(tblock)),
            )


def _call_name(node: ast.Call) -> str:
    f = node.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return "<call>"


class MutateAfterSendChecker(Checker):
    rule_id = "mutate-after-send"
    description = (
        "no in-place ndarray mutation between a point-to-point send and "
        "the next collective"
    )
    severity = "warning"
    emits = ("mutate-after-send",)

    def check(self, module: ModuleModel) -> Iterator[Finding]:
        for unit in module.functions:
            if not any(_is_send_call(n) for n in ast.walk(unit.node)):
                continue
            yield from self._check_function(module, unit)

    def _check_function(self, module: ModuleModel, unit: FunctionUnit) -> Iterator[Finding]:
        cfg = module.cfg(unit)

        def sends(block: Block) -> frozenset:
            out = set()
            for node in block.walk_owned():
                if _is_send_call(node):
                    assert isinstance(node, ast.Call)
                    for arg in node.args[:1]:  # the payload argument
                        if isinstance(arg, ast.Name):
                            out.add((arg.id, node.lineno, block.id))
            return frozenset(out)

        def clears(block: Block, flowing: frozenset) -> frozenset:
            # A collective is a synchronization point: sends are complete.
            if any(is_collective_call(n) for n in block.walk_owned()):
                return frozenset()
            rebound = _rebound_names(block)
            if rebound:
                flowing = frozenset(ev for ev in flowing if ev[0] not in rebound)
            return flowing

        solver = SetSolver(cfg, sends, kill=clears).solve()
        by_id = {b.id: b for b in cfg.blocks}
        seen: set[tuple[int, str]] = set()
        for block in cfg.blocks:
            inflight = solver.before(block)
            if not inflight:
                continue
            mutated = _mutated_names(block)
            for var, sline, sblock in sorted(inflight, key=lambda ev: ev[1]):
                if var not in mutated or (block.id, var) in seen:
                    continue
                seen.add((block.id, var))
                line = block.line or sline
                yield self.finding(
                    module,
                    line,
                    block.col,
                    f"'{var}' sent at line {sline} in {unit.qualname} is "
                    f"mutated in place at line {line} before the next "
                    "collective: the transport only guarantees the bytes "
                    "are captured by the next synchronization, so this is "
                    "latently racy",
                    witness=shortest_path(cfg, block, via=by_id.get(sblock)),
                )


def _rebound_names(block: Block) -> set[str]:
    stmt = block.stmt
    names: set[str] = set()
    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            if isinstance(t, ast.Name):
                names.add(t.id)
    elif isinstance(stmt, (ast.AnnAssign,)) and isinstance(stmt.target, ast.Name):
        names.add(stmt.target.id)
    return names


def _mutated_names(block: Block) -> set[str]:
    """Names mutated in place by this block's statement."""
    out: set[str] = set()
    stmt = block.stmt
    if stmt is None:
        return out
    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            base = _store_base(t)
            if base is not None:
                out.add(base)
    if isinstance(stmt, ast.AugAssign):
        base = _store_base(stmt.target)
        if base is not None:
            out.add(base)
        if isinstance(stmt.target, ast.Name):
            out.add(stmt.target.id)
    for node in block.walk_owned():
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        if isinstance(f, ast.Attribute) and f.attr in _MUTATING_METHODS:
            if isinstance(f.value, ast.Name):
                out.add(f.value.id)
        if isinstance(f, ast.Attribute) and f.attr == "copyto" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Name):
                out.add(first.id)
        for kw in node.keywords:
            if kw.arg == "out" and isinstance(kw.value, ast.Name):
                out.add(kw.value.id)
    return out


def _store_base(target: ast.expr) -> str | None:
    """``x[i] = ...`` / ``x.attr = ...`` mutate ``x`` in place."""
    if isinstance(target, (ast.Subscript, ast.Attribute)):
        node = target.value
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
    return None


FORKSAFETY_CHECKERS: tuple[Checker, ...] = (
    ThreadBeforeForkChecker(),
    MutateAfterSendChecker(),
)
