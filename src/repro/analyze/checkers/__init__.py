"""Checker registry: every rule the analyzer knows about.

Three families plus the inherited PR 2 contract rules:

- :mod:`repro.analyze.checkers.contracts` -- the five syntactic rules the
  old ``repro.lint`` shipped (ported verbatim; ``repro.lint`` now runs
  exactly these through this engine);
- :mod:`repro.analyze.checkers.collectives` -- path-sensitive collective
  sequence matching over the CFG;
- :mod:`repro.analyze.checkers.typestate` -- resource state machines
  (timers, memory labels, shared-memory segments, framebuffers);
- :mod:`repro.analyze.checkers.forksafety` -- thread-before-fork and
  mutate-after-pickled-send.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyze.checkers.collectives import COLLECTIVE_CHECKERS
from repro.analyze.checkers.contracts import ALL_RULES, CONTRACT_CHECKERS
from repro.analyze.checkers.forksafety import FORKSAFETY_CHECKERS
from repro.analyze.checkers.typestate import TYPESTATE_CHECKERS
from repro.analyze.model import Checker

__all__ = ["ALL_CHECKERS", "RULE_CATALOG", "RuleMeta", "checker_emits", "ALL_RULES"]


ALL_CHECKERS: tuple[Checker, ...] = (
    CONTRACT_CHECKERS + COLLECTIVE_CHECKERS + TYPESTATE_CHECKERS + FORKSAFETY_CHECKERS
)


def checker_emits(checker: Checker) -> tuple[str, ...]:
    """Rule ids a checker can produce (most produce exactly one)."""
    emits = getattr(checker, "emits", None)
    return tuple(emits) if emits else (checker.rule_id,)


@dataclass(frozen=True)
class RuleMeta:
    id: str
    description: str
    severity: str


def _catalog() -> tuple[RuleMeta, ...]:
    rules: list[RuleMeta] = []
    seen: set[str] = set()
    extra_descriptions = {
        "collective-in-rank-loop": (
            "no collective may sit in a loop whose trip count depends on the rank"
        ),
        "shm-worker-unlink": (
            "attached (create=False) segments must not be unlinked by workers"
        ),
    }
    for checker in ALL_CHECKERS:
        for rid in checker_emits(checker):
            if rid in seen:
                continue
            seen.add(rid)
            desc = checker.description if rid == checker.rule_id else extra_descriptions[rid]
            sev = checker.severity
            rules.append(RuleMeta(rid, desc, sev))
    return tuple(rules)


RULE_CATALOG: tuple[RuleMeta, ...] = _catalog()
