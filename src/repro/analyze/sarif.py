"""SARIF 2.1.0 export for analyzer findings.

One run, one driver (``repro-analyze``), one rule entry per catalog rule,
one result per finding.  Findings with a CFG path witness export it as a
``codeFlow`` whose thread-flow locations carry the step descriptions, so
SARIF viewers (and the GitHub code-scanning UI) can replay the path that
leads to the defect.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.analyze.checkers import RULE_CATALOG
from repro.analyze.model import Finding

__all__ = ["to_sarif", "sarif_json"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _rule_entries() -> list[dict]:
    return [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": _LEVELS.get(rule.severity, "warning")},
        }
        for rule in RULE_CATALOG
    ]


def _location(finding: Finding) -> dict:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": finding.path},
            "region": {
                "startLine": finding.line,
                "startColumn": finding.col + 1,
            },
        }
    }


def _code_flow(finding: Finding) -> dict:
    steps = []
    for step in finding.witness:
        steps.append(
            {
                "location": {
                    **_location(finding),
                    "message": {"text": step},
                }
            }
        )
    return {"threadFlows": [{"locations": steps}]}


def to_sarif(findings: Iterable[Finding], tool_version: str = "1.0.0") -> dict:
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule_id,
            "level": _LEVELS.get(f.severity, "warning"),
            "message": {"text": f.message},
            "locations": [_location(f)],
        }
        if f.witness:
            result["codeFlows"] = [_code_flow(f)]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": "https://example.invalid/repro",
                        "version": tool_version,
                        "rules": _rule_entries(),
                    }
                },
                "results": results,
            }
        ],
    }


def sarif_json(findings: Iterable[Finding], tool_version: str = "1.0.0") -> str:
    return json.dumps(to_sarif(findings, tool_version), indent=2, sort_keys=True)
