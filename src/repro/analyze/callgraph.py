"""Module-level call graph with interprocedural effect summaries.

The checkers are intraprocedural over CFGs, but two bug classes routinely
hide one call deep: a rank-guarded helper that *transitively* enters a
collective, and a constructor that spins up a thread before the caller
forks.  This module gives each function in a module a summary --

- ``collectives``: communicator collectives the function calls directly;
- ``thread_sites`` / ``fork_sites``: direct thread/lock creations and
  fork-based pool/process launches;
- ``calls``: locally-resolvable callees (module functions, ``Class.method``
  via ``self.``/``cls.``, and ``ClassName(...)`` as ``Class.__init__``)

-- plus transitive predicates (:meth:`CallGraph.has_collective`,
:meth:`CallGraph.creates_thread`, :meth:`CallGraph.creates_fork`) computed
by memoized DFS that is cycle-safe.  Resolution is deliberately local to
the module: imported callees are unknown and contribute nothing, which
keeps the summaries cheap and the false-positive rate near zero.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CallGraph", "FunctionSummary", "receiver_name"]

#: Collective methods of the repo's Communicator (kept in sync with
#: checkers.contracts, which owns the canonical set).
COLLECTIVE_NAMES = frozenset(
    {
        "barrier",
        "bcast",
        "reduce",
        "allreduce",
        "allreduce_minmax",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "exscan",
        "split",
        "dup",
    }
)

_THREAD_FACTORIES = frozenset(
    {
        "Thread",
        "Timer",
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "ThreadPoolExecutor",
    }
)

_FORK_RECEIVERS = frozenset({"multiprocessing", "mp", "mpctx", "ctx", "context", "mp_context"})


def receiver_name(node: ast.expr) -> str | None:
    """Rightmost identifier of a call receiver (``self.comm`` -> ``comm``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def is_collective_call(node: ast.AST) -> bool:
    """A collective method call on a communicator-shaped receiver."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return False
    if node.func.attr not in COLLECTIVE_NAMES:
        return False
    recv = receiver_name(node.func.value)
    if recv is None:
        return False
    recv = recv.lower()
    return "comm" in recv or recv in {"world", "group"}


def is_thread_creation(node: ast.AST) -> bool:
    """``threading.Thread(...)``-style thread/lock/executor creation."""
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    if isinstance(fn, ast.Attribute):
        base = fn.value
        if isinstance(base, ast.Name) and base.id in ("threading", "futures", "concurrent"):
            return fn.attr in _THREAD_FACTORIES
        return False
    if isinstance(fn, ast.Name):
        return fn.id in ("Thread", "ThreadPoolExecutor")
    return False


def is_fork_launch(node: ast.AST) -> bool:
    """Fork-based pool/process creation: ``ProcessPoolExecutor``,
    ``multiprocessing.Process`` (and context aliases), ``os.fork``."""
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    if isinstance(fn, ast.Name):
        return fn.id in ("ProcessPoolExecutor", "Process")
    if isinstance(fn, ast.Attribute):
        if fn.attr == "ProcessPoolExecutor":
            return True
        if fn.attr == "fork" and isinstance(fn.value, ast.Name) and fn.value.id == "os":
            return True
        if fn.attr == "Process":
            recv = receiver_name(fn.value)
            return recv is not None and recv.lower() in _FORK_RECEIVERS
    return False


@dataclass
class FunctionSummary:
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None
    calls: set[str] = field(default_factory=set)
    collectives: list[tuple[str, int]] = field(default_factory=list)
    thread_sites: list[int] = field(default_factory=list)
    fork_sites: list[int] = field(default_factory=list)


class CallGraph:
    """Summaries for every function/method defined in one module."""

    def __init__(self, tree: ast.Module):
        self.functions: dict[str, FunctionSummary] = {}
        self._collect(tree)
        self._memo: dict[tuple[str, str], bool] = {}

    # -- construction ------------------------------------------------------

    def _collect(self, tree: ast.Module) -> None:
        classes: dict[str, ast.ClassDef] = {}

        def visit_body(body: list[ast.stmt], cls: str | None) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{cls}.{node.name}" if cls else node.name
                    self.functions[qual] = self._summarize(node, qual, cls)
                    # Nested defs get their own (less resolvable) summaries.
                    visit_body(node.body, cls)
                elif isinstance(node, ast.ClassDef):
                    classes[node.name] = node
                    visit_body(node.body, node.name)

        visit_body(tree.body, None)
        self._classes = classes

    def _summarize(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, qual: str, cls: str | None
    ) -> FunctionSummary:
        s = FunctionSummary(qual, fn, cls)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            if is_collective_call(node):
                assert isinstance(node.func, ast.Attribute)
                s.collectives.append((node.func.attr, node.lineno))
            if is_thread_creation(node):
                s.thread_sites.append(node.lineno)
            if is_fork_launch(node):
                s.fork_sites.append(node.lineno)
            callee = self._callee_name(node, cls)
            if callee is not None:
                s.calls.add(callee)
        return s

    def _callee_name(self, call: ast.Call, cls: str | None) -> str | None:
        fn = call.func
        if isinstance(fn, ast.Name):
            return fn.id  # module function or ClassName(...)
        if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
            if fn.value.id in ("self", "cls") and cls is not None:
                return f"{cls}.{fn.attr}"
        return None

    # -- resolution --------------------------------------------------------

    def resolve(self, name: str) -> FunctionSummary | None:
        """A summary for ``name``; class names resolve to ``__init__``."""
        s = self.functions.get(name)
        if s is not None:
            return s
        if name in getattr(self, "_classes", {}):
            return self.functions.get(f"{name}.__init__")
        return None

    # -- transitive predicates ---------------------------------------------

    def _transitive(self, qual: str, what: str) -> bool:
        key = (qual, what)
        if key in self._memo:
            return self._memo[key]
        self._memo[key] = False  # cycle guard: assume False while exploring
        s = self.functions.get(qual)
        if s is None:
            return False
        direct = {
            "collective": bool(s.collectives),
            "thread": bool(s.thread_sites),
            "fork": bool(s.fork_sites),
        }[what]
        result = direct or any(
            self._transitive(callee.qualname, what)
            for callee in filter(None, (self.resolve(c) for c in s.calls))
            if callee.qualname != qual
        )
        self._memo[key] = result
        return result

    def has_collective(self, name: str) -> bool:
        s = self.resolve(name)
        return s is not None and self._transitive(s.qualname, "collective")

    def creates_thread(self, name: str) -> bool:
        s = self.resolve(name)
        return s is not None and self._transitive(s.qualname, "thread")

    def creates_fork(self, name: str) -> bool:
        s = self.resolve(name)
        return s is not None and self._transitive(s.qualname, "fork")

    def first_collective(self, name: str) -> tuple[str, int] | None:
        """A representative (collective, line) a call to ``name`` reaches."""
        s = self.resolve(name)
        if s is None:
            return None
        seen: set[str] = set()
        stack = [s]
        while stack:
            cur = stack.pop()
            if cur.qualname in seen:
                continue
            seen.add(cur.qualname)
            if cur.collectives:
                return cur.collectives[0]
            for c in sorted(cur.calls):
                nxt = self.resolve(c)
                if nxt is not None:
                    stack.append(nxt)
        return None
