"""Per-function control-flow graphs over the Python AST.

Every checker in :mod:`repro.analyze` that reasons about *paths* -- which
collectives a rank executes, whether a timer is stopped before the function
returns, whether a shared-memory segment reaches ``close()`` on the
exception path -- runs over the CFGs built here rather than over the raw
syntax tree.  The graph is deliberately fine-grained: **one statement per
block**.  Functions in this repo are small, and statement-granular blocks
make exception edges precise (an edge leaving a statement models "this
statement raised, its effect did not happen"), which is exactly the
precision the resource-typestate checkers need.

Shape of the graph:

- synthetic ``entry`` and ``exit`` blocks, plus a distinct ``raise_exit``
  reached by paths that leave the function with an unhandled exception;
- every simple statement is one block; compound statements contribute a
  *head* block holding only their header expressions (``if``/``while``
  tests, ``for`` iterables, ``with`` context expressions) -- use
  :meth:`Block.owned_nodes` to get the AST a block actually executes;
- branch edges carry their condition (``kind`` in ``{"true", "false",
  "loop", "exit"}`` plus ``cond``), loops get a ``back`` edge, and
  statements that can raise (they contain a call, ``yield``, ``await``,
  ``raise`` or ``assert``) get an ``exc`` edge to the innermost enclosing
  handler chain, else to ``raise_exit``;
- ``try``/``finally`` is modeled by *duplicating* the ``finally`` body per
  continuation kind (normal completion, exception propagation, ``return``,
  ``break``/``continue``), so a path that runs the body to completion can
  never leak into the exceptional continuation -- the imprecision that
  would otherwise manufacture false "leaked on exception path" findings.

Path enumeration (:func:`enumerate_paths`) walks the graph depth-first
with every back edge taken at most once -- i.e. loops contribute their
zero- and one-iteration unrollings -- and a hard cap on the number of
paths; callers must treat a truncated enumeration as "no findings" rather
than report from a partial view.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["Block", "Edge", "CFG", "build_cfg", "enumerate_paths", "Path"]

#: Edge kinds that represent a *decision* (several successors exist and
#: runtime state picks one).  ``back`` is a loop re-entry; ``case`` /
#: ``nomatch`` come from ``match`` statements.
DECISION_KINDS = frozenset({"true", "false", "loop", "exit", "case", "nomatch", "back"})


class Edge:
    """A directed CFG edge; ``cond`` is the controlling expression, if any."""

    __slots__ = ("src", "dst", "kind", "cond")

    def __init__(self, src: "Block", dst: "Block", kind: str, cond: ast.expr | None):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.cond = cond

    def describe(self) -> str:
        where = f"L{self.src.line}" if self.src.line else self.src.label
        if self.kind in ("true", "false"):
            return f"{where}: branch {self.kind}"
        if self.kind == "loop":
            return f"{where}: enter loop"
        if self.kind == "exit":
            return f"{where}: skip/leave loop"
        if self.kind == "back":
            return f"{where}: loop again"
        if self.kind == "exc":
            return f"{where}: raises"
        if self.kind == "return":
            return f"{where}: return"
        return where

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Edge({self.src.label}->{self.dst.label}, {self.kind})"


class Block:
    """One CFG node: a single statement, or a synthetic join/entry/exit."""

    __slots__ = ("id", "stmt", "label", "succs", "preds")

    def __init__(self, id: int, stmt: ast.stmt | None, label: str):
        self.id = id
        self.stmt = stmt
        self.label = label
        self.succs: list[Edge] = []
        self.preds: list[Edge] = []

    @property
    def line(self) -> int | None:
        return getattr(self.stmt, "lineno", None)

    @property
    def col(self) -> int:
        return getattr(self.stmt, "col_offset", 0)

    def owned_nodes(self) -> list[ast.AST]:
        """The AST this block *executes* (head exprs for compound stmts)."""
        s = self.stmt
        if s is None:
            return []
        if isinstance(s, (ast.If, ast.While)):
            return [s.test]
        if isinstance(s, (ast.For, ast.AsyncFor)):
            return [s.target, s.iter]
        if isinstance(s, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in s.items]
        if isinstance(s, ast.Match):
            return [s.subject]
        if isinstance(s, ast.Try):
            return []
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return []
        return [s]

    def walk_owned(self) -> Iterator[ast.AST]:
        for node in self.owned_nodes():
            yield from ast.walk(node)

    def describe(self) -> str:
        if self.stmt is None:
            return self.label
        return f"{self.label}@L{self.line}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Block({self.describe()})"


class CFG:
    """Control-flow graph of one function definition."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str):
        self.func = func
        self.qualname = qualname
        self.blocks: list[Block] = []
        self.entry = self._block(None, "entry")
        self.exit = self._block(None, "exit")
        self.raise_exit = self._block(None, "raise-exit")

    def _block(self, stmt: ast.stmt | None, label: str) -> Block:
        b = Block(len(self.blocks), stmt, label)
        self.blocks.append(b)
        return b

    def edge(self, src: Block, dst: Block, kind: str, cond: ast.expr | None = None) -> Edge:
        e = Edge(src, dst, kind, cond)
        src.succs.append(e)
        dst.preds.append(e)
        return e


# --------------------------------------------------------------------------
# Builder
# --------------------------------------------------------------------------


class _LoopFrame:
    __slots__ = ("header", "after")

    def __init__(self, header: Block, after: Block):
        self.header = header
        self.after = after


class _TryFrame:
    __slots__ = ("handlers", "catch_all", "finalbody", "exc_channel")

    def __init__(self, handlers: list[Block], catch_all: bool, finalbody: list[ast.stmt]):
        self.handlers = handlers
        self.catch_all = catch_all
        self.finalbody = finalbody
        #: Shared entry block of the exceptional finally copy (built lazily;
        #: all may-raise statements in this try route through the one copy).
        self.exc_channel: Block | None = None


def _may_raise(stmt: ast.stmt, head_nodes: list[ast.AST]) -> bool:
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for node in head_nodes:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Call, ast.Yield, ast.YieldFrom, ast.Await)):
                return True
    return False


def _is_literal_true(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Constant) and expr.value is True


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str):
        self.cfg = CFG(func, qualname)
        self.frames: list[_LoopFrame | _TryFrame] = []

    def build(self) -> CFG:
        end = self._seq(self.cfg.func.body, self.cfg.entry, "fall", None)
        if end is not None:
            self.cfg.edge(end, self.cfg.exit, "fall")
        return self.cfg

    # -- statement sequencing ----------------------------------------------

    def _seq(
        self,
        stmts: list[ast.stmt],
        cursor: Block | None,
        kind: str,
        cond: ast.expr | None,
    ) -> Block | None:
        """Chain ``stmts`` after ``cursor``; returns the open end (or None
        when every path through the sequence terminated abruptly)."""
        first = True
        for stmt in stmts:
            if cursor is None:
                break
            cursor = self._stmt(stmt, cursor, kind if first else "fall", cond if first else None)
            first = False
        if first and cursor is not None and kind != "fall":
            # Empty sequence on a branch: materialize the edge via a join.
            join = self.cfg._block(None, "join")
            self.cfg.edge(cursor, join, kind, cond)
            return join
        return cursor

    def _simple(self, stmt: ast.stmt, cursor: Block, kind: str, cond: ast.expr | None) -> Block:
        b = self.cfg._block(stmt, type(stmt).__name__.lower())
        self.cfg.edge(cursor, b, kind, cond)
        if _may_raise(stmt, b.owned_nodes()):
            self._propagate_exception(b)
        return b

    def _stmt(
        self, stmt: ast.stmt, cursor: Block, kind: str, cond: ast.expr | None
    ) -> Block | None:
        if isinstance(stmt, ast.If):
            return self._if(stmt, cursor, kind, cond)
        if isinstance(stmt, ast.While):
            return self._while(stmt, cursor, kind, cond)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, cursor, kind, cond)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, cursor, kind, cond)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            b = self._simple(stmt, cursor, kind, cond)
            return self._seq(stmt.body, b, "fall", None)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, cursor, kind, cond)
        if isinstance(stmt, ast.Return):
            b = self._simple(stmt, cursor, kind, cond)
            self._unwind(b, "return", None)
            return None
        if isinstance(stmt, ast.Raise):
            # _simple already routed the raise to handlers / raise_exit.
            self._simple(stmt, cursor, kind, cond)
            return None
        if isinstance(stmt, ast.Break):
            b = self._simple(stmt, cursor, kind, cond)
            self._unwind(b, "break", self._innermost_loop())
            return None
        if isinstance(stmt, ast.Continue):
            b = self._simple(stmt, cursor, kind, cond)
            self._unwind(b, "continue", self._innermost_loop())
            return None
        # FunctionDef / ClassDef / Assign / Expr / Import / ... : one block.
        return self._simple(stmt, cursor, kind, cond)

    # -- compound statements -----------------------------------------------

    def _if(self, stmt: ast.If, cursor: Block, kind: str, cond: ast.expr | None) -> Block | None:
        head = self._simple(stmt, cursor, kind, cond)
        after = self.cfg._block(None, "join")
        t_end = self._seq(stmt.body, head, "true", stmt.test)
        if t_end is not None:
            self.cfg.edge(t_end, after, "fall")
        if stmt.orelse:
            f_end = self._seq(stmt.orelse, head, "false", stmt.test)
            if f_end is not None:
                self.cfg.edge(f_end, after, "fall")
        else:
            self.cfg.edge(head, after, "false", stmt.test)
        return after if after.preds else None

    def _while(
        self, stmt: ast.While, cursor: Block, kind: str, cond: ast.expr | None
    ) -> Block | None:
        header = self._simple(stmt, cursor, kind, cond)
        after = self.cfg._block(None, "loop-exit")
        self.frames.append(_LoopFrame(header, after))
        body_end = self._seq(stmt.body, header, "true", stmt.test)
        if body_end is not None:
            self.cfg.edge(body_end, header, "back")
        self.frames.pop()
        if not _is_literal_true(stmt.test):
            if stmt.orelse:
                oe = self._seq(stmt.orelse, header, "false", stmt.test)
                if oe is not None:
                    self.cfg.edge(oe, after, "fall")
            else:
                self.cfg.edge(header, after, "false", stmt.test)
        return after if after.preds else None

    def _for(
        self, stmt: ast.For | ast.AsyncFor, cursor: Block, kind: str, cond: ast.expr | None
    ) -> Block | None:
        header = self._simple(stmt, cursor, kind, cond)
        after = self.cfg._block(None, "loop-exit")
        self.frames.append(_LoopFrame(header, after))
        body_end = self._seq(stmt.body, header, "loop", stmt.iter)
        if body_end is not None:
            self.cfg.edge(body_end, header, "back")
        self.frames.pop()
        if stmt.orelse:
            oe = self._seq(stmt.orelse, header, "exit", stmt.iter)
            if oe is not None:
                self.cfg.edge(oe, after, "fall")
        else:
            self.cfg.edge(header, after, "exit", stmt.iter)
        return after if after.preds else None

    def _match(
        self, stmt: ast.Match, cursor: Block, kind: str, cond: ast.expr | None
    ) -> Block | None:
        head = self._simple(stmt, cursor, kind, cond)
        after = self.cfg._block(None, "join")
        for case in stmt.cases:
            c_end = self._seq(case.body, head, "case", case.guard or stmt.subject)
            if c_end is not None:
                self.cfg.edge(c_end, after, "fall")
        self.cfg.edge(head, after, "nomatch", stmt.subject)
        return after if after.preds else None

    def _try(self, stmt: ast.Try, cursor: Block, kind: str, cond: ast.expr | None) -> Block | None:
        # Hop through a synthetic block so the incoming branch edge does not
        # land directly on the first body statement (keeps kinds uniform).
        if kind != "fall":
            hop = self.cfg._block(None, "try")
            self.cfg.edge(cursor, hop, kind, cond)
            cursor = hop
        after = self.cfg._block(None, "join")
        handler_entries = [
            self.cfg._block(h, f"except@{h.lineno}") for h in stmt.handlers
        ]
        catch_all = any(
            h.type is None
            or (isinstance(h.type, ast.Name) and h.type.id in ("Exception", "BaseException"))
            for h in stmt.handlers
        )
        body_frame = _TryFrame(handler_entries, catch_all, stmt.finalbody)
        self.frames.append(body_frame)
        body_end = self._seq(stmt.body, cursor, "fall", None)
        self.frames.pop()

        # Handlers and orelse run with the body's handlers out of scope but
        # still under this try's finally.
        protect: _TryFrame | None = None
        if stmt.finalbody:
            protect = _TryFrame([], False, stmt.finalbody)
            self.frames.append(protect)

        def _through_finally(end: Block | None) -> None:
            if end is None:
                return
            if stmt.finalbody:
                # The normal-completion finally copy runs outside this
                # try's own protection.
                saved = self.frames
                self.frames = [f for f in saved if f is not protect]
                end = self._seq(stmt.finalbody, end, "fall", None)
                self.frames = saved
                if end is None:
                    return
            self.cfg.edge(end, after, "fall")

        if body_end is not None and stmt.orelse:
            body_end = self._seq(stmt.orelse, body_end, "fall", None)
        _through_finally(body_end)

        for h, entry in zip(stmt.handlers, handler_entries):
            h_end = self._seq(h.body, entry, "fall", None)
            _through_finally(h_end)

        if protect is not None:
            self.frames.pop()
        return after if after.preds else None

    # -- abrupt control flow -----------------------------------------------

    def _innermost_loop(self) -> _LoopFrame | None:
        for fr in reversed(self.frames):
            if isinstance(fr, _LoopFrame):
                return fr
        return None

    def _unwind(self, src: Block, kind: str, target: _LoopFrame | None) -> None:
        """Route a ``return``/``break``/``continue`` through pending
        ``finally`` bodies (each gets a fresh copy) to its destination."""
        frames = list(self.frames)
        cursor: Block | None = src
        for i in range(len(frames) - 1, -1, -1):
            fr = frames[i]
            if isinstance(fr, _TryFrame) and fr.finalbody:
                saved = self.frames
                self.frames = frames[:i]
                cursor = self._seq(fr.finalbody, cursor, "fall", None)
                self.frames = saved
                if cursor is None:
                    return  # the finally body itself ended the flow
            if isinstance(fr, _LoopFrame) and fr is target:
                if kind == "break":
                    self.cfg.edge(cursor, fr.after, "fall")
                else:
                    self.cfg.edge(cursor, fr.header, "back")
                return
        if kind == "return":
            self.cfg.edge(cursor, self.cfg.exit, "return")
        elif kind in ("break", "continue"):  # pragma: no cover - syntax error
            self.cfg.edge(cursor, self.cfg.exit, "return")

    def _propagate_exception(self, src: Block) -> None:
        """Connect ``src``'s potential raise to handlers / ``raise_exit``.

        Does not terminate normal flow: the ``exc`` edge models "this
        statement raised *instead of* taking effect".
        """
        frames = list(self.frames)
        self._propagate_from(src, frames, len(frames) - 1)

    def _propagate_from(self, src: Block, frames: list, top: int) -> None:
        for i in range(top, -1, -1):
            fr = frames[i]
            if not isinstance(fr, _TryFrame):
                continue
            for entry in fr.handlers:
                self.cfg.edge(src, entry, "exc")
            if fr.catch_all:
                return
            if fr.finalbody:
                if fr.exc_channel is None:
                    entry = self.cfg._block(None, "finally-exc")
                    fr.exc_channel = entry
                    saved = self.frames
                    self.frames = frames[:i]
                    end = self._seq(fr.finalbody, entry, "fall", None)
                    self.frames = saved
                    if end is not None:
                        # The exception keeps propagating outward after
                        # the finally body ran.
                        self._propagate_from(end, frames, i - 1)
                self.cfg.edge(src, fr.exc_channel, "exc")
                return
        self.cfg.edge(src, self.cfg.raise_exit, "exc")


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str | None = None) -> CFG:
    """Build the CFG of one function definition (no nested descent)."""
    return _Builder(func, qualname or func.name).build()


# --------------------------------------------------------------------------
# Path enumeration
# --------------------------------------------------------------------------


class Path:
    """One entry-to-exit walk: the edge list plus derived views."""

    __slots__ = ("edges",)

    def __init__(self, edges: list[Edge]):
        self.edges = edges

    @property
    def blocks(self) -> list[Block]:
        if not self.edges:
            return []
        return [self.edges[0].src] + [e.dst for e in self.edges]

    @property
    def exceptional(self) -> bool:
        return bool(self.edges) and self.edges[-1].dst.label == "raise-exit"

    def describe(self, limit: int = 14) -> str:
        steps = [e.describe() for e in self.edges if e.kind in DECISION_KINDS or e.kind in ("return", "exc")]
        if not steps:
            steps = ["straight-line"]
        if len(steps) > limit:
            steps = steps[: limit - 1] + ["..."]
        return " -> ".join(steps)


def enumerate_paths(
    cfg: CFG,
    max_paths: int = 400,
    include_exc: bool = False,
) -> tuple[list[Path], bool]:
    """All entry->exit paths, each back edge taken at most once.

    Returns ``(paths, complete)``; when ``complete`` is False the cap was
    hit and callers must not report findings from the partial set.
    """
    paths: list[Path] = []
    complete = True
    max_len = 2 * len(cfg.blocks) + 16
    terminal = (cfg.exit, cfg.raise_exit)

    def dfs(block: Block, trail: list[Edge], back_used: frozenset[int]) -> None:
        nonlocal complete
        if not complete:
            return
        if block in terminal:
            if len(paths) >= max_paths:
                complete = False
                return
            paths.append(Path(list(trail)))
            return
        if len(trail) > max_len:
            return  # abandoned: loop unrolling dead end
        for e in block.succs:
            if e.kind == "exc" and not include_exc:
                continue
            if e.kind == "back":
                if id(e) in back_used:
                    continue
                trail.append(e)
                dfs(e.dst, trail, back_used | {id(e)})
                trail.pop()
            else:
                trail.append(e)
                dfs(e.dst, trail, back_used)
                trail.pop()

    dfs(cfg.entry, [], frozenset())
    return paths, complete
