"""Worklist dataflow solving over :mod:`repro.analyze.cfg` graphs.

Two engines live here:

:class:`FactSolver`
    A forward may-analysis over *individual hashable facts* -- the classic
    worklist algorithm, except that the transfer function is applied **per
    edge** rather than per block.  Edge-level transfer is what makes the
    statement-granular CFG pay off: an ``exc`` edge leaving a statement
    carries the fact *unchanged* (the statement raised, its effect never
    happened), while the normal out-edge carries the transformed fact.
    Every fact remembers the (predecessor block, predecessor fact, edge)
    that first produced it, so any reported state has a concrete CFG path
    witness (:meth:`FactSolver.witness`).

:class:`SetSolver`
    A forward union analysis over sets (reaching-events style): ``IN[b]``
    is the union of predecessors' ``OUT``, ``OUT[b] = IN[b] | gen(b)``.
    Used by the fork-safety checkers where only "did event X happen on
    *some* path before this point" matters.  Witnesses come from a BFS
    shortest path through the event.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterable

from repro.analyze.cfg import CFG, Block, Edge

__all__ = ["FactSolver", "SetSolver", "shortest_path"]

Fact = Hashable


class FactSolver:
    """Forward worklist solver propagating hashable facts along edges.

    ``transfer(edge, fact)`` returns the facts that flow along ``edge``
    when ``fact`` holds at ``edge.src`` (empty iterable kills the path).
    The solver guarantees each (block, fact) pair is expanded once, so it
    terminates for any finite fact domain.
    """

    def __init__(
        self,
        cfg: CFG,
        transfer: Callable[[Edge, Fact], Iterable[Fact]],
        initial: Fact,
    ):
        self.cfg = cfg
        self.transfer = transfer
        self.initial = initial
        self.facts: dict[int, set[Fact]] = {}
        #: (block id, fact) -> (pred block, pred fact, edge) provenance.
        self.parent: dict[tuple[int, Fact], tuple[Block, Fact, Edge]] = {}

    def solve(self) -> "FactSolver":
        entry = self.cfg.entry
        self.facts = {entry.id: {self.initial}}
        work: deque[tuple[Block, Fact]] = deque([(entry, self.initial)])
        budget = 50 * len(self.cfg.blocks) + 1000  # safety valve
        while work and budget > 0:
            budget -= 1
            block, fact = work.popleft()
            for edge in block.succs:
                for nf in self.transfer(edge, fact):
                    seen = self.facts.setdefault(edge.dst.id, set())
                    if nf in seen:
                        continue
                    seen.add(nf)
                    self.parent[(edge.dst.id, nf)] = (block, fact, edge)
                    work.append((edge.dst, nf))
        return self

    def at(self, block: Block) -> set[Fact]:
        return self.facts.get(block.id, set())

    def witness(self, block: Block, fact: Fact, limit: int = 14) -> tuple[str, ...]:
        """Render the provenance chain of ``fact`` at ``block`` as path steps."""
        steps: list[str] = []
        key = (block.id, fact)
        guard = 10 * len(self.cfg.blocks) + 50
        while key in self.parent and guard > 0:
            guard -= 1
            pred, pfact, edge = self.parent[key]
            steps.append(edge.describe())
            key = (pred.id, pfact)
        if not steps or steps[-1] != "entry":
            steps.append("entry")
        steps.reverse()
        if len(steps) > limit:
            steps = ["..."] + steps[-(limit - 1):]
        return tuple(steps)


class SetSolver:
    """Forward union (may-reach) analysis of generated events."""

    def __init__(self, cfg: CFG, gen: Callable[[Block], frozenset], kill: Callable[[Block, frozenset], frozenset] | None = None):
        self.cfg = cfg
        self.gen = gen
        self.kill = kill
        #: IN[b]: events that may have happened strictly before block b runs.
        self.inset: dict[int, frozenset] = {}

    def solve(self) -> "SetSolver":
        empty: frozenset = frozenset()
        self.inset = {b.id: empty for b in self.cfg.blocks}
        # Seed with every block: propagation only re-enqueues on change, so
        # each block's gen() must be pushed through its successors once.
        work: deque[Block] = deque(self.cfg.blocks)
        while work:
            block = work.popleft()
            out = self.inset[block.id] | self.gen(block)
            if self.kill is not None:
                out = self.kill(block, out)
            for edge in block.succs:
                if edge.kind == "exc":
                    # The raising statement's own events never happened.
                    flowed = self.inset[block.id]
                else:
                    flowed = out
                merged = self.inset[edge.dst.id] | flowed
                if merged != self.inset[edge.dst.id]:
                    self.inset[edge.dst.id] = merged
                    work.append(edge.dst)
        return self

    def before(self, block: Block) -> frozenset:
        return self.inset.get(block.id, frozenset())


def shortest_path(cfg: CFG, goal: Block, via: Block | None = None) -> tuple[str, ...]:
    """BFS entry->goal path description, optionally forced through ``via``."""

    def bfs(src: Block, dst: Block) -> list[Edge]:
        prev: dict[int, Edge] = {}
        seen = {src.id}
        work = deque([src])
        while work:
            b = work.popleft()
            if b is dst:
                edges: list[Edge] = []
                while b is not src:
                    e = prev[b.id]
                    edges.append(e)
                    b = e.src
                edges.reverse()
                return edges
            for e in b.succs:
                if e.dst.id not in seen:
                    seen.add(e.dst.id)
                    prev[e.dst.id] = e
                    work.append(e.dst)
        return []

    if via is not None and via is not goal:
        edges = bfs(cfg.entry, via) + bfs(via, goal)
    else:
        edges = bfs(cfg.entry, goal)
    steps = ["entry"] + [e.describe() for e in edges]
    if len(steps) >= 2 and steps[1] == "entry":
        steps = steps[1:]
    if len(steps) > 14:
        steps = ["..."] + steps[-13:]
    return tuple(steps)
