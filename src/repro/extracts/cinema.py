"""Cinema-style in situ image databases.

The Cinema approach (Ahrens et al., SC'14) renders, at simulation time, a
sweep of images over visualization parameters (camera, slice position,
isovalue, ...) and stores them with a queryable index; post hoc
"exploration" is then image lookup, not data processing.  The extract is
orders of magnitude smaller than the raw field yet preserves the chosen
degrees of interactive freedom -- the paper's answer to the a-priori-
parameters limitation of in situ (Sec. 2.2.4).

:class:`CinemaExtractAnalysis` is a SENSEI analysis adaptor producing a
database over (time step) x (slice axis position sweep): each step it
renders one pseudocolored slice per sweep value through the standard
extract/rasterize/composite pipeline and appends to the store.
:class:`CinemaDatabase` reads the index back and answers nearest-parameter
queries, the Cinema viewer's core operation.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from repro.analysis.slice_ import SlicePlane, extract_axis_slice, _inplane_axes
from repro.core.adaptors import AnalysisAdaptor, DataAdaptor
from repro.data import Association, ImageData
from repro.mpi import MAX, MIN
from repro.render.colormap import VIRIDIS, Colormap
from repro.render.compositing import binary_swap
from repro.render.png import encode_png
from repro.render.rasterize import blank_image, rasterize_slice
from repro.util.timers import timed

INDEX_NAME = "index.json"


@dataclass(frozen=True)
class CameraParameter:
    """One sweep dimension: a slice plane position along an axis."""

    axis: int
    indices: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.axis not in (0, 1, 2):
            raise ValueError("axis must be 0, 1, or 2")
        if not self.indices:
            raise ValueError("sweep requires at least one index")


class CinemaExtractAnalysis(AnalysisAdaptor):
    """Renders a (step x slice-position) image database in situ."""

    def __init__(
        self,
        output_dir,
        sweep: CameraParameter,
        array: str = "data",
        resolution: tuple[int, int] = (128, 128),
        colormap: Colormap = VIRIDIS,
        frequency: int = 1,
    ) -> None:
        super().__init__()
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        self.output_dir = str(output_dir)
        self.sweep = sweep
        self.array = array
        self.resolution = resolution
        self.colormap = colormap
        self.frequency = frequency
        self._comm = None
        self._entries: list[dict] = []
        self.bytes_written = 0

    def initialize(self, comm) -> None:
        self._comm = comm
        if comm.rank == 0:
            os.makedirs(os.path.join(self.output_dir, "images"), exist_ok=True)
        comm.barrier()

    def _render_one(self, data: DataAdaptor, mesh: ImageData, index: int):
        plane = SlicePlane(self.sweep.axis, index)
        ext = mesh.extent
        lo = (ext.i0, ext.j0, ext.k0)[plane.axis]
        hi = (ext.i1, ext.j1, ext.k1)[plane.axis]
        frag = None
        if lo <= plane.index <= hi:
            if not mesh.has_array(Association.POINT, self.array):
                mesh.add_array(
                    Association.POINT, data.get_array(Association.POINT, self.array)
                )
            frag = extract_axis_slice(mesh, self.array, plane)
        local_min = float(frag.values.min()) if frag is not None else float("inf")
        local_max = float(frag.values.max()) if frag is not None else float("-inf")
        vmin = self._comm.allreduce(local_min, MIN)
        vmax = self._comm.allreduce(local_max, MAX)
        w, h = self.resolution
        if frag is None:
            partial = blank_image(w, h)
        else:
            u, v = _inplane_axes(plane.axis)
            whole = mesh.whole_extent
            wb = [(whole.i0, whole.i1), (whole.j0, whole.j1), (whole.k0, whole.k1)]
            partial = rasterize_slice(
                frag.values, frag.extent2d, (*wb[u], *wb[v]), w, h,
                colormap=self.colormap, vmin=vmin, vmax=vmax,
            )
        return binary_swap(self._comm, partial), (vmin, vmax)

    def execute(self, data: DataAdaptor) -> bool:
        step = data.get_data_time_step()
        if step % self.frequency != 0:
            return True
        mesh = data.get_mesh(structure_only=True)
        if not isinstance(mesh, ImageData):
            raise TypeError("Cinema extract requires an ImageData mesh")
        with timed(self.timers, "cinema::render"):
            for index in self.sweep.indices:
                final, (vmin, vmax) = self._render_one(data, mesh, index)
                if final is not None:  # root rank
                    name = f"step{step:06d}_ax{self.sweep.axis}_i{index:04d}.png"
                    blob = encode_png(final.rgb)
                    with open(
                        os.path.join(self.output_dir, "images", name), "wb"
                    ) as fh:
                        fh.write(blob)
                    self.bytes_written += len(blob)
                    self._entries.append(
                        {
                            "step": step,
                            "time": data.get_data_time(),
                            "axis": self.sweep.axis,
                            "index": index,
                            "vmin": vmin,
                            "vmax": vmax,
                            "file": f"images/{name}",
                        }
                    )
        return True

    def finalize(self) -> dict | None:
        if self._comm is None or self._comm.rank != 0:
            return None
        index = {
            "type": "cinema_image_database",
            "version": 1,
            "parameters": {
                "step": sorted({e["step"] for e in self._entries}),
                "axis": [self.sweep.axis],
                "index": list(self.sweep.indices),
            },
            "resolution": list(self.resolution),
            "array": self.array,
            "entries": self._entries,
        }
        with open(os.path.join(self.output_dir, INDEX_NAME), "w") as fh:
            json.dump(index, fh)
        return {
            "images": len(self._entries),
            "bytes": self.bytes_written,
        }


class CinemaDatabase:
    """Post hoc reader: nearest-parameter image lookup."""

    def __init__(self, path) -> None:
        self.root = str(path)
        with open(os.path.join(self.root, INDEX_NAME), "r", encoding="utf-8") as fh:
            self.index = json.load(fh)
        if self.index.get("type") != "cinema_image_database":
            raise ValueError("not a cinema image database")
        self.entries = self.index["entries"]
        if not self.entries:
            raise ValueError("empty cinema database")

    @property
    def steps(self) -> list[int]:
        return self.index["parameters"]["step"]

    @property
    def slice_indices(self) -> list[int]:
        return self.index["parameters"]["index"]

    def query(self, step: int, index: int) -> dict:
        """The entry nearest the requested (step, slice index)."""
        return min(
            self.entries,
            key=lambda e: (abs(e["step"] - step), abs(e["index"] - index)),
        )

    def load_image(self, entry: dict) -> np.ndarray:
        from repro.render.png import decode_png

        with open(os.path.join(self.root, entry["file"]), "rb") as fh:
            return decode_png(fh.read())

    def total_bytes(self) -> int:
        return sum(
            os.path.getsize(os.path.join(self.root, e["file"])) for e in self.entries
        )

    def compression_vs_field(self, field_bytes: int) -> float:
        """How much smaller the explorable extract is than the raw data."""
        return field_bytes / max(self.total_bytes(), 1)
