"""Explorable data products (Sec. 2.2.4).

The paper surveys the line of work on "computing 'explorable data products'
that are much smaller than the full-resolution data, and that support
varying degrees of post hoc interactive exploration", citing Cinema
(Ahrens et al. 2014) -- and notes that "methods that produce 'explorable
extracts' will be run in situ, most likely using one of the infrastructures
we study".  This package closes that loop: a Cinema-style image-database
extract generated *in situ* through a SENSEI analysis adaptor, plus the
post hoc reader that lets a user re-explore the run by parameter instead of
re-running the simulation.
"""

from repro.extracts.cinema import (
    CinemaDatabase,
    CinemaExtractAnalysis,
    CameraParameter,
)

__all__ = ["CinemaDatabase", "CinemaExtractAnalysis", "CameraParameter"]
