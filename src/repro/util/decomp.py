"""Regular domain decomposition.

The oscillator miniapp partitions its grid "between the processes using
regular decomposition" (Sec. 3.3); AVF-LESLIE and Nyx use Cartesian block
decompositions as well.  These helpers compute balanced 1-D block ranges and
near-cubic 3-D process grids, and carry local/global extents in the
VTK-style inclusive-index convention used throughout the data model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Extent:
    """Inclusive index extent ``[i0, i1] x [j0, j1] x [k0, k1]`` (VTK style)."""

    i0: int
    i1: int
    j0: int
    j1: int
    k0: int
    k1: int

    @property
    def shape(self) -> tuple[int, int, int]:
        """Number of points along (i, j, k)."""
        return (self.i1 - self.i0 + 1, self.j1 - self.j0 + 1, self.k1 - self.k0 + 1)

    @property
    def num_points(self) -> int:
        ni, nj, nk = self.shape
        return ni * nj * nk

    @property
    def num_cells(self) -> int:
        ni, nj, nk = self.shape
        return max(ni - 1, 0) * max(nj - 1, 0) * max(nk - 1, 0)

    def contains(self, i: int, j: int, k: int) -> bool:
        return (
            self.i0 <= i <= self.i1
            and self.j0 <= j <= self.j1
            and self.k0 <= k <= self.k1
        )

    def intersect(self, other: "Extent") -> "Extent | None":
        e = Extent(
            max(self.i0, other.i0),
            min(self.i1, other.i1),
            max(self.j0, other.j0),
            min(self.j1, other.j1),
            max(self.k0, other.k0),
            min(self.k1, other.k1),
        )
        if e.i0 > e.i1 or e.j0 > e.j1 or e.k0 > e.k1:
            return None
        return e

    def grow(self, n: int, bounds: "Extent") -> "Extent":
        """Grow by ``n`` ghost layers, clamped to ``bounds``."""
        return Extent(
            max(self.i0 - n, bounds.i0),
            min(self.i1 + n, bounds.i1),
            max(self.j0 - n, bounds.j0),
            min(self.j1 + n, bounds.j1),
            max(self.k0 - n, bounds.k0),
            min(self.k1 + n, bounds.k1),
        )


def block_decompose_1d(n: int, parts: int, index: int) -> tuple[int, int]:
    """Balanced contiguous block ``[lo, hi)`` of ``range(n)`` for ``index``.

    The first ``n % parts`` blocks get one extra element, matching common
    MPI block decompositions.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if not 0 <= index < parts:
        raise ValueError(f"index {index} out of range for {parts} parts")
    base, extra = divmod(n, parts)
    lo = index * base + min(index, extra)
    hi = lo + base + (1 if index < extra else 0)
    return lo, hi


def factor_ranks(nranks: int, dims: int = 3) -> tuple[int, ...]:
    """Factor ``nranks`` into a near-cubic ``dims``-dimensional process grid.

    Greedy prime-factor assignment to the currently smallest dimension,
    mirroring ``MPI_Dims_create`` behaviour closely enough for regular
    decomposition studies.
    """
    if nranks <= 0:
        raise ValueError("nranks must be positive")
    grid = [1] * dims
    n = nranks
    factors: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    for f in sorted(factors, reverse=True):
        grid[grid.index(min(grid))] *= f
    return tuple(sorted(grid, reverse=True))


def regular_decompose_3d(
    global_dims: tuple[int, int, int], nranks: int, rank: int
) -> tuple[Extent, tuple[int, int, int], tuple[int, int, int]]:
    """Block decomposition of a point grid of ``global_dims`` points.

    Returns ``(local_extent, proc_grid, proc_coord)`` for ``rank``.  The
    process grid is chosen with :func:`factor_ranks`; ranks are laid out in
    row-major (i fastest) order.
    """
    px, py, pz = factor_ranks(nranks, 3)
    if rank < 0 or rank >= nranks:
        raise ValueError(f"rank {rank} out of range for {nranks} ranks")
    cx = rank % px
    cy = (rank // px) % py
    cz = rank // (px * py)
    i0, i1 = block_decompose_1d(global_dims[0], px, cx)
    j0, j1 = block_decompose_1d(global_dims[1], py, cy)
    k0, k1 = block_decompose_1d(global_dims[2], pz, cz)
    ext = Extent(i0, i1 - 1, j0, j1 - 1, k0, k1 - 1)
    return ext, (px, py, pz), (cx, cy, cz)
