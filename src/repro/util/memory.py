"""Memory high-water-mark accounting.

The paper measures "memory footprint ... as the memory high water mark",
summed over MPI ranks (Sec. 4.1.1), and for Nyx tracks VmHWM (Sec. 4.2.3).
An OS-level VmHWM is meaningless for thread-backed simulated ranks, so this
repo uses explicit allocation accounting instead: the data model, the miniapp,
the analyses, and the infrastructures all register their buffers with the
per-rank :class:`MemoryTracker`.

Zero-copy views register zero bytes, which is precisely the mechanism that
makes the SENSEI-interface memory claim (Fig. 4: Original == Autocorrelation)
observable in this reproduction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace import TraceRecorder

#: Per-label events kept for diagnostics; older events are dropped (the
#: count of dropped events is preserved so totals stay auditable).
HISTORY_LIMIT = 32


class MemoryAccountingError(RuntimeError):
    """An allocate/free imbalance: freeing more than is live, globally or
    under one label.  Carries the label's allocate/free history so
    double-frees are diagnosable from the message alone."""


class MemoryTracker:
    """Tracks current and peak tracked bytes for one rank.

    ``baseline`` models the startup executable footprint (Fig. 7 plots the
    startup footprint and the high-water mark separately): infrastructures
    add their static footprint (e.g. a Catalyst Edition's code size) at
    initialize time via :meth:`add_static`.
    """

    def __init__(self, baseline_bytes: int = 0) -> None:
        self.baseline = int(baseline_bytes)
        self.current = int(baseline_bytes)
        self.peak = int(baseline_bytes)
        self.static = int(baseline_bytes)
        self._named: dict[str, int] = {}
        self._history: dict[str, list[tuple[str, int]]] = {}
        self._history_dropped: dict[str, int] = {}
        #: Optional structured-trace sink; every balance change then gauges
        #: ``memory::tracked_bytes``.  None costs one pointer comparison.
        self.trace: "TraceRecorder | None" = None

    def attach_trace(self, recorder: "TraceRecorder | None") -> None:
        """Attach (or detach, with None) a structured-trace recorder."""
        self.trace = recorder

    def _gauge(self) -> None:
        rec = self.trace
        if rec is not None:
            rec.gauge("memory::tracked_bytes", self.current)

    def _record(self, label: str, event: str, nbytes: int) -> None:
        events = self._history.setdefault(label, [])
        events.append((event, nbytes))
        if len(events) > HISTORY_LIMIT:
            del events[0]
            self._history_dropped[label] = self._history_dropped.get(label, 0) + 1

    def history(self, label: str) -> list[tuple[str, int]]:
        """The label's recorded ``(event, nbytes)`` sequence (most recent
        ``HISTORY_LIMIT`` events)."""
        return list(self._history.get(label, []))

    def _format_history(self, label: str) -> str:
        events = self._history.get(label)
        if not events:
            return f"  (no recorded events for label {label!r})"
        lines = [f"  {event:>9} {nbytes:>12d} B" for event, nbytes in events]
        dropped = self._history_dropped.get(label, 0)
        if dropped:
            lines.insert(0, f"  ... {dropped} earlier event(s) dropped ...")
        return "\n".join(lines)

    def allocate(self, nbytes: int, label: str = "") -> None:
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        self.current += int(nbytes)
        if label:
            self._named[label] = self._named.get(label, 0) + int(nbytes)
            self._record(label, "allocate", int(nbytes))
        if self.current > self.peak:
            self.peak = self.current
        self._gauge()

    def free(self, nbytes: int, label: str = "") -> None:
        if nbytes < 0:
            raise ValueError("free size must be non-negative")
        nbytes = int(nbytes)
        if self.current - nbytes < 0:
            raise MemoryAccountingError(
                f"free({nbytes}, label={label!r}) would drive tracked bytes "
                f"below zero (current={self.current}): double free?\n"
                f"history for {label!r}:\n{self._format_history(label)}"
            )
        if label and self._named.get(label, 0) - nbytes < 0:
            raise MemoryAccountingError(
                f"free({nbytes}, label={label!r}) exceeds the label's live "
                f"balance ({self._named.get(label, 0)} B): double free or "
                f"mislabeled allocation?\n"
                f"history for {label!r}:\n{self._format_history(label)}"
            )
        self.current -= nbytes
        if label:
            self._named[label] = self._named.get(label, 0) - nbytes
            self._record(label, "free", nbytes)
        self._gauge()

    def add_static(self, nbytes: int, label: str = "") -> None:
        """Register a permanent footprint (library code, LUTs, editions)."""
        self.static += int(nbytes)
        self.current += int(nbytes)
        if label:
            self._named[label] = self._named.get(label, 0) + int(nbytes)
            self._record(label, "static", int(nbytes))
        if self.current > self.peak:
            self.peak = self.current
        self._gauge()

    def track_array(self, array: np.ndarray, label: str = "") -> np.ndarray:
        """Register a numpy array's buffer if this rank owns it.

        Views (``array.base is not None``) and arrays that do not own their
        data are considered zero-copy and register nothing -- the accounting
        rule the SENSEI zero-copy mapping relies on.
        """
        if array.base is None and array.flags.owndata:
            self.allocate(array.nbytes, label=label)
        return array

    def named(self, label: str) -> int:
        return self._named.get(label, 0)

    @property
    def high_water(self) -> int:
        return self.peak

    def reset_peak(self) -> None:
        self.peak = self.current


def sum_high_water(trackers: Iterable[MemoryTracker]) -> int:
    """Sum of per-rank high-water marks, the paper's aggregate metric."""
    return sum(t.peak for t in trackers)


def array_nbytes(shape: tuple[int, ...], dtype) -> int:
    """Bytes an allocation of ``shape``/``dtype`` would take, without making it."""
    n = 1
    for s in shape:
        n *= int(s)
    return n * np.dtype(dtype).itemsize
