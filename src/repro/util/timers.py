"""Hierarchical phase timers.

The paper's measurement methodology (Sec. 4.1.1) distinguishes one-time costs
(``initialize``, ``analysis initialize``, ``finalize``) from recurring
per-timestep costs (``simulation``, ``analysis``).  Every instrumented
component in this repo reports into a :class:`TimerRegistry` so benchmarks can
recover exactly those phase breakdowns.

Timers are per-rank objects; the launcher gives each simulated MPI rank its
own registry, and harness code aggregates (mean / max / sum) across ranks the
same way the paper aggregates across MPI ranks.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace import TraceRecorder


@dataclass
class Timer:
    """Accumulating timer for one named phase.

    Records total elapsed seconds, call count, and min/max per-call times so
    per-timestep averages (Fig. 6) and worst-case iterations (Fig. 16) can
    both be derived from a single run.
    """

    name: str
    total: float = 0.0
    count: int = 0
    min_time: float = float("inf")
    max_time: float = 0.0
    _start: float | None = None
    #: Per-call samples, kept only when ``keep_samples`` is set; used by the
    #: AVF-LESLIE per-iteration study (Fig. 16) where the sawtooth matters.
    samples: list[float] = field(default_factory=list)
    keep_samples: bool = False

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError(f"timer {self.name!r} already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError(f"timer {self.name!r} not running")
        elapsed = time.perf_counter() - self._start
        self._start = None
        self.add(elapsed)
        return elapsed

    def add(self, elapsed: float) -> None:
        """Record an externally measured (or modeled) duration."""
        self.total += elapsed
        self.count += 1
        self.min_time = min(self.min_time, elapsed)
        self.max_time = max(self.max_time, elapsed)
        if self.keep_samples:
            self.samples.append(elapsed)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop` -- an unbalanced
        start/stop pair leaves this set, which the sanitizer flags at
        bridge finalize."""
        return self._start is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Timer({self.name!r}, total={self.total:.6f}s, "
            f"count={self.count}, mean={self.mean:.6f}s)"
        )


class TimerRegistry:
    """A flat namespace of :class:`Timer` objects for one rank.

    Phase names use ``::`` separators by convention, mirroring the paper's
    labels, e.g. ``"sensei::initialize"``, ``"adios::advance"``,
    ``"avf_insitu::analyze"``.
    """

    def __init__(
        self, keep_samples: bool = False, trace: "TraceRecorder | None" = None
    ) -> None:
        self._timers: dict[str, Timer] = {}
        self._keep_samples = keep_samples
        #: Optional structured-trace sink (see :mod:`repro.trace`).  When
        #: attached, every timed block also records a span; when None the
        #: hot path pays exactly one pointer comparison.
        self.trace: "TraceRecorder | None" = trace

    def attach_trace(self, recorder: "TraceRecorder | None") -> None:
        """Attach (or detach, with None) a structured-trace recorder."""
        self.trace = recorder

    def timer(self, name: str) -> Timer:
        t = self._timers.get(name)
        if t is None:
            t = Timer(name, keep_samples=self._keep_samples)
            self._timers[name] = t
        return t

    @contextmanager
    def time(self, name: str):
        t = self.timer(name)
        rec = self.trace
        if rec is not None:
            rec.begin(name)
        t.start()
        try:
            yield t
        finally:
            t.stop()
            if rec is not None:
                rec.end()

    def add(self, name: str, elapsed: float) -> None:
        self.timer(name).add(elapsed)
        rec = self.trace
        if rec is not None:
            now = rec.now()
            rec.complete(name, now - elapsed, now)

    def total(self, name: str) -> float:
        t = self._timers.get(name)
        return t.total if t else 0.0

    def mean(self, name: str) -> float:
        t = self._timers.get(name)
        return t.mean if t else 0.0

    def names(self) -> list[str]:
        return sorted(self._timers)

    def active(self) -> list[str]:
        """Names of timers currently running (started but not stopped)."""
        return sorted(n for n, t in self._timers.items() if t.running)

    def as_dict(self) -> dict[str, dict]:
        """Serializable snapshot, used to ship timings across ranks.

        Lossless: includes ``min`` (0.0 for never-fired timers, so the
        snapshot stays JSON-clean; :meth:`from_dict` restores the +inf
        sentinel) and, for sample-keeping timers, the per-call ``samples``
        list -- without which the Fig. 16 per-iteration sawtooth could not
        survive a cross-rank merge.
        """
        snap: dict[str, dict] = {}
        for name, t in self._timers.items():
            entry: dict = {
                "total": t.total,
                "count": float(t.count),
                "mean": t.mean,
                "min": t.min_time if t.count else 0.0,
                "max": t.max_time,
            }
            if t.keep_samples:
                entry["samples"] = list(t.samples)
            snap[name] = entry
        return snap

    @classmethod
    def from_dict(cls, snapshot: dict[str, dict]) -> "TimerRegistry":
        """Rebuild a registry from an :meth:`as_dict` snapshot."""
        reg = cls()
        reg.merge_snapshot(snapshot)
        return reg

    def merge_snapshot(self, snapshot: dict[str, dict]) -> None:
        """Fold an :meth:`as_dict` snapshot into this registry.

        This is the cross-rank aggregation path
        (:func:`repro.mpi.launcher.aggregate_timer_snapshots`): totals and
        counts sum, min/max fold, and shipped samples are preserved.
        """
        for name, entry in snapshot.items():
            mine = self.timer(name)
            count = int(entry["count"])
            mine.total += float(entry["total"])
            mine.count += count
            if count:
                mine.min_time = min(mine.min_time, float(entry["min"]))
            mine.max_time = max(mine.max_time, float(entry["max"]))
            samples = entry.get("samples")
            if samples:
                mine.keep_samples = True
                mine.samples.extend(float(s) for s in samples)

    def merge(self, other: "TimerRegistry") -> None:
        """Fold another registry into this one (summing totals/counts).

        Samples are preserved whenever *either* side kept them: dropping
        ``other``'s samples just because this registry was constructed
        without ``keep_samples`` would lose per-call data irrecoverably.
        A timer merged from a sample-keeping peer therefore becomes
        sample-keeping itself (its own earlier calls, if any, remain
        unsampled -- the list holds exactly the calls that were recorded).
        """
        for name, t in other._timers.items():
            mine = self.timer(name)
            mine.total += t.total
            mine.count += t.count
            mine.min_time = min(mine.min_time, t.min_time)
            mine.max_time = max(mine.max_time, t.max_time)
            if t.keep_samples:
                mine.keep_samples = True
            if mine.keep_samples:
                mine.samples.extend(t.samples)


@contextmanager
def timed(registry: TimerRegistry | None, name: str):
    """Time a block against ``registry`` if one is provided, else no-op.

    Lets library code stay instrumentable without forcing every caller to
    construct a registry.
    """
    if registry is None:
        yield None
        return
    with registry.time(name) as t:
        yield t
