"""Lightweight nested configuration.

SENSEI drives which analyses run through an XML configuration file; VisIt
Libsim consumes "session files" saved from the GUI.  This repo models both
with a small dict-backed :class:`Configuration` that supports dotted-path
lookup, type coercion, validation, and round-tripping through JSON (so the
Libsim per-rank session-file parse cost in Fig. 5 is a real parse).
"""

from __future__ import annotations

import json
from typing import Any, Iterator


class ConfigError(KeyError):
    """Raised for missing keys or malformed configuration values."""


class Configuration:
    """Nested string-keyed configuration with dotted-path access."""

    def __init__(self, data: dict[str, Any] | None = None) -> None:
        self._data: dict[str, Any] = dict(data or {})

    @classmethod
    def from_json(cls, text: str) -> "Configuration":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"malformed configuration: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigError("top-level configuration must be an object")
        return cls(data)

    @classmethod
    def from_file(cls, path) -> "Configuration":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self._data, indent=indent, sort_keys=True)

    def _walk(self, path: str, create: bool = False) -> tuple[dict, str]:
        parts = path.split(".")
        node = self._data
        for p in parts[:-1]:
            nxt = node.get(p)
            if nxt is None and create:
                nxt = node[p] = {}
            if not isinstance(nxt, dict):
                raise ConfigError(f"no such configuration section: {path!r}")
            node = nxt
        return node, parts[-1]

    def get(self, path: str, default: Any = None) -> Any:
        try:
            node, leaf = self._walk(path)
        except ConfigError:
            return default
        return node.get(leaf, default)

    def require(self, path: str) -> Any:
        node, leaf = self._walk(path)
        if leaf not in node:
            raise ConfigError(f"missing required configuration key: {path!r}")
        return node[leaf]

    def get_int(self, path: str, default: int | None = None) -> int:
        v = self.get(path, default)
        if v is None:
            raise ConfigError(f"missing integer configuration key: {path!r}")
        try:
            return int(v)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"{path!r} is not an integer: {v!r}") from exc

    def get_float(self, path: str, default: float | None = None) -> float:
        v = self.get(path, default)
        if v is None:
            raise ConfigError(f"missing float configuration key: {path!r}")
        try:
            return float(v)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"{path!r} is not a float: {v!r}") from exc

    def get_bool(self, path: str, default: bool | None = None) -> bool:
        v = self.get(path, default)
        if v is None:
            raise ConfigError(f"missing boolean configuration key: {path!r}")
        if isinstance(v, bool):
            return v
        if isinstance(v, str):
            if v.lower() in ("true", "1", "yes", "on"):
                return True
            if v.lower() in ("false", "0", "no", "off"):
                return False
        raise ConfigError(f"{path!r} is not a boolean: {v!r}")

    def get_list(self, path: str, default: list | None = None) -> list:
        v = self.get(path, default)
        if v is None:
            raise ConfigError(f"missing list configuration key: {path!r}")
        if not isinstance(v, list):
            raise ConfigError(f"{path!r} is not a list: {v!r}")
        return v

    def set(self, path: str, value: Any) -> None:
        node, leaf = self._walk(path, create=True)
        node[leaf] = value

    def section(self, path: str) -> "Configuration":
        v = self.get(path)
        if not isinstance(v, dict):
            raise ConfigError(f"no such configuration section: {path!r}")
        return Configuration(v)

    def __contains__(self, path: str) -> bool:
        sentinel = object()
        return self.get(path, sentinel) is not sentinel

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def as_dict(self) -> dict[str, Any]:
        return json.loads(self.to_json())
