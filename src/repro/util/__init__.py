"""Shared utilities: timers, memory accounting, domain decomposition, config.

These are the measurement substrate for the whole study: the paper reports
elapsed wall-clock time per phase (Figs 5, 6, 8, 9, 10) and the per-rank
memory high-water mark summed over ranks (Figs 4, 7).
"""

from repro.util.timers import Timer, TimerRegistry, timed
from repro.util.memory import MemoryAccountingError, MemoryTracker, sum_high_water
from repro.util.decomp import (
    block_decompose_1d,
    factor_ranks,
    regular_decompose_3d,
    Extent,
)
from repro.util.config import Configuration, ConfigError

__all__ = [
    "Timer",
    "TimerRegistry",
    "timed",
    "MemoryAccountingError",
    "MemoryTracker",
    "sum_high_water",
    "block_decompose_1d",
    "factor_ranks",
    "regular_decompose_3d",
    "Extent",
    "Configuration",
    "ConfigError",
]
