"""Node-level (thread) parallelism helpers.

Nyx "typically ... use[s] 1-2 MPI ranks per compute node and use[s] OpenMP
within a node.  For effective use in simulations, in situ analysis must
support hybrid MPI+OpenMP (or other thread-based) execution models"
(Sec. 4.2.3).  These helpers are the thread-based half of that hybrid:
chunked fork-join maps over NumPy workloads.  Large NumPy kernels release
the GIL, so worker threads provide genuine node-level concurrency for the
memory-bound analysis kernels they are used on.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence


def chunk_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[lo, hi)`` chunks of ``range(n)``.

    Never returns empty chunks; with ``parts > n`` only ``n`` chunks come
    back.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if parts <= 0:
        raise ValueError("parts must be positive")
    parts = min(parts, max(n, 1))
    base, extra = divmod(n, parts)
    out = []
    lo = 0
    for i in range(parts):
        hi = lo + base + (1 if i < extra else 0)
        if hi > lo or n == 0:
            out.append((lo, hi))
        lo = hi
    return [c for c in out if c[1] > c[0]] or [(0, 0)]


def thread_map(
    fn: Callable[[Any], Any], items: Sequence[Any], n_threads: int
) -> list[Any]:
    """Apply ``fn`` to every item using up to ``n_threads`` workers.

    Results come back in input order.  Exceptions propagate: the first
    failing item's exception is re-raised in the caller.
    """
    if n_threads <= 0:
        raise ValueError("n_threads must be positive")
    items = list(items)
    if n_threads == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    results: list[Any] = [None] * len(items)
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()
    cursor = {"next": 0}

    def worker() -> None:
        while True:
            with lock:
                i = cursor["next"]
                if i >= len(items) or errors:
                    return
                cursor["next"] = i + 1
            try:
                results[i] = fn(items[i])
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                with lock:
                    errors.append((i, exc))
                return

    threads = [
        threading.Thread(target=worker, name=f"analysis-worker-{t}")
        for t in range(min(n_threads, len(items)))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        errors.sort()
        raise errors[0][1]
    return results


def parallel_chunked(
    fn: Callable[[int, int], Any], n: int, n_threads: int
) -> list[Any]:
    """Run ``fn(lo, hi)`` over balanced chunks of ``range(n)`` in threads."""
    return thread_map(lambda c: fn(*c), chunk_ranges(n, n_threads), n_threads)
