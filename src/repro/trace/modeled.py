"""Modeled spans: the performance model emitted in the trace schema.

SIM-SITU's thesis is that an in situ performance model is only trustworthy
once it has been *calibrated against instrumented real runs*.  The mechanism
here is schema unification: the discrete-event / analytic model
(:mod:`repro.perf`) emits the same :class:`~repro.trace.recorder.Span`
records a traced real run produces, so one ``repro report`` pipeline (and
one Perfetto timeline) serves both, and
:func:`repro.trace.report.diff_reports` quantifies the per-phase model
error directly.

Two producers live here:

- :func:`session_from_breakdown` unrolls a
  :class:`~repro.perf.miniapp_model.PhaseBreakdown` (mean per-rank phase
  costs) into an idealized per-rank timeline: initialize, ``steps`` x
  (advance + analysis [+ write]), finalize;
- :func:`simulate_staging(..., trace=session)
  <repro.perf.events.simulate_staging>` (in :mod:`repro.perf.events`)
  emits writer/endpoint spans *during* the event simulation, including the
  flow-control blocking the paper measures inside ``adios::analysis``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.trace.recorder import TraceSession

if TYPE_CHECKING:  # pragma: no cover
    from repro.perf.miniapp_model import PhaseBreakdown


def session_from_breakdown(
    breakdown: "PhaseBreakdown",
    steps: int,
    ranks: int = 1,
    name: str | None = None,
) -> TraceSession:
    """Unroll a modeled phase breakdown into per-rank spans.

    The model's costs are per-rank means, so every rank gets the identical
    idealized timeline; ``diff_reports`` against a measured trace then
    shows both the mean shift (model error) and, via the measured max
    column, the rank imbalance the model does not capture.
    """
    if steps <= 0:
        raise ValueError("steps must be positive")
    if ranks <= 0:
        raise ValueError("ranks must be positive")
    session = TraceSession(
        name=name or f"modeled[{breakdown.config_name}]"
    )
    for rank in range(ranks):
        rec = session.recorder(rank)
        t = 0.0
        if breakdown.sim_initialize:
            rec.complete("simulation::initialize", t, t + breakdown.sim_initialize)
            t += breakdown.sim_initialize
        if breakdown.analysis_initialize:
            rec.complete("sensei::initialize", t, t + breakdown.analysis_initialize)
            t += breakdown.analysis_initialize
        for step in range(1, steps + 1):
            if breakdown.sim_per_step:
                rec.complete(
                    "simulation::advance", t, t + breakdown.sim_per_step, step=step
                )
                t += breakdown.sim_per_step
            if breakdown.analysis_per_step:
                rec.complete(
                    "sensei::execute", t, t + breakdown.analysis_per_step, step=step
                )
                t += breakdown.analysis_per_step
            if breakdown.write_per_step:
                rec.complete(
                    "io::write", t, t + breakdown.write_per_step, step=step
                )
                t += breakdown.write_per_step
        if breakdown.finalize:
            rec.complete("sensei::finalize", t, t + breakdown.finalize)
    return session
