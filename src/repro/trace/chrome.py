"""Chrome-trace-event (Perfetto-loadable) JSON export.

The exported document follows the Trace Event Format's JSON object form:
``{"traceEvents": [...]}``, where every event carries ``ph`` (event type),
``ts`` (microseconds), ``pid`` and ``tid``.  We map one traced job to one
process (``pid 0``) and each simulated MPI rank to one thread (``tid`` =
rank), so loading the file in ``chrome://tracing`` or https://ui.perfetto.dev
shows the per-rank phase timelines stacked exactly like the paper's Gantt
mental model of an in situ run.

Event kinds used:

- ``ph: "M"`` metadata -- process/thread names;
- ``ph: "X"`` complete spans -- one per :class:`~repro.trace.recorder.Span`,
  with ``dur`` and ``args.step`` / ``args.parent``;
- ``ph: "C"`` counters -- one per
  :class:`~repro.trace.recorder.CounterSample`, value under
  ``args.value``.
"""

from __future__ import annotations

import json

from repro.trace.recorder import TraceSession

#: Trace Event Format timestamps are microseconds.
_US = 1e6


def _meta(name: str, tid: int, label: str) -> dict:
    return {
        "name": name,
        "ph": "M",
        "ts": 0,
        "pid": 0,
        "tid": tid,
        "args": {"name": label},
    }


def session_to_chrome(session: TraceSession) -> dict:
    """Convert a :class:`TraceSession` to a Chrome trace dict."""
    events: list[dict] = [_meta("process_name", 0, f"repro [{session.name}]")]
    for rank in session.ranks:
        rec = session.recorder(rank)
        # Tenant-labeled recorders (the service layer) name their Chrome
        # lane after the tenant; unlabeled recorders keep ``rank N``.
        thread = (
            f"{rec.label} [rank {rank}]" if rec.label else f"rank {rank}"
        )
        events.append(_meta("thread_name", rank, thread))
        # Chrome sorts by ts itself, but emitting spans outermost-first per
        # begin time keeps the file diffable and the nesting check trivial.
        for s in sorted(rec.spans, key=lambda s: (s.t0, -s.t1)):
            args: dict = {}
            if s.step is not None:
                args["step"] = s.step
            if s.parent is not None:
                args["parent"] = s.parent
            events.append(
                {
                    "name": s.name,
                    "cat": s.category,
                    "ph": "X",
                    "ts": s.t0 * _US,
                    "dur": (s.t1 - s.t0) * _US,
                    "pid": 0,
                    "tid": rank,
                    "args": args,
                }
            )
        for c in rec.counters:
            events.append(
                {
                    "name": c.name,
                    "cat": c.category,
                    "ph": "C",
                    "ts": c.ts * _US,
                    "pid": 0,
                    "tid": rank,
                    "args": {"value": c.value},
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"session": session.name},
    }


def export_chrome_trace(session: TraceSession, path) -> None:
    """Write ``session`` as Chrome trace JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(session_to_chrome(session), fh, indent=1)
        fh.write("\n")


def load_chrome_trace(path) -> dict:
    """Load a Chrome trace JSON document (as exported by this module)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace JSON object")
    return doc


def validate_chrome_trace(doc: dict) -> list[str]:
    """Schema-check a Chrome trace dict; returns a list of problems.

    Checks the invariants this repo's tooling relies on: every event has
    ``ph``/``ts``/``pid``/``tid``; ``X`` events carry a non-negative
    ``dur``; and each thread's complete spans are properly nested (no
    partial overlap), which must hold because recorders are stack-based.
    """
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    per_tid: dict[tuple, list[tuple[float, float, str]]] = {}
    for i, ev in enumerate(events):
        for key in ("ph", "ts", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i} ({ev.get('name')!r}) missing {key!r}")
        if ev.get("ph") == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i} ({ev.get('name')!r}) bad dur {dur!r}")
            else:
                per_tid.setdefault((ev.get("pid"), ev.get("tid")), []).append(
                    (float(ev["ts"]), float(ev["ts"]) + float(dur), str(ev.get("name")))
                )
    # Nesting: within a thread, any two spans either nest or are disjoint.
    for (pid, tid), spans in per_tid.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: list[tuple[float, float, str]] = []
        for t0, t1, name in spans:
            while stack and stack[-1][1] <= t0:
                stack.pop()
            if stack and t1 > stack[-1][1]:
                problems.append(
                    f"pid {pid} tid {tid}: span {name!r} [{t0}, {t1}] partially "
                    f"overlaps {stack[-1][2]!r} [{stack[-1][0]}, {stack[-1][1]}]"
                )
                continue
            stack.append((t0, t1, name))
    return problems
