"""Per-rank structured run tracing: phase spans and counters.

The paper's evaluation (Sec. 4.1.1) is built from per-rank phase timings --
one-time versus per-timestep costs aggregated across MPI ranks -- but scalar
totals alone cannot answer *when* a rank spent its time, which is what the
SIM-SITU calibration loop (measured runs overlaid on a model) and Fig. 16's
per-iteration sawtooth both need.  This module records what each rank
actually did:

- a :class:`Span` is one begin/end interval of a named phase on one rank,
  tagged with the simulation step it served and the enclosing (parent)
  phase, so spans nest exactly like the ``TimerRegistry`` phases nest;
- a :class:`CounterSample` is one observation of a named quantity on one
  rank (bytes shipped per collective kind, framebuffer-pool hits, zero-copy
  vs copied mapping bytes, tracked memory).

Tracing is **off by default**: every producer holds an optional
:class:`TraceRecorder` and guards its hook with a single ``is not None``
check, so the hot path pays one pointer compare when disabled and nothing
else.  A :class:`TraceSession` groups the per-rank recorders of one job
under a shared clock epoch so cross-rank timelines line up.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator


@dataclass(frozen=True)
class Span:
    """One completed phase interval on one rank.

    Times are seconds relative to the owning session's epoch; ``step`` is
    the simulation step the span served (None for one-time phases recorded
    before any step); ``parent`` is the enclosing span's name, making the
    per-rank span forest reconstructible without timestamps.
    """

    name: str
    rank: int
    t0: float
    t1: float
    step: int | None = None
    parent: str | None = None
    category: str = "phase"

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class CounterSample:
    """One observation of a named counter on one rank."""

    name: str
    rank: int
    ts: float
    value: float
    category: str = "counter"


class TraceRecorder:
    """Collects spans and counters for one rank.

    Recorders are single-threaded by construction (one per simulated rank,
    used only from that rank's thread), so no locking is needed.  Spans are
    recorded through a begin/end stack, which guarantees the per-rank
    timeline is properly nested -- the invariant the Chrome exporter and the
    report's top-level-span accounting both rely on.
    """

    def __init__(
        self,
        rank: int = 0,
        epoch: float | None = None,
        label: str | None = None,
    ) -> None:
        self.rank = rank
        #: Human-readable identity for multi-tenant traces (the service
        #: layer labels each tenant's recorder with the tenant name); the
        #: Chrome exporter uses it for the thread name.  None keeps the
        #: default ``rank N`` naming.
        self.label = label
        #: Shared time origin (perf_counter value) for the owning session.
        self.epoch = time.perf_counter() if epoch is None else epoch
        self.spans: list[Span] = []
        self.counters: list[CounterSample] = []
        self._stack: list[tuple[str, float]] = []
        self._totals: dict[str, float] = {}
        #: Live span subscribers (see :meth:`subscribe`); guarded by one
        #: truthiness check so the disabled cost stays a pointer compare.
        self._subscribers: list[Callable[[Span], None]] = []
        #: The simulation step in-flight spans are serving (see set_step).
        self.step: int | None = None

    def __getstate__(self) -> dict:
        # Subscribers are live callbacks into this process's objects (the
        # autotuning sensor, tests); a pickled copy shipped to a worker
        # process must not carry them.  The worker re-subscribes locally if
        # it needs live spans.
        state = dict(self.__dict__)
        state["_subscribers"] = []
        return state

    # -- clock --------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the session epoch."""
        return time.perf_counter() - self.epoch

    # -- spans --------------------------------------------------------------
    def set_step(self, step: int) -> None:
        """Tag subsequently *closed* spans with ``step``.

        The step is sampled when a span ends, so a phase that spans the
        step increment (e.g. ``simulation::advance``) is tagged with the
        step it produced.
        """
        self.step = step

    def begin(self, name: str) -> None:
        self._stack.append((name, self.now()))

    def subscribe(self, callback: Callable[[Span], None]) -> None:
        """Invoke ``callback`` with every span as it completes.

        This is the live feed the autotuning controller's sensor consumes:
        unlike post-hoc report aggregation, subscribers see each span the
        moment ``end()``/``complete()`` records it, on the recording rank's
        own thread.  Callbacks must be cheap and must not record spans
        themselves.  Spans merged later via :meth:`absorb` are *not*
        replayed to subscribers -- they already fired in the process that
        recorded them.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Span], None]) -> None:
        """Remove a subscriber added with :meth:`subscribe` (idempotent)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def end(self) -> Span:
        if not self._stack:
            raise RuntimeError("TraceRecorder.end() with no open span")
        name, t0 = self._stack.pop()
        parent = self._stack[-1][0] if self._stack else None
        span = Span(name, self.rank, t0, self.now(), self.step, parent)
        self.spans.append(span)
        if self._subscribers:
            for cb in self._subscribers:
                cb(span)
        return span

    @contextmanager
    def span(self, name: str):
        self.begin(name)
        try:
            yield
        finally:
            self.end()

    def complete(
        self,
        name: str,
        t0: float,
        t1: float,
        step: int | None = None,
        parent: str | None = None,
    ) -> Span:
        """Record an externally timed (or *modeled*) span.

        This is the entry point the performance model uses to emit spans in
        the same schema as measured runs, so the two timelines can be
        diffed (the SIM-SITU calibration loop).
        """
        if t1 < t0:
            raise ValueError(f"span {name!r} ends before it begins")
        span = Span(name, self.rank, t0, t1, step, parent)
        self.spans.append(span)
        if self._subscribers:
            for cb in self._subscribers:
                cb(span)
        return span

    @property
    def open_spans(self) -> list[str]:
        """Names of spans begun but not yet ended (innermost last)."""
        return [name for name, _ in self._stack]

    # -- counters ------------------------------------------------------------
    def count(self, name: str, delta: float) -> None:
        """Accumulate ``delta`` into a monotonic counter and sample it."""
        total = self._totals.get(name, 0.0) + delta
        self._totals[name] = total
        self.counters.append(CounterSample(name, self.rank, self.now(), total))

    def gauge(self, name: str, value: float) -> None:
        """Sample an absolute (non-accumulating) value."""
        self._totals[name] = float(value)
        self.counters.append(
            CounterSample(name, self.rank, self.now(), float(value))
        )

    def total(self, name: str) -> float:
        """Latest value of a counter/gauge (0.0 if never sampled)."""
        return self._totals.get(name, 0.0)

    def absorb(self, spans, counters, totals) -> None:
        """Merge deltas recorded by another process's copy of this recorder.

        The process backend hands each rank process a (pickled or forked)
        copy of that rank's recorder; mutations stay in the child, so the
        worker ships back the spans/counters it added plus per-counter total
        *deltas*, and the launcher folds them in here.  The epoch is
        ``perf_counter``-based and system-wide, so child span times are
        already on this recorder's timeline.
        """
        self.spans.extend(spans)
        self.counters.extend(counters)
        for name, delta in totals.items():
            self._totals[name] = self._totals.get(name, 0.0) + delta

    def counter_names(self) -> list[str]:
        return sorted(self._totals)


class TraceSession:
    """The per-rank recorders of one job, under one clock epoch.

    ``run_spmd(..., trace=session)`` attaches ``session.recorder(rank)`` to
    every rank's communicator; components discover the recorder from there
    (see :class:`repro.core.bridge.Bridge`).  After the job completes the
    session holds the full structured trace, exportable to Chrome trace
    JSON via :meth:`export`.
    """

    def __init__(self, name: str = "measured") -> None:
        self.name = name
        self.epoch = time.perf_counter()
        self._recorders: dict[int, TraceRecorder] = {}

    def recorder(self, rank: int = 0, label: str | None = None) -> TraceRecorder:
        rec = self._recorders.get(rank)
        if rec is None:
            rec = TraceRecorder(rank, epoch=self.epoch, label=label)
            self._recorders[rank] = rec
        elif label is not None and rec.label is None:
            rec.label = label
        return rec

    @property
    def ranks(self) -> list[int]:
        return sorted(self._recorders)

    def spans(self) -> Iterator[Span]:
        for rank in self.ranks:
            yield from self._recorders[rank].spans

    def counters(self) -> Iterator[CounterSample]:
        for rank in self.ranks:
            yield from self._recorders[rank].counters

    def to_chrome(self) -> dict:
        """The session as a Chrome-trace-event (Perfetto-loadable) dict."""
        from repro.trace.chrome import session_to_chrome

        return session_to_chrome(self)

    def export(self, path) -> None:
        """Write the session as Chrome trace JSON to ``path``."""
        from repro.trace.chrome import export_chrome_trace

        export_chrome_trace(self, path)
