"""Phase reports: the paper's Sec. 4.1.1 breakdown from a captured trace.

The paper reports "one-time costs" (initialize, analysis initialize,
finalize) separately from "per-timestep costs" (simulation, analysis,
write), each aggregated across MPI ranks as a mean and a max.  This module
recovers exactly that table from a structured trace -- either a live
:class:`~repro.trace.recorder.TraceSession` or an exported Chrome trace
JSON document -- and can diff two reports (a measured run against the
performance model's *modeled* spans, the SIM-SITU calibration loop).

Span names map onto the taxonomy by rule, in order:

===================  ===========  =========================================
phase                kind         span-name rule (first match wins)
===================  ===========  =========================================
finalize             one-time     name contains ``finalize``
initialize           one-time     ``simulation::initialize`` or
                                  ``writer::initialize``
analysis initialize  one-time     name contains ``initialize`` or
                                  ``session_parse``
simulation           per-step     ``simulation::*`` (e.g. ``::advance``)
write                per-step     top-level ``io::*`` / ``*::write`` spans
analysis             per-step     everything else (``sensei::execute``,
                                  ``adios::*``, ``endpoint::*``, ...)
===================  ===========  =========================================

Only **top-level** spans (no parent) are accumulated, so a
``catalyst::render`` nested inside ``sensei::execute`` is not double
counted; nested spans remain in the trace for drill-down in Perfetto.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.trace.recorder import TraceSession

ONE_TIME = "one-time"
PER_STEP = "per-step"

#: Render/aggregation order of the taxonomy.
PHASE_ORDER = (
    ("initialize", ONE_TIME),
    ("analysis initialize", ONE_TIME),
    ("simulation", PER_STEP),
    ("analysis", PER_STEP),
    ("write", PER_STEP),
    ("finalize", ONE_TIME),
)


def classify_span(name: str) -> tuple[str, str]:
    """Map a span name to ``(phase, kind)`` per the table above."""
    if "finalize" in name:
        return "finalize", ONE_TIME
    if "initialize" in name or "session_parse" in name:
        head = name.split("::", 1)[0]
        if head in ("simulation", "writer"):
            return "initialize", ONE_TIME
        return "analysis initialize", ONE_TIME
    if name.startswith("simulation::") or name == "simulation":
        return "simulation", PER_STEP
    head = name.split("::", 1)[0]
    if head == "io" or name.endswith("::write"):
        return "write", PER_STEP
    return "analysis", PER_STEP


@dataclass
class PhaseStats:
    """Cross-rank aggregate for one taxonomy phase."""

    phase: str
    kind: str
    #: Per-rank total seconds, keyed by rank.
    per_rank: dict[int, float] = field(default_factory=dict)
    calls: int = 0

    def mean(self, n_ranks: int) -> float:
        return sum(self.per_rank.values()) / n_ranks if n_ranks else 0.0

    def max(self) -> float:
        return max(self.per_rank.values(), default=0.0)


@dataclass
class PhaseReport:
    """The Sec. 4.1.1 breakdown recovered from one trace."""

    name: str
    n_ranks: int
    n_steps: int
    phases: dict[str, PhaseStats]
    #: Final counter values summed across ranks, keyed by counter name.
    counters: dict[str, float]

    def mean(self, phase: str) -> float:
        st = self.phases.get(phase)
        return st.mean(self.n_ranks) if st else 0.0

    def max(self, phase: str) -> float:
        st = self.phases.get(phase)
        return st.max() if st else 0.0

    def per_step_mean(self, phase: str) -> float:
        """Mean-across-ranks cost per time step of a per-step phase."""
        return self.mean(phase) / self.n_steps if self.n_steps else 0.0

    def one_time_total_mean(self) -> float:
        return sum(
            self.mean(p) for p, kind in PHASE_ORDER if kind == ONE_TIME
        )

    def per_step_total_mean(self) -> float:
        return sum(
            self.per_step_mean(p) for p, kind in PHASE_ORDER if kind == PER_STEP
        )


def _events_from_session(session: TraceSession) -> list[dict]:
    return session.to_chrome()["traceEvents"]


def report_from_events(events: list[dict], name: str = "trace") -> PhaseReport:
    """Build a :class:`PhaseReport` from Chrome trace events."""
    phases: dict[str, PhaseStats] = {
        p: PhaseStats(p, kind) for p, kind in PHASE_ORDER
    }
    ranks: set[int] = set()
    steps: set[int] = set()
    finals: dict[tuple[str, int], tuple[float, float]] = {}
    for ev in events:
        ph = ev.get("ph")
        tid = int(ev.get("tid", 0))
        if ph == "X":
            ranks.add(tid)
            args = ev.get("args") or {}
            if "step" in args:
                steps.add(int(args["step"]))
            if args.get("parent") is not None:
                continue  # nested: parent span already accounts for it
            phase, kind = classify_span(str(ev.get("name", "")))
            st = phases[phase]
            st.per_rank[tid] = st.per_rank.get(tid, 0.0) + float(ev["dur"]) / 1e6
            st.calls += 1
        elif ph == "C":
            key = (str(ev.get("name", "")), tid)
            ts = float(ev.get("ts", 0.0))
            prev = finals.get(key)
            if prev is None or ts >= prev[0]:
                finals[key] = (ts, float((ev.get("args") or {}).get("value", 0.0)))
    counters: dict[str, float] = {}
    for (cname, _), (_, value) in finals.items():
        counters[cname] = counters.get(cname, 0.0) + value
    return PhaseReport(
        name=name,
        n_ranks=len(ranks),
        n_steps=len(steps),
        phases=phases,
        counters=dict(sorted(counters.items())),
    )


def report_from_chrome(doc: dict, name: str | None = None) -> PhaseReport:
    label = name or str(doc.get("otherData", {}).get("session", "trace"))
    return report_from_events(doc.get("traceEvents", []), name=label)


def report_from_session(session: TraceSession) -> PhaseReport:
    return report_from_events(_events_from_session(session), name=session.name)


def _fmt(seconds: float) -> str:
    return f"{seconds:12.6f}"


def render_report(report: PhaseReport) -> str:
    """Render the breakdown as the text table ``repro report`` prints."""
    lines = [
        f"phase breakdown: {report.name}  "
        f"({report.n_ranks} rank(s), {report.n_steps} step(s))",
        f"{'phase':<22}{'kind':<10}{'mean/rank [s]':>14}{'max/rank [s]':>14}"
        f"{'per-step [s]':>14}{'calls':>7}",
    ]
    lines.append("-" * len(lines[1]))
    for phase, kind in PHASE_ORDER:
        st = report.phases[phase]
        if not st.per_rank:
            continue
        per_step = (
            f"{report.per_step_mean(phase):14.6f}" if kind == PER_STEP else " " * 14
        )
        lines.append(
            f"{phase:<22}{kind:<10}{report.mean(phase):14.6f}"
            f"{report.max(phase):14.6f}{per_step}{st.calls:>7d}"
        )
    lines.append("-" * len(lines[1]))
    lines.append(
        f"{'one-time total':<32}{report.one_time_total_mean():14.6f}"
    )
    lines.append(
        f"{'per-step total':<32}{' ' * 14}{' ' * 14}"
        f"{report.per_step_total_mean():14.6f}"
    )
    if report.counters:
        lines.append("")
        lines.append("counters (summed across ranks):")
        width = max(len(n) for n in report.counters)
        for cname, value in report.counters.items():
            shown = f"{value:.0f}" if float(value).is_integer() else f"{value:.3f}"
            lines.append(f"  {cname:<{width}}  {shown}")
    return "\n".join(lines)


def phase_ratio(measured: float, modeled: float) -> float | None:
    """measured/modeled for one phase: ``math.inf`` when measured > 0 but
    the model predicts exactly zero (an unbounded calibration error the
    autotuning controller must treat as "prediction wrong", not "phase
    absent"), ``None`` only for 0/0 -- the phase genuinely costs nothing in
    both timelines."""
    if modeled > 0.0:
        return measured / modeled
    if measured > 0.0:
        return math.inf
    return None


def diff_ratios(measured: PhaseReport, modeled: PhaseReport) -> dict[str, float]:
    """Per-phase measured/modeled ratios as numbers (``math.inf`` allowed).

    The programmatic face of :func:`diff_reports`: per-step phases compare
    per-step means, one-time phases totals; 0/0 phases are omitted.
    """
    out: dict[str, float] = {}
    for phase, kind in PHASE_ORDER:
        if kind == PER_STEP:
            a, b = measured.per_step_mean(phase), modeled.per_step_mean(phase)
        else:
            a, b = measured.mean(phase), modeled.mean(phase)
        r = phase_ratio(a, b)
        if r is not None:
            out[phase] = r
    return out


def diff_reports(measured: PhaseReport, modeled: PhaseReport) -> str:
    """Side-by-side phase comparison (the measured-vs-modeled overlay).

    Per-step phases compare per-step means (scale-free across different
    step counts); one-time phases compare totals.  The ratio column is
    measured/modeled -- the model calibration error per phase.  A measured
    cost the model prices at zero renders as a flagged ``inf`` (unbounded
    error); ``--`` appears only for 0/0, a phase with recorded calls but
    no time in either report.
    """
    header = (
        f"{'phase':<22}{'kind':<10}{measured.name[:13]:>14}{modeled.name[:13]:>14}"
        f"{'ratio':>9}"
    )
    lines = [
        f"measured vs modeled: {measured.name} vs {modeled.name}",
        header,
        "-" * len(header),
    ]
    for phase, kind in PHASE_ORDER:
        if kind == PER_STEP:
            a, b = measured.per_step_mean(phase), modeled.per_step_mean(phase)
        else:
            a, b = measured.mean(phase), modeled.mean(phase)
        r = phase_ratio(a, b)
        if r is None:
            calls_a = measured.phases.get(phase)
            calls_b = modeled.phases.get(phase)
            if not (
                (calls_a is not None and calls_a.calls)
                or (calls_b is not None and calls_b.calls)
            ):
                continue  # absent from both timelines entirely
            ratio = "      --"
        elif math.isinf(r):
            ratio = "    inf !"
        else:
            ratio = f"{r:8.2f}x"
        lines.append(f"{phase:<22}{kind:<10}{a:14.6f}{b:14.6f}{ratio}")
    return "\n".join(lines)
