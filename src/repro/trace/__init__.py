"""Structured run tracing: per-rank phase spans, counters, phase reports.

The observability layer the paper's measurement methodology implies but the
scalar timers cannot provide: what every rank did, when, serving which
step, and how many bytes moved -- exportable to Chrome trace JSON
(Perfetto) and reducible to the Sec. 4.1.1 one-time/per-timestep phase
breakdown.  Off by default; one ``is not None`` check on the hot path when
disabled.

Typical use::

    from repro.mpi import run_spmd
    from repro.trace import TraceSession, report_from_session, render_report

    session = TraceSession()
    run_spmd(4, program, trace=session)       # hooks attach themselves
    session.export("trace.json")              # load in ui.perfetto.dev
    print(render_report(report_from_session(session)))
"""

from repro.trace.recorder import CounterSample, Span, TraceRecorder, TraceSession
from repro.trace.chrome import (
    export_chrome_trace,
    load_chrome_trace,
    session_to_chrome,
    validate_chrome_trace,
)
from repro.trace.report import (
    PhaseReport,
    PhaseStats,
    classify_span,
    diff_ratios,
    diff_reports,
    phase_ratio,
    render_report,
    report_from_chrome,
    report_from_events,
    report_from_session,
)
from repro.trace.modeled import session_from_breakdown

__all__ = [
    "CounterSample",
    "Span",
    "TraceRecorder",
    "TraceSession",
    "export_chrome_trace",
    "load_chrome_trace",
    "session_to_chrome",
    "validate_chrome_trace",
    "PhaseReport",
    "PhaseStats",
    "classify_span",
    "diff_ratios",
    "diff_reports",
    "phase_ratio",
    "render_report",
    "report_from_chrome",
    "report_from_events",
    "report_from_session",
    "session_from_breakdown",
]
