"""Optional Numba acceleration tier for the three hottest CPU kernels.

ROADMAP names three kernels whose per-step cost dominates once the
transport overheads are gone: the oscillator-advance matvec
(:mod:`repro.miniapp.kernel_cache`), halo-face packing
(:mod:`repro.mpi.halo`), and framebuffer compositing
(:func:`repro.render.compositing.composite_over_into`).  Each has a numpy
reference implementation that stays the source of truth; this module adds
jitted variants that fuse the per-element work and drop the intermediate
allocations (the 3-channel composite mask, the face-packing temporary).

Detection: importing :mod:`repro.accel` tries ``import numba`` unless the
``REPRO_NUMBA`` environment variable is ``0``/``false``/``off``/``no``
(the kill switch; ``REPRO_NUMBA=1`` with numba missing stays off).  When
numba is absent -- the default container does not ship it -- every entry
point dispatches to its numpy reference: same results, no new
dependencies.  When present, the equivalence tests in
``tests/test_accel_equivalence.py`` gate the tier: the matvec must match
BLAS to rtol 1e-12 and packing/compositing must be byte-identical to the
numpy paths.

Verify which tier is active with::

    python -c "from repro import accel; print(accel.HAVE_NUMBA)"
"""

from __future__ import annotations

import os

import numpy as np


def _numba_enabled() -> bool:
    raw = os.environ.get("REPRO_NUMBA", "").strip().lower()
    if raw in ("0", "false", "off", "no"):
        return False
    try:
        import numba  # noqa: F401
    except Exception:  # pragma: no cover - exercised without numba
        return False
    return True


#: True when the jitted tier is active (numba importable and not disabled).
HAVE_NUMBA = _numba_enabled()


if HAVE_NUMBA:  # pragma: no cover - requires numba installed
    import numba

    @numba.njit(cache=True, parallel=True)
    def _matvec(basis, values, out):
        n, m = basis.shape
        for i in numba.prange(n):
            acc = 0.0
            for j in range(m):
                acc += basis[i, j] * values[j]
            out[i] = acc

    @numba.njit(cache=True, parallel=True)
    def _pack3(src, dst):
        ni, nj, nk = src.shape
        for i in numba.prange(ni):
            for j in range(nj):
                for k in range(nk):
                    dst[i, j, k] = src[i, j, k]

    @numba.njit(cache=True, parallel=True)
    def _composite_depth(orgb, oalpha, odepth, frgb, falpha, fdepth, brgb, balpha, bdepth):
        h, w = falpha.shape
        for i in numba.prange(h):
            for j in range(w):
                if fdepth[i, j] <= bdepth[i, j]:
                    orgb[i, j, 0] = frgb[i, j, 0]
                    orgb[i, j, 1] = frgb[i, j, 1]
                    orgb[i, j, 2] = frgb[i, j, 2]
                    oalpha[i, j] = falpha[i, j]
                    odepth[i, j] = fdepth[i, j]
                else:
                    orgb[i, j, 0] = brgb[i, j, 0]
                    orgb[i, j, 1] = brgb[i, j, 1]
                    orgb[i, j, 2] = brgb[i, j, 2]
                    oalpha[i, j] = balpha[i, j]
                    odepth[i, j] = bdepth[i, j]

    @numba.njit(cache=True, parallel=True)
    def _composite_alpha(orgb, oalpha, frgb, falpha, brgb, balpha):
        h, w = falpha.shape
        for i in numba.prange(h):
            for j in range(w):
                if falpha[i, j] > 0:
                    orgb[i, j, 0] = frgb[i, j, 0]
                    orgb[i, j, 1] = frgb[i, j, 1]
                    orgb[i, j, 2] = frgb[i, j, 2]
                    oalpha[i, j] = falpha[i, j]
                else:
                    orgb[i, j, 0] = brgb[i, j, 0]
                    orgb[i, j, 1] = brgb[i, j, 1]
                    orgb[i, j, 2] = brgb[i, j, 2]
                    oalpha[i, j] = balpha[i, j]


def matvec_into(basis: np.ndarray, values: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out[:] = basis @ values`` -- the oscillator-advance hot loop.

    Jitted: a row-parallel fused multiply-accumulate.  Reference: BLAS
    GEMV via ``np.dot(..., out=)``.  The two accumulate in different
    orders, so equivalence is gated at rtol 1e-12, not bit-identity.
    """
    if HAVE_NUMBA:  # pragma: no cover - requires numba installed
        _matvec(basis, values, out)
        return out
    np.dot(basis, values, out=out)
    return out


def pack_contiguous(arr: np.ndarray) -> np.ndarray:
    """A C-contiguous copy of a halo face view (identity when already so).

    Jitted: a plane-parallel strided gather into a fresh buffer.
    Reference: :func:`np.ascontiguousarray`.  Byte-identical by
    construction (a copy is a copy).
    """
    if (
        HAVE_NUMBA
        and isinstance(arr, np.ndarray)
        and arr.ndim == 3
        and not arr.flags.c_contiguous
    ):  # pragma: no cover - requires numba installed
        dst = np.empty(arr.shape, dtype=arr.dtype)
        _pack3(arr, dst)
        return dst
    return np.ascontiguousarray(arr)


def composite_into(
    out_rgb: np.ndarray,
    out_alpha: np.ndarray,
    out_depth: "np.ndarray | None",
    f_rgb: np.ndarray,
    f_alpha: np.ndarray,
    f_depth: "np.ndarray | None",
    b_rgb: np.ndarray,
    b_alpha: np.ndarray,
    b_depth: "np.ndarray | None",
) -> bool:
    """Fused front-over-back composite; False when the jitted tier is off.

    One pass per pixel, no 3-channel mask materialization.  The selection
    semantics are exactly :func:`repro.render.compositing.composite_over_into`'s
    (depth test when depth is carried, else any-rendered-alpha), and each
    pixel is fully read before it is written, so ``out`` may alias either
    input -- byte-identical output to the numpy path.  Callers fall back
    to the reference path on False.
    """
    if not HAVE_NUMBA:
        return False
    if f_depth is not None:  # pragma: no cover - requires numba installed
        _composite_depth(
            out_rgb, out_alpha, out_depth, f_rgb, f_alpha, f_depth, b_rgb, b_alpha, b_depth
        )
    else:  # pragma: no cover - requires numba installed
        _composite_alpha(out_rgb, out_alpha, f_rgb, f_alpha, b_rgb, b_alpha)
    return True
