"""The simulated MPI communicator.

Implementation notes
--------------------

Collectives use a *slot exchange*: each rank deposits its contribution into a
shared, per-communicator slot array, a cyclic barrier releases everyone once
all contributions are present, each rank reads what it needs, and a second
barrier wait guarantees all reads complete before any rank's next collective
reuses the slots.  Because SPMD programs call collectives in program order on
every rank, two barrier phases per collective are sufficient -- the same
two-phase discipline real cyclic-barrier collectives use.

Point-to-point messaging uses one mailbox (list + condition variable) per
receiving rank; ``recv`` blocks until a message matching ``(source, tag)``
arrives.  Payloads that expose numpy buffers are copied on receive so ranks
cannot alias each other's memory -- that would silently break the zero-copy
accounting experiments.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

import numpy as np

from repro.mpi.ops import MAX, MIN, SUM, ReduceOp

ANY_SOURCE = -1
ANY_TAG = -1

#: Seconds a blocked collective/recv waits before declaring deadlock.  SPMD
#: programs under test should never legitimately block this long.
DEFAULT_TIMEOUT = 120.0


class MPIError(RuntimeError):
    """Raised for misuse of the communicator (mismatched calls, deadlock)."""


class _Mailbox:
    """Per-rank inbound message store with tag/source matching."""

    def __init__(self) -> None:
        self._messages: list[tuple[int, int, Any]] = []
        self._cond = threading.Condition()

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self._cond:
            self._messages.append((source, tag, payload))
            self._cond.notify_all()

    def _match(self, source: int, tag: int) -> int | None:
        for idx, (src, t, _) in enumerate(self._messages):
            if (source == ANY_SOURCE or src == source) and (
                tag == ANY_TAG or t == tag
            ):
                return idx
        return None

    def get(self, source: int, tag: int, timeout: float) -> tuple[int, int, Any]:
        with self._cond:
            idx = self._match(source, tag)
            deadline = time.monotonic() + timeout
            while idx is None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise MPIError(
                        f"recv(source={source}, tag={tag}) timed out: "
                        "likely deadlock or missing send"
                    )
                self._cond.wait(remaining)
                idx = self._match(source, tag)
            return self._messages.pop(idx)


class _Context:
    """Shared state for one communicator: slots, barrier, mailboxes."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.slots: list[Any] = [None] * size
        self.barrier = threading.Barrier(size)
        self.mailboxes = [_Mailbox() for _ in range(size)]
        # Serializes sub-communicator creation bookkeeping.
        self.lock = threading.Lock()
        self.split_results: dict[int, "_Context"] = {}


def _copy_payload(payload: Any) -> Any:
    """Copy numpy buffers crossing the simulated address-space boundary."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, tuple):
        return tuple(_copy_payload(p) for p in payload)
    if isinstance(payload, list):
        return [_copy_payload(p) for p in payload]
    if isinstance(payload, dict):
        return {k: _copy_payload(v) for k, v in payload.items()}
    return payload


class Communicator:
    """An MPI-like communicator bound to one simulated rank.

    Unlike mpi4py, one Python object per (context, rank) pair: each rank
    thread holds its own ``Communicator`` facade over the shared context.
    """

    def __init__(self, context: _Context, rank: int, timeout: float = DEFAULT_TIMEOUT):
        self._ctx = context
        self._rank = rank
        self._timeout = timeout

    # -- introspection ----------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._ctx.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Communicator(rank={self._rank}, size={self.size})"

    # -- point to point ----------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Eager, non-blocking-complete send (buffered semantics)."""
        if not 0 <= dest < self.size:
            raise MPIError(f"send dest {dest} out of range (size {self.size})")
        self._ctx.mailboxes[dest].put(self._rank, tag, _copy_payload(payload))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        _, _, payload = self._ctx.mailboxes[self._rank].get(source, tag, self._timeout)
        return payload

    def recv_with_status(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[Any, int, int]:
        """Receive returning ``(payload, source, tag)``."""
        src, t, payload = self._ctx.mailboxes[self._rank].get(
            source, tag, self._timeout
        )
        return payload, src, t

    def sendrecv(
        self, payload: Any, dest: int, source: int, sendtag: int = 0, recvtag: int = ANY_TAG
    ) -> Any:
        """Simultaneous exchange; safe because sends are buffered."""
        self.send(payload, dest, sendtag)
        return self.recv(source, recvtag)

    # -- collectives -------------------------------------------------------
    def _sync(self) -> None:
        try:
            self._ctx.barrier.wait(timeout=self._timeout)
        except threading.BrokenBarrierError as exc:
            raise MPIError(
                "collective timed out: likely mismatched collective calls "
                "across ranks (deadlock)"
            ) from exc

    def barrier(self) -> None:
        self._sync()

    def _exchange(self, value: Any) -> list[Any]:
        """Deposit ``value``, return everyone's deposits.  Two-phase."""
        self._ctx.slots[self._rank] = value
        self._sync()
        values = list(self._ctx.slots)
        self._sync()
        return values

    def allgather(self, value: Any) -> list[Any]:
        return [_copy_payload(v) for v in self._exchange(value)]

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        values = self._exchange(value)
        if self._rank == root:
            return [_copy_payload(v) for v in values]
        return None

    def bcast(self, value: Any, root: int = 0) -> Any:
        values = self._exchange(value if self._rank == root else None)
        return _copy_payload(values[root])

    def scatter(self, values: list[Any] | None, root: int = 0) -> Any:
        if self._rank == root:
            if values is None or len(values) != self.size:
                raise MPIError(
                    "scatter at root requires a list with one entry per rank"
                )
        deposited = self._exchange(values if self._rank == root else None)
        return _copy_payload(deposited[root][self._rank])

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        values = self._exchange(value)
        if self._rank == root:
            return op.reduce([_copy_payload(v) for v in values])
        return None

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        values = self._exchange(value)
        # Every rank folds in identical rank order => identical results.
        return op.reduce([_copy_payload(v) for v in values])

    def alltoall(self, values: list[Any]) -> list[Any]:
        if len(values) != self.size:
            raise MPIError("alltoall requires one entry per rank")
        deposited = self._exchange(values)
        return [_copy_payload(deposited[src][self._rank]) for src in range(self.size)]

    def allreduce_minmax(self, value: float) -> tuple[float, float]:
        """Fused min+max allreduce.

        The histogram analysis performs "two reductions to determine the
        minimum and maximum values on the grid" (Sec. 3.3); this helper keeps
        that a single slot exchange while reporting both, and the perf model
        still charges two reductions.
        """
        values = self._exchange(value)
        return MIN.reduce(list(values)), MAX.reduce(list(values))

    def exscan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``None``."""
        values = self._exchange(value)
        if self._rank == 0:
            return None
        return op.reduce([_copy_payload(v) for v in values[: self._rank]])

    # -- communicator management -------------------------------------------
    def split(self, color: int, key: int | None = None) -> "Communicator | None":
        """Partition ranks by ``color``; order within a group by ``key``.

        ``color < 0`` (MPI_UNDEFINED) yields ``None`` for that rank.
        """
        key = self._rank if key is None else key
        triples = self._exchange((color, key, self._rank))
        groups: dict[int, list[tuple[int, int]]] = {}
        for c, k, r in triples:
            if c >= 0:
                groups.setdefault(c, []).append((k, r))
        my_group = sorted(groups.get(color, [])) if color >= 0 else []
        # Lowest world-rank member of each group creates the shared context.
        if color >= 0:
            leader = min(r for _, r in my_group)
            if self._rank == leader:
                ctx = _Context(len(my_group))
                with self._ctx.lock:
                    self._ctx.split_results[leader] = ctx
        self._sync()
        result: Communicator | None = None
        if color >= 0:
            leader = min(r for _, r in my_group)
            with self._ctx.lock:
                ctx = self._ctx.split_results[leader]
            new_rank = [r for _, r in my_group].index(self._rank)
            result = Communicator(ctx, new_rank, timeout=self._timeout)
        self._sync()
        # Rank 0 clears before it can enter any subsequent collective's
        # barrier, so the cleanup cannot race a later split's publish.
        if self._rank == 0:
            with self._ctx.lock:
                self._ctx.split_results.clear()
        return result

    def dup(self) -> "Communicator":
        """Duplicate: a fresh context with the same group."""
        out = self.split(color=0, key=self._rank)
        assert out is not None
        return out

    # -- convenience -------------------------------------------------------
    def on_root(self, fn: Callable[[], Any], root: int = 0) -> Any:
        """Run ``fn`` on ``root`` only and broadcast its result."""
        value = fn() if self._rank == root else None
        return self.bcast(value, root=root)
