"""The simulated MPI communicator.

Implementation notes
--------------------

Collectives use a *slot exchange*: each rank deposits its contribution into a
shared, per-communicator slot array, a cyclic barrier releases everyone once
all contributions are present, each rank reads what it needs, and a second
barrier wait guarantees all reads complete before any rank's next collective
reuses the slots.  Because SPMD programs call collectives in program order on
every rank, two barrier phases per collective are sufficient -- the same
two-phase discipline real cyclic-barrier collectives use.

Every collective also deposits a :data:`trace record <CollectiveRecord>`
(kind, reduce op, root, payload signature) alongside its payload.  After the
first barrier phase each rank cross-checks the whole record row: ranks that
reached the same barrier through *different* collectives -- the SPMD bug that
manifests as a silent deadlock in real MPI -- raise an immediate
:class:`CollectiveMismatchError` printing the per-rank divergence, instead of
burning the :data:`DEFAULT_TIMEOUT` watchdog.  Reduction-family collectives
additionally fast-fail on incompatible payload shapes/dtypes/ops.  With
``trace_collectives=True`` (see :func:`~repro.mpi.launcher.run_spmd`) records
carry call sites and a per-rank rolling history for richer diagnostics, and
wildcard (``ANY_SOURCE``/``ANY_TAG``) receives that race against multiple
matching sends are flagged on :attr:`Communicator.race_events`.

Point-to-point messaging uses one mailbox (list + condition variable) per
receiving rank; ``recv`` blocks until a message matching ``(source, tag)``
arrives.  Payloads that expose numpy buffers are copied on receive so ranks
cannot alias each other's memory -- that would silently break the zero-copy
accounting experiments.

With a :class:`~repro.faults.FaultInjector` attached
(``run_spmd(faults=...)``) the fabric injects message-level faults at the
``mpi.send`` site: *delay* (delivery deferred), *duplicate* (delivered
twice), and *drop* (the message is lost; the transport's reliable-delivery
layer retransmits it after a timeout, counted as
``resilience::retransmit``).  Faulted messages carry per-(source, dest)
sequence numbers; the receiving mailbox restores MPI's non-overtaking
guarantee by matching in sequence order and discards duplicate deliveries,
so a program's *results* under message faults are identical to the
fault-free run -- only the timing differs.  Rank stalls are injected at
collective entry (``mpi.collective``).  Without an injector every hook is
one ``is None`` check.

When any rank of the job fails, the launcher aborts the shared context:
peers blocked in collectives *or* point-to-point receives are released
immediately with :class:`RankAbort` (naming the failing rank) instead of
burning the watchdog timeout.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import deque
from typing import Any, Callable

import numpy as np

from repro.mpi.ops import MAX, MIN, SUM, ReduceOp

ANY_SOURCE = -1
ANY_TAG = -1

#: Seconds a blocked collective/recv waits before declaring deadlock.  SPMD
#: programs under test should never legitimately block this long.
DEFAULT_TIMEOUT = 120.0

#: Collectives whose deposited payloads must be shape/dtype/op compatible
#: across ranks for the fold to be well defined.
_REDUCING_KINDS = frozenset({"reduce", "allreduce", "allreduce_minmax", "exscan"})

#: Per-rank collective records retained for trace diagnostics.
_HISTORY_LIMIT = 32

_MPI_DIR = os.path.dirname(os.path.abspath(__file__))

#: The world rank owning the current thread, set by the launcher.  Fault
#: draws key on it instead of the (communicator-local) rank: a thread's
#: sends on the world communicator and on sub-communicators then share one
#: deterministic per-rank draw sequence, where per-facade ranks would
#: collide across groups (world rank 0 vs. some group's rank 0) and make
#: rule draws depend on thread scheduling.
_thread_world_rank = threading.local()

#: Payload sentinel for an in-flight (delayed/retransmitted) envelope.
_PENDING = object()


class MPIError(RuntimeError):
    """Raised for misuse of the communicator (mismatched calls, deadlock)."""


class CollectiveMismatchError(MPIError):
    """Ranks entered the same barrier through divergent collective calls
    (different kinds, reduce ops, roots, or incompatible payloads)."""


class RankAbort(MPIError):
    """This rank was released from a blocking operation because *another*
    rank failed -- collateral damage, not a root cause.  The launcher
    reports these separately from the originating failure."""


#: A collective trace record: ``(seq, kind, op, root, payload_sig, site)``.
CollectiveRecord = tuple[int, str, "str | None", "int | None", "tuple | None", "str | None"]


def _payload_signature(value: Any) -> tuple:
    """Shape/dtype signature for reduction compatibility checks.

    All Python/NumPy numeric scalars fold interchangeably, so they share
    one signature; ndarrays are compared by shape and dtype; other payload
    types (e.g. mergeable dataclasses under a custom op) by type name.
    """
    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, str(value.dtype))
    if isinstance(value, (bool, int, float, complex, np.number)):
        return ("scalar",)
    return (type(value).__name__,)


def _payload_nbytes(payload: Any) -> int:
    """Best-effort wire size of a payload, for trace byte counters.

    Arrays and buffers count exactly; scalars count as 8 bytes; containers
    sum their members.  Only called when a trace recorder is attached.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (bool, int, float, complex, np.number)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, (tuple, list)):
        return sum(_payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(_payload_nbytes(v) for v in payload.values())
    return 0


def _format_signature(sig: "tuple | None") -> str:
    if sig is None:
        return ""
    if sig[0] == "ndarray":
        return f"ndarray(shape={sig[1]}, dtype={sig[2]})"
    return sig[0]


def _call_site() -> str:
    """First stack frame outside this package (best-effort, debug only)."""
    frame = sys._getframe(1)
    while frame is not None and os.path.dirname(
        os.path.abspath(frame.f_code.co_filename)
    ) == _MPI_DIR:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - defensive
        return "<unknown>"
    return (
        f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno} "
        f"in {frame.f_code.co_name}"
    )


def _format_record(record: "CollectiveRecord | None") -> str:
    if record is None:
        return "<no record>"
    seq, kind, op, root, sig, site = record
    parts = []
    if op is not None:
        parts.append(f"op={op}")
    if root is not None:
        parts.append(f"root={root}")
    if sig is not None:
        parts.append(f"payload={_format_signature(sig)}")
    call = f"{kind}({', '.join(parts)})"
    where = f" at {site}" if site else ""
    return f"#{seq} {call}{where}"


class _Mailbox:
    """Per-rank inbound message store with tag/source matching.

    Entries are ``(source, tag, seq, payload)``.  ``seq`` is None on the
    fault-free path; under fault injection it is the sender's per-(source,
    dest) sequence number.  Sequenced entries are matched lowest-(source,
    seq)-first, and a sequence delivered once is discarded on re-delivery
    (injected duplicates).

    A delayed or dropped-then-retransmitted message leaves a *pending*
    envelope (:data:`_PENDING` payload) in the store immediately: its
    (source, tag, seq) are known -- the message is in flight -- but it is
    not yet deliverable.  A receive whose pattern matches a pending
    envelope with a lower sequence number than any deliverable match WAITS
    for it, which is exactly MPI's non-overtaking rule: same-(source,
    pattern) messages arrive in send order, while receives for other tags
    overtake freely.
    """

    def __init__(self) -> None:
        self._messages: list[tuple[int, int, "int | None", Any]] = []
        self._cond = threading.Condition()
        self._delivered: dict[int, set[int]] = {}
        self._abort_reason: str | None = None

    def put(self, source: int, tag: int, payload: Any, seq: "int | None" = None) -> None:
        with self._cond:
            self._messages.append((source, tag, seq, payload))
            self._cond.notify_all()

    def put_pending(self, source: int, tag: int, seq: int) -> None:
        """Register an in-flight envelope (delayed/retransmitted message)."""
        with self._cond:
            self._messages.append((source, tag, seq, _PENDING))

    def fulfill(self, source: int, seq: int, payload: Any) -> None:
        """Deliver the payload of a pending envelope."""
        with self._cond:
            for idx, (src, t, s, body) in enumerate(self._messages):
                if src == source and s == seq and body is _PENDING:
                    self._messages[idx] = (src, t, s, payload)
                    break
            self._cond.notify_all()

    def abort(self, reason: str) -> None:
        """Release all blocked receivers with :class:`RankAbort`."""
        with self._cond:
            self._abort_reason = reason
            self._cond.notify_all()

    def _match(self, source: int, tag: int) -> int | None:
        best: int | None = None
        best_key: tuple[int, int] | None = None
        pending_key: tuple[int, int] | None = None
        for idx, (src, t, seq, body) in enumerate(self._messages):
            if (source == ANY_SOURCE or src == source) and (
                tag == ANY_TAG or t == tag
            ):
                if seq is None:
                    # Fault-free path: plain FIFO arrival order.
                    return idx
                key = (src, seq)
                if body is _PENDING:
                    if pending_key is None or key < pending_key:
                        pending_key = key
                elif best_key is None or key < best_key:
                    best, best_key = idx, key
        if pending_key is not None and (best_key is None or pending_key < best_key):
            # An earlier matching message is still in flight; taking the
            # later one would violate non-overtaking order.
            return None
        return best

    def get(
        self,
        source: int,
        tag: int,
        timeout: float,
        race_cb: "Callable[[list[tuple[int, int]]], None] | None" = None,
    ) -> tuple[int, int, Any]:
        with self._cond:
            deadline = time.monotonic() + timeout
            while True:
                if self._abort_reason is not None:
                    raise RankAbort(
                        f"recv(source={source}, tag={tag}) aborted: "
                        + self._abort_reason
                    )
                idx = self._match(source, tag)
                if idx is not None:
                    if race_cb is not None and (
                        source == ANY_SOURCE or tag == ANY_TAG
                    ):
                        matches = [
                            (src, t)
                            for src, t, _, body in self._messages
                            if body is not _PENDING
                            and (source == ANY_SOURCE or src == source)
                            and (tag == ANY_TAG or t == tag)
                        ]
                        if len(matches) > 1:
                            race_cb(matches)
                    src, t, seq, payload = self._messages.pop(idx)
                    if seq is not None:
                        seen = self._delivered.setdefault(src, set())
                        if seq in seen:
                            continue  # injected duplicate: already delivered
                        seen.add(seq)
                    return src, t, payload
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise MPIError(
                        f"recv(source={source}, tag={tag}) timed out: "
                        "likely deadlock or missing send"
                    )
                self._cond.wait(remaining)


class _Context:
    """Shared state for one communicator: slots, barrier, mailboxes."""

    def __init__(self, size: int, trace: bool = False, injector=None) -> None:
        self.size = size
        self.slots: list[Any] = [None] * size
        #: One collective trace record per rank, deposited alongside the
        #: payload and cross-checked after the first barrier phase.
        self.trace_slots: list["CollectiveRecord | None"] = [None] * size
        #: Debug tracing: call sites + rolling per-rank history + wildcard
        #: receive race flagging.  The cross-check itself is always on.
        self.trace = trace
        #: Optional :class:`repro.faults.FaultInjector`; None keeps every
        #: fault hook to a single pointer comparison.
        self.injector = injector
        self.histories: list[deque] = [
            deque(maxlen=_HISTORY_LIMIT) for _ in range(size)
        ]
        self.race_events: list[dict] = []
        self.barrier = threading.Barrier(size)
        self.mailboxes = [_Mailbox() for _ in range(size)]
        #: Per-rank count of barrier-phase entries; on a collective timeout
        #: the counts tell which ranks had / had not arrived.
        self.sync_counts = [0] * size
        #: Set by :meth:`abort`; blocked peers raise :class:`RankAbort`
        #: carrying this reason instead of timing out.
        self.abort_reason: str | None = None
        #: Sub-communicator contexts, so an abort cascades into them.
        self.children: list["_Context"] = []
        # Serializes sub-communicator creation bookkeeping.
        self.lock = threading.Lock()
        self.split_results: dict[int, "_Context"] = {}

    def abort(self, reason: str) -> None:
        """Release every rank blocked anywhere in this context tree."""
        self.abort_reason = reason
        self.barrier.abort()
        for box in self.mailboxes:
            box.abort(reason)
        with self.lock:
            children = list(self.children)
        for child in children:
            child.abort(reason)


def _deliver_later(
    box: _Mailbox, source: int, tag: int, payload: Any, seq: int, delay: float
) -> None:
    """Deliver a (already copied) message after ``delay`` seconds.

    Backs injected message delays and drop-retransmits.  The envelope is
    registered in the mailbox immediately (the message is in flight, so
    later same-pattern messages must not overtake it); only the payload
    arrives late.  Daemon timers: a delivery racing job teardown lands in
    a mailbox nobody reads, exactly like a late packet arriving after the
    receiver exited.
    """
    box.put_pending(source, tag, seq)
    timer = threading.Timer(delay, box.fulfill, args=(source, seq, payload))
    timer.daemon = True
    timer.start()


def _copy_payload(payload: Any) -> Any:
    """Copy numpy buffers crossing the simulated address-space boundary."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, tuple):
        return tuple(_copy_payload(p) for p in payload)
    if isinstance(payload, list):
        return [_copy_payload(p) for p in payload]
    if isinstance(payload, dict):
        return {k: _copy_payload(v) for k, v in payload.items()}
    return payload


class Communicator:
    """An MPI-like communicator bound to one simulated rank.

    Unlike mpi4py, one Python object per (context, rank) pair: each rank
    thread holds its own ``Communicator`` facade over the shared context.
    """

    def __init__(self, context: _Context, rank: int, timeout: float = DEFAULT_TIMEOUT):
        self._ctx = context
        self._rank = rank
        self._timeout = timeout
        #: This rank's collective sequence number (for trace diagnostics).
        self._seq = 0
        #: Per-destination send sequence numbers, used only under fault
        #: injection (ordering + duplicate suppression at the receiver).
        self._send_seqs: dict[int, int] = {}
        #: Structured-trace recorder (see :mod:`repro.trace`); None keeps
        #: every hook to a single pointer comparison.
        self._trace_recorder = None

    @property
    def timeout(self) -> float:
        """The collective/recv watchdog, in seconds.  Settable so recovery
        policies can shorten the wait at specific sites (e.g. the staging
        flow-control handshake) without rebuilding the communicator."""
        return self._timeout

    @timeout.setter
    def timeout(self, value: float) -> None:
        if value <= 0:
            raise ValueError("timeout must be positive")
        self._timeout = float(value)

    @property
    def fault_injector(self):
        """The job's :class:`repro.faults.FaultInjector`, or None."""
        return self._ctx.injector

    def _draw_rank(self) -> int:
        """The rank identity fault draws key on (world rank when known)."""
        return getattr(_thread_world_rank, "rank", self._rank)

    # -- structured tracing ------------------------------------------------
    def attach_trace(self, recorder) -> None:
        """Attach a :class:`repro.trace.TraceRecorder` for byte counters.

        Every collective then samples ``mpi::<kind>::bytes`` (this rank's
        contributed payload bytes, accumulated) and point-to-point sends
        sample ``mpi::send::bytes``.  Sub-communicators created by
        :meth:`split`/:meth:`dup` inherit the recorder.
        """
        self._trace_recorder = recorder

    @property
    def trace_recorder(self):
        """The attached structured-trace recorder, or None."""
        return self._trace_recorder

    # -- introspection ----------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._ctx.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Communicator(rank={self._rank}, size={self.size})"

    # -- point to point ----------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Eager, non-blocking-complete send (buffered semantics).

        Under fault injection (``mpi.send`` site) the message may be
        delayed, duplicated, or dropped-and-retransmitted; see the module
        docstring.  Results are unaffected -- sequence numbers restore
        delivery order and suppress duplicates at the receiver.
        """
        if not 0 <= dest < self.size:
            raise MPIError(f"send dest {dest} out of range (size {self.size})")
        rec = self._trace_recorder
        if rec is not None:
            rec.count("mpi::send::bytes", _payload_nbytes(payload))
        box = self._ctx.mailboxes[dest]
        inj = self._ctx.injector
        if inj is None:
            box.put(self._rank, tag, _copy_payload(payload))
            return
        seq = self._send_seqs.get(dest, 0)
        self._send_seqs[dest] = seq + 1
        payload = _copy_payload(payload)
        action = inj.draw("mpi.send", self._draw_rank(), trace=rec)
        if action is None:
            box.put(self._rank, tag, payload, seq=seq)
            return
        kind = action.kind
        if kind == "duplicate":
            # Delivered twice; the receiver's seq dedup discards the copy.
            box.put(self._rank, tag, payload, seq=seq)
            box.put(self._rank, tag, payload, seq=seq)
        elif kind == "delay":
            _deliver_later(
                box, self._rank, tag, payload, seq,
                float(action.params.get("seconds", 0.005)),
            )
        elif kind == "drop":
            # The message is lost on the wire; the reliable-transport layer
            # notices (retransmission timeout) and resends the same seq.
            if rec is not None:
                rec.count("resilience::retransmit", 1)
            _deliver_later(
                box, self._rank, tag, payload, seq,
                float(action.params.get("retransmit_after", 0.01)),
            )
        else:  # unknown kinds deliver normally (forward compatibility)
            box.put(self._rank, tag, payload, seq=seq)

    def _race_cb(
        self, source: int, tag: int
    ) -> "Callable[[list[tuple[int, int]]], None] | None":
        """Race sink for wildcard receives, active only under tracing."""
        if not self._ctx.trace:
            return None

        def record(matches: list[tuple[int, int]]) -> None:
            event = {
                "rank": self._rank,
                "source": source,
                "tag": tag,
                "candidates": matches,
                "site": _call_site(),
            }
            with self._ctx.lock:
                self._ctx.race_events.append(event)

        return record

    @property
    def race_events(self) -> list[dict]:
        """Wildcard receives that matched >1 pending send (trace mode only).

        Each event records the receiving rank, the wildcard pattern, the
        ``(source, tag)`` candidates that raced, and the receive call site.
        A nonempty list means the program's result can depend on thread
        scheduling -- the nondeterminism real MPI ``ANY_SOURCE`` races
        exhibit at scale.
        """
        with self._ctx.lock:
            return list(self._ctx.race_events)

    @property
    def collective_history(self) -> list["CollectiveRecord"]:
        """This rank's recent collective records (trace mode only)."""
        return list(self._ctx.histories[self._rank])

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Any:
        """Blocking receive.  ``timeout`` overrides the communicator-wide
        watchdog for this call only (resilience policies use short waits to
        probe a possibly-dead peer without stalling the step loop)."""
        _, _, payload = self._ctx.mailboxes[self._rank].get(
            source,
            tag,
            self._timeout if timeout is None else timeout,
            race_cb=self._race_cb(source, tag),
        )
        return payload

    def recv_with_status(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> tuple[Any, int, int]:
        """Receive returning ``(payload, source, tag)``."""
        src, t, payload = self._ctx.mailboxes[self._rank].get(
            source,
            tag,
            self._timeout if timeout is None else timeout,
            race_cb=self._race_cb(source, tag),
        )
        return payload, src, t

    def sendrecv(
        self, payload: Any, dest: int, source: int, sendtag: int = 0, recvtag: int = ANY_TAG
    ) -> Any:
        """Simultaneous exchange; safe because sends are buffered."""
        self.send(payload, dest, sendtag)
        return self.recv(source, recvtag)

    # -- collectives -------------------------------------------------------
    def _sync(self) -> None:
        counts = self._ctx.sync_counts
        counts[self._rank] += 1
        try:
            self._ctx.barrier.wait(timeout=self._timeout)
        except threading.BrokenBarrierError as exc:
            mine = counts[self._rank]
            reason = self._ctx.abort_reason
            if reason is not None:
                # An abort can race the barrier wake-up: if every rank had
                # already arrived at this phase (counters advance only after
                # the slot deposit), the exchange was complete and this rank
                # may proceed -- letting it surface its *own* error instead
                # of being misclassified as collateral damage.
                if all(counts[r] >= mine for r in range(self.size)):
                    return
                raise RankAbort(f"collective aborted: {reason}") from exc
            # Benign racy reads: each slot is written only by its own rank,
            # and a rank that arrives during the report at worst moves from
            # the missing list to the arrived list.
            arrived = sorted(r for r in range(self.size) if counts[r] >= mine)
            missing = sorted(r for r in range(self.size) if counts[r] < mine)
            raise MPIError(
                f"collective timed out after {self._timeout:g}s: likely "
                "mismatched collective calls across ranks (deadlock); "
                f"ranks {missing or '[]'} had not arrived at this barrier "
                f"phase (arrived: {arrived})" + self._history_hint()
            ) from exc

    def _history_hint(self) -> str:
        if not self._ctx.trace:
            return ""
        lines = [_format_record(r) for r in self._ctx.histories[self._rank]]
        if not lines:
            return ""
        joined = "\n  ".join(lines)
        return f"\nrecent collectives on rank {self._rank}:\n  {joined}"

    def _record(
        self,
        kind: str,
        op: "ReduceOp | None" = None,
        root: "int | None" = None,
        value: Any = None,
    ) -> "CollectiveRecord":
        """Build this collective's trace record (cheap unless tracing)."""
        self._seq += 1
        sig = _payload_signature(value) if kind in _REDUCING_KINDS else None
        site = _call_site() if self._ctx.trace else None
        record = (self._seq, kind, op.name if op is not None else None, root, sig, site)
        if self._ctx.trace:
            self._ctx.histories[self._rank].append(record)
        return record

    def _check_trace(self, records: list["CollectiveRecord | None"]) -> None:
        """Cross-check the just-deposited record row; raise on divergence.

        Every rank sees the identical row and performs the identical check,
        so a divergence raises on *all* ranks at the same barrier -- an
        immediate, diagnosable failure where real MPI would deadlock.
        """
        mismatch: str | None = None
        kinds = {r[1] for r in records if r is not None}
        ops = {r[2] for r in records if r is not None}
        roots = {r[3] for r in records if r is not None}
        if None in records or len(kinds) > 1:
            mismatch = "divergent collective kinds across ranks"
        elif len(ops) > 1:
            mismatch = "divergent reduce ops across ranks"
        elif len(roots) > 1:
            mismatch = "divergent roots across ranks"
        elif next(iter(kinds)) in _REDUCING_KINDS:
            sigs = {r[4] for r in records if r is not None}
            if len(sigs) > 1:
                mismatch = "incompatible reduction payloads across ranks"
        if mismatch is None:
            return
        per_rank = "\n".join(
            f"  rank {rank}: {_format_record(rec)}"
            for rank, rec in enumerate(records)
        )
        hint = (
            ""
            if self._ctx.trace
            else "\n(run with trace_collectives=True for call sites and history)"
        )
        raise CollectiveMismatchError(
            f"collective trace divergence: {mismatch}\n{per_rank}"
            f"{self._history_hint()}{hint}"
        )

    def barrier(self) -> None:
        self._exchange(None, self._record("barrier"))

    def _exchange(self, value: Any, record: "CollectiveRecord") -> list[Any]:
        """Deposit ``value`` + trace record, cross-check the records once all
        ranks arrive, and return everyone's deposits.  Two-phase."""
        rec = self._trace_recorder
        if rec is not None:
            rec.count(f"mpi::{record[1]}::bytes", _payload_nbytes(value))
        inj = self._ctx.injector
        if inj is not None:
            # Straggler injection: this rank enters the collective late.
            action = inj.draw("mpi.collective", self._draw_rank(), trace=rec)
            if action is not None and action.kind == "stall":
                time.sleep(float(action.params.get("seconds", 0.001)))
        self._ctx.slots[self._rank] = value
        self._ctx.trace_slots[self._rank] = record
        self._sync()
        self._check_trace(list(self._ctx.trace_slots))
        values = list(self._ctx.slots)
        self._sync()
        return values

    def allgather(self, value: Any) -> list[Any]:
        values = self._exchange(value, self._record("allgather"))
        return [_copy_payload(v) for v in values]

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        values = self._exchange(value, self._record("gather", root=root))
        if self._rank == root:
            return [_copy_payload(v) for v in values]
        return None

    def bcast(self, value: Any, root: int = 0) -> Any:
        values = self._exchange(
            value if self._rank == root else None, self._record("bcast", root=root)
        )
        return _copy_payload(values[root])

    def scatter(self, values: list[Any] | None, root: int = 0) -> Any:
        if self._rank == root:
            if values is None or len(values) != self.size:
                raise MPIError(
                    "scatter at root requires a list with one entry per rank"
                )
        deposited = self._exchange(
            values if self._rank == root else None,
            self._record("scatter", root=root),
        )
        return _copy_payload(deposited[root][self._rank])

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        values = self._exchange(
            value, self._record("reduce", op=op, root=root, value=value)
        )
        if self._rank == root:
            return op.reduce([_copy_payload(v) for v in values])
        return None

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        values = self._exchange(
            value, self._record("allreduce", op=op, value=value)
        )
        # Every rank folds in identical rank order => identical results.
        return op.reduce([_copy_payload(v) for v in values])

    def alltoall(self, values: list[Any]) -> list[Any]:
        if len(values) != self.size:
            raise MPIError("alltoall requires one entry per rank")
        deposited = self._exchange(values, self._record("alltoall"))
        return [_copy_payload(deposited[src][self._rank]) for src in range(self.size)]

    def allreduce_minmax(self, value: float) -> tuple[float, float]:
        """Fused min+max allreduce.

        The histogram analysis performs "two reductions to determine the
        minimum and maximum values on the grid" (Sec. 3.3); this helper keeps
        that a single slot exchange while reporting both, and the perf model
        still charges two reductions.
        """
        values = self._exchange(
            value, self._record("allreduce_minmax", value=value)
        )
        return MIN.reduce(list(values)), MAX.reduce(list(values))

    def exscan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``None``."""
        values = self._exchange(
            value, self._record("exscan", op=op, value=value)
        )
        if self._rank == 0:
            return None
        return op.reduce([_copy_payload(v) for v in values[: self._rank]])

    # -- communicator management -------------------------------------------
    def split(self, color: int, key: int | None = None) -> "Communicator | None":
        """Partition ranks by ``color``; order within a group by ``key``.

        ``color < 0`` (MPI_UNDEFINED) yields ``None`` for that rank.
        """
        key = self._rank if key is None else key
        triples = self._exchange((color, key, self._rank), self._record("split"))
        groups: dict[int, list[tuple[int, int]]] = {}
        for c, k, r in triples:
            if c >= 0:
                groups.setdefault(c, []).append((k, r))
        my_group = sorted(groups.get(color, [])) if color >= 0 else []
        # Lowest world-rank member of each group creates the shared context.
        if color >= 0:
            leader = min(r for _, r in my_group)
            if self._rank == leader:
                ctx = _Context(
                    len(my_group),
                    trace=self._ctx.trace,
                    injector=self._ctx.injector,
                )
                with self._ctx.lock:
                    self._ctx.split_results[leader] = ctx
                    # Registered so a job abort cascades into the child's
                    # barrier and mailboxes too.
                    self._ctx.children.append(ctx)
        self._sync()
        result: Communicator | None = None
        if color >= 0:
            leader = min(r for _, r in my_group)
            with self._ctx.lock:
                ctx = self._ctx.split_results[leader]
            new_rank = [r for _, r in my_group].index(self._rank)
            result = Communicator(ctx, new_rank, timeout=self._timeout)
            result._trace_recorder = self._trace_recorder
        self._sync()
        # Rank 0 clears before it can enter any subsequent collective's
        # barrier, so the cleanup cannot race a later split's publish.
        if self._rank == 0:
            with self._ctx.lock:
                self._ctx.split_results.clear()
        return result

    def dup(self) -> "Communicator":
        """Duplicate: a fresh context with the same group."""
        out = self.split(color=0, key=self._rank)
        assert out is not None
        return out

    # -- convenience -------------------------------------------------------
    def on_root(self, fn: Callable[[], Any], root: int = 0) -> Any:
        """Run ``fn`` on ``root`` only and broadcast its result."""
        value = fn() if self._rank == root else None
        return self.bcast(value, root=root)
