"""The simulated MPI communicator.

Implementation notes
--------------------

Collectives use a *slot exchange*: each rank deposits its contribution into a
shared, per-communicator slot array, a cyclic barrier releases everyone once
all contributions are present, each rank reads what it needs, and a second
barrier wait guarantees all reads complete before any rank's next collective
reuses the slots.  Because SPMD programs call collectives in program order on
every rank, two barrier phases per collective are sufficient -- the same
two-phase discipline real cyclic-barrier collectives use.

Every collective also deposits a :data:`trace record <CollectiveRecord>`
(kind, reduce op, root, payload signature) alongside its payload.  After the
first barrier phase each rank cross-checks the whole record row: ranks that
reached the same barrier through *different* collectives -- the SPMD bug that
manifests as a silent deadlock in real MPI -- raise an immediate
:class:`CollectiveMismatchError` printing the per-rank divergence, instead of
burning the :data:`DEFAULT_TIMEOUT` watchdog.  Reduction-family collectives
additionally fast-fail on incompatible payload shapes/dtypes/ops.  With
``trace_collectives=True`` (see :func:`~repro.mpi.launcher.run_spmd`) records
carry call sites and a per-rank rolling history for richer diagnostics, and
wildcard (``ANY_SOURCE``/``ANY_TAG``) receives that race against multiple
matching sends are flagged on :attr:`Communicator.race_events`.

Point-to-point messaging uses one mailbox (list + condition variable) per
receiving rank; ``recv`` blocks until a message matching ``(source, tag)``
arrives.  Payloads that expose numpy buffers are copied on receive so ranks
cannot alias each other's memory -- that would silently break the zero-copy
accounting experiments.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import deque
from typing import Any, Callable

import numpy as np

from repro.mpi.ops import MAX, MIN, SUM, ReduceOp

ANY_SOURCE = -1
ANY_TAG = -1

#: Seconds a blocked collective/recv waits before declaring deadlock.  SPMD
#: programs under test should never legitimately block this long.
DEFAULT_TIMEOUT = 120.0

#: Collectives whose deposited payloads must be shape/dtype/op compatible
#: across ranks for the fold to be well defined.
_REDUCING_KINDS = frozenset({"reduce", "allreduce", "allreduce_minmax", "exscan"})

#: Per-rank collective records retained for trace diagnostics.
_HISTORY_LIMIT = 32

_MPI_DIR = os.path.dirname(os.path.abspath(__file__))


class MPIError(RuntimeError):
    """Raised for misuse of the communicator (mismatched calls, deadlock)."""


class CollectiveMismatchError(MPIError):
    """Ranks entered the same barrier through divergent collective calls
    (different kinds, reduce ops, roots, or incompatible payloads)."""


#: A collective trace record: ``(seq, kind, op, root, payload_sig, site)``.
CollectiveRecord = tuple[int, str, "str | None", "int | None", "tuple | None", "str | None"]


def _payload_signature(value: Any) -> tuple:
    """Shape/dtype signature for reduction compatibility checks.

    All Python/NumPy numeric scalars fold interchangeably, so they share
    one signature; ndarrays are compared by shape and dtype; other payload
    types (e.g. mergeable dataclasses under a custom op) by type name.
    """
    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, str(value.dtype))
    if isinstance(value, (bool, int, float, complex, np.number)):
        return ("scalar",)
    return (type(value).__name__,)


def _payload_nbytes(payload: Any) -> int:
    """Best-effort wire size of a payload, for trace byte counters.

    Arrays and buffers count exactly; scalars count as 8 bytes; containers
    sum their members.  Only called when a trace recorder is attached.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (bool, int, float, complex, np.number)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, (tuple, list)):
        return sum(_payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(_payload_nbytes(v) for v in payload.values())
    return 0


def _format_signature(sig: "tuple | None") -> str:
    if sig is None:
        return ""
    if sig[0] == "ndarray":
        return f"ndarray(shape={sig[1]}, dtype={sig[2]})"
    return sig[0]


def _call_site() -> str:
    """First stack frame outside this package (best-effort, debug only)."""
    frame = sys._getframe(1)
    while frame is not None and os.path.dirname(
        os.path.abspath(frame.f_code.co_filename)
    ) == _MPI_DIR:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - defensive
        return "<unknown>"
    return (
        f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno} "
        f"in {frame.f_code.co_name}"
    )


def _format_record(record: "CollectiveRecord | None") -> str:
    if record is None:
        return "<no record>"
    seq, kind, op, root, sig, site = record
    parts = []
    if op is not None:
        parts.append(f"op={op}")
    if root is not None:
        parts.append(f"root={root}")
    if sig is not None:
        parts.append(f"payload={_format_signature(sig)}")
    call = f"{kind}({', '.join(parts)})"
    where = f" at {site}" if site else ""
    return f"#{seq} {call}{where}"


class _Mailbox:
    """Per-rank inbound message store with tag/source matching."""

    def __init__(self) -> None:
        self._messages: list[tuple[int, int, Any]] = []
        self._cond = threading.Condition()

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self._cond:
            self._messages.append((source, tag, payload))
            self._cond.notify_all()

    def _match(self, source: int, tag: int) -> int | None:
        for idx, (src, t, _) in enumerate(self._messages):
            if (source == ANY_SOURCE or src == source) and (
                tag == ANY_TAG or t == tag
            ):
                return idx
        return None

    def get(
        self,
        source: int,
        tag: int,
        timeout: float,
        race_cb: "Callable[[list[tuple[int, int]]], None] | None" = None,
    ) -> tuple[int, int, Any]:
        with self._cond:
            idx = self._match(source, tag)
            deadline = time.monotonic() + timeout
            while idx is None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise MPIError(
                        f"recv(source={source}, tag={tag}) timed out: "
                        "likely deadlock or missing send"
                    )
                self._cond.wait(remaining)
                idx = self._match(source, tag)
            if race_cb is not None and (source == ANY_SOURCE or tag == ANY_TAG):
                matches = [
                    (src, t)
                    for src, t, _ in self._messages
                    if (source == ANY_SOURCE or src == source)
                    and (tag == ANY_TAG or t == tag)
                ]
                if len(matches) > 1:
                    race_cb(matches)
            return self._messages.pop(idx)


class _Context:
    """Shared state for one communicator: slots, barrier, mailboxes."""

    def __init__(self, size: int, trace: bool = False) -> None:
        self.size = size
        self.slots: list[Any] = [None] * size
        #: One collective trace record per rank, deposited alongside the
        #: payload and cross-checked after the first barrier phase.
        self.trace_slots: list["CollectiveRecord | None"] = [None] * size
        #: Debug tracing: call sites + rolling per-rank history + wildcard
        #: receive race flagging.  The cross-check itself is always on.
        self.trace = trace
        self.histories: list[deque] = [
            deque(maxlen=_HISTORY_LIMIT) for _ in range(size)
        ]
        self.race_events: list[dict] = []
        self.barrier = threading.Barrier(size)
        self.mailboxes = [_Mailbox() for _ in range(size)]
        # Serializes sub-communicator creation bookkeeping.
        self.lock = threading.Lock()
        self.split_results: dict[int, "_Context"] = {}


def _copy_payload(payload: Any) -> Any:
    """Copy numpy buffers crossing the simulated address-space boundary."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, tuple):
        return tuple(_copy_payload(p) for p in payload)
    if isinstance(payload, list):
        return [_copy_payload(p) for p in payload]
    if isinstance(payload, dict):
        return {k: _copy_payload(v) for k, v in payload.items()}
    return payload


class Communicator:
    """An MPI-like communicator bound to one simulated rank.

    Unlike mpi4py, one Python object per (context, rank) pair: each rank
    thread holds its own ``Communicator`` facade over the shared context.
    """

    def __init__(self, context: _Context, rank: int, timeout: float = DEFAULT_TIMEOUT):
        self._ctx = context
        self._rank = rank
        self._timeout = timeout
        #: This rank's collective sequence number (for trace diagnostics).
        self._seq = 0
        #: Structured-trace recorder (see :mod:`repro.trace`); None keeps
        #: every hook to a single pointer comparison.
        self._trace_recorder = None

    # -- structured tracing ------------------------------------------------
    def attach_trace(self, recorder) -> None:
        """Attach a :class:`repro.trace.TraceRecorder` for byte counters.

        Every collective then samples ``mpi::<kind>::bytes`` (this rank's
        contributed payload bytes, accumulated) and point-to-point sends
        sample ``mpi::send::bytes``.  Sub-communicators created by
        :meth:`split`/:meth:`dup` inherit the recorder.
        """
        self._trace_recorder = recorder

    @property
    def trace_recorder(self):
        """The attached structured-trace recorder, or None."""
        return self._trace_recorder

    # -- introspection ----------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._ctx.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Communicator(rank={self._rank}, size={self.size})"

    # -- point to point ----------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Eager, non-blocking-complete send (buffered semantics)."""
        if not 0 <= dest < self.size:
            raise MPIError(f"send dest {dest} out of range (size {self.size})")
        rec = self._trace_recorder
        if rec is not None:
            rec.count("mpi::send::bytes", _payload_nbytes(payload))
        self._ctx.mailboxes[dest].put(self._rank, tag, _copy_payload(payload))

    def _race_cb(
        self, source: int, tag: int
    ) -> "Callable[[list[tuple[int, int]]], None] | None":
        """Race sink for wildcard receives, active only under tracing."""
        if not self._ctx.trace:
            return None

        def record(matches: list[tuple[int, int]]) -> None:
            event = {
                "rank": self._rank,
                "source": source,
                "tag": tag,
                "candidates": matches,
                "site": _call_site(),
            }
            with self._ctx.lock:
                self._ctx.race_events.append(event)

        return record

    @property
    def race_events(self) -> list[dict]:
        """Wildcard receives that matched >1 pending send (trace mode only).

        Each event records the receiving rank, the wildcard pattern, the
        ``(source, tag)`` candidates that raced, and the receive call site.
        A nonempty list means the program's result can depend on thread
        scheduling -- the nondeterminism real MPI ``ANY_SOURCE`` races
        exhibit at scale.
        """
        with self._ctx.lock:
            return list(self._ctx.race_events)

    @property
    def collective_history(self) -> list["CollectiveRecord"]:
        """This rank's recent collective records (trace mode only)."""
        return list(self._ctx.histories[self._rank])

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        _, _, payload = self._ctx.mailboxes[self._rank].get(
            source, tag, self._timeout, race_cb=self._race_cb(source, tag)
        )
        return payload

    def recv_with_status(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[Any, int, int]:
        """Receive returning ``(payload, source, tag)``."""
        src, t, payload = self._ctx.mailboxes[self._rank].get(
            source, tag, self._timeout, race_cb=self._race_cb(source, tag)
        )
        return payload, src, t

    def sendrecv(
        self, payload: Any, dest: int, source: int, sendtag: int = 0, recvtag: int = ANY_TAG
    ) -> Any:
        """Simultaneous exchange; safe because sends are buffered."""
        self.send(payload, dest, sendtag)
        return self.recv(source, recvtag)

    # -- collectives -------------------------------------------------------
    def _sync(self) -> None:
        try:
            self._ctx.barrier.wait(timeout=self._timeout)
        except threading.BrokenBarrierError as exc:
            raise MPIError(
                "collective timed out: likely mismatched collective calls "
                "across ranks (deadlock)" + self._history_hint()
            ) from exc

    def _history_hint(self) -> str:
        if not self._ctx.trace:
            return ""
        lines = [_format_record(r) for r in self._ctx.histories[self._rank]]
        if not lines:
            return ""
        joined = "\n  ".join(lines)
        return f"\nrecent collectives on rank {self._rank}:\n  {joined}"

    def _record(
        self,
        kind: str,
        op: "ReduceOp | None" = None,
        root: "int | None" = None,
        value: Any = None,
    ) -> "CollectiveRecord":
        """Build this collective's trace record (cheap unless tracing)."""
        self._seq += 1
        sig = _payload_signature(value) if kind in _REDUCING_KINDS else None
        site = _call_site() if self._ctx.trace else None
        record = (self._seq, kind, op.name if op is not None else None, root, sig, site)
        if self._ctx.trace:
            self._ctx.histories[self._rank].append(record)
        return record

    def _check_trace(self, records: list["CollectiveRecord | None"]) -> None:
        """Cross-check the just-deposited record row; raise on divergence.

        Every rank sees the identical row and performs the identical check,
        so a divergence raises on *all* ranks at the same barrier -- an
        immediate, diagnosable failure where real MPI would deadlock.
        """
        mismatch: str | None = None
        kinds = {r[1] for r in records if r is not None}
        ops = {r[2] for r in records if r is not None}
        roots = {r[3] for r in records if r is not None}
        if None in records or len(kinds) > 1:
            mismatch = "divergent collective kinds across ranks"
        elif len(ops) > 1:
            mismatch = "divergent reduce ops across ranks"
        elif len(roots) > 1:
            mismatch = "divergent roots across ranks"
        elif next(iter(kinds)) in _REDUCING_KINDS:
            sigs = {r[4] for r in records if r is not None}
            if len(sigs) > 1:
                mismatch = "incompatible reduction payloads across ranks"
        if mismatch is None:
            return
        per_rank = "\n".join(
            f"  rank {rank}: {_format_record(rec)}"
            for rank, rec in enumerate(records)
        )
        hint = (
            ""
            if self._ctx.trace
            else "\n(run with trace_collectives=True for call sites and history)"
        )
        raise CollectiveMismatchError(
            f"collective trace divergence: {mismatch}\n{per_rank}"
            f"{self._history_hint()}{hint}"
        )

    def barrier(self) -> None:
        self._exchange(None, self._record("barrier"))

    def _exchange(self, value: Any, record: "CollectiveRecord") -> list[Any]:
        """Deposit ``value`` + trace record, cross-check the records once all
        ranks arrive, and return everyone's deposits.  Two-phase."""
        rec = self._trace_recorder
        if rec is not None:
            rec.count(f"mpi::{record[1]}::bytes", _payload_nbytes(value))
        self._ctx.slots[self._rank] = value
        self._ctx.trace_slots[self._rank] = record
        self._sync()
        self._check_trace(list(self._ctx.trace_slots))
        values = list(self._ctx.slots)
        self._sync()
        return values

    def allgather(self, value: Any) -> list[Any]:
        values = self._exchange(value, self._record("allgather"))
        return [_copy_payload(v) for v in values]

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        values = self._exchange(value, self._record("gather", root=root))
        if self._rank == root:
            return [_copy_payload(v) for v in values]
        return None

    def bcast(self, value: Any, root: int = 0) -> Any:
        values = self._exchange(
            value if self._rank == root else None, self._record("bcast", root=root)
        )
        return _copy_payload(values[root])

    def scatter(self, values: list[Any] | None, root: int = 0) -> Any:
        if self._rank == root:
            if values is None or len(values) != self.size:
                raise MPIError(
                    "scatter at root requires a list with one entry per rank"
                )
        deposited = self._exchange(
            values if self._rank == root else None,
            self._record("scatter", root=root),
        )
        return _copy_payload(deposited[root][self._rank])

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        values = self._exchange(
            value, self._record("reduce", op=op, root=root, value=value)
        )
        if self._rank == root:
            return op.reduce([_copy_payload(v) for v in values])
        return None

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        values = self._exchange(
            value, self._record("allreduce", op=op, value=value)
        )
        # Every rank folds in identical rank order => identical results.
        return op.reduce([_copy_payload(v) for v in values])

    def alltoall(self, values: list[Any]) -> list[Any]:
        if len(values) != self.size:
            raise MPIError("alltoall requires one entry per rank")
        deposited = self._exchange(values, self._record("alltoall"))
        return [_copy_payload(deposited[src][self._rank]) for src in range(self.size)]

    def allreduce_minmax(self, value: float) -> tuple[float, float]:
        """Fused min+max allreduce.

        The histogram analysis performs "two reductions to determine the
        minimum and maximum values on the grid" (Sec. 3.3); this helper keeps
        that a single slot exchange while reporting both, and the perf model
        still charges two reductions.
        """
        values = self._exchange(
            value, self._record("allreduce_minmax", value=value)
        )
        return MIN.reduce(list(values)), MAX.reduce(list(values))

    def exscan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``None``."""
        values = self._exchange(
            value, self._record("exscan", op=op, value=value)
        )
        if self._rank == 0:
            return None
        return op.reduce([_copy_payload(v) for v in values[: self._rank]])

    # -- communicator management -------------------------------------------
    def split(self, color: int, key: int | None = None) -> "Communicator | None":
        """Partition ranks by ``color``; order within a group by ``key``.

        ``color < 0`` (MPI_UNDEFINED) yields ``None`` for that rank.
        """
        key = self._rank if key is None else key
        triples = self._exchange((color, key, self._rank), self._record("split"))
        groups: dict[int, list[tuple[int, int]]] = {}
        for c, k, r in triples:
            if c >= 0:
                groups.setdefault(c, []).append((k, r))
        my_group = sorted(groups.get(color, [])) if color >= 0 else []
        # Lowest world-rank member of each group creates the shared context.
        if color >= 0:
            leader = min(r for _, r in my_group)
            if self._rank == leader:
                ctx = _Context(len(my_group), trace=self._ctx.trace)
                with self._ctx.lock:
                    self._ctx.split_results[leader] = ctx
        self._sync()
        result: Communicator | None = None
        if color >= 0:
            leader = min(r for _, r in my_group)
            with self._ctx.lock:
                ctx = self._ctx.split_results[leader]
            new_rank = [r for _, r in my_group].index(self._rank)
            result = Communicator(ctx, new_rank, timeout=self._timeout)
            result._trace_recorder = self._trace_recorder
        self._sync()
        # Rank 0 clears before it can enter any subsequent collective's
        # barrier, so the cleanup cannot race a later split's publish.
        if self._rank == 0:
            with self._ctx.lock:
                self._ctx.split_results.clear()
        return result

    def dup(self) -> "Communicator":
        """Duplicate: a fresh context with the same group."""
        out = self.split(color=0, key=self._rank)
        assert out is not None
        return out

    # -- convenience -------------------------------------------------------
    def on_root(self, fn: Callable[[], Any], root: int = 0) -> Any:
        """Run ``fn`` on ``root`` only and broadcast its result."""
        value = fn() if self._rank == root else None
        return self.bcast(value, root=root)
