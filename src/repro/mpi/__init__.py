"""Simulated MPI runtime with thread- and process-backed execution.

The paper's experiments are MPI programs (miniapp in C++/MPI, PHASTA,
AVF-LESLIE, Nyx).  This environment has no MPI implementation, so this
package provides a faithful SPMD substrate: every simulated rank runs the
*same program* against a :class:`Communicator` that implements
point-to-point messaging and the collectives the paper's codes rely on
(barrier, bcast, reduce, allreduce, gather/allgather, scatter, alltoall,
split).  Ranks execute on one of two interchangeable backends (see
``run_spmd(backend=...)``): threads sharing the process (the default), or
one OS process per rank with pipe + shared-memory transport
(:mod:`repro.mpi.process_backend`) for true concurrency.

Semantics follow MPI closely where it matters for correctness studies:

- collectives are synchronizing and must be called by every rank of the
  communicator in the same order (violations deadlock, as in MPI; a watchdog
  timeout in the launcher turns deadlocks into test failures);
- reductions are performed in rank order, so results are deterministic and
  reproducible run to run;
- numpy payloads are transferred by reference between threads and copied at
  the receiver boundary, emulating distinct address spaces.

What this substrate intentionally does *not* reproduce is network cost at
scale -- that is the job of :mod:`repro.perf`, which replays the same
operation sequences through calibrated machine models.
"""

from repro.mpi.ops import MAX, MIN, PROD, SUM, ReduceOp
from repro.mpi.communicator import (
    ANY_SOURCE,
    ANY_TAG,
    CollectiveMismatchError,
    Communicator,
    MPIError,
    RankAbort,
)
from repro.mpi.launcher import (
    BACKENDS,
    SPMDError,
    aggregate_timer_snapshots,
    resolve_backend,
    run_spmd,
)
from repro.mpi.halo import HaloExchanger
from repro.mpi.framing import (
    FrameChannel,
    FrameError,
    MalformedFrameError,
    TruncatedFrameError,
)

__all__ = [
    "BACKENDS",
    "FrameChannel",
    "FrameError",
    "MalformedFrameError",
    "TruncatedFrameError",
    "resolve_backend",
    "HaloExchanger",
    "Communicator",
    "MPIError",
    "RankAbort",
    "CollectiveMismatchError",
    "ANY_SOURCE",
    "ANY_TAG",
    "ReduceOp",
    "SUM",
    "MIN",
    "MAX",
    "PROD",
    "run_spmd",
    "SPMDError",
    "aggregate_timer_snapshots",
]
