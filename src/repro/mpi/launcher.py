"""SPMD launcher: ``mpiexec -n N`` for the thread-backed runtime.

``run_spmd(nranks, program, ...)`` spawns one thread per rank, hands each a
:class:`~repro.mpi.communicator.Communicator`, and collects per-rank return
values.  Any rank raising aborts the whole job (remaining ranks are released
by breaking the shared barrier), mirroring ``MPI_Abort`` semantics closely
enough for tests.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Sequence

from repro.mpi.communicator import DEFAULT_TIMEOUT, Communicator, _Context


class SPMDError(RuntimeError):
    """A rank of an SPMD program raised; carries per-rank tracebacks."""

    def __init__(self, failures: dict[int, BaseException], tracebacks: dict[int, str]):
        self.failures = failures
        self.tracebacks = tracebacks
        detail = "\n".join(
            f"--- rank {rank} ---\n{tb}" for rank, tb in sorted(tracebacks.items())
        )
        super().__init__(
            f"{len(failures)} rank(s) failed: {sorted(failures)}\n{detail}"
        )


def run_spmd(
    nranks: int,
    program: Callable[..., Any],
    *args: Any,
    timeout: float = DEFAULT_TIMEOUT,
    rank_args: Sequence[tuple] | None = None,
    trace_collectives: bool = False,
    **kwargs: Any,
) -> list[Any]:
    """Run ``program(comm, *args, **kwargs)`` on ``nranks`` simulated ranks.

    Parameters
    ----------
    nranks:
        World size.  Thread-backed, so keep it modest (tests use 2-32).
    program:
        The SPMD entry point; receives the rank's communicator first.
    timeout:
        Deadlock watchdog for blocked collectives/recvs, in seconds.
    rank_args:
        Optional per-rank extra positional arguments (length ``nranks``);
        appended after ``args``.
    trace_collectives:
        Debug mode for the collective-trace race detector: records call
        sites and a per-rank rolling history for divergence diagnostics,
        and flags ``ANY_SOURCE``/``ANY_TAG`` receives that raced against
        multiple matching sends (``comm.race_events``).  The divergence
        cross-check itself is always on.

    Returns
    -------
    list with ``program``'s return value for each rank, in rank order.
    """
    if nranks <= 0:
        raise ValueError("nranks must be positive")
    if rank_args is not None and len(rank_args) != nranks:
        raise ValueError("rank_args must have one tuple per rank")

    ctx = _Context(nranks, trace=trace_collectives)
    results: list[Any] = [None] * nranks
    failures: dict[int, BaseException] = {}
    tracebacks: dict[int, str] = {}
    lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = Communicator(ctx, rank, timeout=timeout)
        extra = tuple(rank_args[rank]) if rank_args is not None else ()
        try:
            results[rank] = program(comm, *args, *extra, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            with lock:
                failures[rank] = exc
                tracebacks[rank] = traceback.format_exc()
            # Release peers blocked in collectives so the job terminates.
            ctx.barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if failures:
        raise SPMDError(failures, tracebacks)
    return results
