"""SPMD launcher: ``mpiexec -n N`` for the thread-backed runtime.

``run_spmd(nranks, program, ...)`` spawns one thread per rank, hands each a
:class:`~repro.mpi.communicator.Communicator`, and collects per-rank return
values.  Any rank raising aborts the whole job (remaining ranks are released
by breaking the shared barrier), mirroring ``MPI_Abort`` semantics closely
enough for tests.
"""

from __future__ import annotations

import threading
import traceback
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.mpi.communicator import DEFAULT_TIMEOUT, Communicator, _Context
from repro.util.timers import TimerRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace import TraceSession


class SPMDError(RuntimeError):
    """A rank of an SPMD program raised; carries per-rank tracebacks."""

    def __init__(self, failures: dict[int, BaseException], tracebacks: dict[int, str]):
        self.failures = failures
        self.tracebacks = tracebacks
        detail = "\n".join(
            f"--- rank {rank} ---\n{tb}" for rank, tb in sorted(tracebacks.items())
        )
        super().__init__(
            f"{len(failures)} rank(s) failed: {sorted(failures)}\n{detail}"
        )


def run_spmd(
    nranks: int,
    program: Callable[..., Any],
    *args: Any,
    timeout: float = DEFAULT_TIMEOUT,
    rank_args: Sequence[tuple] | None = None,
    trace_collectives: bool = False,
    trace: "TraceSession | None" = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``program(comm, *args, **kwargs)`` on ``nranks`` simulated ranks.

    Parameters
    ----------
    nranks:
        World size.  Thread-backed, so keep it modest (tests use 2-32).
    program:
        The SPMD entry point; receives the rank's communicator first.
    timeout:
        Deadlock watchdog for blocked collectives/recvs, in seconds.
    rank_args:
        Optional per-rank extra positional arguments (length ``nranks``);
        appended after ``args``.
    trace_collectives:
        Debug mode for the collective-trace race detector: records call
        sites and a per-rank rolling history for divergence diagnostics,
        and flags ``ANY_SOURCE``/``ANY_TAG`` receives that raced against
        multiple matching sends (``comm.race_events``).  The divergence
        cross-check itself is always on.
    trace:
        Optional :class:`repro.trace.TraceSession`.  Each rank's
        communicator gets that rank's :class:`~repro.trace.TraceRecorder`
        attached before the thread starts, so collective byte counters and
        any component that resolves ``comm.trace_recorder`` (the
        :class:`~repro.core.bridge.Bridge`, timers, memory trackers)
        record into the shared session.  ``None`` (the default) leaves
        every hook at a single pointer comparison.

    Returns
    -------
    list with ``program``'s return value for each rank, in rank order.
    """
    if nranks <= 0:
        raise ValueError("nranks must be positive")
    if rank_args is not None and len(rank_args) != nranks:
        raise ValueError("rank_args must have one tuple per rank")

    ctx = _Context(nranks, trace=trace_collectives)
    results: list[Any] = [None] * nranks
    failures: dict[int, BaseException] = {}
    tracebacks: dict[int, str] = {}
    lock = threading.Lock()
    # Recorders are created eagerly, before any thread starts: TraceSession
    # lazily materializes per-rank recorders, and doing that from inside
    # racing rank threads would contend on the session dict.
    recorders = (
        [trace.recorder(rank) for rank in range(nranks)]
        if trace is not None
        else None
    )

    def worker(rank: int) -> None:
        comm = Communicator(ctx, rank, timeout=timeout)
        if recorders is not None:
            comm.attach_trace(recorders[rank])
        extra = tuple(rank_args[rank]) if rank_args is not None else ()
        try:
            results[rank] = program(comm, *args, *extra, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            with lock:
                failures[rank] = exc
                tracebacks[rank] = traceback.format_exc()
            # Release peers blocked in collectives so the job terminates.
            ctx.barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if failures:
        raise SPMDError(failures, tracebacks)
    return results


def aggregate_timer_snapshots(snapshots: Sequence[dict]) -> TimerRegistry:
    """Fold per-rank :meth:`TimerRegistry.as_dict` snapshots into one registry.

    The standard harness pattern: each rank's program returns
    ``registry.as_dict()`` (snapshots cross the simulated address-space
    boundary as plain dicts), and the driver aggregates them here.  The
    merge is lossless -- per-rank ``min`` values and kept ``samples``
    survive, so both worst/best-case call times and the Fig. 16
    per-iteration series can be recovered job-wide.
    """
    agg = TimerRegistry()
    for snap in snapshots:
        agg.merge_snapshot(snap)
    return agg
