"""SPMD launcher: ``mpiexec -n N`` for the simulated runtime.

``run_spmd(nranks, program, ...)`` spawns one worker per rank, hands each a
:class:`~repro.mpi.communicator.Communicator`, and collects per-rank return
values.  Two execution backends provide the workers:

- ``backend="thread"`` (the default): one thread per rank sharing the
  process, with slot-exchange collectives and in-process mailboxes.
- ``backend="process"``: one OS process per rank
  (:mod:`repro.mpi.process_backend`), pickled-envelope pipe transport with
  bulk payloads mapped through ``multiprocessing.shared_memory`` -- real
  concurrency for numpy-heavy ranks, at process-spawn cost.

The backend can also be selected job-wide with the ``REPRO_SPMD_BACKEND``
environment variable; an explicit ``backend=`` argument wins.  Program
results, collective semantics, trace records, and fault injection schedules
are observably equivalent across backends (the test suite's equivalence
matrix asserts bit-identical results); only timing differs.

Any rank raising aborts the whole job: the shared context tree is
aborted, so peers blocked in collectives *or* point-to-point receives (on
the world communicator or any sub-communicator) are released immediately
with :class:`~repro.mpi.communicator.RankAbort` instead of burning the
watchdog timeout -- mirroring ``MPI_Abort`` semantics.  The resulting
:class:`SPMDError` attributes the failure: originating rank(s) with full
tracebacks, collateral aborted ranks listed separately.  Under the process
backend the abort cascade also *terminates* every still-live rank process
-- a failed job never leaves orphans.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.mpi.communicator import (
    DEFAULT_TIMEOUT,
    Communicator,
    RankAbort,
    _Context,
    _thread_world_rank,
)
from repro.util.timers import TimerRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultInjector, FaultPlan
    from repro.trace import TraceSession


class SPMDError(RuntimeError):
    """A rank of an SPMD program raised; carries per-rank tracebacks.

    ``failures`` holds only *originating* failures; ranks that were
    released from a blocking operation because of another rank's failure
    appear in ``aborted_ranks`` instead of being misreported as failures
    of their own.
    """

    def __init__(
        self,
        failures: dict[int, BaseException],
        tracebacks: dict[int, str],
        aborted_ranks: Sequence[int] = (),
    ):
        self.failures = failures
        self.tracebacks = tracebacks
        self.aborted_ranks = sorted(aborted_ranks)
        detail = "\n".join(
            f"--- rank {rank} ---\n{tb}" for rank, tb in sorted(tracebacks.items())
        )
        collateral = (
            f"\nranks {self.aborted_ranks} aborted after the failure"
            if self.aborted_ranks
            else ""
        )
        super().__init__(
            f"{len(failures)} rank(s) failed: {sorted(failures)}{collateral}\n{detail}"
        )


#: Execution backends ``run_spmd`` accepts.
BACKENDS = ("thread", "process")


def resolve_backend(backend: "str | None" = None) -> str:
    """The effective backend: explicit arg > ``REPRO_SPMD_BACKEND`` > thread."""
    choice = backend or os.environ.get("REPRO_SPMD_BACKEND") or "thread"
    if choice not in BACKENDS:
        raise ValueError(
            f"unknown SPMD backend {choice!r}; expected one of {BACKENDS}"
        )
    return choice


def run_spmd(
    nranks: int,
    program: Callable[..., Any],
    *args: Any,
    timeout: float = DEFAULT_TIMEOUT,
    rank_args: Sequence[tuple] | None = None,
    trace_collectives: bool = False,
    trace: "TraceSession | None" = None,
    faults: "FaultPlan | FaultInjector | None" = None,
    backend: "str | None" = None,
    start_method: "str | None" = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``program(comm, *args, **kwargs)`` on ``nranks`` simulated ranks.

    Parameters
    ----------
    nranks:
        World size.  Thread-backed, so keep it modest (tests use 2-32).
    program:
        The SPMD entry point; receives the rank's communicator first.
    timeout:
        Deadlock watchdog for blocked collectives/recvs, in seconds.  Each
        rank's :class:`Communicator` takes it as its constructor timeout;
        a collective that trips it reports which ranks had and had not
        arrived at the blocked barrier phase.
    rank_args:
        Optional per-rank extra positional arguments (length ``nranks``);
        appended after ``args``.
    trace_collectives:
        Debug mode for the collective-trace race detector: records call
        sites and a per-rank rolling history for divergence diagnostics,
        and flags ``ANY_SOURCE``/``ANY_TAG`` receives that raced against
        multiple matching sends (``comm.race_events``).  The divergence
        cross-check itself is always on.
    trace:
        Optional :class:`repro.trace.TraceSession`.  Each rank's
        communicator gets that rank's :class:`~repro.trace.TraceRecorder`
        attached before the thread starts, so collective byte counters and
        any component that resolves ``comm.trace_recorder`` (the
        :class:`~repro.core.bridge.Bridge`, timers, memory trackers)
        record into the shared session.  ``None`` (the default) leaves
        every hook at a single pointer comparison.
    faults:
        Optional :class:`repro.faults.FaultPlan` (or an already-built
        :class:`~repro.faults.FaultInjector`, when the caller wants to keep
        the injection log).  Attached to the communicator context, it
        drives deterministic fault injection at the ``mpi.send`` /
        ``mpi.collective`` sites and is discoverable by any component via
        ``comm.fault_injector``.  ``None`` (the default) keeps every fault
        hook at a single pointer comparison.
    backend:
        ``"thread"`` or ``"process"``; ``None`` defers to the
        ``REPRO_SPMD_BACKEND`` environment variable and then the thread
        default.  The process backend requires picklable program return
        values (they cross a real address-space boundary).
    start_method:
        Process-backend only: ``multiprocessing`` start method ("fork",
        "spawn", "forkserver"); ``None`` defers to
        ``REPRO_SPMD_START_METHOD`` and then fork where available.  Spawn
        and forkserver additionally require the *program* to be picklable
        (a module-level function, not a closure).

    Returns
    -------
    list with ``program``'s return value for each rank, in rank order.
    """
    if nranks <= 0:
        raise ValueError("nranks must be positive")
    if rank_args is not None and len(rank_args) != nranks:
        raise ValueError("rank_args must have one tuple per rank")

    injector = None
    if faults is not None:
        from repro.faults import FaultInjector, FaultPlan

        if isinstance(faults, FaultInjector):
            injector = faults
        elif isinstance(faults, FaultPlan):
            injector = FaultInjector(faults)
        else:
            raise TypeError("faults must be a FaultPlan or FaultInjector")

    if resolve_backend(backend) == "process":
        from repro.mpi.process_backend import run_spmd_process

        return run_spmd_process(
            nranks,
            program,
            args,
            kwargs,
            timeout=timeout,
            rank_args=rank_args,
            trace_collectives=trace_collectives,
            trace=trace,
            injector=injector,
            start_method=start_method,
        )

    ctx = _Context(nranks, trace=trace_collectives, injector=injector)
    results: list[Any] = [None] * nranks
    failures: dict[int, BaseException] = {}
    tracebacks: dict[int, str] = {}
    aborted: set[int] = set()
    lock = threading.Lock()
    # Recorders are created eagerly, before any thread starts: TraceSession
    # lazily materializes per-rank recorders, and doing that from inside
    # racing rank threads would contend on the session dict.
    recorders = (
        [trace.recorder(rank) for rank in range(nranks)]
        if trace is not None
        else None
    )

    def worker(rank: int) -> None:
        _thread_world_rank.rank = rank
        comm = Communicator(ctx, rank, timeout=timeout)
        if recorders is not None:
            comm.attach_trace(recorders[rank])
        extra = tuple(rank_args[rank]) if rank_args is not None else ()
        try:
            results[rank] = program(comm, *args, *extra, **kwargs)
        except RankAbort:
            # Collateral: released because some other rank already failed.
            with lock:
                aborted.add(rank)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            with lock:
                failures[rank] = exc
                tracebacks[rank] = traceback.format_exc()
            # Release peers blocked in collectives or receives, on the
            # world context and every sub-communicator, so the job
            # terminates with rank attribution instead of hanging until
            # the watchdog timeout.
            ctx.abort(f"rank {rank} raised {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if failures:
        raise SPMDError(failures, tracebacks, aborted_ranks=aborted)
    if aborted:  # pragma: no cover - defensive; abort implies a failure
        raise SPMDError(
            {},
            {},
            aborted_ranks=aborted,
        )
    return results


def aggregate_timer_snapshots(snapshots: Sequence[dict]) -> TimerRegistry:
    """Fold per-rank :meth:`TimerRegistry.as_dict` snapshots into one registry.

    The standard harness pattern: each rank's program returns
    ``registry.as_dict()`` (snapshots cross the simulated address-space
    boundary as plain dicts), and the driver aggregates them here.  The
    merge is lossless -- per-rank ``min`` values and kept ``samples``
    survive, so both worst/best-case call times and the Fig. 16
    per-iteration series can be recovered job-wide.
    """
    agg = TimerRegistry()
    for snap in snapshots:
        agg.merge_snapshot(snap)
    return agg
