"""Reliable framed delivery over a byte stream: the socket transport.

The thread backend exchanges objects through in-process mailboxes and the
process backend through pickled envelopes over pipes; the service layer
(:mod:`repro.service`) adds a third transport -- independent *client
processes* talking to a long-running server over local stream sockets.  A
byte stream has no message boundaries and no integrity guarantee, so this
module supplies both, reusing the reliable-delivery discipline of the
process backend's :class:`~repro.mpi.process_backend._Mailbox`:

- every frame carries a fixed header ``(magic, version, kind, seq, length,
  crc32)`` followed by the payload;
- sequence numbers increase by one per frame per direction.  The receiver
  *suppresses duplicates* (a retransmitted or fault-duplicated frame with
  ``seq <= last delivered`` is dropped) and *rejects overtaking* (a gap in
  the sequence means frames were lost inside a reliable stream -- a
  protocol error, not a recoverable hiccup);
- a CRC mismatch with an intact header leaves the stream positioned at the
  next frame, so the receiver can answer with a NACK and the sender can
  retransmit from its unacknowledged window -- delivery stays reliable even
  when the (fault-injected) wire corrupts payload bytes.

Fault injection hooks at ``service.frame`` (see :mod:`repro.faults.plan`):
``corrupt`` flips a payload byte after the CRC is computed, ``duplicate``
sends the frame twice, ``drop`` skips the send entirely (forcing the NACK /
retransmit path), and ``delay`` sleeps before sending.  All draws are
counter-hashed per channel, so a seeded plan injects the identical fault
schedule on every run.
"""

from __future__ import annotations

import socket
import struct
import time
import zlib

MAGIC = b"RSF1"
VERSION = 1

#: Header layout: magic, version, kind, seq, payload length, payload crc32.
_HEADER = struct.Struct("!4sBBQII")
HEADER_SIZE = _HEADER.size

#: Refuse absurd frames before allocating for them (64 MiB payload cap).
MAX_PAYLOAD = 64 * 1024 * 1024


class FrameError(RuntimeError):
    """Base class for framing-layer failures."""


class MalformedFrameError(FrameError):
    """Bad magic, bad version, an oversized length, or a CRC mismatch."""

    def __init__(self, message: str, recoverable: bool = False) -> None:
        super().__init__(message)
        #: True when the header was intact, the payload was consumed, and
        #: the stream is still positioned at the next frame boundary -- the
        #: receiver may NACK and keep reading.  False means the stream
        #: itself is desynchronized and must be closed.
        self.recoverable = recoverable


class TruncatedFrameError(FrameError):
    """The peer closed the stream mid-frame."""


class StaleFrameError(FrameError):
    """A duplicate frame (``seq`` at or below the last delivered seq).

    Raised internally and swallowed by :meth:`FrameChannel.recv`; exposed
    for tests that drive :func:`decode_header` directly.
    """


def encode_frame(kind: int, seq: int, payload: bytes) -> bytes:
    """One wire frame: header + payload, CRC over the payload bytes."""
    if not 0 <= kind <= 255:
        raise ValueError(f"frame kind {kind} out of range")
    if len(payload) > MAX_PAYLOAD:
        raise ValueError(f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD")
    header = _HEADER.pack(
        MAGIC, VERSION, kind, seq, len(payload), zlib.crc32(payload)
    )
    return header + payload


def decode_header(header: bytes) -> tuple[int, int, int, int]:
    """Parse a header; returns ``(kind, seq, length, crc)``."""
    if len(header) != HEADER_SIZE:
        raise TruncatedFrameError(
            f"stream closed mid-header ({len(header)}/{HEADER_SIZE} bytes)"
        )
    magic, version, kind, seq, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise MalformedFrameError(
            f"bad frame magic {magic!r}; stream is desynchronized"
        )
    if version != VERSION:
        raise MalformedFrameError(f"unsupported frame version {version}")
    if length > MAX_PAYLOAD:
        raise MalformedFrameError(
            f"frame length {length} exceeds MAX_PAYLOAD; refusing to allocate"
        )
    return kind, seq, length, crc


class FrameChannel:
    """One direction-pair of reliable framed delivery over a stream socket.

    Sends keep an unacknowledged-window copy of every frame until the
    application acknowledges it (:meth:`release_through`), so a NACK from
    the peer can be answered by retransmission (:meth:`retransmit_from`).
    Receives enforce the mailbox contract: duplicates are suppressed,
    overtaking is rejected.

    The channel is not thread-safe; the service layer uses one channel per
    connection handler thread, matching the one-recorder-per-rank
    discipline elsewhere in the repo.
    """

    def __init__(
        self,
        sock: socket.socket,
        injector=None,
        fault_rank: int = 0,
        trace=None,
    ) -> None:
        self.sock = sock
        #: Optional :class:`repro.faults.FaultInjector`; one pointer compare
        #: per send when disabled, like every other hook in the repo.
        self.injector = injector
        #: Site-local rank for fault draws (the tenant slot, so a seeded
        #: plan targets a specific client deterministically).
        self.fault_rank = fault_rank
        self.trace = trace
        self._send_seq = 0
        self._recv_seq = -1
        self._window: dict[int, bytes] = {}
        self._recv_buffer = b""
        #: Set after a recoverable receive error (the caller NACKed): the
        #: sender may still be streaming frames past the failed one, so
        #: out-of-order frames are *dropped* rather than treated as fatal
        #: gaps until the retransmission of the expected seq arrives.
        self._awaiting_retransmit = False
        self.sent_frames = 0
        self.received_frames = 0
        self.retransmits = 0
        self.duplicates_dropped = 0

    # -- sending -------------------------------------------------------------
    def send(self, kind: int, payload: bytes, step: int | None = None) -> int:
        """Frame and send ``payload``; returns the frame's sequence number."""
        seq = self._send_seq
        self._send_seq += 1
        frame = encode_frame(kind, seq, payload)
        self._window[seq] = frame
        wire = frame
        if self.injector is not None:
            wire = self._apply_send_faults(frame, step)
            if wire is None:
                return seq  # injected drop: the peer's NACK will recover it
        self.sock.sendall(wire)
        self.sent_frames += 1
        if self.trace is not None:
            self.trace.count("service::frames::sent", 1)
            self.trace.count("service::bytes::sent", len(frame))
        return seq

    def _apply_send_faults(self, frame: bytes, step: int | None) -> bytes | None:
        from repro.faults.plan import SITE_SERVICE_FRAME

        action = self.injector.draw(
            SITE_SERVICE_FRAME, self.fault_rank, step=step, trace=self.trace
        )
        if action is None:
            return frame
        if action.kind == "corrupt":
            # Flip one payload byte *after* the CRC was computed: the header
            # stays intact, so the receiver consumes the payload, detects
            # the mismatch, and NACKs -- the recoverable corruption path.
            if len(frame) > HEADER_SIZE:
                offset = HEADER_SIZE + int(
                    action.params.get("offset", 0)
                ) % (len(frame) - HEADER_SIZE)
                frame = (
                    frame[:offset]
                    + bytes([frame[offset] ^ 0xFF])
                    + frame[offset + 1 :]
                )
            return frame
        if action.kind == "duplicate":
            self.sock.sendall(frame)
            return frame
        if action.kind == "drop":
            return None
        if action.kind == "delay":
            time.sleep(float(action.params.get("seconds", 0.001)))
            return frame
        return frame

    def retransmit_from(self, seq: int) -> int:
        """Resend every unacknowledged frame at or after ``seq`` (the NACK
        recovery path); returns how many frames went out."""
        resent = 0
        for s in sorted(self._window):
            if s >= seq:
                self.sock.sendall(self._window[s])
                resent += 1
        self.retransmits += resent
        if self.trace is not None and resent:
            self.trace.count("service::frames::retransmitted", resent)
        return resent

    def release_through(self, seq: int) -> None:
        """Drop window copies for every frame at or below ``seq`` (the
        application-level acknowledgement)."""
        for s in [s for s in self._window if s <= seq]:
            del self._window[s]

    @property
    def window_size(self) -> int:
        return len(self._window)

    # -- receiving -----------------------------------------------------------
    def _read_exact(self, n: int) -> bytes:
        while len(self._recv_buffer) < n:
            chunk = self.sock.recv(min(65536, max(4096, n - len(self._recv_buffer))))
            if not chunk:
                raise TruncatedFrameError(
                    f"stream closed mid-frame "
                    f"({len(self._recv_buffer)}/{n} bytes buffered)"
                )
            self._recv_buffer += chunk
        out, self._recv_buffer = self._recv_buffer[:n], self._recv_buffer[n:]
        return out

    def recv(self) -> tuple[int, int, bytes]:
        """The next in-order frame as ``(kind, seq, payload)``.

        Duplicates are dropped silently.  A payload CRC mismatch or a
        sequence gap raises a *recoverable* :class:`MalformedFrameError`
        with the stream still at a frame boundary, so the caller can NACK
        from :attr:`expected_seq`; frames the sender had already pipelined
        past the failure are then discarded until the retransmission
        arrives.  A desynchronized header (bad magic/version/length) is
        fatal.
        """
        while True:
            kind, seq, length, crc = decode_header(self._read_exact(HEADER_SIZE))
            payload = self._read_exact(length)
            if seq <= self._recv_seq:
                self.duplicates_dropped += 1
                if self.trace is not None:
                    self.trace.count("service::frames::duplicates", 1)
                continue
            expected = self._recv_seq + 1
            if zlib.crc32(payload) != crc:
                self._awaiting_retransmit = True
                raise MalformedFrameError(
                    f"payload CRC mismatch on frame seq={seq}",
                    recoverable=True,
                )
            if seq != expected:
                if self._awaiting_retransmit:
                    # Pipelined past the failure; the NACKed retransmission
                    # will replay this frame in order.
                    continue
                self._awaiting_retransmit = True
                raise MalformedFrameError(
                    f"sequence gap: expected {expected}, got {seq}; "
                    "frame lost on the stream",
                    recoverable=True,
                )
            self._recv_seq = seq
            self._awaiting_retransmit = False
            self.received_frames += 1
            if self.trace is not None:
                self.trace.count("service::frames::received", 1)
                self.trace.count(
                    "service::bytes::received", HEADER_SIZE + length
                )
            return kind, seq, payload

    @property
    def expected_seq(self) -> int:
        """The sequence number the next in-order frame must carry."""
        return self._recv_seq + 1

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
