"""Process-backed SPMD runtime: one OS process per rank.

The thread backend (:mod:`repro.mpi.launcher`) serializes every
numpy-heavy rank on the GIL, which understates contention and can hide
ordering bugs that only appear under true concurrency.  This backend runs
the identical :class:`~repro.mpi.communicator.Communicator` program with
one *process* per rank:

- **Transport** is a pickled-envelope pipe fabric: each rank owns one
  inbound ``multiprocessing`` queue; a drainer thread in every worker
  routes arriving envelopes into per-communicator mailboxes (the same
  :class:`~repro.mpi.communicator._Mailbox` the thread backend uses, so
  tag/source matching, the pending-envelope non-overtaking rule, and
  sequence-number duplicate suppression are literally the same code).
  Bulk numpy payloads spill to ``multiprocessing.shared_memory`` segments
  (:mod:`repro.mpi.shm`) instead of riding the pipe.
- **Collectives** replace the thread backend's shared slot array with an
  all-to-all contribution exchange on a dedicated envelope kind.  Every
  rank still sees the full per-rank record row, so the collective-trace
  divergence cross-check raises the same
  :class:`~repro.mpi.communicator.CollectiveMismatchError` on every rank,
  and reductions still fold in rank order -- results are bit-identical to
  the thread backend.  Large-array contributions never cross the pipes:
  each rank packs its payload once into a pooled shared-memory segment
  (:class:`~repro.mpi.shm.SegmentPool`) and ships every peer the same tiny
  header; peers copy -- or, for reductions, fold in place -- straight out
  of the segment (:class:`~repro.mpi.shm.ReductionPlan`).  The
  ``mpi::<kind>::bytes`` counter is split into ``::shm`` and ``::pickled``
  so traces prove which transport carried the bytes.
- **Faults** reuse the ``mpi.send`` / ``mpi.collective`` sites unchanged:
  delay and drop-retransmit are sender-side timers that deliver a pending
  envelope's payload late, exactly mirroring the thread transport.  Each
  worker rebuilds its :class:`~repro.faults.FaultInjector` from the
  (immutable) plan; because draws are counter-hashed per (site, rank,
  occurrence) and every site draws with rank identities unique to that
  process, the per-rank logs merge into the same deterministic schedule
  the shared-injector thread backend produces.
- **Failure handling** mirrors ``MPI_Abort``: a worker that raises ships
  its exception to the launcher, which broadcasts an abort envelope to
  every peer (releasing blocked receives and collectives with
  :class:`~repro.mpi.communicator.RankAbort`), then joins with a grace
  period and terminates/kills stragglers -- a failed job never leaves
  orphaned rank processes behind.

Start methods: ``fork`` (the default where available) supports closure
programs, which is what the test matrix uses.  ``spawn`` and
``forkserver`` are fully supported for *picklable* (module-level)
programs; the transport itself -- queues, shared-memory names, plans,
recorders -- is picklable by construction.  Select with
``run_spmd(..., start_method=...)`` or ``REPRO_SPMD_START_METHOD``.
"""

from __future__ import annotations

import itertools
import os
import pickle
import queue as queue_mod
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.mpi.communicator import (
    _HISTORY_LIMIT,
    Communicator,
    CollectiveMismatchError,
    MPIError,
    RankAbort,
    _Mailbox,
    _copy_payload,
    _payload_nbytes,
    _thread_world_rank,
)
from repro.mpi.ops import SUM, ReduceOp
from repro.mpi.shm import (
    RING_DEPTH,
    AttachCache,
    PayloadCodec,
    PoolRef,
    ReductionPlan,
    SegmentPool,
    cleanup_segments,
)

#: Communicator id of the world communicator.
_WORLD_ID = "w"

#: Seconds the launcher waits for a dead worker's already-sent result to
#: surface from the queue before declaring "died without reporting".
_DEATH_GRACE = 1.0

#: Seconds workers get to exit cleanly after an abort broadcast before the
#: launcher escalates to terminate()/kill().
_EXIT_GRACE = 5.0

_JOB_COUNTER = itertools.count()


# --------------------------------------------------------------------------
# Per-worker runtime: envelope routing
# --------------------------------------------------------------------------


class _CommState:
    """One communicator's inbound state inside one worker process."""

    def __init__(self) -> None:
        self.mailbox = _Mailbox()
        #: Per-source-local-rank FIFO of (coll_seq, record, value).  FIFO
        #: order is envelope arrival order, which per sender is program
        #: order -- so the k-th entry is that rank's k-th collective.
        self.coll: dict[int, deque] = {}
        self.cond = threading.Condition()


class _Runtime:
    """One worker process's view of the job fabric.

    Owns the inbound queue drainer, the per-communicator states, the
    payload codec, and any sender-side fault-delivery timers.
    """

    def __init__(self, rank: int, size: int, queues, job_tag: str) -> None:
        self.rank = rank
        self.size = size
        self.queues = queues
        self.codec = PayloadCodec(job_tag, rank)
        #: Pooled collective transport: this rank's reusable contribution
        #: segments, and cached attachments to the peers' (see shm.py).
        self.pool = SegmentPool(job_tag, rank)
        self.attach = AttachCache()
        self._pool_gauges: "dict[str, int] | None" = None
        self.abort_reason: str | None = None
        self._states: dict[str, _CommState] = {}
        self._lock = threading.Lock()
        self._timers: list[threading.Timer] = []
        self._drainer = threading.Thread(
            target=self._drain, name=f"spmd-drain-{rank}", daemon=True
        )

    def start(self) -> None:
        self._drainer.start()

    # -- states ------------------------------------------------------------
    def state(self, cid: str) -> _CommState:
        with self._lock:
            st = self._states.get(cid)
            if st is None:
                st = self._states[cid] = _CommState()
                if self.abort_reason is not None:
                    # The job already aborted; anything blocking on this
                    # late-created communicator must release immediately.
                    st.mailbox.abort(self.abort_reason)
            return st

    # -- outbound ----------------------------------------------------------
    def put(self, dest_world: int, env: tuple) -> None:
        self.queues[dest_world].put(env)

    def put_later(self, delay: float, dest_world: int, env: tuple) -> None:
        """Deliver ``env`` after ``delay`` seconds (injected delay/drop)."""
        timer = threading.Timer(delay, self.put, args=(dest_world, env))
        timer.daemon = True
        with self._lock:
            self._timers.append(timer)
        timer.start()

    def flush_timers(self, timeout: float = 2.0) -> None:
        """Wait for in-flight delayed deliveries before the worker exits.

        A worker that exits with a pending delivery timer would strand its
        receiver (the thread backend never has this problem -- all ranks
        share one process).  Injected delays are milliseconds, so this is
        a bounded, normally-instant wait.
        """
        deadline = time.monotonic() + timeout
        with self._lock:
            timers = list(self._timers)
        for t in timers:
            t.join(max(0.0, deadline - time.monotonic()))

    # -- inbound -----------------------------------------------------------
    def _drain(self) -> None:
        inbound = self.queues[self.rank]
        decode = self.codec.decode
        while True:
            try:
                env = inbound.get()
            except BaseException:  # pragma: no cover - teardown race
                # The queue's read end can break mid-get during interpreter
                # shutdown; a drainer has nothing useful to do about it.
                return
            kind = env[0]
            if kind == "stop":
                return
            if kind == "abort":
                self._abort_local(env[1])
                continue
            st = self.state(env[1])
            if kind == "pt":
                _, _, src, tag, seq, spec = env
                st.mailbox.put(src, tag, decode(spec), seq=seq)
            elif kind == "pend":
                _, _, src, tag, seq = env
                st.mailbox.put_pending(src, tag, seq)
            elif kind == "fulfill":
                _, _, src, seq, spec = env
                st.mailbox.fulfill(src, seq, decode(spec))
            elif kind == "coll":
                _, _, src, cseq, record, spec = env
                value = decode(spec)
                with st.cond:
                    st.coll.setdefault(src, deque()).append((cseq, record, value))
                    st.cond.notify_all()

    def _abort_local(self, reason: str) -> None:
        with self._lock:
            self.abort_reason = reason
            states = list(self._states.values())
        for st in states:
            st.mailbox.abort(reason)
            with st.cond:
                st.cond.notify_all()

    def emit_pool_gauges(self, rec) -> None:
        """Sample the ``shm::pool::*`` gauges when the counters moved."""
        counters = self.pool.counters()
        if counters != self._pool_gauges:
            self._pool_gauges = counters
            for name, value in counters.items():
                rec.gauge(f"shm::pool::{name}", value)

    def release_shm(self) -> None:
        """Drop this worker's shared-memory mappings before exit.

        Pool segments are closed, not unlinked: a peer still finishing its
        last collective may attach them after this rank's program returned.
        The launcher's job-tag sweep unlinks the names once every worker
        has exited.
        """
        self.attach.close()
        self.pool.close()

    def stop(self) -> None:
        # Wake the drainer out of its blocking get and see it exit before
        # the interpreter starts tearing down the queue machinery under it;
        # daemon=True backstops the case where the queue is already broken.
        try:
            self.queues[self.rank].put(("stop",))
        except (OSError, ValueError):  # pragma: no cover - teardown race
            pass
        self._drainer.join(2.0)


# --------------------------------------------------------------------------
# Communicator over the process fabric
# --------------------------------------------------------------------------


class _ProcessContext:
    """Duck-typed stand-in for the thread backend's ``_Context``.

    Carries exactly the attributes the base :class:`Communicator` methods
    read: ``size``, ``trace``, ``injector``, ``histories``, ``race_events``,
    ``lock``, and a ``mailboxes`` mapping that resolves this process's own
    local mailbox.  ``members`` maps communicator-local ranks to world
    ranks for envelope routing.
    """

    def __init__(
        self,
        runtime: _Runtime,
        cid: str,
        members: Sequence[int],
        local_rank: int,
        trace: bool,
        injector,
    ) -> None:
        self.runtime = runtime
        self.cid = cid
        self.members = list(members)
        self.size = len(self.members)
        self.trace = trace
        self.injector = injector
        self.histories = [deque(maxlen=_HISTORY_LIMIT) for _ in range(self.size)]
        self.race_events: list[dict] = []
        self.lock = threading.Lock()
        self.state = runtime.state(cid)
        self.mailboxes = {local_rank: self.state.mailbox}
        #: Per-communicator fold schedule + preallocated accumulators for
        #: in-place reductions straight out of peers' pooled segments.
        self.plan = ReductionPlan()


class ProcessCommunicator(Communicator):
    """The :class:`Communicator` API over the pipe/shared-memory fabric.

    Point-to-point receive paths, the collective wrappers (bcast, reduce,
    scatter, ...), trace records, and the divergence cross-check are all
    inherited -- only ``send``, the contribution exchange, and ``split``
    know they are crossing a process boundary.
    """

    # -- transport accounting ----------------------------------------------
    @staticmethod
    def _count_transport(rec, stem: str, shm_bytes: int, total: int) -> None:
        """Split a payload's bytes into shm-carried vs. pickled counters.

        Zero-valued samples are skipped to keep traces lean; reports read
        the split with a 0.0 default.
        """
        if shm_bytes:
            rec.count(f"{stem}::shm", shm_bytes)
        if total > shm_bytes:
            rec.count(f"{stem}::pickled", total - shm_bytes)

    # -- point to point ----------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise MPIError(f"send dest {dest} out of range (size {self.size})")
        ctx: _ProcessContext = self._ctx
        rec = self._trace_recorder
        nb = _payload_nbytes(payload) if rec is not None else 0
        if rec is not None:
            rec.count("mpi::send::bytes", nb)
        dest_world = ctx.members[dest]
        runtime = ctx.runtime
        inj = ctx.injector
        if inj is None:
            spec = runtime.codec.encode(payload)
            if rec is not None:
                self._count_transport(
                    rec, "mpi::send::bytes", nb if spec[0] == "shm" else 0, nb
                )
            runtime.put(dest_world, ("pt", ctx.cid, self._rank, tag, None, spec))
            return
        seq = self._send_seqs.get(dest, 0)
        self._send_seqs[dest] = seq + 1
        action = inj.draw("mpi.send", self._draw_rank(), trace=rec)
        # Faulted paths pickle inline: a duplicated envelope must survive
        # two decodes, which a consume-once shm segment cannot.
        if action is None:
            spec = runtime.codec.encode(payload)
            if rec is not None:
                self._count_transport(
                    rec, "mpi::send::bytes", nb if spec[0] == "shm" else 0, nb
                )
            runtime.put(dest_world, ("pt", ctx.cid, self._rank, tag, seq, spec))
            return
        if rec is not None:
            self._count_transport(rec, "mpi::send::bytes", 0, nb)
        kind = action.kind
        if kind == "duplicate":
            # Delivered twice; the receiver's seq dedup discards the copy.
            for _ in range(2):
                runtime.put(
                    dest_world,
                    ("pt", ctx.cid, self._rank, tag, seq, ("inline", payload)),
                )
        elif kind == "delay":
            runtime.put(dest_world, ("pend", ctx.cid, self._rank, tag, seq))
            runtime.put_later(
                float(action.params.get("seconds", 0.005)),
                dest_world,
                ("fulfill", ctx.cid, self._rank, seq, ("inline", payload)),
            )
        elif kind == "drop":
            # Lost on the wire; the reliable-transport layer retransmits.
            if rec is not None:
                rec.count("resilience::retransmit", 1)
            runtime.put(dest_world, ("pend", ctx.cid, self._rank, tag, seq))
            runtime.put_later(
                float(action.params.get("retransmit_after", 0.01)),
                dest_world,
                ("fulfill", ctx.cid, self._rank, seq, ("inline", payload)),
            )
        else:  # unknown kinds deliver normally (forward compatibility)
            runtime.put(
                dest_world, ("pt", ctx.cid, self._rank, tag, seq, ("inline", payload))
            )

    # -- collectives -------------------------------------------------------
    def _exchange(self, value: Any, record, resolve: bool = True) -> list[Any]:
        """All-to-all contribution exchange replacing the shared slot array.

        Unlike the thread backend there is no second barrier phase: every
        rank owns a private copy of the row, so slot reuse cannot race.  A
        rank may therefore leave a collective while a peer is still
        collecting -- the same eventual-completion semantics real MPI
        collectives have.

        Large-array contributions ride the segment pool: the payload is
        packed *once* into this rank's pooled segment and every peer gets
        the same tiny :class:`PoolRef` header -- zero array bytes cross the
        pipes, and the fault sites see the identical draw sequence they see
        on the inline path (the envelope payload, not the draw schedule,
        is what changed).  With ``resolve=True`` peers' headers are
        materialized into private copies before returning; the collective
        overrides below pass ``resolve=False`` to copy or fold straight
        out of the peers' segments instead.
        """
        ctx: _ProcessContext = self._ctx
        rec = self._trace_recorder
        nb = _payload_nbytes(value) if rec is not None else 0
        if rec is not None:
            rec.count(f"mpi::{record[1]}::bytes", nb)
        inj = ctx.injector
        if inj is not None:
            # Straggler injection: this rank enters the collective late.
            action = inj.draw("mpi.collective", self._draw_rank(), trace=rec)
            if action is not None and action.kind == "stall":
                time.sleep(float(action.params.get("seconds", 0.001)))
        runtime = ctx.runtime
        cseq = record[0]
        shared_spec = None
        if self.size > 1 and runtime.codec.threshold > 0:
            ref = runtime.pool.pack(
                (ctx.cid, cseq % RING_DEPTH), value, runtime.codec.threshold
            )
            if ref is not None:
                # One pack, one header for everyone; _snapshot passes the
                # transport-owned PoolRef through uncopied.
                shared_spec = runtime.codec.encode(ref)
                if rec is not None:
                    self._count_transport(
                        rec, f"mpi::{record[1]}::bytes", ref.nbytes, nb
                    )
                    runtime.emit_pool_gauges(rec)
        if shared_spec is None and rec is not None and self.size > 1:
            self._count_transport(rec, f"mpi::{record[1]}::bytes", 0, nb)
        for peer in range(self.size):
            if peer == self._rank:
                continue
            spec = shared_spec
            if spec is None:
                spec = runtime.codec.encode(value)
            runtime.put(
                ctx.members[peer],
                ("coll", ctx.cid, self._rank, cseq, record, spec),
            )
        peers = [p for p in range(self.size) if p != self._rank]
        records: list = [None] * self.size
        values: list = [None] * self.size
        records[self._rank] = record
        values[self._rank] = value
        st = ctx.state
        deadline = time.monotonic() + self._timeout
        abort_grace: "float | None" = None
        with st.cond:
            while True:
                # Completeness first: contributions were sent before any
                # peer could raise -- so a rank holding the full row
                # reports the real divergence, not collateral RankAbort.
                missing = [p for p in peers if not st.coll.get(p)]
                if not missing:
                    for p in peers:
                        peer_seq, peer_record, peer_value = st.coll[p].popleft()
                        if peer_seq != cseq:  # pragma: no cover - defensive
                            raise CollectiveMismatchError(
                                f"collective sequence skew: rank {p} is at "
                                f"#{peer_seq}, this rank at #{cseq}"
                            )
                        records[p] = peer_record
                        values[p] = peer_value
                    break
                if runtime.abort_reason is not None:
                    # A peer's contribution and the launcher's abort travel
                    # on different pipes (the peer's feeder thread vs the
                    # launcher), so the abort can overtake a contribution
                    # already on the wire.  Grant a short grace window for
                    # in-flight rows before declaring this rank collateral:
                    # a rank that completed the collective before failing
                    # must release its peers with the real row, identically
                    # to the thread backend's completed-phase check.
                    if abort_grace is None:
                        abort_grace = time.monotonic() + 0.25
                    if time.monotonic() >= abort_grace:
                        raise RankAbort(
                            f"collective aborted: {runtime.abort_reason}"
                        )
                    st.cond.wait(0.01)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    arrived = sorted(
                        [self._rank] + [p for p in peers if p not in missing]
                    )
                    raise MPIError(
                        f"collective timed out after {self._timeout:g}s: likely "
                        "mismatched collective calls across ranks (deadlock); "
                        f"ranks {sorted(missing)} had not arrived at this "
                        f"barrier phase (arrived: {arrived})"
                        + self._history_hint()
                    )
                st.cond.wait(remaining)
        self._check_trace(records)
        if resolve:
            attach = runtime.attach
            values = [
                v.materialize(attach) if isinstance(v, PoolRef) else v
                for v in values
            ]
        return values

    # -- pooled-contribution resolution ------------------------------------
    def _materialize(self, v: Any) -> Any:
        """A private, owned copy of one exchanged contribution."""
        if isinstance(v, PoolRef):
            return v.materialize(self._ctx.runtime.attach)
        return _copy_payload(v)

    def _fold(self, op: ReduceOp, values: list[Any]) -> Any:
        """Rank-order fold of exchanged contributions.

        Same-shape/dtype ndarray rows under a ufunc-backed op fold in
        place into the communicator's preallocated accumulator, reading
        peers' contributions as views straight out of their pooled
        segments (zero copies); the result handed back is a private copy.
        Everything else takes the allocating ``op.reduce`` path the thread
        backend uses.  Both paths apply the identical elementwise fold
        order (rank 0..N-1), so results are bit-identical.
        """
        runtime = self._ctx.runtime
        if op.ufunc is not None:
            rows = [
                v.view_tree(runtime.attach) if isinstance(v, PoolRef) else v
                for v in values
            ]
            first = rows[0]
            if isinstance(first, np.ndarray) and all(
                isinstance(v, np.ndarray)
                and v.shape == first.shape
                and v.dtype == first.dtype
                for v in rows
            ):
                acc = self._ctx.plan.fold(op.ufunc, rows, op.name)
                return acc.copy()
        return op.reduce([self._materialize(v) for v in values])

    def allgather(self, value: Any) -> list[Any]:
        values = self._exchange(value, self._record("allgather"), resolve=False)
        return [self._materialize(v) for v in values]

    def gather(self, value: Any, root: int = 0) -> "list[Any] | None":
        values = self._exchange(
            value, self._record("gather", root=root), resolve=False
        )
        if self._rank == root:
            return [self._materialize(v) for v in values]
        return None

    def bcast(self, value: Any, root: int = 0) -> Any:
        values = self._exchange(
            value if self._rank == root else None,
            self._record("bcast", root=root),
            resolve=False,
        )
        return self._materialize(values[root])

    def scatter(self, values: "list[Any] | None", root: int = 0) -> Any:
        if self._rank == root:
            if values is None or len(values) != self.size:
                raise MPIError(
                    "scatter at root requires a list with one entry per rank"
                )
        deposited = self._exchange(
            values if self._rank == root else None,
            self._record("scatter", root=root),
            resolve=False,
        )
        row = deposited[root]
        if isinstance(row, PoolRef):
            row = row.view_tree(self._ctx.runtime.attach)
        return _copy_payload(row[self._rank])

    def alltoall(self, values: list[Any]) -> list[Any]:
        if len(values) != self.size:
            raise MPIError("alltoall requires one entry per rank")
        deposited = self._exchange(
            values, self._record("alltoall"), resolve=False
        )
        attach = self._ctx.runtime.attach
        out = []
        for src in range(self.size):
            row = deposited[src]
            if isinstance(row, PoolRef):
                row = row.view_tree(attach)
            out.append(_copy_payload(row[self._rank]))
        return out

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        values = self._exchange(
            value,
            self._record("reduce", op=op, root=root, value=value),
            resolve=False,
        )
        if self._rank == root:
            return self._fold(op, values)
        return None

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        values = self._exchange(
            value, self._record("allreduce", op=op, value=value), resolve=False
        )
        # Every rank folds in identical rank order => identical results.
        return self._fold(op, values)

    def exscan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``None``."""
        values = self._exchange(
            value, self._record("exscan", op=op, value=value), resolve=False
        )
        if self._rank == 0:
            return None
        return self._fold(op, values[: self._rank])

    # -- communicator management -------------------------------------------
    def split(self, color: int, key: int | None = None):
        """Partition ranks by ``color``; order within a group by ``key``.

        The child communicator id is derived from (parent id, parent
        collective sequence, color) -- identical on every member because
        collectives are called in program order -- so envelope routing
        needs no shared registry.
        """
        key = self._rank if key is None else key
        triples = self._exchange((color, key, self._rank), self._record("split"))
        if color < 0:
            return None
        groups: dict[int, list[tuple[int, int]]] = {}
        for c, k, r in triples:
            if c >= 0:
                groups.setdefault(c, []).append((k, r))
        my_group = sorted(groups[color])
        ctx: _ProcessContext = self._ctx
        members_world = [ctx.members[r] for _, r in my_group]
        new_rank = [r for _, r in my_group].index(self._rank)
        child_cid = f"{ctx.cid}/{self._seq}.{color}"
        child_ctx = _ProcessContext(
            ctx.runtime,
            child_cid,
            members_world,
            new_rank,
            trace=ctx.trace,
            injector=ctx.injector,
        )
        sub = ProcessCommunicator(child_ctx, new_rank, timeout=self._timeout)
        sub._trace_recorder = self._trace_recorder
        return sub


# --------------------------------------------------------------------------
# Worker entry point
# --------------------------------------------------------------------------


@dataclass
class _WorkerSpec:
    """Everything one worker needs; picklable when the program is."""

    program: Callable
    args: tuple
    kwargs: dict
    extra: tuple
    timeout: float
    trace_collectives: bool
    plan: Any  # FaultPlan | None
    recorder: Any  # TraceRecorder | None
    job_tag: str


def _try_dumps(obj: Any) -> "bytes | None":
    try:
        return pickle.dumps(obj)
    except Exception:
        return None


def _ship_exception(exc: BaseException) -> tuple:
    """(pickled-exception-or-None, repr) -- exceptions may not pickle."""
    blob = _try_dumps(exc)
    if blob is not None:
        # Some exceptions pickle but cannot unpickle (custom __init__
        # signatures); verify the round trip here, on the worker side.
        try:
            pickle.loads(blob)
        except Exception:
            blob = None
    return blob, f"{type(exc).__name__}: {exc}"


def _worker_main(rank: int, size: int, queues, result_queue, spec: _WorkerSpec) -> None:
    runtime = _Runtime(rank, size, queues, spec.job_tag)
    runtime.start()
    _thread_world_rank.rank = rank
    injector = None
    if spec.plan is not None:
        from repro.faults import FaultInjector

        injector = FaultInjector(spec.plan)
    ctx = _ProcessContext(
        runtime,
        _WORLD_ID,
        range(size),
        rank,
        trace=spec.trace_collectives,
        injector=injector,
    )
    comm = ProcessCommunicator(ctx, rank, timeout=spec.timeout)
    recorder = spec.recorder
    # The recorder arrived as a fork/pickle copy; only what this process
    # *adds* travels back, so snapshot the inherited state now.
    base = None
    if recorder is not None:
        comm.attach_trace(recorder)
        base = (len(recorder.spans), len(recorder.counters), dict(recorder._totals))

    def extras() -> dict:
        out: dict = {}
        if injector is not None:
            out["fault_log"] = injector.schedule()
        if recorder is not None:
            nspans, ncounters, totals0 = base
            deltas = {
                name: total - totals0.get(name, 0.0)
                for name, total in recorder._totals.items()
                if total != totals0.get(name, 0.0)
            }
            out["trace"] = (
                recorder.spans[nspans:],
                recorder.counters[ncounters:],
                deltas,
            )
        return out

    report: tuple
    try:
        result = spec.program(comm, *spec.args, *spec.extra, **spec.kwargs)
        report = ("ok", rank, result, extras())
    except RankAbort:
        report = ("aborted", rank, None, extras())
    except BaseException as exc:  # noqa: BLE001 - reported to the launcher
        exc_blob, exc_repr = _ship_exception(exc)
        report = (
            "fail",
            rank,
            (exc_blob, exc_repr, traceback.format_exc()),
            extras(),
        )
    blob = _try_dumps(report)
    if blob is None:
        # The program ran but its return value cannot cross the process
        # boundary -- a clear diagnostic beats a feeder-thread stack trace.
        kind = report[0]
        report = (
            "fail",
            rank,
            (
                None,
                f"rank {rank} produced an unpicklable "
                + ("result" if kind == "ok" else "report")
                + "; process-backend return values must be picklable",
                "",
            ),
            {},
        )
        blob = pickle.dumps(report)
    result_queue.put(blob)
    # Guarantee the result reaches the pipe before this process exits.
    result_queue.close()
    result_queue.join_thread()
    runtime.flush_timers()
    runtime.stop()
    runtime.release_shm()


# --------------------------------------------------------------------------
# Launcher
# --------------------------------------------------------------------------


def _pick_start_method(requested: str | None):
    import multiprocessing as mp

    method = requested or os.environ.get("REPRO_SPMD_START_METHOD")
    available = mp.get_all_start_methods()
    if method is None:
        method = "fork" if "fork" in available else "spawn"
    if method not in available:
        raise ValueError(
            f"start method {method!r} not available here (have {available})"
        )
    return mp.get_context(method), method


def run_spmd_process(
    nranks: int,
    program: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    *,
    timeout: float,
    rank_args: "Sequence[tuple] | None",
    trace_collectives: bool,
    trace,
    injector,
    start_method: str | None = None,
) -> list[Any]:
    """Run ``program`` with one OS process per rank; see ``run_spmd``.

    Argument validation happens in :func:`repro.mpi.launcher.run_spmd`;
    this function owns process lifecycle: spawn, result collection, abort
    broadcast on failure, guaranteed child teardown, shared-memory sweep,
    and merging per-rank fault logs / trace data back into the launcher's
    injector and session objects.
    """
    mpctx, method = _pick_start_method(start_method)
    # Start the shared-memory resource tracker *before* forking workers.
    # Otherwise each worker lazily spawns its own tracker, a sender's
    # tracker never observes the receiver's unlink, and every worker exits
    # warning about "leaked" segments that were in fact cleanly consumed.
    from multiprocessing import resource_tracker

    resource_tracker.ensure_running()
    if method in ("spawn", "forkserver"):
        try:
            pickle.dumps(program)
        except Exception as exc:
            raise ValueError(
                f"backend='process' with start method {method!r} requires a "
                "picklable (module-level) program; use the default 'fork' "
                "start method for closures"
            ) from exc
    job_tag = f"{os.getpid():x}x{next(_JOB_COUNTER):x}"
    plan = injector.plan if injector is not None else None
    recorders = (
        [trace.recorder(rank) for rank in range(nranks)]
        if trace is not None
        else None
    )
    queues = [mpctx.Queue() for _ in range(nranks)]
    result_queue = mpctx.Queue()
    procs = []
    for rank in range(nranks):
        spec = _WorkerSpec(
            program=program,
            args=args,
            kwargs=kwargs,
            extra=tuple(rank_args[rank]) if rank_args is not None else (),
            timeout=timeout,
            trace_collectives=trace_collectives,
            plan=plan,
            recorder=recorders[rank] if recorders is not None else None,
            job_tag=job_tag,
        )
        procs.append(
            mpctx.Process(
                target=_worker_main,
                args=(rank, nranks, queues, result_queue, spec),
                name=f"spmd-rank-{rank}",
            )
        )
    results: list[Any] = [None] * nranks
    failures: dict[int, BaseException] = {}
    tracebacks: dict[int, str] = {}
    aborted: set[int] = set()
    extras_by_rank: dict[int, dict] = {}
    abort_sent = False

    def broadcast_abort(reason: str) -> None:
        nonlocal abort_sent
        if abort_sent:
            return
        abort_sent = True
        for q in queues:
            try:
                q.put(("abort", reason))
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass

    try:
        for p in procs:
            p.start()
        pending = set(range(nranks))
        death_noticed: dict[int, float] = {}
        while pending:
            try:
                blob = result_queue.get(timeout=0.05)
            except queue_mod.Empty:
                now = time.monotonic()
                for rank in sorted(pending):
                    if procs[rank].is_alive():
                        death_noticed.pop(rank, None)
                        continue
                    first = death_noticed.setdefault(rank, now)
                    if now - first < _DEATH_GRACE:
                        continue
                    # Dead past the grace window with no report: the rank
                    # process died hard (os._exit, signal, interpreter
                    # crash).  Attribute it and release the peers.
                    code = procs[rank].exitcode
                    exc = MPIError(
                        f"rank {rank} process died without reporting "
                        f"(exit code {code})"
                    )
                    failures[rank] = exc
                    tracebacks[rank] = str(exc)
                    pending.discard(rank)
                    broadcast_abort(str(exc))
                continue
            status, rank, payload, extras = pickle.loads(blob)
            pending.discard(rank)
            extras_by_rank[rank] = extras
            if status == "ok":
                results[rank] = payload
            elif status == "aborted":
                aborted.add(rank)
            else:  # "fail"
                exc_blob, exc_repr, tb = payload
                exc: BaseException
                if exc_blob is not None:
                    try:
                        exc = pickle.loads(exc_blob)
                    except Exception:  # pragma: no cover - defensive
                        exc = RuntimeError(exc_repr)
                else:
                    exc = RuntimeError(exc_repr)
                failures[rank] = exc
                tracebacks[rank] = tb or exc_repr
                broadcast_abort(f"rank {rank} raised {exc_repr}")
        deadline = time.monotonic() + _EXIT_GRACE
        for p in procs:
            p.join(max(0.1, deadline - time.monotonic()))
    finally:
        # No orphaned ranks, ever: escalate terminate -> kill on anything
        # still alive, then reap and release every IPC resource.
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            if p.is_alive():
                p.join(1.0)
                if p.is_alive():  # pragma: no cover - hard-stuck child
                    p.kill()
                    p.join(1.0)
        for p in procs:
            p.close()
        for q in [*queues, result_queue]:
            q.close()
            q.cancel_join_thread()
        cleanup_segments(job_tag)

    _merge_extras(extras_by_rank, injector, recorders)
    if failures:
        from repro.mpi.launcher import SPMDError

        raise SPMDError(failures, tracebacks, aborted_ranks=aborted)
    return results


def _merge_extras(extras_by_rank: dict[int, dict], injector, recorders) -> None:
    """Fold per-rank fault logs and trace data back into launcher state."""
    for rank in sorted(extras_by_rank):
        extras = extras_by_rank[rank]
        log = extras.get("fault_log")
        if log and injector is not None:
            injector.absorb_log(log)
        tr = extras.get("trace")
        if tr is not None and recorders is not None:
            spans, counters, totals = tr
            recorders[rank].absorb(spans, counters, totals)
